//! Offline stand-in for the subset of the `rand 0.9` API this workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, `Rng::{random, random_bool,
//! random_range}` and `seq::SliceRandom::shuffle`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this deterministic implementation (SplitMix64 seeding into
//! xoshiro256**). It is *not* cryptographically secure and does not match
//! the upstream value streams — every consumer in this workspace only
//! relies on determinism for a fixed seed, which this shim guarantees.

#![forbid(unsafe_code)]

/// Uniform sampling from a range-like set, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Minimal object-safe RNG core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Modulo with a 128-bit intermediate: bias is < 2^-64 for
                // every span used here, irrelevant for test data generation.
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Types drawable from the "standard" distribution (`Rng::random`).
pub trait StandardSample {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl StandardSample for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

/// The user-facing RNG trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A value of `T` from the standard distribution.
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::draw(self) < p
    }

    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from a 64-bit seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64 —
    /// the shim's stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000u32), b.random_range(0..1000u32));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert!((0..20).any(|_| a.random_range(0..1000u32) != c.random_range(0..1000u32)));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(5..17usize);
            assert!((5..17).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is a no-op with prob 1/50!");
    }
}
