//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the `proptest!` runner macro, `prop_assert!`/`prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, `proptest::collection::vec`, integer-range
//! and regex-literal strategies, tuple strategies and `prop_map`.
//!
//! The build environment has no crates.io access; this shim runs each
//! property for a configurable number of deterministic pseudo-random cases
//! (seeded from the test name, so failures reproduce) and panics with the
//! failing message. It does not shrink counterexamples.

#![forbid(unsafe_code)]

use std::fmt;

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64) — self-contained, no dependencies.
// ---------------------------------------------------------------------

/// The runner's random source, handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        (self.next_u64() as u128 % bound as u128) as u64
    }
}

// ---------------------------------------------------------------------
// Errors and config.
// ---------------------------------------------------------------------

/// A failed property case (carried by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trades depth for CI time.
        ProptestConfig { cases: 64 }
    }
}

/// Drives the cases of one property (used by the `proptest!` expansion).
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Seeds the runner deterministically from the property name.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, rng: TestRng::from_seed(seed) }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The shared random source.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

// ---------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------

/// A generator of test values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// Regex-literal strategies: `".{0,24}"`, `"[a-c]{0,8}"`, `"[A-Za-z]{1,12}"`.
///
/// Supported subset: a sequence of atoms, each `.` (arbitrary character) or
/// a character class of singles and ranges, with an optional `{n}` /
/// `{n,m}` repetition. This covers every pattern in the workspace's tests.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// An assortment of "interesting" arbitrary characters for `.`: mostly
/// printable ASCII, with control characters and multi-byte code points
/// mixed in to stress parsers and metrics.
const EXOTIC: &[char] =
    &['\n', '\t', '\u{1}', 'é', 'ß', 'Ω', 'ツ', '漢', '🦀', '\u{200b}', '´', '\''];

fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => EXOTIC[rng.below(EXOTIC.len() as u64) as usize],
        _ => char::from(0x20 + rng.below(0x5F) as u8), // printable ASCII
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut out = String::new();
    while i < chars.len() {
        // Parse one atom.
        enum Atom {
            Any,
            Class(Vec<(char, char)>),
        }
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                i += 1;
                let mut ranges: Vec<(char, char)> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            other => {
                i += 1;
                Atom::Class(vec![(other, other)])
            }
        };
        // Parse an optional repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close =
                chars[i..].iter().position(|&c| c == '}').expect("unterminated repetition") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse::<usize>().expect("bad repetition bound"),
                    hi.parse::<usize>().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.parse::<usize>().expect("bad repetition bound");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            match &atom {
                Atom::Any => out.push(arbitrary_char(rng)),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    let span = (hi as u32) - (lo as u32) + 1;
                    let c = char::from_u32(lo as u32 + rng.below(u64::from(span)) as u32)
                        .expect("class range stays in valid scalar values");
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Union of same-typed strategies (the `prop_oneof!` backing type).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union from boxed arms (at least one).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// An empty union — must gain at least one arm via [`Union::or`]
    /// before generating (the `prop_oneof!` expansion guarantees this).
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one arm.
    #[must_use]
    pub fn or(mut self, arm: impl Strategy<Value = V> + 'static) -> Self {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical arbitrary strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait ArbitraryValue {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        arbitrary_char(rng)
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `vec(element, min..max)`: vectors of `element` draws.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, min: len.start, max: len.end - 1 }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        let _: () = $body;
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            runner.cases(),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)+), l, r);
    }};
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::empty()$(.or($arm))+
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, TestRng, TestRunner};

    fn rng() -> TestRng {
        let mut runner = TestRunner::new(ProptestConfig::default(), "shim-self-test");
        runner.rng().clone()
    }

    #[test]
    fn pattern_strategies_respect_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = Strategy::generate(&".{0,24}", &mut rng);
            assert!(t.chars().count() <= 24);
            let u = Strategy::generate(&"[A-Za-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&u.chars().count()));
            assert!(u.chars().all(|c| c.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn ranges_tuples_vec_and_map() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = Strategy::generate(&(0usize..4, 0usize..4, 0u16..3), &mut rng);
            assert!(v.0 < 4 && v.1 < 4 && v.2 < 3);
            let xs = Strategy::generate(&collection::vec(0u8..3, 8..40), &mut rng);
            assert!((8..40).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 3));
            let mapped = Strategy::generate(&(0u64..10).prop_map(|x| x * 2), &mut rng);
            assert!(mapped < 20 && mapped % 2 == 0);
        }
    }

    #[test]
    fn oneof_and_just() {
        let mut rng = rng();
        let strat = prop_oneof![Just("a".to_owned()), Just("b".to_owned())];
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == "a" || v == "b");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro path itself: generated values respect their strategies.
        #[test]
        fn macro_roundtrip(x in 3u64..9, s in "[a-b]{2,4}") {
            prop_assert!((3..9).contains(&x));
            prop_assert_eq!(s.chars().filter(|c| *c == 'a' || *c == 'b').count(), s.chars().count());
        }
    }

    #[test]
    fn prop_assert_produces_errors() {
        let check = |x: u64| -> Result<(), crate::TestCaseError> {
            prop_assert!(x > 100, "x was {}", x);
            Ok(())
        };
        assert!(check(200).is_ok());
        let err = check(5).unwrap_err();
        assert!(err.to_string().contains("x was 5"));
    }
}
