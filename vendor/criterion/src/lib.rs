//! Offline stand-in for the subset of the `criterion` API the bench
//! harness uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no crates.io access; this shim keeps
//! `cargo bench` compiling and producing useful wall-clock numbers
//! (median over `sample_size` iterations, printed per benchmark) without
//! the statistical machinery of the real crate.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Just the parameter (used inside a named group).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `f` `samples` times and records the median iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, last: None };
    f(&mut b);
    match b.last {
        Some(t) => println!("bench {name:<48} median {t:?} over {samples} iters"),
        None => println!("bench {name:<48} (no measurement recorded)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_one(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark without input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default per-benchmark iteration count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// Declares a group of benchmark functions (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sums");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("sums/free", |b| b.iter(|| (0..50u64).product::<u64>()));
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
