//! Static value pools for the synthetic data generator.
//!
//! The paper populated its experimental instances with "real-life data
//! scraped from the Web" — US addresses plus books/DVDs from online stores —
//! and then injected duplicates and noise synthetically (§6.2). Scraped
//! seeds are not redistributable, so this module carries curated pools with
//! the same *shape*: realistic name/street/city token distributions, valid
//! state/zip/county combinations, and an item catalog with titles, a
//! category and a price. The duplicate/noise protocol operating on top of
//! these pools is what actually drives matcher behaviour; see
//! [`crate::dirty`] and DESIGN.md §4.

/// Common US first names (census-style frequency head).
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda", "William",
    "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas", "Sarah",
    "Charles", "Karen", "Christopher", "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony",
    "Margaret", "Mark", "Sandra", "Donald", "Ashley", "Steven", "Kimberly", "Paul", "Emily",
    "Andrew", "Donna", "Joshua", "Michelle", "Kenneth", "Dorothy", "Kevin", "Carol", "Brian",
    "Amanda", "George", "Melissa", "Edward", "Deborah", "Ronald", "Stephanie", "Timothy",
    "Rebecca", "Jason", "Sharon", "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen",
    "Gary", "Amy", "Nicholas", "Shirley", "Eric", "Angela", "Jonathan", "Helen", "Stephen",
    "Anna", "Larry", "Brenda", "Justin", "Pamela", "Scott", "Nicole", "Brandon", "Emma",
    "Benjamin", "Samantha", "Samuel", "Katherine", "Gregory", "Christine", "Frank", "Debra",
    "Alexander", "Rachel", "Raymond", "Catherine", "Patrick", "Carolyn", "Jack", "Janet",
    "Dennis", "Ruth", "Jerry", "Maria", "Tyler", "Heather", "Aaron", "Diane", "Jose", "Virginia",
    "Adam", "Julie", "Henry", "Joyce", "Nathan", "Victoria", "Douglas", "Olivia", "Zachary",
    "Kelly", "Peter", "Christina", "Kyle", "Lauren", "Walter", "Joan", "Ethan", "Evelyn",
    "Jeremy", "Judith", "Harold", "Megan", "Keith", "Cheryl", "Christian", "Andrea", "Roger",
    "Hannah", "Noah", "Martha", "Gerald", "Jacqueline", "Carl", "Frances", "Terry", "Gloria",
    "Sean", "Ann", "Austin", "Teresa", "Arthur", "Kathryn", "Lawrence", "Sara", "Jesse",
    "Janice", "Dylan", "Jean", "Bryan", "Alice", "Joe", "Madison", "Jordan", "Doris", "Billy",
    "Abigail", "Bruce", "Julia", "Albert", "Judy", "Willie", "Grace", "Gabriel", "Denise",
    "Marx", "Wenfei", "Xibei", "Shuai",
];

/// Common US last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Rodriguez",
    "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson", "Thomas", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez",
    "Clark", "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King", "Wright",
    "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green", "Adams", "Nelson", "Baker", "Hall",
    "Rivera", "Campbell", "Mitchell", "Carter", "Roberts", "Gomez", "Phillips", "Evans",
    "Turner", "Diaz", "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson",
    "Bailey", "Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson", "Watson",
    "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross", "Foster",
    "Jimenez", "Powell", "Jenkins", "Perry", "Russell", "Sullivan", "Bell", "Coleman", "Butler",
    "Henderson", "Barnes", "Gonzales", "Fisher", "Vasquez", "Simmons", "Romero", "Jordan",
    "Patterson", "Alexander", "Hamilton", "Graham", "Reynolds", "Griffin", "Wallace", "Moreno",
    "West", "Cole", "Hayes", "Bryant", "Herrera", "Gibson", "Ellis", "Tran", "Medina", "Aguilar",
    "Stevens", "Murray", "Ford", "Castro", "Marshall", "Owens", "Harrison", "Fernandez",
    "Mcdonald", "Woods", "Washington", "Kennedy", "Wells", "Vargas", "Henry", "Chen", "Freeman",
    "Webb", "Tucker", "Guzman", "Burns", "Crawford", "Olson", "Simpson", "Porter", "Hunter",
    "Gordon", "Mendez", "Silva", "Shaw", "Snyder", "Mason", "Dixon", "Munoz", "Hunt", "Hicks",
    "Holmes", "Palmer", "Clifford", "Fan", "Stolfo",
];

/// Street base names (combined with a number and a suffix).
pub const STREET_NAMES: &[&str] = &[
    "Oak", "Elm", "Maple", "Cedar", "Pine", "Walnut", "Chestnut", "Spruce", "Birch", "Willow",
    "Main", "Church", "High", "Park", "Washington", "Lake", "Hill", "Mill", "River", "Spring",
    "Ridge", "Sunset", "Meadow", "Forest", "Garden", "Valley", "Franklin", "Jefferson",
    "Lincoln", "Madison", "Monroe", "Adams", "Jackson", "Harrison", "Cherry", "Dogwood",
    "Magnolia", "Sycamore", "Poplar", "Hickory", "Laurel", "Juniper", "Aspen", "Cypress",
    "Highland", "Fairview", "Greenwood", "Lakeview", "Riverside", "Brookside", "Hillcrest",
    "Woodland", "Prospect", "Pleasant", "Central", "Union", "Liberty", "Market", "Bridge",
    "Water", "Front", "Court", "School", "Academy", "College", "Railroad", "Canal", "Dover",
    "Essex", "Warren", "Summit", "Grove", "Orchard", "Vine", "Rose", "Tulip", "Violet",
];

/// Street suffixes, full form first (the abbreviation noise uses
/// [`street_abbrev`]).
pub const STREET_SUFFIXES: &[&str] =
    &["Street", "Avenue", "Road", "Drive", "Lane", "Court", "Boulevard", "Place", "Terrace", "Way"];

/// The conventional USPS abbreviation of a street suffix.
pub fn street_abbrev(suffix: &str) -> &str {
    match suffix {
        "Street" => "St",
        "Avenue" => "Ave",
        "Road" => "Rd",
        "Drive" => "Dr",
        "Lane" => "Ln",
        "Court" => "Ct",
        "Boulevard" => "Blvd",
        "Place" => "Pl",
        "Terrace" => "Ter",
        "Way" => "Wy",
        other => other,
    }
}

/// A locality: city, county, two-letter state, and a 3-digit zip prefix the
/// generator extends to 5 digits.
pub struct Locality {
    /// City name.
    pub city: &'static str,
    /// County name (without the word "County").
    pub county: &'static str,
    /// Two-letter state code.
    pub state: &'static str,
    /// Leading three digits of the zip code range.
    pub zip3: &'static str,
}

/// US localities with consistent city/county/state/zip combinations.
pub const LOCALITIES: &[Locality] = &[
    Locality { city: "Murray Hill", county: "Union", state: "NJ", zip3: "079" },
    Locality { city: "New Providence", county: "Union", state: "NJ", zip3: "079" },
    Locality { city: "Summit", county: "Union", state: "NJ", zip3: "079" },
    Locality { city: "Newark", county: "Essex", state: "NJ", zip3: "071" },
    Locality { city: "Jersey City", county: "Hudson", state: "NJ", zip3: "073" },
    Locality { city: "Princeton", county: "Mercer", state: "NJ", zip3: "085" },
    Locality { city: "Edison", county: "Middlesex", state: "NJ", zip3: "088" },
    Locality { city: "New York", county: "New York", state: "NY", zip3: "100" },
    Locality { city: "Brooklyn", county: "Kings", state: "NY", zip3: "112" },
    Locality { city: "Albany", county: "Albany", state: "NY", zip3: "122" },
    Locality { city: "Buffalo", county: "Erie", state: "NY", zip3: "142" },
    Locality { city: "Rochester", county: "Monroe", state: "NY", zip3: "146" },
    Locality { city: "Philadelphia", county: "Philadelphia", state: "PA", zip3: "191" },
    Locality { city: "Pittsburgh", county: "Allegheny", state: "PA", zip3: "152" },
    Locality { city: "Harrisburg", county: "Dauphin", state: "PA", zip3: "171" },
    Locality { city: "Boston", county: "Suffolk", state: "MA", zip3: "021" },
    Locality { city: "Cambridge", county: "Middlesex", state: "MA", zip3: "021" },
    Locality { city: "Worcester", county: "Worcester", state: "MA", zip3: "016" },
    Locality { city: "Hartford", county: "Hartford", state: "CT", zip3: "061" },
    Locality { city: "New Haven", county: "New Haven", state: "CT", zip3: "065" },
    Locality { city: "Baltimore", county: "Baltimore", state: "MD", zip3: "212" },
    Locality { city: "Annapolis", county: "Anne Arundel", state: "MD", zip3: "214" },
    Locality { city: "Richmond", county: "Henrico", state: "VA", zip3: "232" },
    Locality { city: "Arlington", county: "Arlington", state: "VA", zip3: "222" },
    Locality { city: "Atlanta", county: "Fulton", state: "GA", zip3: "303" },
    Locality { city: "Savannah", county: "Chatham", state: "GA", zip3: "314" },
    Locality { city: "Miami", county: "Miami-Dade", state: "FL", zip3: "331" },
    Locality { city: "Orlando", county: "Orange", state: "FL", zip3: "328" },
    Locality { city: "Tampa", county: "Hillsborough", state: "FL", zip3: "336" },
    Locality { city: "Chicago", county: "Cook", state: "IL", zip3: "606" },
    Locality { city: "Springfield", county: "Sangamon", state: "IL", zip3: "627" },
    Locality { city: "Detroit", county: "Wayne", state: "MI", zip3: "482" },
    Locality { city: "Ann Arbor", county: "Washtenaw", state: "MI", zip3: "481" },
    Locality { city: "Columbus", county: "Franklin", state: "OH", zip3: "432" },
    Locality { city: "Cleveland", county: "Cuyahoga", state: "OH", zip3: "441" },
    Locality { city: "Cincinnati", county: "Hamilton", state: "OH", zip3: "452" },
    Locality { city: "Indianapolis", county: "Marion", state: "IN", zip3: "462" },
    Locality { city: "Nashville", county: "Davidson", state: "TN", zip3: "372" },
    Locality { city: "Memphis", county: "Shelby", state: "TN", zip3: "381" },
    Locality { city: "St Louis", county: "St Louis", state: "MO", zip3: "631" },
    Locality { city: "Kansas City", county: "Jackson", state: "MO", zip3: "641" },
    Locality { city: "Minneapolis", county: "Hennepin", state: "MN", zip3: "554" },
    Locality { city: "Madison", county: "Dane", state: "WI", zip3: "537" },
    Locality { city: "Milwaukee", county: "Milwaukee", state: "WI", zip3: "532" },
    Locality { city: "Denver", county: "Denver", state: "CO", zip3: "802" },
    Locality { city: "Boulder", county: "Boulder", state: "CO", zip3: "803" },
    Locality { city: "Phoenix", county: "Maricopa", state: "AZ", zip3: "850" },
    Locality { city: "Tucson", county: "Pima", state: "AZ", zip3: "857" },
    Locality { city: "Seattle", county: "King", state: "WA", zip3: "981" },
    Locality { city: "Spokane", county: "Spokane", state: "WA", zip3: "992" },
    Locality { city: "Portland", county: "Multnomah", state: "OR", zip3: "972" },
    Locality { city: "San Francisco", county: "San Francisco", state: "CA", zip3: "941" },
    Locality { city: "Los Angeles", county: "Los Angeles", state: "CA", zip3: "900" },
    Locality { city: "San Diego", county: "San Diego", state: "CA", zip3: "921" },
    Locality { city: "Sacramento", county: "Sacramento", state: "CA", zip3: "958" },
    Locality { city: "San Jose", county: "Santa Clara", state: "CA", zip3: "951" },
    Locality { city: "Austin", county: "Travis", state: "TX", zip3: "787" },
    Locality { city: "Houston", county: "Harris", state: "TX", zip3: "770" },
    Locality { city: "Dallas", county: "Dallas", state: "TX", zip3: "752" },
    Locality { city: "San Antonio", county: "Bexar", state: "TX", zip3: "782" },
];

/// E-mail providers.
pub const EMAIL_DOMAINS: &[&str] = &[
    "gm.com", "hm.com", "aol.com", "yahoo.com", "gmail.com", "hotmail.com", "mail.com",
    "inbox.com", "earthlink.net", "verizon.net", "comcast.net", "att.net",
];

/// A sale item (book / DVD / electronics, as in the paper's scraped store
/// data).
pub struct Item {
    /// Item title.
    pub title: &'static str,
    /// Category label.
    pub category: &'static str,
    /// List price in dollars.
    pub price: f64,
}

/// The item catalog.
pub const ITEMS: &[Item] = &[
    Item { title: "The Art of Computer Programming Vol 1", category: "book", price: 79.99 },
    Item { title: "Foundations of Databases", category: "book", price: 89.50 },
    Item { title: "Introduction to Algorithms", category: "book", price: 94.99 },
    Item { title: "The Theory of Relational Databases", category: "book", price: 54.25 },
    Item { title: "Data Quality Concepts and Techniques", category: "book", price: 65.00 },
    Item { title: "Transaction Processing", category: "book", price: 99.99 },
    Item { title: "Readings in Database Systems", category: "book", price: 45.00 },
    Item { title: "Principles of Distributed Database Systems", category: "book", price: 84.75 },
    Item { title: "The Pragmatic Programmer", category: "book", price: 39.95 },
    Item { title: "Structure and Interpretation of Computer Programs", category: "book", price: 49.99 },
    Item { title: "A Brief History of Time", category: "book", price: 18.99 },
    Item { title: "The Great Gatsby", category: "book", price: 12.99 },
    Item { title: "To Kill a Mockingbird", category: "book", price: 14.99 },
    Item { title: "Pride and Prejudice", category: "book", price: 9.99 },
    Item { title: "Moby Dick", category: "book", price: 11.50 },
    Item { title: "War and Peace", category: "book", price: 19.99 },
    Item { title: "Crime and Punishment", category: "book", price: 13.25 },
    Item { title: "The Catcher in the Rye", category: "book", price: 10.99 },
    Item { title: "Brave New World", category: "book", price: 12.50 },
    Item { title: "Nineteen Eighty-Four", category: "book", price: 13.99 },
    Item { title: "Casablanca", category: "dvd", price: 14.99 },
    Item { title: "The Godfather", category: "dvd", price: 19.99 },
    Item { title: "Citizen Kane", category: "dvd", price: 16.50 },
    Item { title: "Lawrence of Arabia", category: "dvd", price: 17.99 },
    Item { title: "2001 A Space Odyssey", category: "dvd", price: 15.99 },
    Item { title: "The Shawshank Redemption", category: "dvd", price: 12.99 },
    Item { title: "Pulp Fiction", category: "dvd", price: 13.99 },
    Item { title: "The Matrix", category: "dvd", price: 11.99 },
    Item { title: "Blade Runner Directors Cut", category: "dvd", price: 18.25 },
    Item { title: "Seven Samurai", category: "dvd", price: 21.99 },
    Item { title: "Singin in the Rain", category: "dvd", price: 14.50 },
    Item { title: "Rear Window", category: "dvd", price: 13.75 },
    Item { title: "Vertigo", category: "dvd", price: 13.75 },
    Item { title: "North by Northwest", category: "dvd", price: 12.75 },
    Item { title: "Some Like It Hot", category: "dvd", price: 11.25 },
    Item { title: "iPod", category: "electronics", price: 169.99 },
    Item { title: "PSP", category: "electronics", price: 269.99 },
    Item { title: "CD Walkman", category: "electronics", price: 49.99 },
    Item { title: "Portable DVD Player", category: "electronics", price: 129.99 },
    Item { title: "Digital Camera 8MP", category: "electronics", price: 249.99 },
    Item { title: "MP3 Player 4GB", category: "electronics", price: 89.99 },
    Item { title: "Noise Cancelling Headphones", category: "electronics", price: 199.99 },
    Item { title: "Bluetooth Speaker", category: "electronics", price: 59.99 },
    Item { title: "USB Flash Drive 16GB", category: "electronics", price: 24.99 },
    Item { title: "Wireless Mouse", category: "electronics", price: 19.99 },
];

/// Store names for billing records.
pub const STORES: &[&str] = &[
    "Main St Books", "MediaMart", "ElectroHub", "Corner Records", "PageTurner", "DiscDepot",
    "GadgetWorld", "ReadMore", "CineShelf", "TechBay",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_are_nonempty_and_unique() {
        for (label, pool) in [
            ("first names", FIRST_NAMES),
            ("last names", LAST_NAMES),
            ("streets", STREET_NAMES),
            ("suffixes", STREET_SUFFIXES),
            ("domains", EMAIL_DOMAINS),
            ("stores", STORES),
        ] {
            assert!(pool.len() >= 10, "{label} pool too small");
            let unique: HashSet<_> = pool.iter().collect();
            assert_eq!(unique.len(), pool.len(), "{label} pool has duplicates");
        }
    }

    #[test]
    fn localities_are_consistent() {
        assert!(LOCALITIES.len() >= 40);
        for loc in LOCALITIES {
            assert_eq!(loc.state.len(), 2, "{}", loc.city);
            assert_eq!(loc.zip3.len(), 3, "{}", loc.city);
            assert!(loc.zip3.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn items_have_positive_prices() {
        assert!(ITEMS.len() >= 40);
        for item in ITEMS {
            assert!(item.price > 0.0, "{}", item.title);
            assert!(["book", "dvd", "electronics"].contains(&item.category));
        }
    }

    #[test]
    fn abbreviations_differ_from_full_forms() {
        for suffix in STREET_SUFFIXES {
            let abbrev = street_abbrev(suffix);
            assert_ne!(abbrev, *suffix);
            assert!(abbrev.len() < suffix.len());
        }
        assert_eq!(street_abbrev("Plaza"), "Plaza", "unknown suffixes pass through");
    }
}
