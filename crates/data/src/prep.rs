//! Per-relation preprocessing for the compiled similarity hot path.
//!
//! Thresholded edit-distance atoms evaluate `O(candidates)` times per
//! run, but their per-string work — collecting `chars()`, counting the
//! character bag, extracting q-grams — only depends on the *tuple
//! attribute*, of which there are `O(tuples)`. A [`RelationPrep`]
//! extracts one [`AttrSig`] (character buffer plus
//! [`StringSig`] filter
//! signature) per needed tuple attribute, once, optionally in parallel
//! over a [`WorkPool`]; pair evaluation then runs the filter pipeline and
//! the banded DP on cached buffers.
//!
//! Which attributes need signatures is decided by the operators appearing
//! in the match rules (see [`SigNeeds`]): equality and opaque operators
//! cost nothing here.

use crate::relation::{Relation, Tuple};
use crate::value::Value;
use matchrules_core::schema::AttrId;
use matchrules_runtime::WorkPool;
use matchrules_simdist::filters::StringSig;

/// Minimum tuples per chunk when signatures are extracted over a pool:
/// one extraction is a few hundred nanoseconds, so chunks this size
/// amortize chunk claiming.
const PREP_MIN_CHUNK: usize = 256;

/// Which attributes of a schema need filter signatures, mapped to dense
/// signature slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigNeeds {
    slots: Vec<Option<u32>>,
    count: usize,
}

impl SigNeeds {
    /// No needs over a schema of `arity` attributes.
    pub fn none(arity: usize) -> Self {
        SigNeeds { slots: vec![None; arity], count: 0 }
    }

    /// Marks `attr` as needing a signature (idempotent).
    pub fn mark(&mut self, attr: AttrId) {
        if self.slots[attr].is_none() {
            self.slots[attr] = Some(self.count as u32);
            self.count += 1;
        }
    }

    /// Folds another need set in (same arity).
    pub fn union(&mut self, other: &SigNeeds) {
        for (attr, slot) in other.slots.iter().enumerate() {
            if slot.is_some() {
                self.mark(attr);
            }
        }
    }

    /// Number of attributes needing signatures.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether nothing needs a signature.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn slot(&self, attr: AttrId) -> Option<usize> {
        self.slots.get(attr).copied().flatten().map(|s| s as usize)
    }
}

/// The cached per-tuple-attribute state: the collected character buffer
/// plus the filter signature, extracted once instead of once per pair.
#[derive(Debug, Clone)]
pub struct AttrSig {
    null: bool,
    chars: Box<[char]>,
    sig: StringSig,
}

impl AttrSig {
    /// Extracts the signature of one value.
    pub fn of_value(value: &Value) -> Self {
        match value.as_str() {
            None => AttrSig { null: true, chars: Box::new([]), sig: StringSig::of_chars(&[]) },
            Some(s) => {
                let chars: Box<[char]> = s.chars().collect();
                let sig = StringSig::of_chars(&chars);
                AttrSig { null: false, chars, sig }
            }
        }
    }

    /// Whether the underlying value was `Null`.
    pub fn is_null(&self) -> bool {
        self.null
    }

    /// The collected characters (empty for `Null`).
    pub fn chars(&self) -> &[char] {
        &self.chars
    }

    /// The filter signature.
    pub fn sig(&self) -> &StringSig {
        &self.sig
    }
}

/// Signatures for every needed attribute of every tuple of one relation.
#[derive(Debug, Clone)]
pub struct RelationPrep {
    needs: SigNeeds,
    rows: Vec<Box<[AttrSig]>>,
}

impl RelationPrep {
    /// Serial extraction.
    pub fn build(relation: &Relation, needs: &SigNeeds) -> Self {
        Self::build_in(&WorkPool::serial(), relation, needs)
    }

    /// Extraction chunked over `pool` (tuple order preserved; the result
    /// is identical to the serial build).
    pub fn build_in(pool: &WorkPool, relation: &Relation, needs: &SigNeeds) -> Self {
        if needs.is_empty() {
            return RelationPrep { needs: needs.clone(), rows: Vec::new() };
        }
        let tuples = relation.tuples();
        let chunks = pool.par_ranges(tuples.len(), PREP_MIN_CHUNK, |_, range| {
            tuples[range].iter().map(|t| Self::row_of(t, needs)).collect::<Vec<_>>()
        });
        let mut rows = Vec::with_capacity(tuples.len());
        for chunk in chunks {
            rows.extend(chunk);
        }
        RelationPrep { needs: needs.clone(), rows }
    }

    /// A prep with no rows yet — the starting point of a probe *batch*,
    /// where rows are pushed one by one without building a [`Relation`].
    pub fn empty(needs: &SigNeeds) -> Self {
        RelationPrep { needs: needs.clone(), rows: Vec::new() }
    }

    /// A one-tuple prep — the probe side of a point query against a
    /// match index, where building a whole [`Relation`] first would be
    /// wasted work.
    pub fn single(tuple: &Tuple, needs: &SigNeeds) -> Self {
        let mut prep = Self::empty(needs);
        prep.push_row(tuple);
        prep
    }

    /// Appends the signatures of one more tuple, which becomes position
    /// `self.len()` — the incremental-maintenance counterpart of the bulk
    /// build, used when a tuple is inserted into an index over a relation
    /// that was prepared earlier. No-op when nothing needs signatures.
    pub fn push_row(&mut self, tuple: &Tuple) {
        if self.needs.is_empty() {
            return;
        }
        self.rows.push(Self::row_of(tuple, &self.needs));
    }

    /// The need set this prep was built for.
    pub fn needs(&self) -> &SigNeeds {
        &self.needs
    }

    fn row_of(tuple: &Tuple, needs: &SigNeeds) -> Box<[AttrSig]> {
        // Slots are assigned in mark order, not attribute order — place
        // each signature by its slot, or lookups would read the wrong
        // attribute's signature.
        let mut row: Vec<Option<AttrSig>> = vec![None; needs.len()];
        for (attr, slot) in needs.slots.iter().enumerate() {
            if let Some(slot) = slot {
                row[*slot as usize] = Some(AttrSig::of_value(tuple.get(attr)));
            }
        }
        row.into_iter().map(|sig| sig.expect("every slot is filled")).collect()
    }

    /// The signature of attribute `attr` of the tuple at `pos`, when that
    /// attribute was marked in the build's [`SigNeeds`].
    pub fn sig(&self, pos: usize, attr: AttrId) -> Option<&AttrSig> {
        let slot = self.needs.slot(attr)?;
        Some(&self.rows.get(pos)?[slot])
    }

    /// Number of prepared tuples (0 when nothing needed signatures).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no signatures were prepared.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::schema::Schema;
    use std::sync::Arc;

    fn relation() -> Relation {
        let schema = Arc::new(Schema::text("R", &["a", "b", "c"]).unwrap());
        let mut rel = Relation::new(schema);
        rel.push_strs(1, &["Mark", "Clifford", "07974"]);
        rel.push_strs(2, &["", "Brady", "07974"]);
        rel
    }

    #[test]
    fn needs_map_to_dense_slots() {
        let mut needs = SigNeeds::none(3);
        assert!(needs.is_empty());
        needs.mark(2);
        needs.mark(0);
        needs.mark(2); // idempotent
        assert_eq!(needs.len(), 2);
        assert_eq!(needs.slot(2), Some(0));
        assert_eq!(needs.slot(0), Some(1));
        assert_eq!(needs.slot(1), None);
        let mut other = SigNeeds::none(3);
        other.mark(1);
        needs.union(&other);
        assert_eq!(needs.len(), 3);
    }

    #[test]
    fn prep_extracts_needed_columns_only() {
        let rel = relation();
        let mut needs = SigNeeds::none(3);
        needs.mark(1);
        let prep = RelationPrep::build(&rel, &needs);
        assert_eq!(prep.len(), 2);
        assert!(!prep.is_empty());
        let sig = prep.sig(0, 1).unwrap();
        assert!(!sig.is_null());
        assert_eq!(sig.chars().iter().collect::<String>(), "Clifford");
        assert_eq!(sig.sig().char_len(), 8);
        assert!(prep.sig(0, 0).is_none(), "unneeded attribute has no signature");
        assert!(prep.sig(7, 1).is_none(), "out of range");
    }

    #[test]
    fn out_of_order_marking_keeps_signatures_aligned() {
        // Regression: slots are assigned in mark order; the row must be
        // laid out by slot, not by attribute index.
        let rel = relation();
        let mut needs = SigNeeds::none(3);
        needs.mark(2); // slot 0
        needs.mark(0); // slot 1
        let prep = RelationPrep::build(&rel, &needs);
        let a0: String = prep.sig(0, 0).unwrap().chars().iter().collect();
        let a2: String = prep.sig(0, 2).unwrap().chars().iter().collect();
        assert_eq!(a0, "Mark");
        assert_eq!(a2, "07974");
    }

    #[test]
    fn null_values_are_marked() {
        let rel = relation();
        let mut needs = SigNeeds::none(3);
        needs.mark(0);
        let prep = RelationPrep::build(&rel, &needs);
        assert!(prep.sig(1, 0).unwrap().is_null());
        assert!(prep.sig(1, 0).unwrap().chars().is_empty());
    }

    #[test]
    fn parallel_build_matches_serial() {
        let schema = Arc::new(Schema::text("R", &["x"]).unwrap());
        let mut rel = Relation::new(schema);
        for i in 0..700u64 {
            rel.push_strs(i, &[&format!("value-{i}")]);
        }
        let mut needs = SigNeeds::none(1);
        needs.mark(0);
        let serial = RelationPrep::build(&rel, &needs);
        let parallel = RelationPrep::build_in(&WorkPool::with_threads(4), &rel, &needs);
        assert_eq!(serial.len(), parallel.len());
        for pos in 0..rel.len() {
            assert_eq!(serial.sig(pos, 0).unwrap().chars(), parallel.sig(pos, 0).unwrap().chars());
        }
    }

    #[test]
    fn push_row_extends_a_built_prep() {
        let rel = relation();
        let mut needs = SigNeeds::none(3);
        needs.mark(1);
        let mut prep = RelationPrep::build(&rel, &needs);
        assert_eq!(prep.needs(), &needs);
        let extra = Tuple::new(3, vec![Value::Null, Value::str("Bradey"), Value::str("07975")]);
        prep.push_row(&extra);
        assert_eq!(prep.len(), 3);
        let sig: String = prep.sig(2, 1).unwrap().chars().iter().collect();
        assert_eq!(sig, "Bradey");
        // Pushing onto an empty-needs prep stays a no-op.
        let mut empty = RelationPrep::build(&rel, &SigNeeds::none(3));
        empty.push_row(&extra);
        assert!(empty.is_empty());
    }

    #[test]
    fn single_preps_one_probe_tuple() {
        let mut needs = SigNeeds::none(2);
        needs.mark(0);
        let probe = Tuple::new(7, vec![Value::str("Mark"), Value::Null]);
        let prep = RelationPrep::single(&probe, &needs);
        assert_eq!(prep.len(), 1);
        assert_eq!(prep.sig(0, 0).unwrap().sig().char_len(), 4);
        assert!(prep.sig(0, 1).is_none());
    }

    #[test]
    fn empty_needs_prepare_nothing() {
        let prep = RelationPrep::build(&relation(), &SigNeeds::none(3));
        assert!(prep.is_empty());
        assert_eq!(prep.len(), 0);
        assert!(prep.sig(0, 0).is_none());
    }
}
