//! Binding symbolic operators to executable predicates, and evaluating MD
//! atoms on tuples.
//!
//! The reasoning core treats operators as symbols; at matching/enforcement
//! time each symbol must resolve to a [`SimilarityOp`] implementation. A
//! [`RuntimeOps`] performs that resolution once (by operator *name*) and
//! caches it per [`OperatorId`], so atom evaluation in hot loops is an array
//! index plus the metric call.

use crate::relation::Tuple;
use crate::value::Value;
use matchrules_core::dependency::SimilarityAtom;
use matchrules_core::error::{CoreError, Result};
use matchrules_core::operators::{OperatorId, OperatorTable};
use matchrules_simdist::ops::{AliasOp, DamerauOp, OpRegistry, SimilarityOp};
use std::sync::Arc;

/// The paper's runtime registry: the standard metric set plus the alias
/// `≈d` → Damerau–Levenshtein at θ = 0.75 (the intro example's name
/// similarity: "Mark" ≈d "Marx", "Clifford" ≈d "Clivord").
pub fn paper_registry() -> OpRegistry {
    let mut reg = OpRegistry::standard();
    reg.register(Arc::new(AliasOp::new("≈d", Arc::new(DamerauOp::with_threshold(0.75)))));
    reg
}

/// Resolved operator bindings for one `OperatorTable`.
pub struct RuntimeOps {
    resolved: Vec<Arc<dyn SimilarityOp>>,
}

impl RuntimeOps {
    /// Resolves every operator of `table` against `registry` by name.
    /// Fails with [`CoreError::UnknownOperator`] if a symbol has no
    /// executable binding.
    pub fn resolve(table: &OperatorTable, registry: &OpRegistry) -> Result<Self> {
        let mut resolved = Vec::with_capacity(table.len());
        for id in table.ids() {
            let name = table.name(id);
            let op = registry
                .get(name)
                .ok_or_else(|| CoreError::UnknownOperator { name: name.to_owned() })?;
            resolved.push(op.clone());
        }
        Ok(RuntimeOps { resolved })
    }

    /// Evaluates `a ≈op b` on values. `Null` matches nothing.
    pub fn value_matches(&self, op: OperatorId, a: &Value, b: &Value) -> bool {
        match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => self.resolved[op.0 as usize].matches(x, y),
            _ => false,
        }
    }

    /// Graded similarity of two values in `\[0, 1\]`; `Null` scores 0.
    pub fn value_similarity(&self, op: OperatorId, a: &Value, b: &Value) -> f64 {
        match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => self.resolved[op.0 as usize].similarity(x, y),
            _ => 0.0,
        }
    }

    /// Evaluates one LHS atom on a tuple pair.
    pub fn atom_matches(&self, atom: &SimilarityAtom, t1: &Tuple, t2: &Tuple) -> bool {
        self.value_matches(atom.op, t1.get(atom.left), t2.get(atom.right))
    }

    /// Evaluates a full LHS (conjunction) on a tuple pair.
    pub fn lhs_matches(&self, lhs: &[SimilarityAtom], t1: &Tuple, t2: &Tuple) -> bool {
        lhs.iter().all(|atom| self.atom_matches(atom, t1, t2))
    }

    /// Number of resolved operators.
    pub fn len(&self) -> usize {
        self.resolved.len()
    }

    /// Never empty: `=` is always present.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::operators::OperatorTable;

    fn runtime() -> (OperatorTable, RuntimeOps) {
        let mut table = OperatorTable::new();
        table.intern("≈d");
        let ops = RuntimeOps::resolve(&table, &paper_registry()).unwrap();
        (table, ops)
    }

    #[test]
    fn equality_and_dl_resolve() {
        let (table, ops) = runtime();
        assert_eq!(ops.len(), table.len());
        assert!(!ops.is_empty());
        let dl = table.get("≈d").unwrap();
        assert!(ops.value_matches(OperatorId::EQ, &Value::str("x"), &Value::str("x")));
        assert!(!ops.value_matches(OperatorId::EQ, &Value::str("x"), &Value::str("y")));
        assert!(ops.value_matches(dl, &Value::str("Mark"), &Value::str("Marx")));
        assert!(ops.value_matches(dl, &Value::str("Clifford"), &Value::str("Clivord")));
        assert!(!ops.value_matches(dl, &Value::str("Mark"), &Value::str("David")));
    }

    #[test]
    fn null_matches_nothing() {
        let (_table, ops) = runtime();
        assert!(!ops.value_matches(OperatorId::EQ, &Value::Null, &Value::Null));
        assert!(!ops.value_matches(OperatorId::EQ, &Value::Null, &Value::str("x")));
        assert_eq!(ops.value_similarity(OperatorId::EQ, &Value::Null, &Value::Null), 0.0);
    }

    #[test]
    fn unknown_operator_fails_resolution() {
        let mut table = OperatorTable::new();
        table.intern("≈custom-unbound");
        assert!(RuntimeOps::resolve(&table, &paper_registry()).is_err());
    }

    #[test]
    fn atom_and_lhs_evaluation() {
        let (table, ops) = runtime();
        let dl = table.get("≈d").unwrap();
        let t1 = Tuple::new(1, vec![Value::str("Mark"), Value::str("Clifford")]);
        let t2 = Tuple::new(2, vec![Value::str("Marx"), Value::str("Clifford")]);
        let a0 = SimilarityAtom::new(0, 0, dl);
        let a1 = SimilarityAtom::eq(1, 1);
        assert!(ops.atom_matches(&a0, &t1, &t2));
        assert!(ops.lhs_matches(&[a0, a1], &t1, &t2));
        let a_bad = SimilarityAtom::eq(0, 0);
        assert!(!ops.lhs_matches(&[a_bad, a1], &t1, &t2));
    }
}
