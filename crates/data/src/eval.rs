//! Binding symbolic operators to executable predicates, and evaluating MD
//! atoms on tuples.
//!
//! The reasoning core treats operators as symbols; at matching/enforcement
//! time each symbol must resolve to a [`SimilarityOp`] implementation. A
//! [`RuntimeOps`] performs that resolution once (by operator *name*) and
//! caches it per [`OperatorId`], so atom evaluation in hot loops is an array
//! index plus the metric call.
//!
//! Resolution also **compiles** each operator's
//! [`KernelSpec`]: equality and the
//! thresholded edit operators evaluate through a plain enum `match`
//! instead of a virtual call, and the edit kernels additionally run on
//! the per-relation caches of [`crate::prep`] — cheap pair filters
//! (length / character bag / positional q-grams) first, then the banded
//! DP on cached character buffers with per-worker scratch rows. The
//! `*_prepped` entry points report which stage decided each pair through
//! [`FilterStats`].

use crate::prep::{AttrSig, RelationPrep};
use crate::relation::Tuple;
use crate::value::Value;
use matchrules_core::dependency::SimilarityAtom;
use matchrules_core::error::{CoreError, Result};
use matchrules_core::operators::{OperatorId, OperatorTable};
use matchrules_simdist::edit::{
    damerau_levenshtein, damerau_levenshtein_within_chars, levenshtein, levenshtein_within_chars,
    theta_bound, EditScratch,
};
use matchrules_simdist::filters::Rejection;
use matchrules_simdist::ops::{
    AliasOp, DamerauOp, IndexStrategy, KernelSpec, OpRegistry, SimilarityOp,
};
use std::cell::RefCell;
use std::sync::Arc;

thread_local! {
    // One set of DP scratch rows per worker thread: the banded kernels
    // are called once per surviving candidate pair, and this is what
    // keeps those calls allocation-free.
    static EDIT_SCRATCH: RefCell<EditScratch> = RefCell::new(EditScratch::new());
}

/// Filter-effectiveness counters for the compiled similarity hot path:
/// how many thresholded edit-distance atom evaluations each filter stage
/// rejected, and how many survived to the banded DP.
///
/// The counters are sums over atom evaluations, so they are deterministic
/// for a fixed candidate order no matter how evaluation is chunked over
/// threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Evaluations decided by the equal-buffers fast path (distance 0,
    /// accepted before any filter).
    pub equal_fast: u64,
    /// Evaluations rejected by the length filter.
    pub length_rejects: u64,
    /// Evaluations rejected by the character-bag filter.
    pub bag_rejects: u64,
    /// Evaluations rejected by the positional q-gram count filter.
    pub qgram_rejects: u64,
    /// Evaluations that survived every filter and ran the banded DP.
    pub dp_runs: u64,
    /// Candidate verifications saved by deduplicating probe candidates
    /// across retrieval keys (a record retrieved by k keys is verified
    /// once, not k times). Counted by `MatchIndex::query`, not by atom
    /// evaluation, so it is **not** part of [`FilterStats::evaluations`].
    pub dedup_saved: u64,
    /// Retrieved slots rejected by per-entry index metadata (length
    /// window, char-bag presence mask, token-count ratio) before ever
    /// becoming candidates. Counted during `MatchIndex` retrieval, not
    /// atom evaluation — not part of [`FilterStats::evaluations`].
    pub retrieval_rejects: u64,
    /// Galloping comparison steps spent intersecting sorted candidate
    /// lists (work accounting for the probe hot path).
    pub gallop_steps: u64,
    /// Linear merge/scan steps spent materializing posting unions.
    pub linear_steps: u64,
    /// Compressed posting blocks decoded during retrieval.
    pub blocks_decoded: u64,
    /// Compressed posting blocks discarded on their skip pointer alone.
    pub blocks_skipped: u64,
}

impl FilterStats {
    /// Adds another counter set (used to fold per-chunk stats).
    pub fn merge(&mut self, other: &FilterStats) {
        self.equal_fast += other.equal_fast;
        self.length_rejects += other.length_rejects;
        self.bag_rejects += other.bag_rejects;
        self.qgram_rejects += other.qgram_rejects;
        self.dp_runs += other.dp_runs;
        self.dedup_saved += other.dedup_saved;
        self.retrieval_rejects += other.retrieval_rejects;
        self.gallop_steps += other.gallop_steps;
        self.linear_steps += other.linear_steps;
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
    }

    /// Total evaluations rejected by some filter.
    pub fn rejected(&self) -> u64 {
        self.length_rejects + self.bag_rejects + self.qgram_rejects
    }

    /// Total thresholded edit-distance evaluations that reached the
    /// filter pipeline. Evaluations decided even earlier — a `Null` on
    /// either side, both strings empty, or a missing signature falling
    /// back to dynamic dispatch — increment no counter.
    pub fn evaluations(&self) -> u64 {
        self.equal_fast + self.rejected() + self.dp_runs
    }
}

/// Which stage of the compiled evaluation pipeline decided one atom —
/// the per-atom counterpart of the aggregate [`FilterStats`] counters,
/// reported by [`RuntimeOps::atom_trace`] for match explanations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomStage {
    /// The equality kernel compared the raw strings.
    Equality,
    /// A `Null` operand decided the atom (null matches nothing).
    Null,
    /// Both strings empty: distance 0 within any bound.
    BothEmpty,
    /// Equal character buffers: distance 0 within any bound.
    EqualFast,
    /// The length filter proved the pair out of bound.
    LengthFilter,
    /// The character-bag filter proved the pair out of bound.
    BagFilter,
    /// The positional q-gram count filter proved the pair out of bound.
    QgramFilter,
    /// The banded edit-distance DP decided the pair.
    BandedDp,
    /// No compiled kernel: the operator's trait object decided.
    Dynamic,
}

impl AtomStage {
    /// A short lowercase name for reports (`"equal-fast"`, `"dp"`, …).
    pub fn name(self) -> &'static str {
        match self {
            AtomStage::Equality => "equality",
            AtomStage::Null => "null",
            AtomStage::BothEmpty => "both-empty",
            AtomStage::EqualFast => "equal-fast",
            AtomStage::LengthFilter => "length-filter",
            AtomStage::BagFilter => "bag-filter",
            AtomStage::QgramFilter => "qgram-filter",
            AtomStage::BandedDp => "dp",
            AtomStage::Dynamic => "dynamic",
        }
    }
}

/// How one LHS atom was decided: the outcome plus the evidence a match
/// explanation reports. Decisions agree exactly with
/// [`RuntimeOps::atom_matches`] / [`RuntimeOps::atom_matches_prepped`];
/// the extra fields only exist on this (cold) path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtomTrace {
    /// Whether the atom held on the pair.
    pub matched: bool,
    /// Which pipeline stage decided it.
    pub stage: AtomStage,
    /// The θ-derived edit bound `⌊(1 − θ)·max(|a|, |b|)⌋` (edit kernels
    /// only).
    pub bound: Option<usize>,
    /// The **exact** edit distance of the pair (edit kernels only; always
    /// computed on this path, even when a filter already rejected).
    pub distance: Option<usize>,
}

/// A graded agreement feature for one LHS atom — the scoring-path
/// counterpart of [`AtomTrace`], reported by [`RuntimeOps::atom_feature`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomFeature {
    /// Whether the atom held (decides exactly like
    /// [`RuntimeOps::atom_matches`]).
    pub matched: bool,
    /// Agreement strength in `[0, 1]`: 0 for mismatches, 1 for exact
    /// agreement, and for edit kernels the θ-margin `1 − d/(bound + 1)`
    /// in between (deeper inside the bound ⇒ stronger).
    pub strength: f64,
}

/// The compiled form of one resolved operator.
#[derive(Debug, Clone, Copy)]
enum Kernel {
    /// `a == b` on the string contents.
    Equality,
    /// Damerau–Levenshtein (OSA) within `theta_bound(theta, max_len)`.
    Damerau { theta: f64 },
    /// Levenshtein within the same bound.
    Levenshtein { theta: f64 },
    /// No compiled form: call the trait object.
    Dyn,
}

impl Kernel {
    fn of(spec: KernelSpec) -> Kernel {
        match spec {
            KernelSpec::Equality => Kernel::Equality,
            KernelSpec::Damerau { theta } => Kernel::Damerau { theta },
            KernelSpec::Levenshtein { theta } => Kernel::Levenshtein { theta },
            KernelSpec::Opaque => Kernel::Dyn,
        }
    }
}

/// The retrieval class of a resolved operator — what an index builder
/// needs to know to pick *anchor* atoms. Derived from each operator's
/// declared [`IndexStrategy`] (the
/// `IndexableAtom` capability every `simdist` op implements), so a new
/// operator becomes index-ready by declaring a strategy, with no changes
/// here or in the index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelClass {
    /// Compiles to plain string equality: exact hash buckets.
    Equality,
    /// Compiles to a thresholded edit-distance kernel (Damerau or plain
    /// Levenshtein — for candidate generation they share the same
    /// `theta_bound` and the same sound filters): q-gram posting lists.
    Edit {
        /// The threshold θ of `dist(a, b) ≤ ⌊(1 − θ)·max(|a|, |b|)⌋`.
        theta: f64,
    },
    /// The operator derives exact-bucketable keys (soundex codes, digit
    /// strings, synonym class ids): matching values share a key, so a
    /// hash bucket per key retrieves a superset of the match set.
    DerivedKey,
    /// The operator decomposes values into element multisets (tokens,
    /// q-grams) with a sound size-ratio prefilter: matching values share
    /// an element and satisfy `|min| ≥ min_ratio·|max|`, so element
    /// posting lists plus the ratio filter retrieve a superset.
    TokenSet {
        /// Lower bound on `|smaller| / |larger|` for matching pairs.
        min_ratio: f64,
    },
    /// The operator admits a character-multiset overlap bound: matching
    /// values share ≥ `⌈alpha·max(len)⌉` characters (with multiplicity),
    /// so sorted-char-prefix buckets retrieve a superset.
    Bounded {
        /// The overlap fraction of the bound.
        alpha: f64,
    },
    /// No retrieval strategy; atoms under this operator force a scan.
    Opaque,
}

impl KernelClass {
    /// Maps an operator's declared retrieval strategy to its index class.
    fn of(strategy: IndexStrategy) -> KernelClass {
        match strategy {
            IndexStrategy::Exact => KernelClass::Equality,
            IndexStrategy::EditGrams { theta } => KernelClass::Edit { theta },
            IndexStrategy::DerivedKeys => KernelClass::DerivedKey,
            IndexStrategy::Elements { min_ratio } => KernelClass::TokenSet { min_ratio },
            IndexStrategy::BagPrefix { alpha } => KernelClass::Bounded { alpha },
            IndexStrategy::Scan => KernelClass::Opaque,
        }
    }

    /// Whether atoms of this class can anchor index retrieval (anything
    /// but a scan fallback).
    pub fn is_indexable(self) -> bool {
        !matches!(self, KernelClass::Opaque)
    }

    /// A short lowercase name for reports (`"equality"`, `"derived-key"`, …).
    pub fn name(self) -> &'static str {
        match self {
            KernelClass::Equality => "equality",
            KernelClass::Edit { .. } => "edit",
            KernelClass::DerivedKey => "derived-key",
            KernelClass::TokenSet { .. } => "token-set",
            KernelClass::Bounded { .. } => "bounded",
            KernelClass::Opaque => "scan",
        }
    }
}

/// The paper's runtime registry: the standard metric set plus the alias
/// `≈d` → Damerau–Levenshtein at θ = 0.75 (the intro example's name
/// similarity: "Mark" ≈d "Marx", "Clifford" ≈d "Clivord").
pub fn paper_registry() -> OpRegistry {
    let mut reg = OpRegistry::standard();
    reg.register(Arc::new(AliasOp::new("≈d", Arc::new(DamerauOp::with_threshold(0.75)))));
    reg
}

/// Resolved operator bindings for one `OperatorTable`.
pub struct RuntimeOps {
    resolved: Vec<Arc<dyn SimilarityOp>>,
    kernels: Vec<Kernel>,
    classes: Vec<KernelClass>,
}

impl RuntimeOps {
    /// Resolves every operator of `table` against `registry` by name and
    /// compiles each binding's kernel.
    /// Fails with [`CoreError::UnknownOperator`] if a symbol has no
    /// executable binding.
    pub fn resolve(table: &OperatorTable, registry: &OpRegistry) -> Result<Self> {
        let mut resolved = Vec::with_capacity(table.len());
        let mut kernels = Vec::with_capacity(table.len());
        let mut classes = Vec::with_capacity(table.len());
        for id in table.ids() {
            let name = table.name(id);
            let op = registry
                .get(name)
                .ok_or_else(|| CoreError::UnknownOperator { name: name.to_owned() })?;
            kernels.push(Kernel::of(op.kernel()));
            classes.push(KernelClass::of(op.index_strategy()));
            resolved.push(op.clone());
        }
        Ok(RuntimeOps { resolved, kernels, classes })
    }

    /// Whether `op` compiles to an edit-distance kernel, i.e. whether
    /// attributes compared under it benefit from a
    /// [`RelationPrep`] signature.
    pub fn needs_signature(&self, op: OperatorId) -> bool {
        matches!(self.kernels[op.0 as usize], Kernel::Damerau { .. } | Kernel::Levenshtein { .. })
    }

    /// The [`KernelClass`] of `op` — how (and whether) an inverted index
    /// can use an atom under this operator as a retrieval anchor. Derived
    /// from the operator's declared `IndexStrategy` at resolve time.
    pub fn kernel_class(&self, op: OperatorId) -> KernelClass {
        self.classes[op.0 as usize]
    }

    /// Appends `op`'s exact-bucketable derived keys for `s` to `out`
    /// (operators classed [`KernelClass::DerivedKey`] only; at least one
    /// key per value by contract).
    pub fn derived_keys_into(&self, op: OperatorId, s: &str, out: &mut Vec<String>) {
        self.resolved[op.0 as usize].derived_keys(s, out);
    }

    /// Appends `op`'s hashed index elements for `s` to `out` (operators
    /// classed [`KernelClass::TokenSet`] only).
    pub fn index_elements_into(&self, op: OperatorId, s: &str, out: &mut Vec<u64>) {
        self.resolved[op.0 as usize].index_elements(s, out);
    }

    /// Evaluates `a ≈op b` on values. `Null` matches nothing.
    pub fn value_matches(&self, op: OperatorId, a: &Value, b: &Value) -> bool {
        match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => self.resolved[op.0 as usize].matches(x, y),
            _ => false,
        }
    }

    /// Graded similarity of two values in `\[0, 1\]`; `Null` scores 0.
    pub fn value_similarity(&self, op: OperatorId, a: &Value, b: &Value) -> f64 {
        match (a.as_str(), b.as_str()) {
            (Some(x), Some(y)) => self.resolved[op.0 as usize].similarity(x, y),
            _ => 0.0,
        }
    }

    /// Evaluates one LHS atom on a tuple pair.
    pub fn atom_matches(&self, atom: &SimilarityAtom, t1: &Tuple, t2: &Tuple) -> bool {
        self.value_matches(atom.op, t1.get(atom.left), t2.get(atom.right))
    }

    /// Evaluates a full LHS (conjunction) on a tuple pair.
    pub fn lhs_matches(&self, lhs: &[SimilarityAtom], t1: &Tuple, t2: &Tuple) -> bool {
        lhs.iter().all(|atom| self.atom_matches(atom, t1, t2))
    }

    /// Evaluates one LHS atom on the tuples at positions `l`/`r` through
    /// the compiled kernel, using the per-relation caches where the
    /// kernel supports them. Decides exactly like
    /// [`RuntimeOps::atom_matches`]; `stats` records which filter stage
    /// (or the DP) decided edit-kernel evaluations.
    #[allow(clippy::too_many_arguments)]
    pub fn atom_matches_prepped(
        &self,
        atom: &SimilarityAtom,
        t1: &Tuple,
        t2: &Tuple,
        p1: &RelationPrep,
        p2: &RelationPrep,
        l: usize,
        r: usize,
        stats: &mut FilterStats,
    ) -> bool {
        match self.kernels[atom.op.0 as usize] {
            Kernel::Equality => match (t1.get(atom.left).as_str(), t2.get(atom.right).as_str()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
            kernel @ (Kernel::Damerau { .. } | Kernel::Levenshtein { .. }) => {
                let (damerau, theta) = match kernel {
                    Kernel::Damerau { theta } => (true, theta),
                    Kernel::Levenshtein { theta } => (false, theta),
                    _ => unreachable!("outer arm admits only edit kernels"),
                };
                let (Some(sa), Some(sb)) = (p1.sig(l, atom.left), p2.sig(r, atom.right)) else {
                    // The caller prepped without this attribute — fall
                    // back to the uncached path rather than mis-decide.
                    return self.atom_matches(atom, t1, t2);
                };
                if sa.is_null() || sb.is_null() {
                    return false;
                }
                let max_len = sa.sig().char_len().max(sb.sig().char_len());
                if max_len == 0 {
                    return true;
                }
                // Windowed candidates frequently agree on the compared
                // attribute; equal buffers mean distance 0 ≤ any bound.
                if sa.chars() == sb.chars() {
                    stats.equal_fast += 1;
                    return true;
                }
                let bound = theta_bound(theta, max_len);
                match sa.sig().prefilter(sb.sig(), bound) {
                    Some(Rejection::Length) => {
                        stats.length_rejects += 1;
                        false
                    }
                    Some(Rejection::Bag) => {
                        stats.bag_rejects += 1;
                        false
                    }
                    Some(Rejection::Qgram) => {
                        stats.qgram_rejects += 1;
                        false
                    }
                    None => {
                        stats.dp_runs += 1;
                        EDIT_SCRATCH.with_borrow_mut(|scratch| {
                            if damerau {
                                damerau_levenshtein_within_chars(
                                    sa.chars(),
                                    sb.chars(),
                                    bound,
                                    scratch,
                                )
                                .is_some()
                            } else {
                                levenshtein_within_chars(sa.chars(), sb.chars(), bound, scratch)
                                    .is_some()
                            }
                        })
                    }
                }
            }
            Kernel::Dyn => self.atom_matches(atom, t1, t2),
        }
    }

    /// Traces one LHS atom: the same decision as
    /// [`RuntimeOps::atom_matches_prepped`] (and therefore
    /// [`RuntimeOps::atom_matches`]), plus *how* it was decided — which
    /// pipeline stage fired, the θ-derived edit bound, and the edit
    /// distance. This is the explanation path, called once per inspected
    /// pair, so unlike the hot path it always computes the **exact**
    /// distance for edit kernels, even when a filter (or the band) already
    /// proved the pair out of bound.
    #[allow(clippy::too_many_arguments)]
    pub fn atom_trace(
        &self,
        atom: &SimilarityAtom,
        t1: &Tuple,
        t2: &Tuple,
        p1: &RelationPrep,
        p2: &RelationPrep,
        l: usize,
        r: usize,
    ) -> AtomTrace {
        let decided = |matched, stage| AtomTrace { matched, stage, bound: None, distance: None };
        match self.kernels[atom.op.0 as usize] {
            Kernel::Equality => match (t1.get(atom.left).as_str(), t2.get(atom.right).as_str()) {
                (Some(x), Some(y)) => decided(x == y, AtomStage::Equality),
                _ => decided(false, AtomStage::Null),
            },
            kernel @ (Kernel::Damerau { .. } | Kernel::Levenshtein { .. }) => {
                let (damerau, theta) = match kernel {
                    Kernel::Damerau { theta } => (true, theta),
                    Kernel::Levenshtein { theta } => (false, theta),
                    _ => unreachable!("outer arm admits only edit kernels"),
                };
                let (a_owned, b_owned);
                let (sa, sb) = match (p1.sig(l, atom.left), p2.sig(r, atom.right)) {
                    (Some(sa), Some(sb)) => (sa, sb),
                    // The caller prepped without this attribute: extract
                    // the signatures here (trace calls are per-pair, the
                    // cost is irrelevant) rather than mis-describe.
                    _ => {
                        a_owned = AttrSig::of_value(t1.get(atom.left));
                        b_owned = AttrSig::of_value(t2.get(atom.right));
                        (&a_owned, &b_owned)
                    }
                };
                if sa.is_null() || sb.is_null() {
                    return decided(false, AtomStage::Null);
                }
                let exact = || {
                    let (x, y) = (
                        t1.get(atom.left).as_str().expect("non-null"),
                        t2.get(atom.right).as_str().expect("non-null"),
                    );
                    if damerau {
                        damerau_levenshtein(x, y)
                    } else {
                        levenshtein(x, y)
                    }
                };
                let max_len = sa.sig().char_len().max(sb.sig().char_len());
                let bound = theta_bound(theta, max_len);
                let with = |matched, stage, distance| AtomTrace {
                    matched,
                    stage,
                    bound: Some(bound),
                    distance: Some(distance),
                };
                if max_len == 0 {
                    return with(true, AtomStage::BothEmpty, 0);
                }
                if sa.chars() == sb.chars() {
                    return with(true, AtomStage::EqualFast, 0);
                }
                match sa.sig().prefilter(sb.sig(), bound) {
                    Some(Rejection::Length) => with(false, AtomStage::LengthFilter, exact()),
                    Some(Rejection::Bag) => with(false, AtomStage::BagFilter, exact()),
                    Some(Rejection::Qgram) => with(false, AtomStage::QgramFilter, exact()),
                    None => {
                        let within = EDIT_SCRATCH.with_borrow_mut(|scratch| {
                            if damerau {
                                damerau_levenshtein_within_chars(
                                    sa.chars(),
                                    sb.chars(),
                                    bound,
                                    scratch,
                                )
                            } else {
                                levenshtein_within_chars(sa.chars(), sb.chars(), bound, scratch)
                            }
                        });
                        match within {
                            Some(d) => with(true, AtomStage::BandedDp, d),
                            None => with(false, AtomStage::BandedDp, exact()),
                        }
                    }
                }
            }
            Kernel::Dyn => match (t1.get(atom.left).as_str(), t2.get(atom.right).as_str()) {
                (Some(x), Some(y)) => {
                    decided(self.resolved[atom.op.0 as usize].matches(x, y), AtomStage::Dynamic)
                }
                _ => decided(false, AtomStage::Null),
            },
        }
    }

    /// Computes the graded agreement feature of one atom: the same boolean
    /// decision as [`RuntimeOps::atom_matches`] plus an agreement strength
    /// in `[0, 1]` for scoring. This is [`RuntimeOps::atom_trace`]'s cold
    /// path made warm: it extracts signatures on the fly (no
    /// [`RelationPrep`] needed, so it works on ad-hoc probe tuples), but —
    /// unlike the trace — it never computes an exact out-of-bound edit
    /// distance: a pair a filter or the band proves out of bound simply
    /// scores 0.
    pub fn atom_feature(&self, atom: &SimilarityAtom, t1: &Tuple, t2: &Tuple) -> AtomFeature {
        let miss = AtomFeature { matched: false, strength: 0.0 };
        match self.kernels[atom.op.0 as usize] {
            Kernel::Equality => match (t1.get(atom.left).as_str(), t2.get(atom.right).as_str()) {
                (Some(x), Some(y)) if x == y => AtomFeature { matched: true, strength: 1.0 },
                _ => miss,
            },
            kernel @ (Kernel::Damerau { .. } | Kernel::Levenshtein { .. }) => {
                let (damerau, theta) = match kernel {
                    Kernel::Damerau { theta } => (true, theta),
                    Kernel::Levenshtein { theta } => (false, theta),
                    _ => unreachable!("outer arm admits only edit kernels"),
                };
                let sa = AttrSig::of_value(t1.get(atom.left));
                let sb = AttrSig::of_value(t2.get(atom.right));
                if sa.is_null() || sb.is_null() {
                    return miss;
                }
                let max_len = sa.sig().char_len().max(sb.sig().char_len());
                if max_len == 0 || sa.chars() == sb.chars() {
                    return AtomFeature { matched: true, strength: 1.0 };
                }
                let bound = theta_bound(theta, max_len);
                if sa.sig().prefilter(sb.sig(), bound).is_some() {
                    return miss;
                }
                let within = EDIT_SCRATCH.with_borrow_mut(|scratch| {
                    if damerau {
                        damerau_levenshtein_within_chars(sa.chars(), sb.chars(), bound, scratch)
                    } else {
                        levenshtein_within_chars(sa.chars(), sb.chars(), bound, scratch)
                    }
                });
                match within {
                    // θ-margin: distance 0 would be 1.0, the bound itself
                    // stays strictly positive (the pair did match).
                    Some(d) => AtomFeature {
                        matched: true,
                        strength: 1.0 - d as f64 / (bound as f64 + 1.0),
                    },
                    None => miss,
                }
            }
            Kernel::Dyn => match (t1.get(atom.left).as_str(), t2.get(atom.right).as_str()) {
                (Some(x), Some(y)) => {
                    let op = &self.resolved[atom.op.0 as usize];
                    let matched = op.matches(x, y);
                    let sim = op.similarity(x, y);
                    let strength = if sim.is_nan() { 0.0 } else { sim.clamp(0.0, 1.0) };
                    AtomFeature { matched, strength }
                }
                _ => miss,
            },
        }
    }

    /// Evaluates a full LHS (conjunction) through the compiled kernels —
    /// the prepped counterpart of [`RuntimeOps::lhs_matches`].
    #[allow(clippy::too_many_arguments)]
    pub fn lhs_matches_prepped(
        &self,
        lhs: &[SimilarityAtom],
        t1: &Tuple,
        t2: &Tuple,
        p1: &RelationPrep,
        p2: &RelationPrep,
        l: usize,
        r: usize,
        stats: &mut FilterStats,
    ) -> bool {
        lhs.iter().all(|atom| self.atom_matches_prepped(atom, t1, t2, p1, p2, l, r, stats))
    }

    /// Number of resolved operators.
    pub fn len(&self) -> usize {
        self.resolved.len()
    }

    /// Never empty: `=` is always present.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::operators::OperatorTable;

    fn runtime() -> (OperatorTable, RuntimeOps) {
        let mut table = OperatorTable::new();
        table.intern("≈d");
        let ops = RuntimeOps::resolve(&table, &paper_registry()).unwrap();
        (table, ops)
    }

    #[test]
    fn equality_and_dl_resolve() {
        let (table, ops) = runtime();
        assert_eq!(ops.len(), table.len());
        assert!(!ops.is_empty());
        let dl = table.get("≈d").unwrap();
        assert!(ops.value_matches(OperatorId::EQ, &Value::str("x"), &Value::str("x")));
        assert!(!ops.value_matches(OperatorId::EQ, &Value::str("x"), &Value::str("y")));
        assert!(ops.value_matches(dl, &Value::str("Mark"), &Value::str("Marx")));
        assert!(ops.value_matches(dl, &Value::str("Clifford"), &Value::str("Clivord")));
        assert!(!ops.value_matches(dl, &Value::str("Mark"), &Value::str("David")));
    }

    #[test]
    fn null_matches_nothing() {
        let (_table, ops) = runtime();
        assert!(!ops.value_matches(OperatorId::EQ, &Value::Null, &Value::Null));
        assert!(!ops.value_matches(OperatorId::EQ, &Value::Null, &Value::str("x")));
        assert_eq!(ops.value_similarity(OperatorId::EQ, &Value::Null, &Value::Null), 0.0);
    }

    #[test]
    fn unknown_operator_fails_resolution() {
        let mut table = OperatorTable::new();
        table.intern("≈custom-unbound");
        assert!(RuntimeOps::resolve(&table, &paper_registry()).is_err());
    }

    #[test]
    fn prepped_evaluation_agrees_with_dynamic_dispatch() {
        use crate::prep::{RelationPrep, SigNeeds};
        let (setting, inst) = crate::fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        // Prepare every attribute on both sides, then check that every
        // MD's LHS decides identically through both paths on the full
        // cross product.
        let mut ln = SigNeeds::none(inst.left().schema().arity());
        (0..inst.left().schema().arity()).for_each(|a| ln.mark(a));
        let mut rn = SigNeeds::none(inst.right().schema().arity());
        (0..inst.right().schema().arity()).for_each(|a| rn.mark(a));
        let lp = RelationPrep::build(inst.left(), &ln);
        let rp = RelationPrep::build(inst.right(), &rn);
        let mut stats = FilterStats::default();
        for (l, lt) in inst.left().tuples().iter().enumerate() {
            for (r, rt) in inst.right().tuples().iter().enumerate() {
                for md in &setting.sigma {
                    assert_eq!(
                        ops.lhs_matches(md.lhs(), lt, rt),
                        ops.lhs_matches_prepped(md.lhs(), lt, rt, &lp, &rp, l, r, &mut stats),
                        "pair ({l},{r}) md {md:?}"
                    );
                }
            }
        }
        assert!(stats.evaluations() > 0, "edit kernels were exercised");
        assert_eq!(stats.evaluations(), stats.rejected() + stats.dp_runs);
    }

    #[test]
    fn prepped_evaluation_without_signatures_falls_back() {
        use crate::prep::{RelationPrep, SigNeeds};
        let (table, ops) = runtime();
        let dl = table.get("≈d").unwrap();
        let t1 = Tuple::new(1, vec![Value::str("Mark")]);
        let t2 = Tuple::new(2, vec![Value::str("Marx")]);
        // Empty preps: the evaluator must fall back, not mis-decide.
        let schema =
            std::sync::Arc::new(matchrules_core::schema::Schema::text("R", &["a"]).unwrap());
        let rel = crate::relation::Relation::new(schema);
        let empty = RelationPrep::build(&rel, &SigNeeds::none(1));
        let atom = SimilarityAtom::new(0, 0, dl);
        let mut stats = FilterStats::default();
        assert!(ops.atom_matches_prepped(&atom, &t1, &t2, &empty, &empty, 0, 0, &mut stats));
        assert_eq!(stats, FilterStats::default(), "fallback path records nothing");
    }

    #[test]
    fn atom_trace_agrees_with_evaluation_and_reports_distances() {
        use crate::prep::{RelationPrep, SigNeeds};
        let (setting, inst) = crate::fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let mut ln = SigNeeds::none(inst.left().schema().arity());
        (0..inst.left().schema().arity()).for_each(|a| ln.mark(a));
        let mut rn = SigNeeds::none(inst.right().schema().arity());
        (0..inst.right().schema().arity()).for_each(|a| rn.mark(a));
        let lp = RelationPrep::build(inst.left(), &ln);
        let rp = RelationPrep::build(inst.right(), &rn);
        let mut traced = 0usize;
        for (l, lt) in inst.left().tuples().iter().enumerate() {
            for (r, rt) in inst.right().tuples().iter().enumerate() {
                for md in &setting.sigma {
                    for atom in md.lhs() {
                        let trace = ops.atom_trace(atom, lt, rt, &lp, &rp, l, r);
                        assert_eq!(
                            trace.matched,
                            ops.atom_matches(atom, lt, rt),
                            "pair ({l},{r}) atom {atom:?}"
                        );
                        if let (Some(bound), Some(dist)) = (trace.bound, trace.distance) {
                            // An edit atom matches iff its exact distance
                            // fits the bound — the trace must carry the
                            // evidence for its own verdict.
                            assert_eq!(trace.matched, dist <= bound);
                            traced += 1;
                        }
                    }
                }
            }
        }
        assert!(traced > 0, "edit atoms were traced");
        // Tracing without prepared signatures extracts them on the fly.
        let empty_l = RelationPrep::build(inst.left(), &SigNeeds::none(9));
        let empty_r = RelationPrep::build(inst.right(), &SigNeeds::none(9));
        let dl = setting.ops.get("≈d").unwrap();
        let fn_l = setting.pair.left().attr("FN").unwrap();
        let fn_r = setting.pair.right().attr("FN").unwrap();
        let atom = SimilarityAtom::new(fn_l, fn_r, dl);
        let (t1, t2) = (&inst.left().tuples()[0], &inst.right().tuples()[0]);
        let trace = ops.atom_trace(&atom, t1, t2, &empty_l, &empty_r, 0, 0);
        assert_eq!(trace.matched, ops.atom_matches(&atom, t1, t2));
        assert!(trace.bound.is_some() && trace.distance.is_some());
    }

    #[test]
    fn atom_feature_agrees_with_boolean_and_grades_margin() {
        let (setting, inst) = crate::fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        for lt in inst.left().tuples() {
            for rt in inst.right().tuples() {
                for md in &setting.sigma {
                    for atom in md.lhs() {
                        let f = ops.atom_feature(atom, lt, rt);
                        assert_eq!(f.matched, ops.atom_matches(atom, lt, rt), "{atom:?}");
                        assert!(f.strength.is_finite() && (0.0..=1.0).contains(&f.strength));
                        // Strength is positive iff the atom matched (for
                        // the compiled kernels exercised here).
                        assert_eq!(f.matched, f.strength > 0.0, "{atom:?}");
                    }
                }
            }
        }
        // Exact agreement outranks an in-bound typo, which outranks a miss.
        let (table, ops) = runtime();
        let dl = table.get("≈d").unwrap();
        let atom = SimilarityAtom::new(0, 0, dl);
        let exact = ops.atom_feature(
            &atom,
            &Tuple::new(1, vec![Value::str("Clifford")]),
            &Tuple::new(2, vec![Value::str("Clifford")]),
        );
        let typo = ops.atom_feature(
            &atom,
            &Tuple::new(1, vec![Value::str("Clifford")]),
            &Tuple::new(2, vec![Value::str("Clivord")]),
        );
        let miss = ops.atom_feature(
            &atom,
            &Tuple::new(1, vec![Value::str("Clifford")]),
            &Tuple::new(2, vec![Value::str("Zebra")]),
        );
        assert_eq!(exact.strength, 1.0);
        assert!(typo.matched && typo.strength > 0.0 && typo.strength < 1.0);
        assert!(!miss.matched && miss.strength == 0.0);
        // Null operands score zero without panicking.
        let null = ops.atom_feature(
            &atom,
            &Tuple::new(1, vec![Value::Null]),
            &Tuple::new(2, vec![Value::str("x")]),
        );
        assert_eq!(null, AtomFeature { matched: false, strength: 0.0 });
    }

    #[test]
    fn atom_stage_names_are_stable() {
        assert_eq!(AtomStage::EqualFast.name(), "equal-fast");
        assert_eq!(AtomStage::BandedDp.name(), "dp");
        assert_eq!(AtomStage::Null.name(), "null");
    }

    #[test]
    fn filter_stats_merge_and_totals() {
        let mut a = FilterStats {
            equal_fast: 5,
            length_rejects: 1,
            bag_rejects: 2,
            qgram_rejects: 3,
            dp_runs: 4,
            dedup_saved: 7,
            retrieval_rejects: 2,
            gallop_steps: 20,
            linear_steps: 30,
            blocks_decoded: 4,
            blocks_skipped: 6,
        };
        let b = FilterStats {
            equal_fast: 0,
            length_rejects: 10,
            bag_rejects: 0,
            qgram_rejects: 1,
            dp_runs: 2,
            dedup_saved: 3,
            retrieval_rejects: 1,
            gallop_steps: 2,
            linear_steps: 3,
            blocks_decoded: 1,
            blocks_skipped: 1,
        };
        a.merge(&b);
        assert_eq!(a.length_rejects, 11);
        assert_eq!(a.equal_fast, 5);
        assert_eq!(a.dedup_saved, 10);
        assert_eq!(a.retrieval_rejects, 3);
        assert_eq!(a.gallop_steps, 22);
        assert_eq!(a.linear_steps, 33);
        assert_eq!(a.blocks_decoded, 5);
        assert_eq!(a.blocks_skipped, 7);
        assert_eq!(a.rejected(), 17);
        // dedup_saved and the retrieval counters track skipped or
        // amortized work, not evaluations.
        assert_eq!(a.evaluations(), 28);
    }

    #[test]
    fn kernel_classes_follow_index_strategies() {
        let mut table = OperatorTable::new();
        let eq = table.intern("=");
        let dl = table.intern("≈d");
        let jw = table.intern("≈jw");
        let sx = table.intern("≈sx");
        let tok = table.intern("≈tok");
        let qg = table.intern("≈qg");
        let ops = RuntimeOps::resolve(&table, &paper_registry()).unwrap();
        assert_eq!(ops.kernel_class(eq), KernelClass::Equality);
        assert_eq!(ops.kernel_class(dl), KernelClass::Edit { theta: 0.75 });
        assert_eq!(ops.kernel_class(sx), KernelClass::DerivedKey);
        assert!(matches!(ops.kernel_class(jw), KernelClass::Bounded { .. }));
        assert!(matches!(ops.kernel_class(tok), KernelClass::TokenSet { .. }));
        assert!(matches!(ops.kernel_class(qg), KernelClass::TokenSet { .. }));
        assert!(ops.kernel_class(sx).is_indexable());
        assert!(!KernelClass::Opaque.is_indexable());
        assert_eq!(KernelClass::DerivedKey.name(), "derived-key");

        // Derived keys / elements surface through the runtime table.
        let mut keys = Vec::new();
        ops.derived_keys_into(sx, "Robert", &mut keys);
        assert_eq!(keys, vec!["R163".to_owned()]);
        let mut elems = Vec::new();
        ops.index_elements_into(tok, "oak street oak", &mut elems);
        assert_eq!(elems.len(), 2); // set semantics: {oak, street}
    }

    #[test]
    fn atom_and_lhs_evaluation() {
        let (table, ops) = runtime();
        let dl = table.get("≈d").unwrap();
        let t1 = Tuple::new(1, vec![Value::str("Mark"), Value::str("Clifford")]);
        let t2 = Tuple::new(2, vec![Value::str("Marx"), Value::str("Clifford")]);
        let a0 = SimilarityAtom::new(0, 0, dl);
        let a1 = SimilarityAtom::eq(1, 1);
        assert!(ops.atom_matches(&a0, &t1, &t2));
        assert!(ops.lhs_matches(&[a0, a1], &t1, &t2));
        let a_bad = SimilarityAtom::eq(0, 0);
        assert!(!ops.lhs_matches(&[a_bad, a1], &t1, &t2));
    }
}
