//! Attribute values.
//!
//! Record-matching data is overwhelmingly textual after standardization
//! (§2.1 of the paper); numbers (prices, card numbers) are carried as their
//! canonical string rendering so that every similarity operator applies
//! uniformly. `Null` models missing data — Fig. 1's billing tuples have
//! `null` genders — and matches nothing, not even another `Null`.

use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Missing data. `Null` is not similar to anything, including itself:
    /// an unknown gender is *unknown*, not equal to another unknown.
    Null,
    /// A textual value.
    Str(Box<str>),
}

impl Value {
    /// A textual value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(s.as_ref().into())
    }

    /// The string content, if present.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Null => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Whether the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Length in characters (0 for `Null`), used by the `lt` statistic of
    /// the cost model.
    pub fn char_len(&self) -> usize {
        self.as_str().map_or(0, |s| s.chars().count())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s.into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = Value::str("Mark");
        assert_eq!(v.as_str(), Some("Mark"));
        assert!(!v.is_null());
        assert_eq!(v.char_len(), 4);
        assert_eq!(Value::Null.char_len(), 0);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_str(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("x")), Value::str("x"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("café").to_string(), "café");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn ordering_puts_null_first() {
        let mut vs = vec![Value::str("b"), Value::Null, Value::str("a")];
        vs.sort();
        assert_eq!(vs, vec![Value::Null, Value::str("a"), Value::str("b")]);
    }
}
