//! CSV import/export for relations.
//!
//! Downstream users bring their own data; this module reads and writes
//! RFC-4180-style CSV (quoted fields, embedded commas/quotes/newlines)
//! without external dependencies. The first row is the header, matched
//! against the schema's attribute names (any column order); empty fields
//! and the literal `null` become [`Value::Null`].

use crate::relation::{Relation, Tuple};
use crate::value::Value;
use matchrules_core::error::{CoreError, Result};
use matchrules_core::schema::Schema;
use std::fmt::Write as _;
use std::sync::Arc;

/// Parses a CSV document into an instance of `schema`.
///
/// The header must mention every schema attribute exactly once (extra
/// columns are rejected — silent column dropping hides data bugs). Tuple
/// ids are assigned 0, 1, 2, … in row order.
pub fn read_relation(schema: Arc<Schema>, csv: &str) -> Result<Relation> {
    let mut rows = parse_rows(csv)?;
    if rows.is_empty() {
        return Ok(Relation::new(schema));
    }
    let header = rows.remove(0);
    // Map each CSV column to its schema attribute.
    let mut column_attr = Vec::with_capacity(header.len());
    for name in &header {
        column_attr.push(schema.attr(name)?);
    }
    let mut seen = vec![false; schema.arity()];
    for &a in &column_attr {
        if std::mem::replace(&mut seen[a], true) {
            return Err(CoreError::DuplicateAttribute {
                schema: schema.name().to_owned(),
                attribute: schema.attr_name(a).to_owned(),
            });
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(CoreError::UnknownAttribute {
            schema: schema.name().to_owned(),
            attribute: format!("{} (missing from CSV header)", schema.attr_name(missing)),
        });
    }

    let mut relation = Relation::new(schema.clone());
    for (row_idx, row) in rows.into_iter().enumerate() {
        if row.len() != column_attr.len() {
            // Ragged rows are data bugs, not data: a short row silently
            // read as trailing nulls (or a long row silently truncated)
            // would corrupt every downstream match. Name the record.
            return Err(CoreError::CsvRow {
                row: row_idx + 2, // header is record 1
                expected: column_attr.len(),
                got: row.len(),
            });
        }
        let mut values = vec![Value::Null; schema.arity()];
        for (field, &attr) in row.into_iter().zip(&column_attr) {
            values[attr] =
                if field.is_empty() || field == "null" { Value::Null } else { Value::from(field) };
        }
        relation.push(Tuple::new(row_idx as u64, values));
    }
    Ok(relation)
}

/// Serializes a relation to CSV (header + one row per tuple, `Null` as the
/// empty field).
pub fn write_relation(relation: &Relation) -> String {
    let schema = relation.schema();
    let mut out = String::new();
    let header: Vec<&str> = (0..schema.arity()).map(|i| schema.attr_name(i)).collect();
    writeln_row(&mut out, header.iter().copied());
    for tuple in relation.tuples() {
        writeln_row(&mut out, tuple.values().iter().map(|v| v.as_str().unwrap_or("")));
    }
    out
}

fn writeln_row<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for field in fields {
        if !first {
            out.push(',');
        }
        first = false;
        if field.contains([',', '"', '\n', '\r']) {
            let _ = write!(out, "\"{}\"", field.replace('"', "\"\""));
        } else {
            out.push_str(field);
        }
    }
    out.push('\n');
}

/// Splits a CSV document into rows of fields, honouring quotes.
fn parse_rows(csv: &str) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = csv.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    let mut offset = 0usize;
    while let Some(c) = chars.next() {
        offset += c.len_utf8();
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        offset += 1;
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CoreError::Parse {
                        offset,
                        message: "quote inside unquoted field".to_owned(),
                    });
                }
                in_quotes = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            '\r' => {} // tolerate CRLF
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(CoreError::Parse { offset, message: "unterminated quote".to_owned() });
    }
    if any && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    // Drop fully-empty trailing lines.
    rows.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::text("people", &["FN", "LN", "city"]).unwrap())
    }

    #[test]
    fn roundtrip_simple() {
        let csv = "FN,LN,city\nMark,Clifford,Murray Hill\nDavid,Smith,\n";
        let rel = read_relation(schema(), csv).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.tuples()[0].get(0), &Value::str("Mark"));
        assert!(rel.tuples()[1].get(2).is_null());
        let out = write_relation(&rel);
        let rel2 = read_relation(schema(), &out).unwrap();
        assert_eq!(rel.tuples(), rel2.tuples());
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let csv = "FN,LN,city\n\"Mark\",\"O\"\"Brien\",\"Murray Hill, NJ\"\n";
        let rel = read_relation(schema(), csv).unwrap();
        assert_eq!(rel.tuples()[0].get(1), &Value::str("O\"Brien"));
        assert_eq!(rel.tuples()[0].get(2), &Value::str("Murray Hill, NJ"));
        // Round-trip re-quotes correctly.
        let out = write_relation(&rel);
        let rel2 = read_relation(schema(), &out).unwrap();
        assert_eq!(rel.tuples(), rel2.tuples());
    }

    #[test]
    fn embedded_newlines_in_quotes() {
        let csv = "FN,LN,city\nMark,Clifford,\"line1\nline2\"\n";
        let rel = read_relation(schema(), csv).unwrap();
        assert_eq!(rel.tuples()[0].get(2), &Value::str("line1\nline2"));
    }

    #[test]
    fn column_reordering() {
        let csv = "city,FN,LN\nMH,Mark,Clifford\n";
        let rel = read_relation(schema(), csv).unwrap();
        assert_eq!(rel.tuples()[0].get(0), &Value::str("Mark"));
        assert_eq!(rel.tuples()[0].get(2), &Value::str("MH"));
    }

    #[test]
    fn null_keyword_and_empty_are_null() {
        let csv = "FN,LN,city\nnull,,x\n";
        let rel = read_relation(schema(), csv).unwrap();
        assert!(rel.tuples()[0].get(0).is_null());
        assert!(rel.tuples()[0].get(1).is_null());
    }

    #[test]
    fn header_validation() {
        assert!(read_relation(schema(), "FN,LN\nMark,C\n").is_err(), "missing column");
        assert!(read_relation(schema(), "FN,LN,city,extra\na,b,c,d\n").is_err(), "extra column");
        assert!(read_relation(schema(), "FN,LN,FN\na,b,c\n").is_err(), "duplicate column");
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_relation(schema(), "FN,LN,city\nMark,Clifford\n").unwrap_err();
        assert!(matches!(err, CoreError::CsvRow { row: 2, expected: 3, got: 2 }));
    }

    #[test]
    fn ragged_rows_report_the_offending_record() {
        // Regression: a short row must fail with the record number, not be
        // padded with nulls; a long row must fail too, not drop fields.
        let short = "FN,LN,city\n\
                     Mark,Clifford,Murray Hill\n\
                     David,Smith\n\
                     Anna,Jones,Summit\n";
        let err = read_relation(schema(), short).unwrap_err();
        assert_eq!(err, CoreError::CsvRow { row: 3, expected: 3, got: 2 });
        assert!(err.to_string().contains("record 3"), "{err}");
        assert!(err.to_string().contains("missing fields"), "{err}");

        let long = "FN,LN,city\nMark,Clifford,Murray Hill,NJ\n";
        let err = read_relation(schema(), long).unwrap_err();
        assert_eq!(err, CoreError::CsvRow { row: 2, expected: 3, got: 4 });
        assert!(err.to_string().contains("extra fields"), "{err}");
    }

    #[test]
    fn malformed_quotes_rejected() {
        assert!(read_relation(schema(), "FN,LN,city\nMa\"rk,C,x\n").is_err());
        assert!(read_relation(schema(), "FN,LN,city\n\"Mark,C,x\n").is_err());
    }

    #[test]
    fn empty_document() {
        let rel = read_relation(schema(), "").unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn crlf_tolerated() {
        let csv = "FN,LN,city\r\nMark,Clifford,MH\r\n";
        let rel = read_relation(schema(), csv).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].get(2), &Value::str("MH"));
    }
}
