//! Clean synthetic data for the §6 evaluation schemas.
//!
//! Generates card holders ([`Person`]) with internally-consistent addresses
//! (city/county/state/zip come from one [`Locality`](crate::catalog::Locality)),
//! then materializes the extended `credit` (13 attributes) and `billing`
//! (21 attributes) relations of [`matchrules_core::paper::extended`]:
//! one credit tuple per person and one base billing tuple per purchase.
//!
//! This substitutes for the paper's Web-scraped seeds (see DESIGN.md §4);
//! the duplicate/error protocol lives in [`crate::dirty`].

use crate::catalog;
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use matchrules_core::schema::SchemaPair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Entity identifier: index of the person a tuple refers to.
pub type EntityId = u32;

/// A synthetic card holder.
#[derive(Debug, Clone)]
pub struct Person {
    /// First name.
    pub first: String,
    /// Middle initial (with trailing period), possibly empty.
    pub middle: String,
    /// Last name.
    pub last: String,
    /// Street line, e.g. "10 Oak Street".
    pub street: String,
    /// City.
    pub city: String,
    /// County.
    pub county: String,
    /// Two-letter state.
    pub state: String,
    /// Five-digit zip.
    pub zip: String,
    /// Phone, `AAA-NNNNNNN`.
    pub tel: String,
    /// E-mail address.
    pub email: String,
    /// `"M"` or `"F"`.
    pub gender: String,
    /// Nine-digit SSN.
    pub ssn: String,
    /// Card number (12 digits).
    pub card: String,
}

/// Fraction of persons generated as *family members* of the previous
/// person: same surname, address and (landline) phone, distinct first
/// name / e-mail / identifiers. Families create the realistic ambiguity
/// that separates loose expert rules from minimal RCKs — two people at
/// the same address with the same last name are NOT the same entity.
const FAMILY_RATE: f64 = 0.18;

/// Deterministically generates `count` persons from `seed`.
pub fn generate_persons(count: usize, seed: u64) -> Vec<Person> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<Person> = Vec::with_capacity(count);
    for i in 0..count {
        let person = match out.last() {
            Some(prev) if rng.random_bool(FAMILY_RATE) => family_member(&mut rng, prev, i),
            _ => random_person(&mut rng, i),
        };
        out.push(person);
    }
    out
}

/// A relative of `prev`: shares surname and household address; sometimes
/// the household landline, usually an own (cell) phone.
fn family_member(rng: &mut StdRng, prev: &Person, index: usize) -> Person {
    let mut p = random_person(rng, index);
    p.last = prev.last.clone();
    p.street = prev.street.clone();
    p.city = prev.city.clone();
    p.county = prev.county.clone();
    p.state = prev.state.clone();
    p.zip = prev.zip.clone();
    if rng.random_bool(0.3) {
        p.tel = prev.tel.clone();
    }
    p.email = format!(
        "{}{}{}@{}",
        p.first.to_lowercase(),
        p.last.to_lowercase(),
        index,
        catalog::EMAIL_DOMAINS[rng.random_range(0..catalog::EMAIL_DOMAINS.len())]
    );
    p
}

fn random_person(rng: &mut StdRng, index: usize) -> Person {
    let first = (*pick(rng, catalog::FIRST_NAMES)).to_owned();
    let last = (*pick(rng, catalog::LAST_NAMES)).to_owned();
    let middle = if rng.random_bool(0.6) {
        let letter = (b'A' + rng.random_range(0..26u8)) as char;
        format!("{letter}.")
    } else {
        String::new()
    };
    let loc = pick(rng, catalog::LOCALITIES);
    let street_no = rng.random_range(1..9999u32);
    let street_name = pick(rng, catalog::STREET_NAMES);
    let suffix = pick(rng, catalog::STREET_SUFFIXES);
    let street = format!("{street_no} {street_name} {suffix}");
    let zip = format!("{}{:02}", loc.zip3, rng.random_range(0..100u32));
    let tel =
        format!("{}-{:07}", rng.random_range(201..990u32), rng.random_range(0..10_000_000u32));
    // E-mails must be globally unique per person: they are strong
    // identifiers in the MDs, so collisions would be false ground truth.
    let email = format!(
        "{}{}{}@{}",
        first.to_lowercase(),
        last.to_lowercase(),
        index,
        pick(rng, catalog::EMAIL_DOMAINS)
    );
    let gender = if rng.random_bool(0.5) { "M" } else { "F" }.to_owned();
    let ssn = format!("{:09}", rng.random_range(1_000_000..999_999_999u64));
    let card = format!("{:012}", rng.random_range(0..1_000_000_000_000u64));
    Person {
        first,
        middle,
        last,
        street,
        city: loc.city.to_owned(),
        county: loc.county.to_owned(),
        state: loc.state.to_owned(),
        zip,
        tel,
        email,
        gender,
        ssn,
        card,
    }
}

fn pick<'a, T>(rng: &mut StdRng, pool: &'a [T]) -> &'a T {
    &pool[rng.random_range(0..pool.len())]
}

fn opt_str(s: &str) -> Value {
    if s.is_empty() {
        Value::Null
    } else {
        Value::str(s)
    }
}

/// Renders a person as a 13-attribute `credit` tuple of the extended
/// schema: `c#, SSN, FN, MN, LN, street, city, county, state, zip, tel,
/// email, gender`.
pub fn credit_tuple(id: u64, p: &Person) -> Tuple {
    Tuple::new(
        id,
        vec![
            Value::str(&p.card),
            Value::str(&p.ssn),
            Value::str(&p.first),
            opt_str(&p.middle),
            Value::str(&p.last),
            Value::str(&p.street),
            Value::str(&p.city),
            Value::str(&p.county),
            Value::str(&p.state),
            Value::str(&p.zip),
            Value::str(&p.tel),
            Value::str(&p.email),
            Value::str(&p.gender),
        ],
    )
}

/// A purchase: the non-identity payload of a billing tuple.
#[derive(Debug, Clone)]
pub struct Purchase {
    /// Item title.
    pub item: String,
    /// Item category.
    pub category: String,
    /// Price paid.
    pub price: f64,
    /// Quantity.
    pub qty: u32,
    /// Order date `YYYY-MM-DD`.
    pub date: String,
    /// Shipping state (usually the holder's).
    pub ship_state: String,
    /// Shipping zip.
    pub ship_zip: String,
    /// Store name.
    pub store: String,
    /// Payment channel.
    pub payment: String,
}

/// Draws a random purchase for a person.
pub fn random_purchase(rng: &mut StdRng, p: &Person) -> Purchase {
    let item = pick(rng, catalog::ITEMS);
    let qty = rng.random_range(1..4u32);
    let date = format!(
        "200{}-{:02}-{:02}",
        rng.random_range(6..9u8),
        rng.random_range(1..13u8),
        rng.random_range(1..29u8)
    );
    Purchase {
        item: item.title.to_owned(),
        category: item.category.to_owned(),
        price: item.price,
        qty,
        date,
        ship_state: p.state.clone(),
        ship_zip: p.zip.clone(),
        store: (*pick(rng, catalog::STORES)).to_owned(),
        payment: if rng.random_bool(0.8) { "online" } else { "phone" }.to_owned(),
    }
}

/// Renders a person + purchase as a 21-attribute `billing` tuple:
/// `c#, FN, MN, LN, street, city, county, state, zip, phn, email, gender,
/// item, category, price, qty, order_date, ship_state, ship_zip, store,
/// payment`.
pub fn billing_tuple(id: u64, p: &Person, purchase: &Purchase) -> Tuple {
    Tuple::new(
        id,
        vec![
            Value::str(&p.card),
            Value::str(&p.first),
            opt_str(&p.middle),
            Value::str(&p.last),
            Value::str(&p.street),
            Value::str(&p.city),
            Value::str(&p.county),
            Value::str(&p.state),
            Value::str(&p.zip),
            Value::str(&p.tel),
            Value::str(&p.email),
            Value::str(&p.gender),
            Value::str(&purchase.item),
            Value::str(&purchase.category),
            Value::from(format!("{:.2}", purchase.price)),
            Value::from(purchase.qty.to_string()),
            Value::str(&purchase.date),
            Value::str(&purchase.ship_state),
            Value::str(&purchase.ship_zip),
            Value::str(&purchase.store),
            Value::str(&purchase.payment),
        ],
    )
}

/// A clean (pre-noise) dataset: relations plus per-tuple entity ids.
#[derive(Debug, Clone)]
pub struct CleanData {
    /// Credit instance (one tuple per person, position == entity id).
    pub credit: Relation,
    /// Billing instance (one base purchase per person).
    pub billing: Relation,
    /// Entity of each credit tuple, by position.
    pub credit_entities: Vec<EntityId>,
    /// Entity of each billing tuple, by position.
    pub billing_entities: Vec<EntityId>,
    /// The generated persons (kept for noise injection).
    pub persons: Vec<Person>,
}

/// Generates the clean base instances for `persons` card holders over the
/// extended `(credit, billing)` schema pair (13/21 attributes, tuple layout
/// of [`credit_tuple`] / [`billing_tuple`]).
pub fn generate_clean(pair: &SchemaPair, persons: usize, seed: u64) -> CleanData {
    assert_eq!(pair.left().arity(), 13, "generator targets the extended credit schema");
    assert_eq!(pair.right().arity(), 21, "generator targets the extended billing schema");
    let people = generate_persons(persons, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut credit = Relation::new(pair.left().clone());
    let mut billing = Relation::new(pair.right().clone());
    let mut credit_entities = Vec::with_capacity(persons);
    let mut billing_entities = Vec::with_capacity(persons);
    for (i, p) in people.iter().enumerate() {
        credit.push(credit_tuple(i as u64, p));
        credit_entities.push(i as EntityId);
        let purchase = random_purchase(&mut rng, p);
        billing.push(billing_tuple(i as u64, p, &purchase));
        billing_entities.push(i as EntityId);
    }
    CleanData { credit, billing, credit_entities, billing_entities, persons: people }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_persons(10, 42);
        let b = generate_persons(10, 42);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.email, y.email);
            assert_eq!(x.street, y.street);
        }
        let c = generate_persons(10, 43);
        assert!(a.iter().zip(&c).any(|(x, y)| x.email != y.email));
    }

    #[test]
    fn persons_are_internally_consistent() {
        for p in generate_persons(50, 7) {
            assert_eq!(p.zip.len(), 5);
            assert_eq!(p.state.len(), 2);
            assert!(p.email.contains('@'));
            assert!(p.tel.contains('-'));
            assert!(!p.first.is_empty() && !p.last.is_empty());
            assert!(p.street.split(' ').count() >= 3);
        }
    }

    #[test]
    fn emails_are_unique() {
        let people = generate_persons(200, 5);
        let mut emails: Vec<&str> = people.iter().map(|p| p.email.as_str()).collect();
        emails.sort_unstable();
        emails.dedup();
        assert_eq!(emails.len(), people.len());
    }

    #[test]
    fn clean_dataset_matches_schemas() {
        let setting = paper::extended();
        let data = generate_clean(&setting.pair, 20, 1);
        assert_eq!(data.credit.len(), 20);
        assert_eq!(data.billing.len(), 20);
        assert_eq!(data.credit.schema().arity(), 13);
        assert_eq!(data.billing.schema().arity(), 21);
        assert_eq!(data.credit_entities, data.billing_entities);
        // Identity attributes agree between a person's credit and billing.
        let fn_c = setting.pair.left().attr("FN").unwrap();
        let fn_b = setting.pair.right().attr("FN").unwrap();
        for i in 0..20 {
            assert_eq!(data.credit.tuples()[i].get(fn_c), data.billing.tuples()[i].get(fn_b));
        }
    }

    #[test]
    fn purchases_draw_from_catalog() {
        let setting = paper::extended();
        let data = generate_clean(&setting.pair, 30, 9);
        let item_attr = setting.pair.right().attr("item").unwrap();
        for t in data.billing.tuples() {
            let title = t.get(item_attr).as_str().unwrap();
            assert!(crate::catalog::ITEMS.iter().any(|i| i.title == title));
        }
    }
}
