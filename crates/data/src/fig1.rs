//! The instance of Figure 1 — the paper's running example data.
//!
//! Two credit tuples (t1, t2) and four billing tuples (t3–t6); t3–t6 all
//! refer to the card holder of t1 but disagree with it on names, phones,
//! e-mails and addresses in exactly the ways the deduced RCKs recover.

use crate::relation::{InstancePair, Relation};
use matchrules_core::paper::{example_1_1, PaperSetting};
use matchrules_core::schema::SchemaPair;

/// Tuple ids of Fig. 1, for readable assertions.
pub mod ids {
    /// credit t1 (Mark Clifford).
    pub const T1: u64 = 1;
    /// credit t2 (David Smith).
    pub const T2: u64 = 2;
    /// billing t3 (Marx Clifford, full address, partial phone/email).
    pub const T3: u64 = 3;
    /// billing t4 (Marx Clifford, truncated address, full phone).
    pub const T4: u64 = 4;
    /// billing t5 (M. Clivord, full address, partial phone, full email).
    pub const T5: u64 = 5;
    /// billing t6 (M. Clivord, truncated address, full phone and email).
    pub const T6: u64 = 6;
}

/// Builds `(Dc = (Ic, Ib))` of Fig. 1 over the Example 1.1 schemas.
pub fn instance(setting: &PaperSetting) -> InstancePair {
    instance_for_pair(&setting.pair)
}

/// Builds the Fig. 1 instance directly over an Example 1.1-shaped schema
/// pair (the engine-API path, which carries no `PaperSetting`).
pub fn instance_for_pair(pair: &SchemaPair) -> InstancePair {
    let mut credit = Relation::new(pair.left().clone());
    // c#, SSN, FN, LN, addr, tel, email, gender, type
    credit.push_strs(
        ids::T1,
        &[
            "111",
            "079172485",
            "Mark",
            "Clifford",
            "10 Oak Street, MH, NJ 07974",
            "908-1111111",
            "mc@gm.com",
            "M",
            "master",
        ],
    );
    credit.push_strs(
        ids::T2,
        &[
            "222",
            "191843658",
            "David",
            "Smith",
            "620 Elm Street, MH, NJ 07976",
            "908-2222222",
            "dsmith@hm.com",
            "M",
            "visa",
        ],
    );

    let mut billing = Relation::new(pair.right().clone());
    // c#, FN, LN, post, phn, email, gender, item, price
    billing.push_strs(
        ids::T3,
        &[
            "111",
            "Marx",
            "Clifford",
            "10 Oak Street, MH, NJ 07974",
            "908",
            "mc",
            "null",
            "iPod",
            "169.99",
        ],
    );
    billing.push_strs(
        ids::T4,
        &["111", "Marx", "Clifford", "NJ", "908-1111111", "mc", "null", "book", "19.99"],
    );
    billing.push_strs(
        ids::T5,
        &[
            "111",
            "M.",
            "Clivord",
            "10 Oak Street, MH, NJ 07974",
            "1111111",
            "mc@gm.com",
            "null",
            "PSP",
            "269.99",
        ],
    );
    billing.push_strs(
        ids::T6,
        &["111", "M.", "Clivord", "NJ", "908-1111111", "mc@gm.com", "null", "CD", "14.99"],
    );

    InstancePair::new(pair.clone(), credit, billing)
}

/// Convenience: the Example 1.1 setting together with its Fig. 1 instance.
pub fn setting_and_instance() -> (PaperSetting, InstancePair) {
    let setting = example_1_1();
    let inst = instance(&setting);
    (setting, inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{paper_registry, RuntimeOps};
    use matchrules_core::paper::example_2_4_rcks;

    #[test]
    fn instance_shape() {
        let (_, inst) = setting_and_instance();
        assert_eq!(inst.left().len(), 2);
        assert_eq!(inst.right().len(), 4);
        let gender = inst.schema_pair().right().attr("gender").unwrap();
        assert!(inst.right().tuples().iter().all(|t| t.get(gender).is_null()));
    }

    /// Example 1.1's headline: with the given key (rck1) only t3 matches t1;
    /// the deduced keys rck2/rck3/rck4 recover t4, t5 and t6.
    #[test]
    fn deduced_keys_add_value_on_fig1() {
        let (setting, inst) = setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let t1 = inst.left().by_id(ids::T1).unwrap();
        let matched_by = |key_idx: usize, bid: u64| {
            let bt = inst.right().by_id(bid).unwrap();
            ops.lhs_matches(rcks[key_idx].atoms(), t1, bt)
        };
        // rck1 = (LN, addr, FN): matches t3 only.
        assert!(matched_by(0, ids::T3));
        assert!(!matched_by(0, ids::T4) && !matched_by(0, ids::T5) && !matched_by(0, ids::T6));
        // rck2 = (LN, tel, FN): matches t4 ("Marx" ≈d "Mark", same phone).
        assert!(matched_by(1, ids::T4));
        // rck3 = (email, addr): matches t5.
        assert!(matched_by(2, ids::T5));
        // rck4 = (email, tel): matches t6.
        assert!(matched_by(3, ids::T6));
    }

    /// David Smith's tuple matches nothing on the billing side.
    #[test]
    fn non_matching_holder_stays_unmatched() {
        let (setting, inst) = setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let t2 = inst.left().by_id(ids::T2).unwrap();
        for key in &rcks {
            for bt in inst.right().tuples() {
                assert!(!ops.lhs_matches(key.atoms(), t2, bt));
            }
        }
    }
}
