//! The dynamic semantics of MDs, executable (§2.1 and §3.1).
//!
//! The matching operator `⇌` is defined on **values**: "for any values x and
//! y, x ⇌ y indicates that x and y are identified via updates". This module
//! implements enforcement as a chase over *value classes*:
//!
//! * every distinct non-null value is a class (null cells are their own
//!   singleton classes — unknown values are pairwise distinct);
//! * whenever a tuple pair matches `LHS(φ)` (on current class
//!   representatives), the classes of the RHS cells are merged;
//! * iterate to fixpoint → the result is a **stable instance** `D'` for Σ:
//!   `(D', D') |= Σ`.
//!
//! The representative of a merged class is its most informative member
//! (non-null, then longest, then lexicographically greatest) — a
//! deterministic stand-in for the paper's "a value V is to be found".
//!
//! [`satisfies`] checks the paper's `(D, D') |= φ` judgment literally:
//! every pair matching `LHS(φ)` in `D` must (a) have its RHS attributes
//! equal in `D'` and (b) still match `LHS(φ)` in `D'`.

use crate::eval::RuntimeOps;
use crate::relation::{InstancePair, Relation, Tuple};
use crate::unionfind::UnionFind;
use crate::value::Value;
use matchrules_core::dependency::MatchingDependency;
use matchrules_core::schema::Side;
use std::collections::HashMap;

/// Outcome of enforcing Σ on an instance pair.
#[derive(Debug, Clone)]
pub struct EnforceOutcome {
    /// The stable instance `D'` (same tuple ids and order as `D`).
    pub result: InstancePair,
    /// Number of full passes over Σ × tuple pairs.
    pub rounds: usize,
    /// Number of value-class merges performed.
    pub merges: usize,
}

/// Chases Σ on `instance` to a stable instance.
pub fn enforce(
    instance: &InstancePair,
    sigma: &[MatchingDependency],
    ops: &RuntimeOps,
) -> EnforceOutcome {
    let mut state = ChaseState::new(instance);
    let mut rounds = 0usize;
    let mut merges = 0usize;
    loop {
        rounds += 1;
        let mut changed = false;
        for md in sigma {
            for li in 0..instance.left().len() {
                for ri in 0..instance.right().len() {
                    let lhs_ok = md.lhs().iter().all(|atom| {
                        let a = state.current(Side::Left, li, atom.left);
                        let b = state.current(Side::Right, ri, atom.right);
                        ops.value_matches(atom.op, a, b)
                    });
                    if !lhs_ok {
                        continue;
                    }
                    for ident in md.rhs() {
                        let ca = state.cell(Side::Left, li, ident.left);
                        let cb = state.cell(Side::Right, ri, ident.right);
                        if state.merge(ca, cb) {
                            merges += 1;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    EnforceOutcome { result: state.materialize(instance), rounds, merges }
}

/// `(D, D') |= φ` (§2.1): for every `(t1, t2) ∈ D` matching `LHS(φ)` in `D`,
/// (a) the RHS attributes are equal in `D'`, and (b) `(t1, t2)` still match
/// `LHS(φ)` in `D'`. Tuples are correlated positionally (enforcement
/// preserves order and ids).
pub fn satisfies(
    d: &InstancePair,
    d_prime: &InstancePair,
    md: &MatchingDependency,
    ops: &RuntimeOps,
) -> bool {
    assert_eq!(d.left().len(), d_prime.left().len(), "D ⊑ D' must correlate tuples");
    assert_eq!(d.right().len(), d_prime.right().len(), "D ⊑ D' must correlate tuples");
    for (li, lt) in d.left().tuples().iter().enumerate() {
        for (ri, rt) in d.right().tuples().iter().enumerate() {
            if !ops.lhs_matches(md.lhs(), lt, rt) {
                continue;
            }
            let lt2 = &d_prime.left().tuples()[li];
            let rt2 = &d_prime.right().tuples()[ri];
            let rhs_identified = md.rhs().iter().all(|p| {
                let a = lt2.get(p.left);
                let b = rt2.get(p.right);
                !a.is_null() && a == b
            });
            if !rhs_identified || !ops.lhs_matches(md.lhs(), lt2, rt2) {
                return false;
            }
        }
    }
    true
}

/// `(D, D') |= Σ`: every MD of Σ is satisfied.
pub fn satisfies_all(
    d: &InstancePair,
    d_prime: &InstancePair,
    sigma: &[MatchingDependency],
    ops: &RuntimeOps,
) -> bool {
    sigma.iter().all(|md| satisfies(d, d_prime, md, ops))
}

/// Whether `D` is stable for Σ, i.e. `(D, D) |= Σ` (§3.1).
pub fn is_stable(d: &InstancePair, sigma: &[MatchingDependency], ops: &RuntimeOps) -> bool {
    satisfies_all(d, d, sigma, ops)
}

/// Cell-to-value-class bookkeeping for the chase.
struct ChaseState {
    /// Value slot of each cell: `cells[side][tuple][attr]`.
    cells: [Vec<Vec<usize>>; 2],
    /// Union-find over value slots.
    uf: UnionFind,
    /// Most informative value of each class, indexed by slot; valid at the
    /// class root.
    best: Vec<Value>,
}

impl ChaseState {
    fn new(instance: &InstancePair) -> Self {
        let mut interned: HashMap<Value, usize> = HashMap::new();
        let mut best: Vec<Value> = Vec::new();
        let mut intern = |v: &Value, best: &mut Vec<Value>| -> usize {
            if v.is_null() {
                // Each null is its own unknown.
                best.push(Value::Null);
                best.len() - 1
            } else if let Some(&slot) = interned.get(v) {
                slot
            } else {
                let slot = best.len();
                best.push(v.clone());
                interned.insert(v.clone(), slot);
                slot
            }
        };
        let mut cells = [Vec::new(), Vec::new()];
        for (si, rel) in [instance.left(), instance.right()].into_iter().enumerate() {
            cells[si] = rel
                .tuples()
                .iter()
                .map(|t| t.values().iter().map(|v| intern(v, &mut best)).collect())
                .collect();
        }
        let uf = UnionFind::new(best.len());
        ChaseState { cells, uf, best }
    }

    fn side_index(side: Side) -> usize {
        match side {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    fn cell(&self, side: Side, tuple: usize, attr: usize) -> usize {
        self.cells[Self::side_index(side)][tuple][attr]
    }

    /// Current representative value of a cell.
    fn current(&self, side: Side, tuple: usize, attr: usize) -> &Value {
        let root = self.uf.find_const(self.cell(side, tuple, attr));
        &self.best[root]
    }

    /// Merges two value classes, keeping the most informative
    /// representative. Returns whether anything changed.
    fn merge(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.uf.find(a), self.uf.find(b));
        if ra == rb {
            return false;
        }
        let winner = better(&self.best[ra], &self.best[rb]).clone();
        self.uf.union(ra, rb);
        let root = self.uf.find(ra);
        self.best[root] = winner;
        true
    }

    /// Rewrites the instance with class representatives.
    fn materialize(&self, instance: &InstancePair) -> InstancePair {
        let rebuild = |side: Side, rel: &Relation| -> Relation {
            let mut out = Relation::new(rel.schema().clone());
            for (ti, t) in rel.tuples().iter().enumerate() {
                let values =
                    (0..t.values().len()).map(|a| self.current(side, ti, a).clone()).collect();
                out.push(Tuple::new(t.id(), values));
            }
            out
        };
        InstancePair::new(
            instance.schema_pair().clone(),
            rebuild(Side::Left, instance.left()),
            rebuild(Side::Right, instance.right()),
        )
    }
}

/// Preference order for class representatives: non-null, then longer, then
/// lexicographically greater (deterministic).
fn better<'a>(a: &'a Value, b: &'a Value) -> &'a Value {
    match (a.as_str(), b.as_str()) {
        (None, _) => b,
        (_, None) => a,
        (Some(x), Some(y)) => {
            if (x.chars().count(), x) >= (y.chars().count(), y) {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::paper_registry;
    use crate::fig1;
    use matchrules_core::operators::OperatorTable;
    use matchrules_core::parser::parse_md_set;
    use matchrules_core::schema::{Schema, SchemaPair};
    use std::sync::Arc;

    fn abc_setting() -> (SchemaPair, OperatorTable, Vec<MatchingDependency>, RuntimeOps) {
        let r = Arc::new(Schema::text("R", &["A", "B", "C"]).unwrap());
        let pair = SchemaPair::reflexive(r);
        let mut ops_table = OperatorTable::new();
        let sigma = parse_md_set(
            "R[A] = R[A] -> R[B] <=> R[B]\nR[B] = R[B] -> R[C] <=> R[C]\n",
            &pair,
            &mut ops_table,
        )
        .unwrap();
        let ops = RuntimeOps::resolve(&ops_table, &paper_registry()).unwrap();
        (pair, ops_table, sigma, ops)
    }

    /// Figure 3 of the paper: enforcing ψ1 then ψ2 on D0 yields the stable
    /// instance D2 where both B and C are identified.
    #[test]
    fn figure_3_chase() {
        let (pair, _t, sigma, ops) = abc_setting();
        let mut i0 = Relation::new(pair.left().clone());
        i0.push_strs(1, &["a", "b1", "c1"]);
        let mut i0r = Relation::new(pair.right().clone());
        i0r.push_strs(2, &["a", "b2", "c2"]);
        let d0 = InstancePair::new(pair.clone(), i0, i0r);

        assert!(!is_stable(&d0, &sigma, &ops));
        let outcome = enforce(&d0, &sigma, &ops);
        let d2 = &outcome.result;
        assert!(is_stable(d2, &sigma, &ops));
        assert!(satisfies_all(&d0, d2, &sigma, &ops));
        // s1[B] = s2[B] and s1[C] = s2[C] in D2.
        let s1 = &d2.left().tuples()[0];
        let s2 = &d2.right().tuples()[0];
        assert_eq!(s1.get(1), s2.get(1));
        assert_eq!(s1.get(2), s2.get(2));
        // The chase needed the cascade: ψ2 fires only after ψ1's merge.
        assert!(outcome.merges >= 2);
        assert!(outcome.rounds >= 2);
    }

    /// Soundness of deduction on the chase: the deduced ψ3 (A=A → C⇌C)
    /// holds on (D0, D') even though D0 ⊭ it statically — Example 3.3.
    #[test]
    fn deduced_md_holds_on_stable_instance() {
        let (pair, mut table, sigma, _) = abc_setting();
        let psi3 = parse_md_set("R[A] = R[A] -> R[C] <=> R[C]\n", &pair, &mut table).unwrap();
        let ops = RuntimeOps::resolve(&table, &paper_registry()).unwrap();
        assert!(matchrules_core::deduction::deduces(&sigma, &psi3[0]));

        let mut i0 = Relation::new(pair.left().clone());
        i0.push_strs(1, &["a", "b1", "c1"]);
        let mut i0r = Relation::new(pair.right().clone());
        i0r.push_strs(2, &["a", "b2", "c2"]);
        let d0 = InstancePair::new(pair.clone(), i0, i0r);
        let d_prime = enforce(&d0, &sigma, &ops).result;
        assert!(satisfies(&d0, &d_prime, &psi3[0], &ops));
    }

    /// Enforcing ϕ2 on Fig. 1 identifies t1[addr] with t4[post] — the
    /// Figure 2 walkthrough. The merged class keeps the informative full
    /// address, not the truncated "NJ".
    #[test]
    fn figure_2_walkthrough() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let phi2 = &setting.sigma[1]; // tel = phn → addr ⇌ post
        let outcome = enforce(&inst, std::slice::from_ref(phi2), &ops);
        let d_prime = outcome.result;
        let addr = setting.pair.left().attr("addr").unwrap();
        let post = setting.pair.right().attr("post").unwrap();
        let t1 = d_prime.left().by_id(fig1::ids::T1).unwrap();
        let t4 = d_prime.right().by_id(fig1::ids::T4).unwrap();
        assert_eq!(t1.get(addr), t4.get(post));
        assert_eq!(t1.get(addr), &Value::str("10 Oak Street, MH, NJ 07974"));
        assert!(satisfies(&inst, &d_prime, phi2, &ops));
    }

    /// Null cells are pairwise-distinct unknowns: enforcing nothing keeps
    /// them null, and merging a null with a value adopts the value.
    #[test]
    fn null_handling() {
        let r = Arc::new(Schema::text("R", &["k", "v"]).unwrap());
        let pair = SchemaPair::reflexive(r);
        let mut table = OperatorTable::new();
        let sigma = parse_md_set("R[k] = R[k] -> R[v] <=> R[v]\n", &pair, &mut table).unwrap();
        let ops = RuntimeOps::resolve(&table, &paper_registry()).unwrap();
        let mut l = Relation::new(pair.left().clone());
        l.push_strs(1, &["x", ""]);
        l.push_strs(2, &["y", ""]);
        let mut rr = Relation::new(pair.right().clone());
        rr.push_strs(3, &["x", "value"]);
        rr.push_strs(4, &["z", ""]);
        let d = InstancePair::new(pair, l, rr);
        let out = enforce(&d, &sigma, &ops);
        // Tuple 1 (k=x) merged its null v with "value".
        assert_eq!(out.result.left().by_id(1).unwrap().get(1), &Value::str("value"));
        // Tuple 2 (k=y) matched nothing; its null stays.
        assert!(out.result.left().by_id(2).unwrap().get(1).is_null());
        // Tuple 4's null (k=z) stays too: nulls never match each other.
        assert!(out.result.right().by_id(4).unwrap().get(1).is_null());
    }

    /// An instance that already satisfies Σ is a fixpoint: zero merges.
    #[test]
    fn stable_instance_is_fixpoint() {
        let (pair, _t, sigma, ops) = abc_setting();
        let mut l = Relation::new(pair.left().clone());
        l.push_strs(1, &["a", "b", "c"]);
        let mut r = Relation::new(pair.right().clone());
        r.push_strs(2, &["a", "b", "c"]);
        let d = InstancePair::new(pair, l, r);
        assert!(is_stable(&d, &sigma, &ops));
        let out = enforce(&d, &sigma, &ops);
        assert_eq!(out.merges, 0);
        assert_eq!(out.rounds, 1);
    }
}
