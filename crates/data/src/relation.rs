//! Relations, tuples and instance pairs.
//!
//! The paper's matching problem is stated over an *instance pair*
//! `D = (I1, I2)` of the schema pair `(R1, R2)`. Tuples carry the temporary
//! unique ids the dynamic semantics needs to track updated versions (§2.1,
//! "Extensions"): `D ⊑ D'` relates tuples by id.

use crate::value::Value;
use matchrules_core::schema::{AttrId, Schema, SchemaPair, Side};
use std::fmt;
use std::sync::Arc;

/// Stable tuple identifier, unique within its relation.
pub type TupleId = u64;

/// A tuple: id plus one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    id: TupleId,
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple; the arity is validated by [`Relation::push`].
    pub fn new(id: TupleId, values: Vec<Value>) -> Self {
        Tuple { id, values }
    }

    /// The tuple's id.
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// The value of attribute `attr`.
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr]
    }

    /// All values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

/// An instance of one relation schema.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty instance of `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        Relation { schema, tuples: Vec::new() }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Appends a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple's arity does not match the schema.
    pub fn push(&mut self, tuple: Tuple) {
        assert_eq!(
            tuple.values.len(),
            self.schema.arity(),
            "tuple arity does not match schema {}",
            self.schema.name()
        );
        self.tuples.push(tuple);
    }

    /// Convenience: appends a tuple from string slices, with `""` mapped to
    /// `Null`.
    pub fn push_strs(&mut self, id: TupleId, values: &[&str]) {
        let values = values
            .iter()
            .map(|s| if s.is_empty() || *s == "null" { Value::Null } else { Value::str(s) })
            .collect();
        self.push(Tuple::new(id, values));
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Looks a tuple up by id (linear scan — instances are append-only and
    /// id-dense in practice; hot paths index by position instead).
    pub fn by_id(&self, id: TupleId) -> Option<&Tuple> {
        self.tuples.iter().find(|t| t.id == id)
    }

    /// Average character length per attribute — the `lt` statistic feeding
    /// the §5 cost model.
    pub fn avg_lengths(&self) -> Vec<f64> {
        let arity = self.schema.arity();
        let mut sums = vec![0usize; arity];
        for t in &self.tuples {
            for (i, v) in t.values.iter().enumerate() {
                sums[i] += v.char_len();
            }
        }
        let n = self.tuples.len().max(1) as f64;
        sums.into_iter().map(|s| s as f64 / n).collect()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} tuples)", self.schema.name(), self.tuples.len())?;
        for t in &self.tuples {
            write!(f, "  #{}:", t.id)?;
            for v in t.values() {
                write!(f, " {v} |")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// An instance pair `D = (I1, I2)` of a schema pair.
#[derive(Debug, Clone)]
pub struct InstancePair {
    pair: SchemaPair,
    left: Relation,
    right: Relation,
}

impl InstancePair {
    /// Builds the pair; the relations must instantiate the pair's schemas.
    ///
    /// # Panics
    ///
    /// Panics on schema mismatch.
    pub fn new(pair: SchemaPair, left: Relation, right: Relation) -> Self {
        assert!(
            Arc::ptr_eq(left.schema(), pair.left()) || left.schema().name() == pair.left().name(),
            "left relation does not instantiate the pair's left schema"
        );
        assert!(
            Arc::ptr_eq(right.schema(), pair.right())
                || right.schema().name() == pair.right().name(),
            "right relation does not instantiate the pair's right schema"
        );
        InstancePair { pair, left, right }
    }

    /// The schema pair.
    pub fn schema_pair(&self) -> &SchemaPair {
        &self.pair
    }

    /// The left instance `I1`.
    pub fn left(&self) -> &Relation {
        &self.left
    }

    /// The right instance `I2`.
    pub fn right(&self) -> &Relation {
        &self.right
    }

    /// The instance on `side`.
    pub fn relation(&self, side: Side) -> &Relation {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::schema::Schema;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::text("R", &["a", "b"]).unwrap())
    }

    #[test]
    fn push_and_access() {
        let mut rel = Relation::new(schema());
        rel.push_strs(1, &["x", "y"]);
        rel.push_strs(2, &["", "z"]);
        assert_eq!(rel.len(), 2);
        assert!(!rel.is_empty());
        assert_eq!(rel.tuples()[0].get(0), &Value::str("x"));
        assert!(rel.tuples()[1].get(0).is_null());
        assert_eq!(rel.by_id(2).unwrap().get(1), &Value::str("z"));
        assert!(rel.by_id(99).is_none());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(1, vec![Value::str("only one")]));
    }

    #[test]
    fn null_keyword_maps_to_null() {
        let mut rel = Relation::new(schema());
        rel.push_strs(1, &["null", "ok"]);
        assert!(rel.tuples()[0].get(0).is_null());
    }

    #[test]
    fn avg_lengths() {
        let mut rel = Relation::new(schema());
        rel.push_strs(1, &["ab", "xyzw"]);
        rel.push_strs(2, &["abcd", ""]);
        let lens = rel.avg_lengths();
        assert!((lens[0] - 3.0).abs() < 1e-12);
        assert!((lens[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn instance_pair_wiring() {
        let s = schema();
        let pair = SchemaPair::reflexive(s.clone());
        let mut l = Relation::new(s.clone());
        l.push_strs(1, &["x", "y"]);
        let r = Relation::new(s);
        let d = InstancePair::new(pair, l, r);
        assert_eq!(d.left().len(), 1);
        assert_eq!(d.right().len(), 0);
        assert_eq!(d.relation(Side::Left).len(), 1);
    }

    #[test]
    fn display_renders() {
        let mut rel = Relation::new(schema());
        rel.push_strs(1, &["x", ""]);
        let text = rel.to_string();
        assert!(text.contains("R (1 tuples)"));
        assert!(text.contains("null"));
    }
}
