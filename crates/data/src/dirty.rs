//! Duplicate and error injection — the §6.2 protocol.
//!
//! > "We then added 80% of duplicates, by copying existing tuples and
//! > changing some of their attributes that are not in Y1 or Y2. Then more
//! > errors were introduced to each attribute in the duplicates, with
//! > probability 80%, ranging from small typographical changes to complete
//! > change of the attribute."
//!
//! The error *ladder* interpolates between those extremes, weighted toward
//! recoverable noise (what similarity operators are for):
//! typos → format variations (initials, USPS abbreviations, phone
//! formatting) → token truncation → nulls → complete replacement.
//!
//! Ground truth is carried alongside the generated instances, so precision,
//! recall, pairs completeness and reduction ratio "can be accurately
//! computed … by checking the truth held by the generator" (§6.2).

use crate::catalog;
use crate::gen::{self, CleanData, EntityId};
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use matchrules_core::relative_key::Target;
use matchrules_core::schema::{AttrId, AttrKind, SchemaPair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration of the §6.2 noise protocol.
#[derive(Debug, Clone)]
pub struct NoiseConfig {
    /// Fraction of duplicates added on top of the base tuples (paper: 0.8).
    pub duplicate_rate: f64,
    /// Per-attribute error probability inside a duplicate (paper: 0.8).
    pub attr_error_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> Self {
        NoiseConfig { duplicate_rate: 0.8, attr_error_prob: 0.8, seed: 0xD1_57 }
    }
}

/// Which ground truth a generated instance pair carries.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    credit_entities: Vec<EntityId>,
    billing_entities: Vec<EntityId>,
    credit_per_entity: HashMap<EntityId, u32>,
}

impl GroundTruth {
    fn new(credit_entities: Vec<EntityId>, billing_entities: Vec<EntityId>) -> Self {
        let mut credit_per_entity: HashMap<EntityId, u32> = HashMap::new();
        for &e in &credit_entities {
            *credit_per_entity.entry(e).or_insert(0) += 1;
        }
        GroundTruth { credit_entities, billing_entities, credit_per_entity }
    }

    /// Entity of the credit tuple at `idx`.
    pub fn credit_entity(&self, idx: usize) -> EntityId {
        self.credit_entities[idx]
    }

    /// Entity of the billing tuple at `idx`.
    pub fn billing_entity(&self, idx: usize) -> EntityId {
        self.billing_entities[idx]
    }

    /// Whether credit tuple `c` and billing tuple `b` (by position) refer to
    /// the same card holder.
    pub fn is_match(&self, credit_idx: usize, billing_idx: usize) -> bool {
        self.credit_entities[credit_idx] == self.billing_entities[billing_idx]
    }

    /// Total number of true (credit, billing) match pairs — the `nM` of the
    /// paper's pairs-completeness metric.
    pub fn total_true_pairs(&self) -> usize {
        self.billing_entities
            .iter()
            .map(|e| self.credit_per_entity.get(e).copied().unwrap_or(0) as usize)
            .sum()
    }

    /// Number of credit tuples.
    pub fn credit_len(&self) -> usize {
        self.credit_entities.len()
    }

    /// Number of billing tuples.
    pub fn billing_len(&self) -> usize {
        self.billing_entities.len()
    }

    /// Enumerates labeled `(credit_idx, billing_idx, is_match)` pairs — the
    /// bridge that turns the §6.2 noise-ladder generators into labeled-data
    /// factories for rule refinement. Every true pair is emitted as a
    /// positive; for each billing tuple, the `negatives_per_positive` next
    /// credit tuples (cyclically, skipping true matches) are emitted as
    /// negatives. Deterministic: no RNG, ordered by billing index.
    pub fn labeled_pairs(&self, negatives_per_positive: usize) -> Vec<(usize, usize, bool)> {
        let n_credit = self.credit_len();
        let mut out = Vec::new();
        for (b, _) in self.billing_entities.iter().enumerate() {
            let mut anchor = None;
            for c in 0..n_credit {
                if self.is_match(c, b) {
                    out.push((c, b, true));
                    anchor.get_or_insert(c);
                }
            }
            let Some(anchor) = anchor else { continue };
            let mut emitted = 0usize;
            let mut c = (anchor + 1) % n_credit.max(1);
            while emitted < negatives_per_positive && c != anchor {
                if !self.is_match(c, b) {
                    out.push((c, b, false));
                    emitted += 1;
                }
                c = (c + 1) % n_credit;
            }
        }
        out
    }
}

/// A generated dirty dataset: instances plus ground truth.
#[derive(Debug, Clone)]
pub struct DirtyData {
    /// The credit instance.
    pub credit: Relation,
    /// The billing instance (base tuples + noisy duplicates, shuffled).
    pub billing: Relation,
    /// The generator's truth.
    pub truth: GroundTruth,
}

/// Generates the full §6 dataset: `persons` base billing tuples (one per
/// person, mirroring a credit tuple each) plus `duplicate_rate` noisy
/// duplicates. The format-aware error ladder dispatches on the schemas'
/// [`AttrKind`] metadata, not on attribute names.
///
/// The *clean-data* generator underneath is specific to the §6 extended
/// schemas (13/21 attributes, [`gen::generate_clean`]'s tuple layout) and
/// panics on other pairs; the noise protocol itself ([`dirty_from_clean`])
/// works on any pair whose `CleanData` you provide.
pub fn generate_dirty(
    pair: &SchemaPair,
    target: &Target,
    persons: usize,
    cfg: &NoiseConfig,
) -> DirtyData {
    let clean = gen::generate_clean(pair, persons, cfg.seed);
    dirty_from_clean(pair, target, clean, cfg)
}

/// Applies the duplicate/noise protocol to an existing clean dataset.
pub fn dirty_from_clean(
    pair: &SchemaPair,
    target: &Target,
    clean: CleanData,
    cfg: &NoiseConfig,
) -> DirtyData {
    assert!((0.0..=10.0).contains(&cfg.duplicate_rate), "unreasonable duplicate rate");
    assert!((0.0..=1.0).contains(&cfg.attr_error_prob), "error probability must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBAD_C0FFEE);
    let billing_schema = pair.right();

    // Identity attributes (the Y2 list) get the error ladder; the others
    // are simply re-rolled on duplicates ("changing some of their
    // attributes that are not in Y1 or Y2").
    let y2: Vec<AttrId> = target.y2().to_vec();
    let kinds: Vec<AttrKind> =
        (0..billing_schema.arity()).map(|i| billing_schema.attr_kind(i)).collect();

    let base_count = clean.billing.len();
    let n_dups = (cfg.duplicate_rate * base_count as f64).round() as usize;

    let mut billing = clean.billing.clone();
    let mut entities = clean.billing_entities.clone();
    for dup in 0..n_dups {
        let src_idx = rng.random_range(0..base_count);
        let src = &clean.billing.tuples()[src_idx];
        let person = &clean.persons[entities[src_idx] as usize];
        let mut values: Vec<Value> = src.values().to_vec();

        // Fresh purchase payload (non-Y attributes).
        let purchase = gen::random_purchase(&mut rng, person);
        let fresh = gen::billing_tuple(0, person, &purchase);
        for (attr, slot) in values.iter_mut().enumerate() {
            if !y2.contains(&attr) {
                *slot = fresh.get(attr).clone();
            }
        }

        // Error ladder on the identity attributes.
        for &attr in &y2 {
            if rng.random_bool(cfg.attr_error_prob) {
                values[attr] = corrupt(&mut rng, &values[attr], kinds[attr]);
            }
        }

        billing.push(Tuple::new((base_count + dup) as u64, values));
        entities.push(entities[src_idx]);
    }

    // Shuffle the billing side so duplicates are not adjacent by
    // construction (blocking/windowing must earn their keep).
    let mut order: Vec<usize> = (0..billing.len()).collect();
    order.shuffle(&mut rng);
    let mut shuffled = Relation::new(billing_schema.clone());
    let mut shuffled_entities = Vec::with_capacity(entities.len());
    for &i in &order {
        shuffled.push(billing.tuples()[i].clone());
        shuffled_entities.push(entities[i]);
    }

    DirtyData {
        credit: clean.credit,
        billing: shuffled,
        truth: GroundTruth::new(clean.credit_entities, shuffled_entities),
    }
}

/// One application of the error ladder.
fn corrupt(rng: &mut StdRng, value: &Value, kind: AttrKind) -> Value {
    let Some(s) = value.as_str() else {
        // Nulls can only be "completely changed".
        return replace_value(rng, kind);
    };
    // "ranging from small typographical changes to complete change of the
    // attribute" — the ladder is dominated by recoverable typos, with a
    // tail of representation changes, truncations, nulls and replacements.
    let roll: f64 = rng.random();
    if roll < 0.70 {
        Value::from(typo(rng, s))
    } else if roll < 0.80 {
        format_variation(rng, s, kind)
    } else if roll < 0.85 {
        truncate(rng, s)
    } else if roll < 0.90 {
        Value::Null
    } else {
        replace_value(rng, kind)
    }
}

/// 1–2 random character edits (insert / delete / substitute / transpose).
/// Digit strings receive digit edits so phones/zips stay digit-shaped.
fn typo(rng: &mut StdRng, s: &str) -> String {
    let digity =
        !s.is_empty() && s.chars().filter(|c| c.is_ascii_digit()).count() * 2 >= s.chars().count();
    let mut chars: Vec<char> = s.chars().collect();
    let edits = if chars.len() > 8 && rng.random_bool(0.3) { 2 } else { 1 };
    for _ in 0..edits {
        if chars.is_empty() {
            chars.push(random_symbol(rng, digity));
            continue;
        }
        let pos = rng.random_range(0..chars.len());
        match rng.random_range(0..4u8) {
            0 => chars.insert(pos, random_symbol(rng, digity)),
            1 => {
                chars.remove(pos);
            }
            2 => chars[pos] = random_symbol(rng, digity),
            _ => {
                if pos + 1 < chars.len() {
                    chars.swap(pos, pos + 1);
                } else if pos > 0 {
                    chars.swap(pos - 1, pos);
                }
            }
        }
    }
    chars.into_iter().collect()
}

fn random_symbol(rng: &mut StdRng, digit: bool) -> char {
    if digit {
        (b'0' + rng.random_range(0..10u8)) as char
    } else {
        (b'a' + rng.random_range(0..26u8)) as char
    }
}

/// Domain-specific representation changes that standardization and token
/// metrics can often still recover.
fn format_variation(rng: &mut StdRng, s: &str, kind: AttrKind) -> Value {
    match kind {
        AttrKind::GivenName => {
            // "Mark" → "M." (Fig. 1's t5/t6).
            let initial = s.chars().next().map(|c| format!("{c}.")).unwrap_or_default();
            Value::from(initial)
        }
        AttrKind::Street => {
            // USPS abbreviation of the suffix: "10 Oak Street" → "10 Oak St".
            let mut tokens: Vec<&str> = s.split(' ').collect();
            if let Some(last) = tokens.last_mut() {
                *last = catalog::street_abbrev(last);
            }
            Value::from(tokens.join(" "))
        }
        AttrKind::Phone => {
            // Keep only one component, as in Fig. 1's "908" / "1111111".
            let parts: Vec<&str> = s.split('-').collect();
            if parts.len() > 1 {
                Value::str(parts[rng.random_range(0..parts.len())])
            } else {
                Value::str(s)
            }
        }
        AttrKind::Email => {
            // Drop the domain: "mc@gm.com" → "mc".
            Value::str(s.split('@').next().unwrap_or(s))
        }
        AttrKind::City | AttrKind::County => {
            // Informal abbreviation: first letters of the tokens ("Murray
            // Hill" → "MH", Fig. 1).
            let initials: String = s.split(' ').filter_map(|t| t.chars().next()).collect();
            if initials.len() >= 2 {
                Value::from(initials)
            } else {
                Value::from(typo(rng, s))
            }
        }
        AttrKind::Gender => Value::Null,
        _ => Value::from(typo(rng, s)),
    }
}

/// Keeps a random prefix or suffix of the tokens.
fn truncate(rng: &mut StdRng, s: &str) -> Value {
    let tokens: Vec<&str> = s.split(' ').collect();
    if tokens.len() <= 1 {
        let chars: Vec<char> = s.chars().collect();
        let keep = chars.len().div_ceil(2);
        return Value::from(chars[..keep].iter().collect::<String>());
    }
    let keep = rng.random_range(1..tokens.len());
    if rng.random_bool(0.5) {
        Value::from(tokens[..keep].join(" "))
    } else {
        Value::from(tokens[tokens.len() - keep..].join(" "))
    }
}

/// Complete change: a fresh draw from the attribute's domain.
fn replace_value(rng: &mut StdRng, kind: AttrKind) -> Value {
    let pick = |rng: &mut StdRng, pool: &[&str]| -> String {
        pool[rng.random_range(0..pool.len())].to_owned()
    };
    match kind {
        AttrKind::GivenName => Value::from(pick(rng, catalog::FIRST_NAMES)),
        AttrKind::Surname => Value::from(pick(rng, catalog::LAST_NAMES)),
        AttrKind::Street => Value::from(format!(
            "{} {} {}",
            rng.random_range(1..9999u32),
            pick(rng, catalog::STREET_NAMES),
            pick(rng, catalog::STREET_SUFFIXES)
        )),
        AttrKind::City => {
            Value::from(catalog::LOCALITIES[rng.random_range(0..catalog::LOCALITIES.len())].city)
        }
        AttrKind::County => {
            Value::from(catalog::LOCALITIES[rng.random_range(0..catalog::LOCALITIES.len())].county)
        }
        AttrKind::State => {
            Value::from(catalog::LOCALITIES[rng.random_range(0..catalog::LOCALITIES.len())].state)
        }
        AttrKind::Zip => Value::from(format!("{:05}", rng.random_range(0..100_000u32))),
        AttrKind::Phone => Value::from(format!(
            "{}-{:07}",
            rng.random_range(201..990u32),
            rng.random_range(0..10_000_000u32)
        )),
        AttrKind::Email => Value::from(format!(
            "{}{}@{}",
            pick(rng, catalog::FIRST_NAMES).to_lowercase(),
            rng.random_range(0..1000u32),
            pick(rng, catalog::EMAIL_DOMAINS)
        )),
        AttrKind::Gender => Value::from(if rng.random_bool(0.5) { "M" } else { "F" }),
        // Ids, dates, money and free text have no semantic replacement pool.
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;

    fn small_dirty(persons: usize, seed: u64) -> (paper::PaperSetting, DirtyData) {
        let setting = paper::extended();
        let cfg = NoiseConfig { seed, ..NoiseConfig::default() };
        let data = generate_dirty(&setting.pair, &setting.target, persons, &cfg);
        (setting, data)
    }

    #[test]
    fn sizes_follow_the_protocol() {
        let (_s, data) = small_dirty(100, 1);
        assert_eq!(data.credit.len(), 100);
        assert_eq!(data.billing.len(), 180, "100 base + 80% duplicates");
        assert_eq!(data.truth.credit_len(), 100);
        assert_eq!(data.truth.billing_len(), 180);
        assert_eq!(data.truth.total_true_pairs(), 180);
    }

    #[test]
    fn truth_links_each_billing_to_its_person() {
        let (setting, data) = small_dirty(50, 2);
        let card_c = setting.pair.left().attr("c#").unwrap();
        let card_b = setting.pair.right().attr("c#").unwrap();
        // Base tuples (un-noised c#) agree with their credit tuple's card.
        let mut verified = 0;
        for (bi, bt) in data.billing.tuples().iter().enumerate() {
            let entity = data.truth.billing_entity(bi) as usize;
            let ct = &data.credit.tuples()[entity];
            assert!(data.truth.is_match(entity, bi));
            if bt.get(card_b) == ct.get(card_c) {
                verified += 1;
            }
        }
        // c# is not in Y2, so duplicates re-roll the purchase payload but
        // keep the person's card number: every tuple should agree.
        assert_eq!(verified, data.billing.len());
    }

    #[test]
    fn duplicates_carry_errors_but_bases_are_clean() {
        let (setting, data) = small_dirty(40, 3);
        let fn_b = setting.pair.right().attr("FN").unwrap();
        let fn_c = setting.pair.left().attr("FN").unwrap();
        let mut clean = 0usize;
        let mut dirty = 0usize;
        for (bi, bt) in data.billing.tuples().iter().enumerate() {
            let entity = data.truth.billing_entity(bi) as usize;
            let ct = &data.credit.tuples()[entity];
            if bt.get(fn_b) == ct.get(fn_c) {
                clean += 1;
            } else {
                dirty += 1;
            }
        }
        // All 40 base tuples agree; among the 32 duplicates roughly 80%
        // corrupt FN. Allow slack for the random draw.
        assert!(clean >= 40, "bases stay clean (clean={clean})");
        assert!(dirty >= 10, "duplicates carry noise (dirty={dirty})");
    }

    #[test]
    fn labeled_pairs_cover_truth_and_stay_deterministic() {
        let (_s, data) = small_dirty(40, 5);
        let labels = data.truth.labeled_pairs(2);
        let positives = labels.iter().filter(|&&(_, _, m)| m).count();
        let negatives = labels.iter().filter(|&&(_, _, m)| !m).count();
        assert_eq!(positives, data.truth.total_true_pairs());
        assert_eq!(negatives, 2 * data.truth.billing_len());
        for &(c, b, is_match) in &labels {
            assert_eq!(data.truth.is_match(c, b), is_match);
        }
        assert_eq!(labels, data.truth.labeled_pairs(2), "pure function of the truth");
        assert!(data.truth.labeled_pairs(0).iter().all(|&(_, _, m)| m));
    }

    #[test]
    fn generation_is_deterministic() {
        let (_s1, d1) = small_dirty(30, 7);
        let (_s2, d2) = small_dirty(30, 7);
        for (a, b) in d1.billing.tuples().iter().zip(d2.billing.tuples()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_rates_disable_noise() {
        let setting = paper::extended();
        let cfg = NoiseConfig { duplicate_rate: 0.0, attr_error_prob: 0.0, seed: 1 };
        let data = generate_dirty(&setting.pair, &setting.target, 25, &cfg);
        assert_eq!(data.billing.len(), 25);
    }

    #[test]
    fn corruption_changes_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = Value::str("10 Oak Street");
        let mut changed = 0;
        for _ in 0..50 {
            if corrupt(&mut rng, &v, AttrKind::Street) != v {
                changed += 1;
            }
        }
        assert!(changed >= 45, "corruption almost always changes the value");
    }

    #[test]
    fn typo_editing_distance_is_small() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let t = typo(&mut rng, "Clifford");
            let d = matchrules_simdist::edit::damerau_levenshtein("Clifford", &t);
            assert!(d <= 2, "typo {t:?} drifted {d} edits");
        }
    }

    #[test]
    fn format_variations_match_fig1_patterns() {
        let mut rng = StdRng::seed_from_u64(17);
        assert_eq!(format_variation(&mut rng, "Mark", AttrKind::GivenName), Value::str("M."));
        assert_eq!(
            format_variation(&mut rng, "10 Oak Street", AttrKind::Street),
            Value::str("10 Oak St")
        );
        assert_eq!(format_variation(&mut rng, "mc@gm.com", AttrKind::Email), Value::str("mc"));
        let phone = format_variation(&mut rng, "908-1111111", AttrKind::Phone);
        assert!(phone == Value::str("908") || phone == Value::str("1111111"));
        assert_eq!(format_variation(&mut rng, "Murray Hill", AttrKind::City), Value::str("MH"));
    }
}
