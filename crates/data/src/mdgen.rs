//! Random MD generation for the scalability experiments (§6.1).
//!
//! > "The MDs used in these experiments were produced by a generator. Given
//! > schemas (R1, R2) and a number l, the generator randomly produces a set
//! > Σ of l MDs over the schemas."
//!
//! Generated MDs draw their attribute pairs from the aligned pair pool
//! `(R1.a_i, R2.b_i)`; RHS pairs are biased toward the target lists so that
//! deduction chains reach the `(Y1, Y2)` identification the way hand-written
//! rule sets do.

use matchrules_core::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use matchrules_core::operators::{OperatorId, OperatorTable};
use matchrules_core::relative_key::Target;
use matchrules_core::schema::{Schema, SchemaPair};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration of the random MD generator.
#[derive(Debug, Clone)]
pub struct MdGenConfig {
    /// Number of MDs to generate (`card(Σ)`).
    pub count: usize,
    /// Arity of each of the two generated schemas (the attribute-pair pool).
    pub arity: usize,
    /// Length of the `(Y1, Y2)` target lists (`|Y1|` in Fig. 8).
    pub y_len: usize,
    /// Number of non-equality similarity operators to draw from.
    pub sim_ops: usize,
    /// Maximum LHS length.
    pub max_lhs: usize,
    /// Maximum RHS length.
    pub max_rhs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MdGenConfig {
    /// The Fig. 8 setting: schemas wide enough for the pair pool, 4
    /// similarity operators, LHS up to 3 atoms, RHS up to 2 pairs.
    pub fn fig8(count: usize, y_len: usize, seed: u64) -> Self {
        MdGenConfig {
            count,
            arity: (2 * y_len).max(16),
            y_len,
            sim_ops: 4,
            max_lhs: 3,
            max_rhs: 2,
            seed,
        }
    }
}

/// A generated reasoning setting: schemas, operators, Σ and the target.
#[derive(Debug, Clone)]
pub struct GeneratedSetting {
    /// The generated schema pair.
    pub pair: SchemaPair,
    /// Operator table (equality + `sim_ops` similarity operators).
    pub ops: OperatorTable,
    /// The generated MDs.
    pub sigma: Vec<MatchingDependency>,
    /// The `(Y1, Y2)` target for findRCKs.
    pub target: Target,
}

/// Runs the generator.
///
/// # Panics
///
/// Panics when `y_len > arity`, or when a size parameter is zero.
pub fn generate(cfg: &MdGenConfig) -> GeneratedSetting {
    assert!(cfg.count >= 1 && cfg.arity >= 1 && cfg.y_len >= 1);
    assert!(cfg.y_len <= cfg.arity, "target cannot exceed the pair pool");
    assert!(cfg.max_lhs >= 1 && cfg.max_rhs >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let a_names: Vec<String> = (0..cfg.arity).map(|i| format!("a{i}")).collect();
    let b_names: Vec<String> = (0..cfg.arity).map(|i| format!("b{i}")).collect();
    let r1 = Arc::new(
        Schema::text("R1", &a_names.iter().map(String::as_str).collect::<Vec<_>>())
            .expect("generated schema"),
    );
    let r2 = Arc::new(
        Schema::text("R2", &b_names.iter().map(String::as_str).collect::<Vec<_>>())
            .expect("generated schema"),
    );
    let pair = SchemaPair::new(r1, r2);

    let mut ops = OperatorTable::new();
    let sim_ids: Vec<OperatorId> = (0..cfg.sim_ops).map(|i| ops.intern(&format!("≈{i}"))).collect();

    let target = Target::new(&pair, (0..cfg.y_len).collect(), (0..cfg.y_len).collect())
        .expect("aligned target");

    let mut pool: Vec<usize> = (0..cfg.arity).collect();
    let mut sigma = Vec::with_capacity(cfg.count);
    for _ in 0..cfg.count {
        let lhs_len = rng.random_range(1..=cfg.max_lhs);
        let rhs_len = rng.random_range(1..=cfg.max_rhs);
        pool.shuffle(&mut rng);
        let lhs: Vec<SimilarityAtom> = pool[..lhs_len]
            .iter()
            .map(|&i| {
                let op = if sim_ids.is_empty() || rng.random_bool(0.5) {
                    OperatorId::EQ
                } else {
                    sim_ids[rng.random_range(0..sim_ids.len())]
                };
                SimilarityAtom::new(i, i, op)
            })
            .collect();
        // Bias RHS pairs into the target so chains reach (Y1, Y2).
        let rhs: Vec<IdentPair> = (0..rhs_len)
            .map(|_| {
                let i = if rng.random_bool(0.7) {
                    rng.random_range(0..cfg.y_len)
                } else {
                    rng.random_range(0..cfg.arity)
                };
                IdentPair::new(i, i)
            })
            .collect();
        sigma
            .push(MatchingDependency::new(&pair, lhs, rhs).expect("generated MDs are well-formed"));
    }
    GeneratedSetting { pair, ops, sigma, target }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::cost::CostModel;
    use matchrules_core::rck::find_rcks;

    #[test]
    fn generates_requested_count() {
        let s = generate(&MdGenConfig::fig8(50, 6, 1));
        assert_eq!(s.sigma.len(), 50);
        assert_eq!(s.target.len(), 6);
        assert!(s.ops.len() >= 5, "equality + 4 similarity operators");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&MdGenConfig::fig8(20, 8, 7));
        let b = generate(&MdGenConfig::fig8(20, 8, 7));
        assert_eq!(a.sigma, b.sigma);
        let c = generate(&MdGenConfig::fig8(20, 8, 8));
        assert_ne!(a.sigma, c.sigma);
    }

    #[test]
    fn mds_are_well_formed() {
        let s = generate(&MdGenConfig::fig8(100, 10, 3));
        for md in &s.sigma {
            assert!(!md.lhs().is_empty());
            assert!(!md.rhs().is_empty());
            assert!(md.lhs().len() <= 3);
            assert!(md.rhs().len() <= 2);
        }
    }

    /// The generated settings must admit RCK discovery (Fig. 8(c)): even a
    /// modest Σ yields more keys than just the trivial one.
    #[test]
    fn generated_sigma_supports_rck_deduction() {
        let s = generate(&MdGenConfig::fig8(40, 6, 11));
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&s.sigma, &s.target, 20, &mut cost);
        assert!(
            outcome.keys.len() > 1,
            "expected deduced keys beyond the trivial one, got {}",
            outcome.keys.len()
        );
    }
}
