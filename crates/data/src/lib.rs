//! # matchrules-data
//!
//! Data substrate for the `matchrules` reproduction of Fan et al.,
//! *"Reasoning about Record Matching Rules"* (VLDB 2009):
//!
//! * [`value`] / [`relation`] — values, tuples, relations and instance
//!   pairs `D = (I1, I2)`;
//! * [`eval`] — binding symbolic similarity operators to executable metrics
//!   and evaluating MD atoms on tuples;
//! * [`enforce`] — the **dynamic semantics** of MDs as an executable chase:
//!   stable instances, `(D, D') |= φ` checking;
//! * [`fig1`] — the paper's Figure 1 instance;
//! * [`catalog`] / [`gen`] / [`dirty`] — the §6 experimental data: synthetic
//!   card holders on the extended 13/21-attribute schemas, plus the 80%
//!   duplicates / 80% per-attribute error protocol with generator-held
//!   ground truth;
//! * [`mdgen`] — the random MD generator of the §6.1 scalability study;
//! * [`unionfind`] — disjoint sets, shared by the chase and the matchers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod dirty;
pub mod enforce;
pub mod eval;
pub mod fig1;
pub mod gen;
pub mod mdgen;
pub mod prep;
pub mod relation;
pub mod unionfind;
pub mod value;

pub use dirty::{DirtyData, GroundTruth, NoiseConfig};
pub use eval::{paper_registry, RuntimeOps};
pub use relation::{InstancePair, Relation, Tuple, TupleId};
pub use unionfind::UnionFind;
pub use value::Value;
