//! Disjoint-set (union-find) with path halving and union by size.
//!
//! Two consumers: the enforcement chase (value classes merged by the
//! matching operator `⇌`) and the matchers (transitive closure of pairwise
//! match decisions, as in merge/purge \[20\]).

/// A disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    classes: usize,
}

impl UnionFind {
    /// `len` singleton classes.
    pub fn new(len: usize) -> Self {
        UnionFind { parent: (0..len as u32).collect(), size: vec![1; len], classes: len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Adds a fresh singleton, returning its index.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.size.push(1);
        self.classes += 1;
        id
    }

    /// The representative of `x`'s class (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x as usize
    }

    /// Read-only find (no compression) for shared contexts.
    pub fn find_const(&self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] as usize != x {
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merges the classes of `a` and `b`; returns `true` when they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.classes -= 1;
        true
    }

    /// Whether `a` and `b` are in the same class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Groups all elements by representative, in first-seen order.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        use std::collections::HashMap;
        let mut index: HashMap<usize, usize> = HashMap::new();
        let mut out: Vec<Vec<usize>> = Vec::new();
        for x in 0..self.parent.len() {
            let root = self.find(x);
            let slot = *index.entry(root).or_insert_with(|| {
                out.push(Vec::new());
                out.len() - 1
            });
            out[slot].push(x);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.class_count(), 5);
        assert!(!uf.is_empty());
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.class_count(), 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn find_is_idempotent_and_consistent() {
        let mut uf = UnionFind::new(8);
        uf.union(2, 5);
        uf.union(5, 7);
        let root = uf.find(2);
        assert_eq!(uf.find(5), root);
        assert_eq!(uf.find(7), root);
        assert_eq!(uf.find_const(7), root);
    }

    #[test]
    fn push_appends_singletons() {
        let mut uf = UnionFind::new(1);
        let id = uf.push();
        assert_eq!(id, 1);
        assert_eq!(uf.class_count(), 2);
        uf.union(0, 1);
        assert_eq!(uf.class_count(), 1);
    }

    #[test]
    fn groups_partition_everything() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(1, 4);
        let groups = uf.groups();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        assert_eq!(groups.len(), 4);
        assert!(groups.iter().any(|g| g.contains(&0) && g.contains(&3)));
    }

    #[test]
    fn union_by_size_keeps_larger_root() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(0, 2); // class of size 3
        let root = uf.find(0);
        uf.union(3, 0);
        assert_eq!(uf.find(3), root, "small class joins large class");
    }
}
