//! Property-based tests for the similarity metric substrate.

use matchrules_simdist::edit::{
    damerau_levenshtein, damerau_levenshtein_within, damerau_similarity, levenshtein,
    levenshtein_similarity, levenshtein_within,
};
use matchrules_simdist::filters::{CharBag, QgramSig, StringSig};
use matchrules_simdist::jaro::{jaro, jaro_winkler};
use matchrules_simdist::normalize::{digits_only, normalize_ws, standardize};
use matchrules_simdist::phonetic::soundex;
use matchrules_simdist::qgram::{dice, jaccard, overlap, QgramProfile};
use matchrules_simdist::token::{token_containment, token_jaccard};
use proptest::prelude::*;

proptest! {
    // ----- edit distances -----

    #[test]
    fn levenshtein_identity_of_indiscernibles(a in ".{0,12}", b in ".{0,12}") {
        let d = levenshtein(&a, &b);
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn levenshtein_bounded_by_longer_length(a in ".{0,12}", b in ".{0,12}") {
        let d = levenshtein(&a, &b);
        let max = a.chars().count().max(b.chars().count());
        prop_assert!(d <= max);
        prop_assert!(d >= a.chars().count().abs_diff(b.chars().count()));
    }

    #[test]
    fn banded_levenshtein_agrees_with_exact(a in "[a-e]{0,10}", b in "[a-e]{0,10}", bound in 0usize..12) {
        let exact = levenshtein(&a, &b);
        match levenshtein_within(&a, &b, bound) {
            Some(d) => {
                prop_assert_eq!(d, exact);
                prop_assert!(d <= bound);
            }
            None => prop_assert!(exact > bound),
        }
    }

    #[test]
    fn damerau_symmetric(a in ".{0,10}", b in ".{0,10}") {
        prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
    }

    #[test]
    fn single_transposition_costs_one(s in "[a-z]{2,10}", i in 0usize..8) {
        let chars: Vec<char> = s.chars().collect();
        let i = i % (chars.len() - 1);
        if chars[i] != chars[i + 1] {
            let mut swapped = chars.clone();
            swapped.swap(i, i + 1);
            let t: String = swapped.into_iter().collect();
            prop_assert_eq!(damerau_levenshtein(&s, &t), 1);
            prop_assert!(levenshtein(&s, &t) <= 2);
        }
    }

    #[test]
    fn similarities_are_unit_interval(a in ".{0,10}", b in ".{0,10}") {
        for s in [
            levenshtein_similarity(&a, &b),
            damerau_similarity(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
            dice(&a, &b, 2),
            jaccard(&a, &b, 2),
            overlap(&a, &b, 2),
            token_jaccard(&a, &b),
            token_containment(&a, &b),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "score {s} for {a:?}/{b:?}");
        }
    }

    // ----- q-grams -----

    #[test]
    fn qgram_profile_size(s in "[a-d]{0,12}", q in 1usize..4) {
        let p = QgramProfile::new(&s, q);
        let n = s.chars().count();
        // Padded length n + 2(q-1) yields n + q - 1 windows; the empty
        // string is never padded and has no grams at all.
        prop_assert_eq!(p.len(), if n == 0 { 0 } else { n + q - 1 });
        prop_assert_eq!(p.is_empty(), n == 0);
        prop_assert_eq!(p.q(), q);
    }

    #[test]
    fn dice_at_least_jaccard(a in "[a-d]{0,10}", b in "[a-d]{0,10}") {
        prop_assert!(dice(&a, &b, 2) + 1e-12 >= jaccard(&a, &b, 2));
    }

    // ----- phonetic -----

    #[test]
    fn soundex_shape(s in "[A-Za-z]{1,12}") {
        let code = soundex(&s).expect("alphabetic input encodes");
        prop_assert_eq!(code.len(), 4);
        let mut chars = code.chars();
        prop_assert!(chars.next().unwrap().is_ascii_uppercase());
        prop_assert!(chars.all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn soundex_case_insensitive(s in "[A-Za-z]{1,12}") {
        prop_assert_eq!(soundex(&s), soundex(&s.to_lowercase()));
        prop_assert_eq!(soundex(&s), soundex(&s.to_uppercase()));
    }

    // ----- normalization -----

    #[test]
    fn normalize_ws_is_idempotent(s in ".{0,24}") {
        let once = normalize_ws(&s);
        prop_assert_eq!(&normalize_ws(&once), &once);
        prop_assert!(!once.contains("  "));
    }

    #[test]
    fn standardize_is_idempotent(s in ".{0,24}") {
        let once = standardize(&s);
        prop_assert_eq!(&standardize(&once), &once);
    }

    #[test]
    fn digits_only_keeps_digits(s in ".{0,24}") {
        let d = digits_only(&s);
        prop_assert!(d.chars().all(|c| c.is_ascii_digit()));
        let count = s.chars().filter(char::is_ascii_digit).count();
        prop_assert_eq!(d.len(), count);
    }
}

// ----- banded-kernel equivalence and filter soundness -----
//
// The banded `*_within` kernels must agree with the exact distances for
// *every* bound — in particular at the boundary cases d == bound and
// d == bound + 1 — and no filter may ever reject a pair the DP would
// accept. Both suites run over narrow-alphabet ASCII (collision-heavy)
// and `.`-pattern strings, which mix multi-byte Unicode in.

proptest! {
    #[test]
    fn banded_levenshtein_agrees_with_exact_at_every_bound(
        a in "[a-c]{0,10}", b in "[a-c]{0,10}"
    ) {
        let exact = levenshtein(&a, &b);
        for bound in 0..=(exact + 2) {
            match levenshtein_within(&a, &b, bound) {
                Some(d) => {
                    prop_assert_eq!(d, exact, "{} vs {} bound {}", a, b, bound);
                    prop_assert!(d <= bound);
                }
                None => prop_assert!(exact > bound, "{} vs {} bound {}", a, b, bound),
            }
        }
    }

    #[test]
    fn banded_damerau_agrees_with_exact_at_every_bound(
        a in "[a-c]{0,10}", b in "[a-c]{0,10}"
    ) {
        let exact = damerau_levenshtein(&a, &b);
        for bound in 0..=(exact + 2) {
            match damerau_levenshtein_within(&a, &b, bound) {
                Some(d) => {
                    prop_assert_eq!(d, exact, "{} vs {} bound {}", a, b, bound);
                    prop_assert!(d <= bound);
                }
                None => prop_assert!(exact > bound, "{} vs {} bound {}", a, b, bound),
            }
        }
    }

    #[test]
    fn banded_kernels_agree_on_unicode(a in ".{0,10}", b in ".{0,10}") {
        let lev = levenshtein(&a, &b);
        let dl = damerau_levenshtein(&a, &b);
        for bound in [dl.saturating_sub(1), dl, dl + 1, lev, lev + 1] {
            prop_assert_eq!(
                damerau_levenshtein_within(&a, &b, bound),
                (dl <= bound).then_some(dl),
                "dl {:?} vs {:?} bound {}", a, b, bound
            );
            prop_assert_eq!(
                levenshtein_within(&a, &b, bound),
                (lev <= bound).then_some(lev),
                "lev {:?} vs {:?} bound {}", a, b, bound
            );
        }
    }

    /// The char-bag lower bound never exceeds the OSA distance (and hence
    /// never the Levenshtein distance either).
    #[test]
    fn bag_filter_lower_bounds_the_osa_distance(a in ".{0,12}", b in ".{0,12}") {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        let lb = CharBag::of_chars(&ac).distance_lower_bound(&CharBag::of_chars(&bc));
        prop_assert!(lb <= damerau_levenshtein(&a, &b), "{:?} vs {:?}: bag bound {}", a, b, lb);
    }

    /// The whole filter pipeline is sound for every q and bound: whenever
    /// it rejects, the OSA distance provably exceeds the bound — it never
    /// rejects a pair the DP would accept.
    #[test]
    fn prefilter_never_rejects_a_true_match(
        a in ".{0,12}", b in ".{0,12}", q in 1usize..4
    ) {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        let (sa, sb) = (StringSig::with_q(&ac, q), StringSig::with_q(&bc, q));
        let d = damerau_levenshtein(&a, &b);
        for bound in 0..=(d + 2) {
            let verdict = sa.prefilter(&sb, bound);
            if d <= bound {
                prop_assert_eq!(
                    verdict, None,
                    "filter rejected {:?} vs {:?} at q {} bound {} though d = {}", a, b, q, bound, d
                );
            }
            // Symmetry: the pipeline must not depend on argument order.
            prop_assert_eq!(verdict.is_some(), sb.prefilter(&sa, bound).is_some());
        }
    }

    /// The positional gram matching itself: matched count is bounded by
    /// both signature sizes and grows with the allowed shift.
    #[test]
    fn qgram_matching_is_monotone_in_shift(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        let (ga, gb) = (QgramSig::of_chars(&ac, 2), QgramSig::of_chars(&bc, 2));
        let mut last = 0;
        for shift in 0..6 {
            let m = ga.matches_within(&gb, shift);
            prop_assert!(m >= last, "matching shrank as shift grew");
            prop_assert!(m <= ga.len().min(gb.len()));
            last = m;
        }
    }
}
