//! Light-weight data standardization.
//!
//! The paper assumes (§2.1) that attribute pairs have been put into a common
//! domain "by data standardization". This module provides the small set of
//! transformations the examples rely on: case folding, whitespace collapsing,
//! punctuation stripping and digit extraction (for phone numbers).

/// Normalizes a string for comparison: trims, lower-cases and collapses any
/// run of whitespace into a single space.
///
/// ```
/// use matchrules_simdist::normalize::normalize_ws;
/// assert_eq!(normalize_ws("  10 Oak   Street "), "10 oak street");
/// ```
pub fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut pending_space = false;
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            pending_space = true;
        } else {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
        }
    }
    out
}

/// Strips every character that is not alphanumeric or whitespace.
///
/// ```
/// use matchrules_simdist::normalize::strip_punct;
/// assert_eq!(strip_punct("O'Brien, Jr."), "OBrien Jr");
/// ```
pub fn strip_punct(s: &str) -> String {
    s.chars().filter(|c| c.is_alphanumeric() || c.is_whitespace()).collect()
}

/// Extracts only the ASCII digits of a string; the canonical form for phone
/// numbers ("908-111-1111" and "(908) 111 1111" both become "9081111111").
///
/// ```
/// use matchrules_simdist::normalize::digits_only;
/// assert_eq!(digits_only("908-111-1111"), "9081111111");
/// ```
pub fn digits_only(s: &str) -> String {
    s.chars().filter(|c| c.is_ascii_digit()).collect()
}

/// Full standardization used by the matching substrate: punctuation
/// stripping followed by whitespace/case normalization.
pub fn standardize(s: &str) -> String {
    normalize_ws(&strip_punct(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_ws_collapses_and_lowercases() {
        assert_eq!(normalize_ws("  A  B\tC  "), "a b c");
        assert_eq!(normalize_ws(""), "");
        assert_eq!(normalize_ws("   "), "");
    }

    #[test]
    fn normalize_ws_handles_unicode_case() {
        assert_eq!(normalize_ws("ÉLAN"), "élan");
    }

    #[test]
    fn strip_punct_keeps_alnum_and_space() {
        assert_eq!(strip_punct("a-b_c d!"), "abc d");
    }

    #[test]
    fn digits_only_drops_everything_else() {
        assert_eq!(digits_only("(908) 111-1111 x2"), "90811111112");
        assert_eq!(digits_only("no digits"), "");
    }

    #[test]
    fn standardize_composes() {
        assert_eq!(standardize("10 Oak St., MH,  NJ 07974"), "10 oak st mh nj 07974");
    }
}
