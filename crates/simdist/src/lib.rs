//! Similarity metrics and similarity *operators* for record matching.
//!
//! This crate is the metric substrate of the `matchrules` workspace, which
//! reproduces Fan, Jia, Li and Ma, *"Reasoning about Record Matching Rules"*
//! (VLDB 2009). Matching dependencies (MDs) are defined over a fixed set Θ of
//! domain-specific **similarity operators** (§2.1 of the paper). Every
//! operator `≈` must obey the paper's *generic axioms*:
//!
//! * **reflexive** — `x ≈ x`;
//! * **symmetric** — `x ≈ y` implies `y ≈ x`;
//! * **subsumes equality** — `x = y` implies `x ≈ y`;
//! * transitivity is *not* assumed (except for `=` itself), but `x ≈ y` and
//!   `y = z` imply `x ≈ z`.
//!
//! The concrete metrics provided here are those used by the paper's
//! experimental study and by the record-matching literature it cites:
//!
//! * [`edit`] — Levenshtein and Damerau–Levenshtein edit distances. The
//!   paper's experiments (§6.2) use the DL metric with the threshold rule
//!   `a ≈θ b ⇔ dl(a, b) ≤ (1 − θ) · max(|a|, |b|)`, θ = 0.8. The
//!   thresholded kernels ([`edit::levenshtein_within`],
//!   [`edit::damerau_levenshtein_within`]) are banded with early exit;
//!   the exact distances serve as their test oracles.
//! * [`filters`] — length, character-bag and positional q-gram count
//!   filters that reject non-matches before any DP runs, all sound for
//!   the OSA Damerau–Levenshtein distance.
//! * [`jaro`] — Jaro and Jaro–Winkler similarity (Fellegi–Sunter lineage).
//! * [`qgram`] — q-gram profiles with Dice / Jaccard / overlap coefficients.
//! * [`phonetic`] — Soundex, used by §6 Exp-4 to encode names for blocking.
//! * [`token`] — token-set similarity for multi-word fields such as
//!   addresses.
//! * [`ops`] — the [`ops::SimilarityOp`] trait, thresholded
//!   operator wrappers, synonym-table operators (the paper's §8 "constant
//!   transformation" extension), and the runtime [`ops::OpRegistry`]
//!   that maps the symbolic operators of the reasoning core to executable
//!   predicates.
//! * [`normalize`] — light data standardization (case folding, whitespace and
//!   punctuation normalization), which the paper assumes has been applied
//!   before matching (§2.1).
//!
//! # Quick example
//!
//! ```
//! use matchrules_simdist::edit::damerau_levenshtein;
//! use matchrules_simdist::ops::{DamerauOp, SimilarityOp};
//!
//! assert_eq!(damerau_levenshtein("Mark", "Marx"), 1);
//! let op = DamerauOp::with_threshold(0.8);
//! assert!(op.matches("Clifford", "Cliford"));
//! assert!(!op.matches("Clifford", "Smith"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edit;
pub mod filters;
pub mod jaro;
pub mod normalize;
pub mod ops;
pub mod phonetic;
pub mod qgram;
pub mod token;

pub use ops::{OpRegistry, SimilarityOp};
