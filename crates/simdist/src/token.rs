//! Token-level similarity for multi-word fields.
//!
//! Addresses and item titles are compared more robustly token-by-token than
//! character-by-character: "10 Oak Street, MH, NJ 07974" and
//! "10 Oak Street MH NJ 07974" are token-identical. This module provides the
//! token-set coefficients used by the matching substrate for such fields,
//! plus Monge–Elkan-style soft matching where tokens themselves are compared
//! with an inner character metric.

use crate::edit::levenshtein_similarity;
use std::collections::HashSet;

/// Splits a string into lowercase alphanumeric tokens.
pub fn tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Jaccard similarity of the token *sets* of `a` and `b`.
///
/// ```
/// use matchrules_simdist::token::token_jaccard;
/// assert_eq!(token_jaccard("10 Oak Street, NJ", "NJ 10 Oak Street"), 1.0);
/// assert_eq!(token_jaccard("", ""), 1.0);
/// ```
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = tokens(a).into_iter().collect();
    let tb: HashSet<String> = tokens(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    let inter = ta.intersection(&tb).count();
    let union = ta.len() + tb.len() - inter;
    inter as f64 / union as f64
}

/// Containment coefficient: fraction of the smaller token set contained in
/// the larger. Useful for truncated addresses ("NJ" ⊂ "10 Oak Street NJ").
pub fn token_containment(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = tokens(a).into_iter().collect();
    let tb: HashSet<String> = tokens(b).into_iter().collect();
    let denom = ta.len().min(tb.len());
    if denom == 0 {
        return f64::from(ta.is_empty() && tb.is_empty());
    }
    let (small, large) = if ta.len() <= tb.len() { (&ta, &tb) } else { (&tb, &ta) };
    small.iter().filter(|t| large.contains(*t)).count() as f64 / denom as f64
}

/// Monge–Elkan similarity: each token of `a` is aligned with its best
/// Levenshtein-similarity counterpart in `b`, averaged over `a`'s tokens,
/// then symmetrized by taking the maximum of both directions.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let dir = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| levenshtein_similarity(x, y)).fold(0.0f64, f64::max))
            .sum::<f64>()
            / xs.len() as f64
    };
    dir(&ta, &tb).max(dir(&tb, &ta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_lowercased_alnum() {
        assert_eq!(tokens("10 Oak St., MH"), vec!["10", "oak", "st", "mh"]);
        assert!(tokens("---").is_empty());
    }

    #[test]
    fn jaccard_order_insensitive() {
        assert_eq!(token_jaccard("a b c", "c b a"), 1.0);
        assert!(token_jaccard("a b c", "a b") < 1.0);
        assert_eq!(token_jaccard("a", "b"), 0.0);
    }

    #[test]
    fn containment_of_truncation() {
        assert_eq!(token_containment("NJ 07974", "10 Oak Street MH NJ 07974"), 1.0);
        assert_eq!(token_containment("", "x"), 0.0);
        assert_eq!(token_containment("", ""), 1.0);
    }

    #[test]
    fn monge_elkan_soft_matching() {
        let s = monge_elkan("10 Oak Street", "10 Oak Stret");
        assert!(s > 0.9, "got {s}");
        assert_eq!(monge_elkan("abc", "abc"), 1.0);
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("abc", ""), 0.0);
    }

    #[test]
    fn all_metrics_symmetric() {
        for (a, b) in [("10 Oak Street", "Oak 10"), ("x y", "y z"), ("", "a")] {
            assert_eq!(token_jaccard(a, b), token_jaccard(b, a));
            assert_eq!(token_containment(a, b), token_containment(b, a));
            assert!((monge_elkan(a, b) - monge_elkan(b, a)).abs() < 1e-12);
        }
    }
}
