//! Jaro and Jaro–Winkler similarity.
//!
//! Jaro similarity was developed for the U.S. Census record-linkage systems
//! that the paper's Fellegi–Sunter experiments build on (Jaro 1989, Winkler
//! 2002 — references \[21\] and \[32\] of the paper). It scores two strings in
//! `\[0, 1\]` based on the number of matching characters within a sliding
//! half-length window and the number of transpositions among them;
//! Jaro–Winkler boosts the score for strings sharing a common prefix.

/// Computes the Jaro similarity of two strings in `\[0, 1\]`.
///
/// Two characters *match* when they are equal and at distance at most
/// `max(|a|,|b|)/2 − 1`. With `m` matches and `t` transpositions the score is
/// `(m/|a| + m/|b| + (m − t)/m) / 3`; zero matches score `0`, two empty
/// strings score `1`.
///
/// ```
/// use matchrules_simdist::jaro::jaro;
/// assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
/// assert_eq!(jaro("abc", "abc"), 1.0);
/// assert_eq!(jaro("abc", "xyz"), 0.0);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    let (n, m) = (ac.len(), bc.len());
    if n == 0 && m == 0 {
        return 1.0;
    }
    if n == 0 || m == 0 {
        return 0.0;
    }
    let window = (n.max(m) / 2).saturating_sub(1);
    let mut b_used = vec![false; m];
    let mut a_matched = vec![false; n];
    let mut matches = 0usize;
    for (i, ca) in ac.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(m);
        for j in lo..hi {
            if !b_used[j] && bc[j] == *ca {
                b_used[j] = true;
                a_matched[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions: matched characters taken in order from both sides.
    let mut transpositions = 0usize;
    let mut j = 0usize;
    for (i, ca) in ac.iter().enumerate() {
        if !a_matched[i] {
            continue;
        }
        while !b_used[j] {
            j += 1;
        }
        if *ca != bc[j] {
            transpositions += 1;
        }
        j += 1;
    }
    let m_f = matches as f64;
    let t = (transpositions / 2) as f64;
    (m_f / n as f64 + m_f / m as f64 + (m_f - t) / m_f) / 3.0
}

/// Computes the Jaro–Winkler similarity with the standard prefix scale
/// `p = 0.1` and prefix length capped at 4.
///
/// ```
/// use matchrules_simdist::jaro::jaro_winkler;
/// assert!(jaro_winkler("MARTHA", "MARHTA") > 0.96);
/// assert_eq!(jaro_winkler("abc", "abc"), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1)
}

/// Jaro–Winkler with an explicit prefix scale `p ∈ [0, 0.25]`.
pub fn jaro_winkler_with(a: &str, b: &str, p: f64) -> f64 {
    let base = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    base + prefix as f64 * p * (1.0 - base)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(x: f64, y: f64) -> bool {
        (x - y).abs() < 1e-6
    }

    #[test]
    fn winkler_canonical_values() {
        assert!(close(jaro("DWAYNE", "DUANE"), 0.822222));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.766667));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813333));
        assert!(close(jaro_winkler("DWAYNE", "DUANE"), 0.84));
    }

    #[test]
    fn empties() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "abc"), 0.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("MARTHA", "MARHTA"), ("abc", "abcd"), ("x", "")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn bounded_zero_one() {
        for (a, b) in [("Mark", "Marx"), ("Clifford", "Clivord"), ("a", "b")] {
            let s = jaro_winkler(a, b);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn winkler_boosts_shared_prefix() {
        let j = jaro("Clifford", "Clivord");
        let jw = jaro_winkler("Clifford", "Clivord");
        assert!(jw >= j);
    }
}
