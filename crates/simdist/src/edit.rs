//! Edit distances: Levenshtein and Damerau–Levenshtein.
//!
//! The paper's experiments use the **DL metric** (Damerau–Levenshtein,
//! citing Galhardas et al. \[18\]): the minimum number of single-character
//! insertions, deletions, substitutions *and transpositions* required to
//! transform one value into another, with the threshold rule
//!
//! > for any values `v` and `v'`, `v ≈θ v'` iff the DL distance between `v`
//! > and `v'` is no more than `(1 − θ)` of `max(|v|, |v'|)` (§6.2; the paper
//! > fixes θ = 0.8).
//!
//! The implementation here is the *optimal string alignment* (OSA) variant,
//! which is what record-matching toolkits (including SimMetrics, the library
//! the paper used) implement: a transposition may not be edited again
//! afterwards. Distances operate on Unicode scalar values, not bytes.

/// Computes the Levenshtein distance (insert / delete / substitute) between
/// two strings, counting Unicode scalar values.
///
/// Runs in `O(|a|·|b|)` time and `O(min(|a|,|b|))` space.
///
/// ```
/// use matchrules_simdist::edit::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("same", "same"), 0);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (short, long): (Vec<char>, Vec<char>) = {
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        if ac.len() <= bc.len() {
            (ac, bc)
        } else {
            (bc, ac)
        }
    };
    if short.is_empty() {
        return long.len();
    }
    // One-row dynamic program over the shorter string.
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Computes the Damerau–Levenshtein distance (optimal string alignment
/// variant: insert / delete / substitute / adjacent transposition) between
/// two strings, counting Unicode scalar values.
///
/// ```
/// use matchrules_simdist::edit::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("Mark", "Marx"), 1);   // substitution
/// assert_eq!(damerau_levenshtein("Mark", "Mrak"), 1);   // transposition
/// assert_eq!(damerau_levenshtein("ca", "abc"), 3);      // OSA (true DL = 2)
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    if ac.is_empty() {
        return bc.len();
    }
    if bc.is_empty() {
        return ac.len();
    }
    let w = bc.len() + 1;
    // Three-row dynamic program: transpositions look two rows back.
    let mut two_back: Vec<usize> = vec![0; w];
    let mut prev: Vec<usize> = (0..w).collect();
    let mut cur: Vec<usize> = vec![0; w];
    for i in 1..=ac.len() {
        cur[0] = i;
        for j in 1..=bc.len() {
            let cost = usize::from(ac[i - 1] != bc[j - 1]);
            let mut best = (prev[j - 1] + cost).min(prev[j] + 1).min(cur[j - 1] + 1);
            if i > 1 && j > 1 && ac[i - 1] == bc[j - 2] && ac[i - 2] == bc[j - 1] {
                best = best.min(two_back[j - 2] + 1);
            }
            cur[j] = best;
        }
        std::mem::swap(&mut two_back, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[bc.len()]
}

/// Out-of-band sentinel for the banded DPs: large enough that no in-band
/// value can reach it, small enough that `+ 1` never overflows.
const BIG: usize = usize::MAX / 2;

/// Reusable rolling rows for the banded edit-distance kernels.
///
/// The banded DPs need two (Levenshtein) or three (Damerau–Levenshtein)
/// rolling rows. Allocating them once per *worker* instead of once per
/// *pair* is what keeps the kernels cheap inside per-candidate-pair
/// matching loops; the compiled evaluators in the `data` crate thread one
/// scratch through every call on a thread.
#[derive(Debug, Default)]
pub struct EditScratch {
    rows: [Vec<usize>; 3],
}

impl EditScratch {
    /// Empty scratch; the rows grow to the needed width on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

fn reset_row(row: &mut Vec<usize>, width: usize) {
    row.clear();
    row.resize(width, BIG);
}

/// Levenshtein distance with an early-exit bound: returns `None` as soon as
/// the distance is known to exceed `bound`.
///
/// The DP is **banded**: only the cells with `|i − j| ≤ bound` are
/// computed (every other cell is at least `|i − j| > bound`), and the scan
/// stops at the first row whose in-band minimum exceeds `bound`. For
/// θ = 0.8 the bound is ≈ 20% of the longer string, so most non-matches
/// exit after touching a narrow diagonal strip.
///
/// ```
/// use matchrules_simdist::edit::levenshtein_within;
/// assert_eq!(levenshtein_within("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_within("kitten", "sitting", 2), None);
/// ```
pub fn levenshtein_within(a: &str, b: &str, bound: usize) -> Option<usize> {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    levenshtein_within_chars(&ac, &bc, bound, &mut EditScratch::new())
}

/// [`levenshtein_within`] on pre-collected character slices with reusable
/// scratch rows — the hot-loop form: no per-call `chars()` walk, no
/// per-call row allocation.
pub fn levenshtein_within_chars(
    a: &[char],
    b: &[char],
    bound: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    // Banded DP: only cells with |i - j| <= bound can be <= bound.
    let [prev, cur, _] = &mut scratch.rows;
    reset_row(prev, m + 1);
    reset_row(cur, m + 1);
    for (j, p) in prev.iter_mut().enumerate().take(bound.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(bound).max(1);
        let hi = i.saturating_add(bound).min(m);
        cur[lo - 1] = if lo == 1 { i } else { BIG };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let v = (prev[j - 1] + cost)
                .min(prev[j].saturating_add(1))
                .min(cur[j - 1].saturating_add(1));
            cur[j] = v;
            row_min = row_min.min(v);
        }
        if hi < m {
            cur[hi + 1] = BIG;
        }
        if row_min > bound {
            return None;
        }
        std::mem::swap(prev, cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Damerau–Levenshtein (OSA) distance with an early-exit bound; returns
/// `None` as soon as the distance is known to exceed `bound`.
///
/// Like [`levenshtein_within`], the DP is genuinely **banded** — a rolling
/// three-row strip of width `2·bound + 1` (the third row serves the
/// transposition lookback), with the same early row-min exit. No full
/// `|a|·|b|` matrix is ever materialized. The exact
/// [`damerau_levenshtein`] is kept as the test oracle for this kernel.
///
/// ```
/// use matchrules_simdist::edit::damerau_levenshtein_within;
/// assert_eq!(damerau_levenshtein_within("Mark", "Mrak", 1), Some(1));
/// assert_eq!(damerau_levenshtein_within("Clifford", "Smith", 1), None);
/// ```
pub fn damerau_levenshtein_within(a: &str, b: &str, bound: usize) -> Option<usize> {
    let ac: Vec<char> = a.chars().collect();
    let bc: Vec<char> = b.chars().collect();
    damerau_levenshtein_within_chars(&ac, &bc, bound, &mut EditScratch::new())
}

/// [`damerau_levenshtein_within`] on pre-collected character slices with
/// reusable scratch rows — the hot-loop form.
pub fn damerau_levenshtein_within_chars(
    a: &[char],
    b: &[char],
    bound: usize,
    scratch: &mut EditScratch,
) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    if n == 0 {
        return Some(m);
    }
    if m == 0 {
        return Some(n);
    }
    let [two_back, prev, cur] = &mut scratch.rows;
    reset_row(two_back, m + 1);
    reset_row(prev, m + 1);
    reset_row(cur, m + 1);
    for (j, p) in prev.iter_mut().enumerate().take(bound.min(m) + 1) {
        *p = j;
    }
    for i in 1..=n {
        let lo = i.saturating_sub(bound).max(1);
        let hi = i.saturating_add(bound).min(m);
        cur[lo - 1] = if lo == 1 { i } else { BIG };
        let mut row_min = cur[lo - 1];
        for j in lo..=hi {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j - 1].saturating_add(cost))
                .min(prev[j].saturating_add(1))
                .min(cur[j - 1].saturating_add(1));
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(two_back[j - 2].saturating_add(1));
            }
            cur[j] = best;
            row_min = row_min.min(best);
        }
        if hi < m {
            cur[hi + 1] = BIG;
        }
        // Sound even with the transposition lookback: a future in-band
        // cell reachable from row i-2 within the bound would imply an
        // in-band cell <= bound on this row via the diagonal step.
        if row_min > bound {
            return None;
        }
        std::mem::swap(two_back, prev);
        std::mem::swap(prev, cur);
    }
    let d = prev[m];
    (d <= bound).then_some(d)
}

/// Normalized Levenshtein similarity in `\[0, 1\]`:
/// `1 − lev(a,b) / max(|a|,|b|)`; two empty strings score `1`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Normalized Damerau–Levenshtein similarity in `\[0, 1\]`.
pub fn damerau_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - damerau_levenshtein(a, b) as f64 / max_len as f64
}

/// The paper's §6.2 threshold rule turned into an absolute edit bound:
/// `a ≈θ b` iff the edit distance is at most `⌊(1 − θ)·max(|a|, |b|)⌋`.
///
/// Every thresholded operator ([`dl_matches`], the `DamerauOp` /
/// `LevenshteinOp` wrappers in [`crate::ops`]) and every compiled filter
/// pipeline derives its bound through this one helper, so the threshold
/// semantics cannot drift between call sites.
///
/// ```
/// use matchrules_simdist::edit::theta_bound;
/// assert_eq!(theta_bound(0.8, 8), 1); // "Clifford" vs "Cliford": 1 edit allowed
/// assert_eq!(theta_bound(0.8, 4), 0); // "Mark" vs "Marx": must be equal
/// ```
pub fn theta_bound(theta: f64, max_len: usize) -> usize {
    ((1.0 - theta) * max_len as f64).floor() as usize
}

/// The paper's §6.2 threshold predicate: `a ≈θ b` iff
/// `dl(a, b) ≤ (1 − θ) · max(|a|, |b|)`.
///
/// ```
/// use matchrules_simdist::edit::dl_matches;
/// assert!(dl_matches("Clifford", "Cliford", 0.8));
/// assert!(!dl_matches("Clifford", "Smith", 0.8));
/// ```
pub fn dl_matches(a: &str, b: &str, theta: f64) -> bool {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return true;
    }
    damerau_levenshtein_within(a, b, theta_bound(theta, max_len)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("a", ""), 1);
        assert_eq!(levenshtein("", "a"), 1);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        for (a, b) in [("kitten", "sitting"), ("abc", ""), ("Mark", "Marx")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn damerau_counts_transpositions_once() {
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(levenshtein("ab", "ba"), 2);
        assert_eq!(damerau_levenshtein("paper", "papre"), 1);
    }

    #[test]
    fn damerau_matches_levenshtein_without_transpositions() {
        for (a, b) in [("kitten", "sitting"), ("", "xyz"), ("abc", "abc")] {
            assert_eq!(damerau_levenshtein(a, b), levenshtein(a, b));
        }
    }

    #[test]
    fn damerau_osa_variant() {
        // OSA does not allow editing a transposed pair again: d("ca","abc")=3.
        assert_eq!(damerau_levenshtein("ca", "abc"), 3);
    }

    #[test]
    fn bounded_levenshtein_agrees_with_exact() {
        let cases = [
            ("kitten", "sitting"),
            ("Mark", "Marx"),
            ("", "abcd"),
            ("Clifford", "Clivord"),
            ("10 Oak Street", "10 Oak Str"),
        ];
        for (a, b) in cases {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_within(a, b, d), Some(d), "{a} vs {b}");
            if d > 0 {
                assert_eq!(levenshtein_within(a, b, d - 1), None, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bounded_damerau_agrees_with_exact() {
        let cases = [
            ("kitten", "sitting"),
            ("Mark", "Mrak"),
            ("", "abcd"),
            ("ca", "abc"), // OSA corner: d = 3
            ("Clifford", "Clivord"),
            ("paper", "papre"),
            ("10 Oak Street", "10 Oak Str"),
        ];
        for (a, b) in cases {
            let d = damerau_levenshtein(a, b);
            for bound in 0..=(d + 2) {
                match damerau_levenshtein_within(a, b, bound) {
                    Some(got) => {
                        assert_eq!(got, d, "{a} vs {b} bound {bound}");
                        assert!(d <= bound);
                    }
                    None => assert!(d > bound, "{a} vs {b} bound {bound}"),
                }
            }
        }
    }

    #[test]
    fn bounded_kernels_reuse_scratch() {
        let mut scratch = EditScratch::new();
        let pairs = [("Mark", "Mrak"), ("Clifford", "Cliford"), ("a", "xyzvw"), ("", "")];
        for (a, b) in pairs {
            let ac: Vec<char> = a.chars().collect();
            let bc: Vec<char> = b.chars().collect();
            for bound in 0..4 {
                assert_eq!(
                    damerau_levenshtein_within_chars(&ac, &bc, bound, &mut scratch),
                    damerau_levenshtein_within(a, b, bound),
                    "{a} vs {b} bound {bound}"
                );
                assert_eq!(
                    levenshtein_within_chars(&ac, &bc, bound, &mut scratch),
                    levenshtein_within(a, b, bound),
                    "{a} vs {b} bound {bound}"
                );
            }
        }
    }

    #[test]
    fn theta_bound_pins_paper_examples() {
        // θ = 0.8 over 8 chars allows one edit: Clifford ≈ Cliford…
        assert_eq!(theta_bound(0.8, 8), 1);
        assert!(dl_matches("Clifford", "Cliford", 0.8));
        // …but over 4 chars allows none: Mark vs Marx needs equality.
        assert_eq!(theta_bound(0.8, 4), 0);
        assert!(!dl_matches("Mark", "Marx", 0.8));
        assert_eq!(theta_bound(1.0, 100), 0);
        assert_eq!(theta_bound(0.0, 7), 7);
        assert_eq!(theta_bound(0.75, 4), 1);
    }

    #[test]
    fn unicode_counts_scalar_values() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(damerau_levenshtein("naïve", "naive"), 1);
    }

    #[test]
    fn similarity_normalization() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert!(levenshtein_similarity("abc", "xyz") <= 0.0 + 1e-12);
        let s = damerau_similarity("Mark", "Marx");
        assert!((s - 0.75).abs() < 1e-12);
    }

    #[test]
    fn paper_threshold_examples() {
        // θ = 0.8 → allow 20% of max length.
        assert!(dl_matches("Mark", "Marx", 0.75)); // 1 <= 0.25*4
        assert!(!dl_matches("Mark", "Marx", 0.8)); // 1 > 0.2*4 = 0.8
        assert!(dl_matches("Clifford", "Cliford", 0.8)); // dl=1 <= floor(1.6)
                                                         // dl("Clifford","Clivord") = 2 > floor(0.2*8) = 1, so θ=0.8 rejects it
                                                         // but the looser θ=0.7 of the paper's ≈d examples accepts it:
        assert!(!dl_matches("Clifford", "Clivord", 0.8));
        assert!(dl_matches("Clifford", "Clivord", 0.7));
        assert!(dl_matches("", "", 0.8));
    }
}
