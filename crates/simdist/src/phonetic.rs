//! Phonetic encodings, primarily Soundex.
//!
//! §6 Exp-4 of the paper builds blocking keys in which "one of the attributes
//! is name, encoded by Soundex before blocking". Soundex maps a name to a
//! letter followed by three digits so that names with similar English
//! pronunciation collide ("Clifford" and "Clivord" both encode to `C416`).

/// Returns the American Soundex code of `name` (a letter plus three digits),
/// or `None` when the input contains no ASCII letter.
///
/// ```
/// use matchrules_simdist::phonetic::soundex;
/// assert_eq!(soundex("Robert").as_deref(), Some("R163"));
/// assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
/// assert_eq!(soundex("Clifford"), soundex("Clivord"));
/// assert_eq!(soundex("12345"), None);
/// ```
pub fn soundex(name: &str) -> Option<String> {
    let letters: Vec<char> =
        name.chars().filter(|c| c.is_ascii_alphabetic()).map(|c| c.to_ascii_uppercase()).collect();
    let first = *letters.first()?;
    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = digit_of(first);
    for &ch in &letters[1..] {
        let d = digit_of(ch);
        match d {
            // Vowels (and Y) reset the adjacency rule; they are not coded.
            b'0' => last_digit = b'0',
            // H and W are skipped entirely: consonants around them merge.
            b'-' => {}
            d => {
                if d != last_digit {
                    code.push(d as char);
                    if code.len() == 4 {
                        break;
                    }
                }
                last_digit = d;
            }
        }
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Soundex digit classes; `b'0'` marks vowels/Y (uncoded, reset adjacency)
/// and `b'-'` marks H/W (uncoded, transparent for adjacency).
fn digit_of(c: char) -> u8 {
    match c {
        'B' | 'F' | 'P' | 'V' => b'1',
        'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => b'2',
        'D' | 'T' => b'3',
        'L' => b'4',
        'M' | 'N' => b'5',
        'R' => b'6',
        'H' | 'W' => b'-',
        _ => b'0',
    }
}

/// Predicate form: two names are Soundex-equivalent when both encode and the
/// codes agree. Total on non-alphabetic inputs (falls back to equality).
pub fn soundex_eq(a: &str, b: &str) -> bool {
    match (soundex(a), soundex(b)) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_codes() {
        // Classic reference values from the National Archives specification.
        assert_eq!(soundex("Washington").as_deref(), Some("W252"));
        assert_eq!(soundex("Lee").as_deref(), Some("L000"));
        assert_eq!(soundex("Gutierrez").as_deref(), Some("G362"));
        // 'f' shares class 1 with the retained 'P' and is therefore dropped.
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Jackson").as_deref(), Some("J250"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
    }

    #[test]
    fn hw_are_transparent_vowels_reset() {
        // 'h' between c..z in Tymczak/Ashcraft exercised above; check pairs:
        assert_eq!(soundex("BOOTH"), soundex("BOTH"));
        assert_ne!(soundex("BRIDGE"), soundex("BRICK"));
    }

    #[test]
    fn case_and_punctuation_insensitive() {
        assert_eq!(soundex("o'brien"), soundex("OBRIEN"));
        assert_eq!(soundex("McDonald"), soundex("MCDONALD"));
    }

    #[test]
    fn paper_name_variants_collide() {
        assert_eq!(soundex("Clifford"), soundex("Clivord"));
        // Mark / Marx differ in the final consonant class (R,K vs R,X→2):
        assert_eq!(soundex("Mark").as_deref(), Some("M620"));
        assert_eq!(soundex("Marx").as_deref(), Some("M620"));
    }

    #[test]
    fn non_alpha_inputs() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert!(soundex_eq("123", "123"));
        assert!(!soundex_eq("123", "124"));
    }

    #[test]
    fn soundex_eq_is_reflexive_and_symmetric() {
        for (a, b) in [("Robert", "Rupert"), ("Smith", "Smythe"), ("a", "b")] {
            assert!(soundex_eq(a, a));
            assert_eq!(soundex_eq(a, b), soundex_eq(b, a));
        }
    }
}
