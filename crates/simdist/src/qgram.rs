//! q-gram profiles and set-overlap similarity coefficients.
//!
//! q-grams are one of the similarity metrics the paper names as admissible
//! operators in Θ (§2.1, citing the Elmagarmid et al. survey \[14\]). A
//! **non-empty** string is decomposed into its multiset of length-`q`
//! substrings, padded with `q − 1` sentinel characters on each side so
//! that prefixes and suffixes carry weight; the empty string yields the
//! empty profile (padding it would manufacture sentinel-only grams and
//! inflate coefficient denominators against short strings). Profiles are
//! then compared with Dice, Jaccard or overlap coefficients, with the
//! `0/0` cases defined as `1` (two empty profiles are vacuously alike).

use std::collections::HashMap;

/// The multiset of padded q-grams of a string.
///
/// Padding uses `'#'` on the left and `'$'` on the right, the conventional
/// sentinels in the record-matching literature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QgramProfile {
    q: usize,
    grams: HashMap<Vec<char>, u32>,
    total: u32,
}

impl QgramProfile {
    /// Builds the q-gram profile of `s` for gram length `q ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0`.
    pub fn new(s: &str, q: usize) -> Self {
        assert!(q >= 1, "q-gram length must be at least 1");
        let chars: Vec<char> = s.chars().collect();
        // The empty string has no q-grams. Padding it would manufacture
        // sentinel-only grams (e.g. "#$" for q = 2) that give empty
        // strings a non-empty profile and inflate Dice/overlap
        // denominators against short strings.
        if chars.is_empty() {
            return QgramProfile { q, grams: HashMap::new(), total: 0 };
        }
        let mut padded = Vec::with_capacity(chars.len() + 2 * (q - 1));
        padded.extend(std::iter::repeat_n('#', q - 1));
        padded.extend_from_slice(&chars);
        padded.extend(std::iter::repeat_n('$', q - 1));
        let mut grams: HashMap<Vec<char>, u32> = HashMap::new();
        let mut total = 0u32;
        if padded.len() >= q {
            for w in padded.windows(q) {
                *grams.entry(w.to_vec()).or_insert(0) += 1;
                total += 1;
            }
        }
        QgramProfile { q, grams, total }
    }

    /// Gram length of this profile.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Total number of grams (with multiplicity).
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the profile holds no grams — exactly when the input string
    /// was empty (a non-empty string always yields `|s| + q − 1` padded
    /// grams).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Multiset intersection size with another profile.
    pub fn intersection(&self, other: &Self) -> usize {
        let (small, large) =
            if self.grams.len() <= other.grams.len() { (self, other) } else { (other, self) };
        small
            .grams
            .iter()
            .map(|(g, &c)| c.min(large.grams.get(g).copied().unwrap_or(0)) as usize)
            .sum()
    }
}

/// Dice coefficient of the q-gram profiles: `2·|A ∩ B| / (|A| + |B|)`.
///
/// ```
/// use matchrules_simdist::qgram::dice;
/// assert_eq!(dice("night", "night", 2), 1.0);
/// assert!(dice("night", "nacht", 2) > 0.0);
/// ```
pub fn dice(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let denom = pa.len() + pb.len();
    if denom == 0 {
        return 1.0;
    }
    2.0 * pa.intersection(&pb) as f64 / denom as f64
}

/// Jaccard coefficient of the q-gram profiles: `|A ∩ B| / |A ∪ B|`.
pub fn jaccard(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let inter = pa.intersection(&pb);
    let union = pa.len() + pb.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Overlap coefficient: `|A ∩ B| / min(|A|, |B|)`.
pub fn overlap(a: &str, b: &str, q: usize) -> f64 {
    let pa = QgramProfile::new(a, q);
    let pb = QgramProfile::new(b, q);
    let denom = pa.len().min(pb.len());
    if denom == 0 {
        return 1.0;
    }
    pa.intersection(&pb) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_padded_grams() {
        let p = QgramProfile::new("ab", 2);
        // #a, ab, b$
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn profile_multiset_intersection() {
        let p1 = QgramProfile::new("aaa", 2); // #a, aa, aa, a$
        let p2 = QgramProfile::new("aa", 2); // #a, aa, a$
        assert_eq!(p1.intersection(&p2), 3);
    }

    #[test]
    fn empty_string_has_no_grams() {
        for q in 1..=3 {
            let p = QgramProfile::new("", q);
            assert!(p.is_empty(), "q = {q}");
            assert_eq!(p.len(), 0, "q = {q}");
            // Empty vs empty: vacuously identical.
            assert_eq!(dice("", "", q), 1.0);
            assert_eq!(jaccard("", "", q), 1.0);
            assert_eq!(overlap("", "", q), 1.0);
            // Empty vs non-empty: no shared grams, Dice/Jaccard zero (the
            // degenerate overlap coefficient is 1 by the 0/0 convention).
            assert_eq!(dice("", "ab", q), 0.0, "q = {q}");
            assert_eq!(jaccard("", "ab", q), 0.0, "q = {q}");
            assert_eq!(QgramProfile::new("", q).intersection(&QgramProfile::new("ab", q)), 0);
        }
    }

    #[test]
    fn identical_strings_score_one() {
        for s in ["", "a", "night", "10 Oak Street"] {
            assert_eq!(dice(s, s, 2), 1.0, "{s}");
            assert_eq!(jaccard(s, s, 2), 1.0, "{s}");
            assert_eq!(overlap(s, s, 2), 1.0, "{s}");
        }
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(dice("aaa", "zzz", 2), 0.0);
        assert_eq!(jaccard("aaa", "zzz", 2), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("night", "nacht"), ("Mark", "Marx"), ("", "abc")] {
            assert_eq!(dice(a, b, 2), dice(b, a, 2));
            assert_eq!(jaccard(a, b, 2), jaccard(b, a, 2));
            assert_eq!(overlap(a, b, 2), overlap(b, a, 2));
        }
    }

    #[test]
    fn dice_dominates_jaccard() {
        for (a, b) in [("night", "nacht"), ("Clifford", "Clivord")] {
            assert!(dice(a, b, 2) >= jaccard(a, b, 2));
        }
    }

    #[test]
    #[should_panic(expected = "q-gram length")]
    fn zero_q_panics() {
        let _ = QgramProfile::new("abc", 0);
    }
}
