//! Executable similarity operators and the operator registry.
//!
//! The reasoning core of `matchrules` treats similarity operators purely
//! *symbolically*: deduction only relies on the generic axioms of §2.1
//! (reflexivity, symmetry, subsumption of equality). At matching time those
//! symbols must be bound to executable predicates; that binding is the
//! [`OpRegistry`].
//!
//! Every [`SimilarityOp`] here satisfies the generic axioms by construction,
//! and the crate's property tests verify them on arbitrary inputs.

use crate::edit::{damerau_levenshtein_within, levenshtein_within, theta_bound};
use crate::jaro::jaro_winkler;
use crate::normalize::digits_only;
use crate::phonetic::soundex_eq;
use crate::qgram::dice;
use crate::token::token_jaccard;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compiled description of a [`SimilarityOp`] for hot matching loops.
///
/// Per-pair evaluation through `dyn SimilarityOp` pays a virtual call and
/// (for the edit operators) a fresh `chars()` collection per string per
/// pair. Compiling the operator to this enum lets evaluators dispatch on
/// a plain `match`, reuse per-relation character buffers and run the
/// [`crate::filters`] pipeline before any DP. [`KernelSpec::Opaque`]
/// (the default) means "no compiled form — call the trait object".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelSpec {
    /// Plain string equality.
    Equality,
    /// Damerau–Levenshtein (OSA) within
    /// [`theta_bound`]`(theta, max_len)`.
    Damerau {
        /// The threshold θ.
        theta: f64,
    },
    /// Levenshtein within [`theta_bound`]`(theta, max_len)`.
    Levenshtein {
        /// The threshold θ.
        theta: f64,
    },
    /// No compiled form: evaluate through the trait object.
    Opaque,
}

/// An executable similarity operator `≈ ∈ Θ`.
///
/// Implementations must be reflexive, symmetric and subsume equality; they
/// need not be transitive (and thresholded edit-distance operators are not).
pub trait SimilarityOp: Send + Sync + fmt::Debug {
    /// Stable name of the operator, used to bind symbolic operators of the
    /// reasoning core to this implementation (e.g. `"≈dl"`).
    fn name(&self) -> &str;

    /// The similarity predicate `a ≈ b`.
    fn matches(&self, a: &str, b: &str) -> bool;

    /// A graded similarity score in `\[0, 1\]` when the underlying metric has
    /// one; defaults to the 0/1 predicate.
    fn similarity(&self, a: &str, b: &str) -> f64 {
        f64::from(self.matches(a, b))
    }

    /// The compilable description of this operator; evaluators that hold
    /// per-relation caches use it to bypass dynamic dispatch. Must decide
    /// exactly like [`SimilarityOp::matches`].
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Opaque
    }
}

/// Strict equality — the distinguished operator `=` of Θ.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualityOp;

impl SimilarityOp for EqualityOp {
    fn name(&self) -> &str {
        "="
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        f64::from(a == b)
    }
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Equality
    }
}

/// The paper's DL operator: Damerau–Levenshtein (OSA) distance at most
/// `⌊(1 − θ)·max(|a|, |b|)⌋` — the `theta_bound` rule — with §6.2 using
/// θ = 0.8 in all experiments. Two empty strings match (distance 0).
#[derive(Debug, Clone, Copy)]
pub struct DamerauOp {
    theta: f64,
}

impl DamerauOp {
    /// Creates the operator with threshold `θ ∈ \[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics when θ is outside `\[0, 1\]` or not finite.
    pub fn with_threshold(theta: f64) -> Self {
        assert!(theta.is_finite() && (0.0..=1.0).contains(&theta), "θ must be in [0,1]");
        DamerauOp { theta }
    }

    /// The configured threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl SimilarityOp for DamerauOp {
    fn name(&self) -> &str {
        "≈dl"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return true;
        }
        damerau_levenshtein_within(a, b, theta_bound(self.theta, max_len)).is_some()
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        crate::edit::damerau_similarity(a, b)
    }
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Damerau { theta: self.theta }
    }
}

/// Thresholded Levenshtein operator (same rule as [`DamerauOp`] but without
/// transpositions).
#[derive(Debug, Clone, Copy)]
pub struct LevenshteinOp {
    theta: f64,
}

impl LevenshteinOp {
    /// Creates the operator with threshold `θ ∈ \[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics when θ is outside `\[0, 1\]` or not finite.
    pub fn with_threshold(theta: f64) -> Self {
        assert!(theta.is_finite() && (0.0..=1.0).contains(&theta), "θ must be in [0,1]");
        LevenshteinOp { theta }
    }
}

impl SimilarityOp for LevenshteinOp {
    fn name(&self) -> &str {
        "≈lev"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return true;
        }
        levenshtein_within(a, b, theta_bound(self.theta, max_len)).is_some()
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        crate::edit::levenshtein_similarity(a, b)
    }
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Levenshtein { theta: self.theta }
    }
}

/// Jaro–Winkler similarity above a minimum score.
#[derive(Debug, Clone, Copy)]
pub struct JaroWinklerOp {
    min_sim: f64,
}

impl JaroWinklerOp {
    /// Creates the operator accepting pairs with Jaro–Winkler score at least
    /// `min_sim`.
    ///
    /// # Panics
    ///
    /// Panics when `min_sim` is outside `\[0, 1\]` or not finite.
    pub fn with_min(min_sim: f64) -> Self {
        assert!(min_sim.is_finite() && (0.0..=1.0).contains(&min_sim));
        JaroWinklerOp { min_sim }
    }
}

impl SimilarityOp for JaroWinklerOp {
    fn name(&self) -> &str {
        "≈jw"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || jaro_winkler(a, b) >= self.min_sim
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_winkler(a, b)
    }
}

/// q-gram Dice coefficient above a minimum score, over *padded* gram
/// profiles ([`crate::qgram`]: empty strings have empty profiles, and
/// `dice("", "") = 1` by the `0/0` convention, so the operator stays
/// reflexive on the empty string).
#[derive(Debug, Clone, Copy)]
pub struct QgramOp {
    q: usize,
    min_sim: f64,
}

impl QgramOp {
    /// Creates the operator for gram length `q` and minimum Dice score.
    ///
    /// # Panics
    ///
    /// Panics when `q == 0` or `min_sim` is outside `\[0, 1\]`.
    pub fn new(q: usize, min_sim: f64) -> Self {
        assert!(q >= 1);
        assert!(min_sim.is_finite() && (0.0..=1.0).contains(&min_sim));
        QgramOp { q, min_sim }
    }
}

impl SimilarityOp for QgramOp {
    fn name(&self) -> &str {
        "≈qg"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || dice(a, b, self.q) >= self.min_sim
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        dice(a, b, self.q)
    }
}

/// Soundex equivalence of names.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoundexOp;

impl SimilarityOp for SoundexOp {
    fn name(&self) -> &str {
        "≈sx"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || soundex_eq(a, b)
    }
}

/// Token-set Jaccard above a minimum score (multi-word fields).
#[derive(Debug, Clone, Copy)]
pub struct TokenJaccardOp {
    min_sim: f64,
}

impl TokenJaccardOp {
    /// Creates the operator with the given minimum Jaccard score.
    ///
    /// # Panics
    ///
    /// Panics when `min_sim` is outside `\[0, 1\]` or not finite.
    pub fn with_min(min_sim: f64) -> Self {
        assert!(min_sim.is_finite() && (0.0..=1.0).contains(&min_sim));
        TokenJaccardOp { min_sim }
    }
}

impl SimilarityOp for TokenJaccardOp {
    fn name(&self) -> &str {
        "≈tok"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || token_jaccard(a, b) >= self.min_sim
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        token_jaccard(a, b)
    }
}

/// Equality of the digit content of two values — the standard comparison for
/// phone numbers across formats ("908-111-1111" vs "(908) 111 1111").
#[derive(Debug, Clone, Copy, Default)]
pub struct DigitsEqOp;

impl SimilarityOp for DigitsEqOp {
    fn name(&self) -> &str {
        "≈num"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || (!digits_only(a).is_empty() && digits_only(a) == digits_only(b))
    }
}

/// Synonym-table operator — the §8 "constant transformation" extension:
/// `x ≈ y` when `x = y`, when the table links the canonical forms of `x` and
/// `y` (e.g. "USA" ↔ "United States"), or when the wrapped inner operator
/// accepts the pair.
pub struct SynonymOp {
    name: String,
    classes: HashMap<String, u32>,
    inner: Option<Arc<dyn SimilarityOp>>,
}

impl fmt::Debug for SynonymOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SynonymOp")
            .field("name", &self.name)
            .field("entries", &self.classes.len())
            .field("inner", &self.inner.as_ref().map(|op| op.name().to_owned()))
            .finish()
    }
}

impl SynonymOp {
    /// Builds the operator from groups of mutually-synonymous values.
    /// Lookup is case- and whitespace-insensitive.
    pub fn from_groups<I, G, S>(name: &str, groups: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut classes = HashMap::new();
        for (class_id, group) in groups.into_iter().enumerate() {
            for value in group {
                classes.insert(crate::normalize::normalize_ws(value.as_ref()), class_id as u32);
            }
        }
        SynonymOp { name: name.to_owned(), classes, inner: None }
    }

    /// Also accept pairs matched by `inner` (e.g. synonyms *or* small typos).
    #[must_use]
    pub fn with_fallback(mut self, inner: Arc<dyn SimilarityOp>) -> Self {
        self.inner = Some(inner);
        self
    }

    fn class_of(&self, v: &str) -> Option<u32> {
        self.classes.get(&crate::normalize::normalize_ws(v)).copied()
    }
}

impl SimilarityOp for SynonymOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        if let (Some(ca), Some(cb)) = (self.class_of(a), self.class_of(b)) {
            if ca == cb {
                return true;
            }
        }
        self.inner.as_ref().is_some_and(|op| op.matches(a, b))
    }
}

/// Re-exposes an operator under a different name, so symbolic operator
/// names used in MDs (e.g. the paper's `≈d`) can bind to any configured
/// implementation.
pub struct AliasOp {
    name: String,
    inner: Arc<dyn SimilarityOp>,
}

impl AliasOp {
    /// Wraps `inner` under `name`.
    pub fn new(name: &str, inner: Arc<dyn SimilarityOp>) -> Self {
        AliasOp { name: name.to_owned(), inner }
    }
}

impl fmt::Debug for AliasOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AliasOp")
            .field("name", &self.name)
            .field("inner", &self.inner.name().to_owned())
            .finish()
    }
}

impl SimilarityOp for AliasOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        self.inner.matches(a, b)
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self.inner.similarity(a, b)
    }
    fn kernel(&self) -> KernelSpec {
        self.inner.kernel()
    }
}

/// Maps operator names to executable implementations.
///
/// The registry is the runtime companion of the reasoning core's symbolic
/// operator table: an MD that mentions `≈dl` symbolically is evaluated on
/// data by looking `"≈dl"` up here.
#[derive(Debug, Clone, Default)]
pub struct OpRegistry {
    ops: HashMap<String, Arc<dyn SimilarityOp>>,
}

impl OpRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry used throughout the paper's experiments: `=`, the DL
    /// operator at θ = 0.8, plus Levenshtein, Jaro–Winkler (0.9), bigram
    /// Dice (0.8), Soundex, token-Jaccard (0.5) and digit equality.
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(Arc::new(EqualityOp));
        reg.register(Arc::new(DamerauOp::with_threshold(0.8)));
        reg.register(Arc::new(LevenshteinOp::with_threshold(0.8)));
        reg.register(Arc::new(JaroWinklerOp::with_min(0.9)));
        reg.register(Arc::new(QgramOp::new(2, 0.8)));
        reg.register(Arc::new(SoundexOp));
        reg.register(Arc::new(TokenJaccardOp::with_min(0.5)));
        reg.register(Arc::new(DigitsEqOp));
        reg
    }

    /// Registers (or replaces) an operator under its own name.
    pub fn register(&mut self, op: Arc<dyn SimilarityOp>) {
        self.ops.insert(op.name().to_owned(), op);
    }

    /// Looks an operator up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn SimilarityOp>> {
        self.ops.get(name)
    }

    /// Names of all registered operators, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.ops.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_standard_ops() -> Vec<Arc<dyn SimilarityOp>> {
        let reg = OpRegistry::standard();
        reg.names().iter().map(|n| reg.get(n).unwrap().clone()).collect()
    }

    #[test]
    fn standard_registry_contains_equality_and_dl() {
        let reg = OpRegistry::standard();
        assert!(reg.get("=").is_some());
        assert!(reg.get("≈dl").is_some());
        assert_eq!(reg.len(), 8);
        assert!(!reg.is_empty());
    }

    #[test]
    fn generic_axioms_on_samples() {
        let samples =
            ["", "Mark", "Marx", "Clifford", "10 Oak Street, MH, NJ 07974", "908-111-1111"];
        for op in all_standard_ops() {
            for a in samples {
                // reflexive
                assert!(op.matches(a, a), "{} not reflexive on {a:?}", op.name());
                for b in samples {
                    // symmetric
                    assert_eq!(op.matches(a, b), op.matches(b, a), "{} not symmetric", op.name());
                    // subsumes equality
                    if a == b {
                        assert!(op.matches(a, b));
                    }
                }
            }
        }
    }

    #[test]
    fn dl_operator_paper_behaviour() {
        let op = DamerauOp::with_threshold(0.8);
        assert!(op.matches("Clifford", "Cliford"));
        assert!(!op.matches("Clifford", "Clivord")); // dl=2 > floor(0.2*8)
        assert!(!op.matches("Mark", "David"));
        assert!((op.theta() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn digits_eq_across_formats() {
        let op = DigitsEqOp;
        assert!(op.matches("908-111-1111", "(908) 111 1111"));
        assert!(!op.matches("908-111-1111", "908-111-1112"));
        assert!(!op.matches("abc", "def"));
        assert!(op.matches("abc", "abc"));
    }

    #[test]
    fn synonym_groups_and_fallback() {
        let op =
            SynonymOp::from_groups("≈country", [["USA", "United States", "U.S.A."].as_slice()]);
        // Punctuation is NOT stripped by normalize_ws, so "U.S.A." only
        // matches literally:
        assert!(op.matches("usa", "United  STATES"));
        assert!(op.matches("U.S.A.", "USA"));
        assert!(!op.matches("USA", "Canada"));

        let op = SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()])
            .with_fallback(Arc::new(DamerauOp::with_threshold(0.8)));
        assert!(op.matches("United States", "United Statex"));
    }

    #[test]
    fn registry_replaces_by_name() {
        let mut reg = OpRegistry::new();
        reg.register(Arc::new(DamerauOp::with_threshold(0.5)));
        reg.register(Arc::new(DamerauOp::with_threshold(0.9)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn similarity_scores_bounded() {
        for op in all_standard_ops() {
            for (a, b) in [("Mark", "Marx"), ("", "x"), ("abc", "abc")] {
                let s = op.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{} score {s} out of range", op.name());
            }
        }
    }

    #[test]
    #[should_panic]
    fn damerau_rejects_bad_theta() {
        let _ = DamerauOp::with_threshold(1.5);
    }

    #[test]
    fn kernels_describe_their_operators() {
        assert_eq!(EqualityOp.kernel(), KernelSpec::Equality);
        assert_eq!(DamerauOp::with_threshold(0.8).kernel(), KernelSpec::Damerau { theta: 0.8 });
        assert_eq!(
            LevenshteinOp::with_threshold(0.9).kernel(),
            KernelSpec::Levenshtein { theta: 0.9 }
        );
        // Aliases compile to what they wrap; everything else is opaque.
        let alias = AliasOp::new("≈d", Arc::new(DamerauOp::with_threshold(0.75)));
        assert_eq!(alias.kernel(), KernelSpec::Damerau { theta: 0.75 });
        assert_eq!(SoundexOp.kernel(), KernelSpec::Opaque);
        assert_eq!(JaroWinklerOp::with_min(0.9).kernel(), KernelSpec::Opaque);
        let syn = SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()]);
        assert_eq!(syn.kernel(), KernelSpec::Opaque);
    }

    #[test]
    fn alias_op_delegates() {
        let inner: Arc<dyn SimilarityOp> = Arc::new(DamerauOp::with_threshold(0.75));
        let alias = AliasOp::new("≈d", inner.clone());
        assert_eq!(alias.name(), "≈d");
        assert!(alias.matches("Mark", "Marx"));
        assert_eq!(alias.matches("Mark", "Marx"), inner.matches("Mark", "Marx"));
        assert!((alias.similarity("Mark", "Marx") - 0.75).abs() < 1e-12);
        let mut reg = OpRegistry::new();
        reg.register(Arc::new(alias));
        assert!(reg.get("≈d").is_some());
    }
}
