//! Executable similarity operators and the operator registry.
//!
//! The reasoning core of `matchrules` treats similarity operators purely
//! *symbolically*: deduction only relies on the generic axioms of §2.1
//! (reflexivity, symmetry, subsumption of equality). At matching time those
//! symbols must be bound to executable predicates; that binding is the
//! [`OpRegistry`].
//!
//! Every [`SimilarityOp`] here satisfies the generic axioms by construction,
//! and the crate's property tests verify them on arbitrary inputs.

use crate::edit::{damerau_levenshtein_within, levenshtein_within, theta_bound};
use crate::jaro::jaro_winkler;
use crate::normalize::{digits_only, normalize_ws};
use crate::phonetic::{soundex, soundex_eq};
use crate::qgram::dice;
use crate::token::{token_jaccard, tokens};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A compiled description of a [`SimilarityOp`] for hot matching loops.
///
/// Per-pair evaluation through `dyn SimilarityOp` pays a virtual call and
/// (for the edit operators) a fresh `chars()` collection per string per
/// pair. Compiling the operator to this enum lets evaluators dispatch on
/// a plain `match`, reuse per-relation character buffers and run the
/// [`crate::filters`] pipeline before any DP. [`KernelSpec::Opaque`]
/// (the default) means "no compiled form — call the trait object".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelSpec {
    /// Plain string equality.
    Equality,
    /// Damerau–Levenshtein (OSA) within
    /// [`theta_bound`]`(theta, max_len)`.
    Damerau {
        /// The threshold θ.
        theta: f64,
    },
    /// Levenshtein within [`theta_bound`]`(theta, max_len)`.
    Levenshtein {
        /// The threshold θ.
        theta: f64,
    },
    /// No compiled form: evaluate through the trait object.
    Opaque,
}

/// How an inverted index may use atoms under an operator for candidate
/// *retrieval* — the capability every [`SimilarityOp`] declares through
/// [`IndexableAtom`].
///
/// Each variant names a retrieval scheme together with the **soundness
/// contract** the operator asserts by returning it: retrieval built on
/// the contract produces a *superset* of the tuples the operator
/// accepts, so an index can collect candidates from it and leave the
/// final decision to verification. An operator that cannot honour any
/// contract returns [`IndexStrategy::Scan`] and keys relying on it scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexStrategy {
    /// Contract: `matches(a, b)` implies `a == b` as strings. Retrieval
    /// is one exact hash-bucket lookup on the raw value.
    Exact,
    /// Contract: `matches(a, b)` implies an OSA (or plain Levenshtein)
    /// distance within [`theta_bound`]`(theta, max(|a|, |b|))`. The
    /// q-gram posting lists and short-string sparse list of the filter
    /// machinery are sound retrieval.
    EditGrams {
        /// The threshold θ of the edit bound.
        theta: f64,
    },
    /// Contract: `matches(a, b)` implies
    /// [`IndexableAtom::derived_keys`]`(a)` and `derived_keys(b)` share
    /// at least one key (and every input derives at least one key, so
    /// `a == b` always shares). Retrieval is exact buckets over the
    /// derived keys — soundex codes, digit strings, synonym classes.
    DerivedKeys,
    /// Contract: `matches(a, b)` implies the element multisets
    /// [`IndexableAtom::index_elements`]`(a)`/`(b)` share an element or
    /// are both empty, **and** that their sizes satisfy
    /// `min ≥ min_ratio · max`. Retrieval is element posting lists with
    /// a count-ratio prefilter plus an empty-elements bucket (probed
    /// only by element-less probes).
    Elements {
        /// The sound lower bound on `min(|E(a)|, |E(b)|) / max(…)`.
        min_ratio: f64,
    },
    /// Contract: `matches(a, b)` implies the character *multisets* of
    /// `a` and `b` overlap in at least `⌈alpha · max(|a|, |b|)⌉`
    /// characters, and one side is empty only when both are. Retrieval
    /// is sorted-character prefix postings (index and probe each under
    /// the first `n − ⌈alpha·n⌉ + 1` of their sorted characters — the
    /// multiset prefix filter guarantees an overlapping pair shares a
    /// prefix character) with a `min_len ≥ alpha · max_len` filter and
    /// an empty-string bucket.
    BagPrefix {
        /// The sound lower bound on shared characters as a fraction of
        /// the longer string.
        alpha: f64,
    },
    /// No sound retrieval scheme: keys under this operator fall back to
    /// scanning every live tuple.
    Scan,
}

/// The retrieval capability of a similarity operator — what a match
/// index needs to turn atoms under the operator into inverted-index
/// anchors instead of scans.
///
/// This is a supertrait of [`SimilarityOp`] **without** a default for
/// [`IndexableAtom::index_strategy`]: every operator must state its
/// strategy explicitly, so new operators arrive index-ready (or visibly
/// opt out with [`IndexStrategy::Scan`]) instead of silently scanning.
pub trait IndexableAtom {
    /// The declared retrieval strategy; see [`IndexStrategy`] for the
    /// per-variant soundness contract the implementation asserts.
    fn index_strategy(&self) -> IndexStrategy;

    /// Appends the derived exact-bucket keys of `s` to `out` (at least
    /// one key per input — required by [`IndexStrategy::DerivedKeys`]).
    /// Key collisions across unrelated values only *add* candidates, so
    /// they are sound; missing keys would lose matches and are not.
    ///
    /// The default panics: an operator declaring
    /// [`IndexStrategy::DerivedKeys`] must override it.
    fn derived_keys(&self, s: &str, out: &mut Vec<String>) {
        let _ = (s, out);
        unimplemented!("operator declared IndexStrategy::DerivedKeys but emits no keys")
    }

    /// Appends the element multiset of `s` (hashed; duplicates kept
    /// when the operator's coefficient is multiset-based) to `out` —
    /// required by [`IndexStrategy::Elements`]. Hash collisions merge
    /// elements, which only adds candidates (sound).
    ///
    /// The default panics: an operator declaring
    /// [`IndexStrategy::Elements`] must override it.
    fn index_elements(&self, s: &str, out: &mut Vec<u64>) {
        let _ = (s, out);
        unimplemented!("operator declared IndexStrategy::Elements but emits no elements")
    }
}

/// Tag prefixed to raw-value fallback keys of [`IndexStrategy::DerivedKeys`]
/// operators (inputs that derive no natural code still must derive *some*
/// key so `a == b` shares one). The control character keeps fallback keys
/// disjoint from natural codes; a collision would merely add candidates.
const RAW_KEY_TAG: char = '\u{1}';

/// FNV-1a over the scalar values of `s` — the element hash of
/// [`IndexableAtom::index_elements`]. Equal strings hash equally;
/// collisions only merge posting lists (sound).
fn hash_element(chars: impl Iterator<Item = char>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for c in chars {
        h ^= u64::from(c as u32);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An executable similarity operator `≈ ∈ Θ`.
///
/// Implementations must be reflexive, symmetric and subsume equality; they
/// need not be transitive (and thresholded edit-distance operators are not).
/// Every operator also declares its [`IndexableAtom`] retrieval capability.
pub trait SimilarityOp: IndexableAtom + Send + Sync + fmt::Debug {
    /// Stable name of the operator, used to bind symbolic operators of the
    /// reasoning core to this implementation (e.g. `"≈dl"`).
    fn name(&self) -> &str;

    /// The similarity predicate `a ≈ b`.
    fn matches(&self, a: &str, b: &str) -> bool;

    /// A graded similarity score in `\[0, 1\]` when the underlying metric has
    /// one; defaults to the 0/1 predicate.
    fn similarity(&self, a: &str, b: &str) -> f64 {
        f64::from(self.matches(a, b))
    }

    /// The compilable description of this operator; evaluators that hold
    /// per-relation caches use it to bypass dynamic dispatch. Must decide
    /// exactly like [`SimilarityOp::matches`].
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Opaque
    }
}

/// Strict equality — the distinguished operator `=` of Θ.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualityOp;

impl IndexableAtom for EqualityOp {
    fn index_strategy(&self) -> IndexStrategy {
        IndexStrategy::Exact
    }
}

impl SimilarityOp for EqualityOp {
    fn name(&self) -> &str {
        "="
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        f64::from(a == b)
    }
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Equality
    }
}

/// The paper's DL operator: Damerau–Levenshtein (OSA) distance at most
/// `⌊(1 − θ)·max(|a|, |b|)⌋` — the `theta_bound` rule — with §6.2 using
/// θ = 0.8 in all experiments. Two empty strings match (distance 0).
#[derive(Debug, Clone, Copy)]
pub struct DamerauOp {
    theta: f64,
}

impl DamerauOp {
    /// Creates the operator with threshold `θ ∈ \[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics when θ is outside `\[0, 1\]` or not finite.
    pub fn with_threshold(theta: f64) -> Self {
        assert!(theta.is_finite() && (0.0..=1.0).contains(&theta), "θ must be in [0,1]");
        DamerauOp { theta }
    }

    /// The configured threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl IndexableAtom for DamerauOp {
    fn index_strategy(&self) -> IndexStrategy {
        IndexStrategy::EditGrams { theta: self.theta }
    }
}

impl SimilarityOp for DamerauOp {
    fn name(&self) -> &str {
        "≈dl"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return true;
        }
        damerau_levenshtein_within(a, b, theta_bound(self.theta, max_len)).is_some()
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        crate::edit::damerau_similarity(a, b)
    }
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Damerau { theta: self.theta }
    }
}

/// Thresholded Levenshtein operator (same rule as [`DamerauOp`] but without
/// transpositions).
#[derive(Debug, Clone, Copy)]
pub struct LevenshteinOp {
    theta: f64,
}

impl LevenshteinOp {
    /// Creates the operator with threshold `θ ∈ \[0, 1\]`.
    ///
    /// # Panics
    ///
    /// Panics when θ is outside `\[0, 1\]` or not finite.
    pub fn with_threshold(theta: f64) -> Self {
        assert!(theta.is_finite() && (0.0..=1.0).contains(&theta), "θ must be in [0,1]");
        LevenshteinOp { theta }
    }
}

impl IndexableAtom for LevenshteinOp {
    fn index_strategy(&self) -> IndexStrategy {
        IndexStrategy::EditGrams { theta: self.theta }
    }
}

impl SimilarityOp for LevenshteinOp {
    fn name(&self) -> &str {
        "≈lev"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        let max_len = a.chars().count().max(b.chars().count());
        if max_len == 0 {
            return true;
        }
        levenshtein_within(a, b, theta_bound(self.theta, max_len)).is_some()
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        crate::edit::levenshtein_similarity(a, b)
    }
    fn kernel(&self) -> KernelSpec {
        KernelSpec::Levenshtein { theta: self.theta }
    }
}

/// Jaro–Winkler similarity above a minimum score.
#[derive(Debug, Clone, Copy)]
pub struct JaroWinklerOp {
    min_sim: f64,
}

impl JaroWinklerOp {
    /// Creates the operator accepting pairs with Jaro–Winkler score at least
    /// `min_sim`.
    ///
    /// # Panics
    ///
    /// Panics when `min_sim` is outside `\[0, 1\]` or not finite.
    pub fn with_min(min_sim: f64) -> Self {
        assert!(min_sim.is_finite() && (0.0..=1.0).contains(&min_sim));
        JaroWinklerOp { min_sim }
    }
}

impl IndexableAtom for JaroWinklerOp {
    /// Jaro–Winkler bounds a character-multiset overlap: with prefix
    /// weight 0.1 and the prefix capped at 4, `jw = j + ℓ·0.1·(1 − j) ≤
    /// 0.6·j + 0.4`, so `jw ≥ s` forces Jaro `j ≥ (s − 0.4)/0.6`. Every
    /// Jaro term (`m/|a|`, `m/|b|`, `(m − t)/m`) is at most 1, so each
    /// is at least `3j − 2`; in particular the `m` matching characters
    /// (an injective pairing of equal characters) satisfy
    /// `m ≥ (3j − 2) · max(|a|, |b|)`, i.e. the multiset character
    /// overlap is at least `alpha = 3·(s − 0.4)/0.6 − 2 = 5s − 4` of
    /// the longer string. The bound is positive only for `s > 0.8`
    /// (below that a high prefix boost can mask arbitrary suffixes), so
    /// looser thresholds scan.
    fn index_strategy(&self) -> IndexStrategy {
        let alpha = 5.0 * self.min_sim - 4.0;
        if alpha > 0.0 {
            IndexStrategy::BagPrefix { alpha }
        } else {
            IndexStrategy::Scan
        }
    }
}

impl SimilarityOp for JaroWinklerOp {
    fn name(&self) -> &str {
        "≈jw"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || jaro_winkler(a, b) >= self.min_sim
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro_winkler(a, b)
    }
}

/// q-gram Dice coefficient above a minimum score, over *padded* gram
/// profiles ([`crate::qgram`]: empty strings have empty profiles, and
/// `dice("", "") = 1` by the `0/0` convention, so the operator stays
/// reflexive on the empty string).
#[derive(Debug, Clone, Copy)]
pub struct QgramOp {
    q: usize,
    min_sim: f64,
}

impl QgramOp {
    /// Creates the operator for gram length `q` and minimum Dice score.
    ///
    /// # Panics
    ///
    /// Panics when `q == 0` or `min_sim` is outside `\[0, 1\]`.
    pub fn new(q: usize, min_sim: f64) -> Self {
        assert!(q >= 1);
        assert!(min_sim.is_finite() && (0.0..=1.0).contains(&min_sim));
        QgramOp { q, min_sim }
    }
}

impl IndexableAtom for QgramOp {
    /// Dice `2·|A ⊓ B| / (|A| + |B|) ≥ s` over the padded gram
    /// multisets forces a shared gram (the overlap is positive unless
    /// both profiles are empty — i.e. both strings are empty) and
    /// bounds the profile sizes: with `m ≤ min(|A|, |B|)`,
    /// `2m ≥ s·(min + max)` gives `min/max ≥ s/(2 − s)`. Indexable for
    /// any positive threshold; `s = 0` accepts everything and scans.
    fn index_strategy(&self) -> IndexStrategy {
        if self.min_sim > 0.0 {
            IndexStrategy::Elements { min_ratio: self.min_sim / (2.0 - self.min_sim) }
        } else {
            IndexStrategy::Scan
        }
    }

    /// The padded gram multiset of `s`, hashed — duplicates kept, since
    /// Dice counts multiplicity (matching [`crate::qgram::QgramProfile`]:
    /// `'#'`/`'$'` sentinels, empty string ⇒ no grams).
    fn index_elements(&self, s: &str, out: &mut Vec<u64>) {
        let chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return;
        }
        let mut padded = Vec::with_capacity(chars.len() + 2 * (self.q - 1));
        padded.extend(std::iter::repeat_n('#', self.q - 1));
        padded.extend_from_slice(&chars);
        padded.extend(std::iter::repeat_n('$', self.q - 1));
        if padded.len() >= self.q {
            for w in padded.windows(self.q) {
                out.push(hash_element(w.iter().copied()));
            }
        }
    }
}

impl SimilarityOp for QgramOp {
    fn name(&self) -> &str {
        "≈qg"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || dice(a, b, self.q) >= self.min_sim
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        dice(a, b, self.q)
    }
}

/// Soundex equivalence of names.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoundexOp;

impl IndexableAtom for SoundexOp {
    fn index_strategy(&self) -> IndexStrategy {
        IndexStrategy::DerivedKeys
    }

    /// The soundex code, or a tagged copy of the raw value for inputs
    /// that encode to none (no ASCII letter): [`soundex_eq`] falls back
    /// to string equality there, and equal strings derive equal keys.
    fn derived_keys(&self, s: &str, out: &mut Vec<String>) {
        match soundex(s) {
            Some(code) => out.push(code),
            None => out.push(format!("{RAW_KEY_TAG}{s}")),
        }
    }
}

impl SimilarityOp for SoundexOp {
    fn name(&self) -> &str {
        "≈sx"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || soundex_eq(a, b)
    }
}

/// Token-set Jaccard above a minimum score (multi-word fields).
#[derive(Debug, Clone, Copy)]
pub struct TokenJaccardOp {
    min_sim: f64,
}

impl TokenJaccardOp {
    /// Creates the operator with the given minimum Jaccard score.
    ///
    /// # Panics
    ///
    /// Panics when `min_sim` is outside `\[0, 1\]` or not finite.
    pub fn with_min(min_sim: f64) -> Self {
        assert!(min_sim.is_finite() && (0.0..=1.0).contains(&min_sim));
        TokenJaccardOp { min_sim }
    }
}

impl IndexableAtom for TokenJaccardOp {
    /// Jaccard `|A ∩ B| / |A ∪ B| ≥ s > 0` forces a shared token unless
    /// both token sets are empty (`jaccard(∅, ∅) = 1` by convention),
    /// and bounds the set sizes: `min ≥ inter ≥ s·union ≥ s·max`.
    /// `s = 0` accepts everything and scans.
    fn index_strategy(&self) -> IndexStrategy {
        if self.min_sim > 0.0 {
            IndexStrategy::Elements { min_ratio: self.min_sim }
        } else {
            IndexStrategy::Scan
        }
    }

    /// The token *set* of `s`, hashed (Jaccard is set-based, so
    /// duplicates are dropped and the element count is the set size).
    fn index_elements(&self, s: &str, out: &mut Vec<u64>) {
        let mut elems: Vec<u64> = tokens(s).iter().map(|t| hash_element(t.chars())).collect();
        elems.sort_unstable();
        elems.dedup();
        out.extend(elems);
    }
}

impl SimilarityOp for TokenJaccardOp {
    fn name(&self) -> &str {
        "≈tok"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || token_jaccard(a, b) >= self.min_sim
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        token_jaccard(a, b)
    }
}

/// Equality of the digit content of two values — the standard comparison for
/// phone numbers across formats ("908-111-1111" vs "(908) 111 1111").
#[derive(Debug, Clone, Copy, Default)]
pub struct DigitsEqOp;

impl IndexableAtom for DigitsEqOp {
    fn index_strategy(&self) -> IndexStrategy {
        IndexStrategy::DerivedKeys
    }
    /// The digit content of `s`, or the tagged raw string when `s` has no
    /// digits (digit-free values only match verbatim, so the raw value is a
    /// sound bucket for them).
    fn derived_keys(&self, s: &str, out: &mut Vec<String>) {
        let digits = digits_only(s);
        if digits.is_empty() {
            out.push(format!("{RAW_KEY_TAG}{s}"));
        } else {
            out.push(digits);
        }
    }
}

impl SimilarityOp for DigitsEqOp {
    fn name(&self) -> &str {
        "≈num"
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        a == b || (!digits_only(a).is_empty() && digits_only(a) == digits_only(b))
    }
}

/// Synonym-table operator — the §8 "constant transformation" extension:
/// `x ≈ y` when `x = y`, when the table links the canonical forms of `x` and
/// `y` (e.g. "USA" ↔ "United States"), or when the wrapped inner operator
/// accepts the pair.
pub struct SynonymOp {
    name: String,
    classes: HashMap<String, u32>,
    inner: Option<Arc<dyn SimilarityOp>>,
}

impl fmt::Debug for SynonymOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SynonymOp")
            .field("name", &self.name)
            .field("entries", &self.classes.len())
            .field("inner", &self.inner.as_ref().map(|op| op.name().to_owned()))
            .finish()
    }
}

impl SynonymOp {
    /// Builds the operator from groups of mutually-synonymous values.
    /// Lookup is case- and whitespace-insensitive.
    pub fn from_groups<I, G, S>(name: &str, groups: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut classes = HashMap::new();
        for (class_id, group) in groups.into_iter().enumerate() {
            for value in group {
                classes.insert(crate::normalize::normalize_ws(value.as_ref()), class_id as u32);
            }
        }
        SynonymOp { name: name.to_owned(), classes, inner: None }
    }

    /// Also accept pairs matched by `inner` (e.g. synonyms *or* small typos).
    #[must_use]
    pub fn with_fallback(mut self, inner: Arc<dyn SimilarityOp>) -> Self {
        self.inner = Some(inner);
        self
    }

    fn class_of(&self, v: &str) -> Option<u32> {
        self.classes.get(&crate::normalize::normalize_ws(v)).copied()
    }
}

impl IndexableAtom for SynonymOp {
    /// Without a fallback the operator is pure key equivalence: two values
    /// match iff they share a synonym class or are verbatim equal, both of
    /// which bucket exactly. A fallback makes matching a disjunction with an
    /// arbitrary inner operator, which derived keys cannot cover soundly.
    fn index_strategy(&self) -> IndexStrategy {
        if self.inner.is_none() {
            IndexStrategy::DerivedKeys
        } else {
            IndexStrategy::Scan
        }
    }
    /// The synonym class id when the table knows the value, otherwise its
    /// whitespace-normalised form (verbatim-equal strings normalise equally,
    /// and a value in no class can only match table-free, i.e. verbatim).
    fn derived_keys(&self, s: &str, out: &mut Vec<String>) {
        match self.class_of(s) {
            Some(id) => out.push(format!("c{id}")),
            None => out.push(format!("v{}", normalize_ws(s))),
        }
    }
}

impl SimilarityOp for SynonymOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        if a == b {
            return true;
        }
        if let (Some(ca), Some(cb)) = (self.class_of(a), self.class_of(b)) {
            if ca == cb {
                return true;
            }
        }
        self.inner.as_ref().is_some_and(|op| op.matches(a, b))
    }
}

/// Re-exposes an operator under a different name, so symbolic operator
/// names used in MDs (e.g. the paper's `≈d`) can bind to any configured
/// implementation.
pub struct AliasOp {
    name: String,
    inner: Arc<dyn SimilarityOp>,
}

impl AliasOp {
    /// Wraps `inner` under `name`.
    pub fn new(name: &str, inner: Arc<dyn SimilarityOp>) -> Self {
        AliasOp { name: name.to_owned(), inner }
    }
}

impl fmt::Debug for AliasOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AliasOp")
            .field("name", &self.name)
            .field("inner", &self.inner.name().to_owned())
            .finish()
    }
}

impl IndexableAtom for AliasOp {
    fn index_strategy(&self) -> IndexStrategy {
        self.inner.index_strategy()
    }
    fn derived_keys(&self, s: &str, out: &mut Vec<String>) {
        self.inner.derived_keys(s, out);
    }
    fn index_elements(&self, s: &str, out: &mut Vec<u64>) {
        self.inner.index_elements(s, out);
    }
}

impl SimilarityOp for AliasOp {
    fn name(&self) -> &str {
        &self.name
    }
    fn matches(&self, a: &str, b: &str) -> bool {
        self.inner.matches(a, b)
    }
    fn similarity(&self, a: &str, b: &str) -> f64 {
        self.inner.similarity(a, b)
    }
    fn kernel(&self) -> KernelSpec {
        self.inner.kernel()
    }
}

/// Maps operator names to executable implementations.
///
/// The registry is the runtime companion of the reasoning core's symbolic
/// operator table: an MD that mentions `≈dl` symbolically is evaluated on
/// data by looking `"≈dl"` up here.
#[derive(Debug, Clone, Default)]
pub struct OpRegistry {
    ops: HashMap<String, Arc<dyn SimilarityOp>>,
}

impl OpRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry used throughout the paper's experiments: `=`, the DL
    /// operator at θ = 0.8, plus Levenshtein, Jaro–Winkler (0.9), bigram
    /// Dice (0.8), Soundex, token-Jaccard (0.5) and digit equality.
    pub fn standard() -> Self {
        let mut reg = Self::new();
        reg.register(Arc::new(EqualityOp));
        reg.register(Arc::new(DamerauOp::with_threshold(0.8)));
        reg.register(Arc::new(LevenshteinOp::with_threshold(0.8)));
        reg.register(Arc::new(JaroWinklerOp::with_min(0.9)));
        reg.register(Arc::new(QgramOp::new(2, 0.8)));
        reg.register(Arc::new(SoundexOp));
        reg.register(Arc::new(TokenJaccardOp::with_min(0.5)));
        reg.register(Arc::new(DigitsEqOp));
        reg
    }

    /// Registers (or replaces) an operator under its own name.
    pub fn register(&mut self, op: Arc<dyn SimilarityOp>) {
        self.ops.insert(op.name().to_owned(), op);
    }

    /// Looks an operator up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn SimilarityOp>> {
        self.ops.get(name)
    }

    /// Names of all registered operators, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.ops.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered operators.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operators are registered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_standard_ops() -> Vec<Arc<dyn SimilarityOp>> {
        let reg = OpRegistry::standard();
        reg.names().iter().map(|n| reg.get(n).unwrap().clone()).collect()
    }

    #[test]
    fn standard_registry_contains_equality_and_dl() {
        let reg = OpRegistry::standard();
        assert!(reg.get("=").is_some());
        assert!(reg.get("≈dl").is_some());
        assert_eq!(reg.len(), 8);
        assert!(!reg.is_empty());
    }

    #[test]
    fn generic_axioms_on_samples() {
        let samples =
            ["", "Mark", "Marx", "Clifford", "10 Oak Street, MH, NJ 07974", "908-111-1111"];
        for op in all_standard_ops() {
            for a in samples {
                // reflexive
                assert!(op.matches(a, a), "{} not reflexive on {a:?}", op.name());
                for b in samples {
                    // symmetric
                    assert_eq!(op.matches(a, b), op.matches(b, a), "{} not symmetric", op.name());
                    // subsumes equality
                    if a == b {
                        assert!(op.matches(a, b));
                    }
                }
            }
        }
    }

    #[test]
    fn dl_operator_paper_behaviour() {
        let op = DamerauOp::with_threshold(0.8);
        assert!(op.matches("Clifford", "Cliford"));
        assert!(!op.matches("Clifford", "Clivord")); // dl=2 > floor(0.2*8)
        assert!(!op.matches("Mark", "David"));
        assert!((op.theta() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn digits_eq_across_formats() {
        let op = DigitsEqOp;
        assert!(op.matches("908-111-1111", "(908) 111 1111"));
        assert!(!op.matches("908-111-1111", "908-111-1112"));
        assert!(!op.matches("abc", "def"));
        assert!(op.matches("abc", "abc"));
    }

    #[test]
    fn synonym_groups_and_fallback() {
        let op =
            SynonymOp::from_groups("≈country", [["USA", "United States", "U.S.A."].as_slice()]);
        // Punctuation is NOT stripped by normalize_ws, so "U.S.A." only
        // matches literally:
        assert!(op.matches("usa", "United  STATES"));
        assert!(op.matches("U.S.A.", "USA"));
        assert!(!op.matches("USA", "Canada"));

        let op = SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()])
            .with_fallback(Arc::new(DamerauOp::with_threshold(0.8)));
        assert!(op.matches("United States", "United Statex"));
    }

    #[test]
    fn registry_replaces_by_name() {
        let mut reg = OpRegistry::new();
        reg.register(Arc::new(DamerauOp::with_threshold(0.5)));
        reg.register(Arc::new(DamerauOp::with_threshold(0.9)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn similarity_scores_bounded() {
        for op in all_standard_ops() {
            for (a, b) in [("Mark", "Marx"), ("", "x"), ("abc", "abc")] {
                let s = op.similarity(a, b);
                assert!((0.0..=1.0).contains(&s), "{} score {s} out of range", op.name());
            }
        }
    }

    #[test]
    #[should_panic]
    fn damerau_rejects_bad_theta() {
        let _ = DamerauOp::with_threshold(1.5);
    }

    #[test]
    fn kernels_describe_their_operators() {
        assert_eq!(EqualityOp.kernel(), KernelSpec::Equality);
        assert_eq!(DamerauOp::with_threshold(0.8).kernel(), KernelSpec::Damerau { theta: 0.8 });
        assert_eq!(
            LevenshteinOp::with_threshold(0.9).kernel(),
            KernelSpec::Levenshtein { theta: 0.9 }
        );
        // Aliases compile to what they wrap; everything else is opaque.
        let alias = AliasOp::new("≈d", Arc::new(DamerauOp::with_threshold(0.75)));
        assert_eq!(alias.kernel(), KernelSpec::Damerau { theta: 0.75 });
        assert_eq!(SoundexOp.kernel(), KernelSpec::Opaque);
        assert_eq!(JaroWinklerOp::with_min(0.9).kernel(), KernelSpec::Opaque);
        let syn = SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()]);
        assert_eq!(syn.kernel(), KernelSpec::Opaque);
    }

    #[test]
    fn index_strategies_describe_their_operators() {
        assert_eq!(EqualityOp.index_strategy(), IndexStrategy::Exact);
        assert_eq!(
            DamerauOp::with_threshold(0.8).index_strategy(),
            IndexStrategy::EditGrams { theta: 0.8 }
        );
        assert_eq!(
            LevenshteinOp::with_threshold(0.9).index_strategy(),
            IndexStrategy::EditGrams { theta: 0.9 }
        );
        assert_eq!(SoundexOp.index_strategy(), IndexStrategy::DerivedKeys);
        assert_eq!(DigitsEqOp.index_strategy(), IndexStrategy::DerivedKeys);
        // jw ≥ 0.9 ⟹ char-bag overlap ≥ 0.5·max(len): alpha = 5·0.9 − 4.
        match JaroWinklerOp::with_min(0.9).index_strategy() {
            IndexStrategy::BagPrefix { alpha } => assert!((alpha - 0.5).abs() < 1e-12),
            other => panic!("expected BagPrefix, got {other:?}"),
        }
        // A weak jw threshold gives a vacuous bound — falls back to scan.
        assert_eq!(JaroWinklerOp::with_min(0.7).index_strategy(), IndexStrategy::Scan);
        // dice ≥ 0.8 ⟹ min grams ≥ (0.8 / 1.2)·max grams.
        match QgramOp::new(2, 0.8).index_strategy() {
            IndexStrategy::Elements { min_ratio } => {
                assert!((min_ratio - 0.8 / 1.2).abs() < 1e-12);
            }
            other => panic!("expected Elements, got {other:?}"),
        }
        match TokenJaccardOp::with_min(0.5).index_strategy() {
            IndexStrategy::Elements { min_ratio } => assert!((min_ratio - 0.5).abs() < 1e-12),
            other => panic!("expected Elements, got {other:?}"),
        }
        // Pure synonym tables bucket exactly; a fallback forces a scan.
        let syn = SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()]);
        assert_eq!(syn.index_strategy(), IndexStrategy::DerivedKeys);
        let syn = SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()])
            .with_fallback(Arc::new(DamerauOp::with_threshold(0.8)));
        assert_eq!(syn.index_strategy(), IndexStrategy::Scan);
        // Aliases delegate.
        let alias = AliasOp::new("≈sx2", Arc::new(SoundexOp));
        assert_eq!(alias.index_strategy(), IndexStrategy::DerivedKeys);
    }

    #[test]
    fn derived_keys_cover_matching_pairs() {
        let samples = ["", "Mark", "Marx", "mark", "908-111-1111", "(908) 111 1111", "USA"];
        let syn: Arc<dyn SimilarityOp> =
            Arc::new(SynonymOp::from_groups("≈c", [["USA", "United States"].as_slice()]));
        let ops: Vec<Arc<dyn SimilarityOp>> = vec![Arc::new(SoundexOp), Arc::new(DigitsEqOp), syn];
        for op in &ops {
            for a in samples {
                let mut ka = Vec::new();
                op.derived_keys(a, &mut ka);
                assert!(!ka.is_empty(), "{} derives no key for {a:?}", op.name());
                for b in samples {
                    if op.matches(a, b) {
                        let mut kb = Vec::new();
                        op.derived_keys(b, &mut kb);
                        assert!(
                            ka.iter().any(|k| kb.contains(k)),
                            "{} matches {a:?}~{b:?} but keys {ka:?} / {kb:?} are disjoint",
                            op.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn elements_cover_matching_pairs() {
        let samples = ["", "Mark", "Marx", "10 Oak Street", "oak street 10", "Oak St."];
        let ops: Vec<Arc<dyn SimilarityOp>> =
            vec![Arc::new(QgramOp::new(2, 0.8)), Arc::new(TokenJaccardOp::with_min(0.5))];
        for op in &ops {
            let IndexStrategy::Elements { min_ratio } = op.index_strategy() else {
                panic!("{} should use Elements", op.name());
            };
            for a in samples {
                for b in samples {
                    if !op.matches(a, b) {
                        continue;
                    }
                    let (mut ea, mut eb) = (Vec::new(), Vec::new());
                    op.index_elements(a, &mut ea);
                    op.index_elements(b, &mut eb);
                    let (min, max) = if ea.len() <= eb.len() {
                        (ea.len(), eb.len())
                    } else {
                        (eb.len(), ea.len())
                    };
                    assert!(
                        min as f64 + 1e-9 >= min_ratio * max as f64,
                        "{}: sizes {min}/{max} violate ratio {min_ratio} on {a:?}~{b:?}",
                        op.name()
                    );
                    if max > 0 {
                        assert!(
                            ea.iter().any(|e| eb.contains(e)),
                            "{} matches {a:?}~{b:?} but elements are disjoint",
                            op.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bag_prefix_bound_holds_on_matches() {
        let op = JaroWinklerOp::with_min(0.9);
        let IndexStrategy::BagPrefix { alpha } = op.index_strategy() else {
            panic!("expected BagPrefix");
        };
        let samples = ["", "Mark", "Marx", "Clifford", "Cliford", "martha", "marhta"];
        for a in samples {
            for b in samples {
                if !op.matches(a, b) {
                    continue;
                }
                let (mut ca, mut cb): (Vec<char>, Vec<char>) =
                    (a.chars().collect(), b.chars().collect());
                ca.sort_unstable();
                cb.sort_unstable();
                // multiset intersection size
                let (mut i, mut j, mut inter) = (0, 0, 0usize);
                while i < ca.len() && j < cb.len() {
                    match ca[i].cmp(&cb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            inter += 1;
                            i += 1;
                            j += 1;
                        }
                    }
                }
                let max = ca.len().max(cb.len());
                let need = ((alpha * max as f64) - 1e-9).ceil().max(0.0) as usize;
                assert!(inter >= need, "jw match {a:?}~{b:?}: overlap {inter} < required {need}");
            }
        }
    }

    #[test]
    fn alias_op_delegates() {
        let inner: Arc<dyn SimilarityOp> = Arc::new(DamerauOp::with_threshold(0.75));
        let alias = AliasOp::new("≈d", inner.clone());
        assert_eq!(alias.name(), "≈d");
        assert!(alias.matches("Mark", "Marx"));
        assert_eq!(alias.matches("Mark", "Marx"), inner.matches("Mark", "Marx"));
        assert!((alias.similarity("Mark", "Marx") - 0.75).abs() < 1e-12);
        let mut reg = OpRegistry::new();
        reg.register(Arc::new(alias));
        assert!(reg.get("≈d").is_some());
    }
}
