//! Cheap pair filters that reject non-matches before any edit-distance DP
//! runs.
//!
//! Thresholded edit-distance operators dominate the cost of rule-based
//! matching: the match predicates of MDs are similarity-operator
//! conjunctions, so every candidate tuple pair pays one string comparison
//! per atom. The q-gram/edit-distance filtering literature (surveyed by
//! Elmagarmid et al., the paper's \[14\]) shows that most non-matches can
//! be rejected by O(1)–O(n) signature checks long before a dynamic
//! program runs. This module implements three such filters, **all sound
//! for the OSA Damerau–Levenshtein distance** (and a fortiori for plain
//! Levenshtein, which is never smaller):
//!
//! 1. **Length filter** — `dist(a, b) ≥ ||a| − |b||`, so a length gap
//!    beyond the bound rejects in O(1).
//! 2. **Character-bag filter** — [`CharBag`]: counting characters into 64
//!    hashed buckets, `dist(a, b) ≥ max(|A ∖ B|, |B ∖ A|)` over the
//!    bucket multisets. Substitutions change at most one bucket on each
//!    side, insertions/deletions one, transpositions none; bucket
//!    collisions only *shrink* the lower bound, so hashing keeps the
//!    filter sound.
//! 3. **Positional q-gram count filter** — [`QgramSig`]: a string of `n`
//!    characters has `n − q + 1` unpadded q-grams; one OSA edit destroys
//!    at most `q + 1` of them (a transposition touches the grams
//!    overlapping two adjacent positions) and shifts surviving grams by
//!    at most one position per insertion/deletion. Hence `dist(a, b) ≤ k`
//!    forces at least `max(|Gₐ|, |G_b|) − k·(q + 1)` gram matches with
//!    position displacement ≤ `k`.
//!
//! Signatures are extracted **once per tuple attribute** (see the
//! relation preprocessing cache in the `data` crate) and compared once
//! per candidate pair; the property suite in `tests/props.rs` checks
//! every filter against the exact distances on arbitrary input, including
//! multi-byte Unicode.

/// Gram length used by the filter signatures. Bigrams are selective
/// enough for name/address-length strings while keeping per-attribute
/// extraction linear and cheap.
pub const FILTER_Q: usize = 2;

/// Number of hashed character buckets in a [`CharBag`].
const BAG_BUCKETS: usize = 64;

/// Which filter stage rejected a pair (for effectiveness counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The length filter: `||a| − |b|| > bound`.
    Length,
    /// The character-bag filter: bag distance lower bound `> bound`.
    Bag,
    /// The positional q-gram count filter: too few gram matches survive.
    Qgram,
}

/// Character frequencies folded into 64 hashed buckets.
///
/// [`CharBag::distance_lower_bound`] never exceeds the OSA
/// Damerau–Levenshtein distance of the underlying strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharBag {
    counts: [u16; BAG_BUCKETS],
}

impl CharBag {
    /// Counts the characters of `chars` (saturating per bucket; strings
    /// long enough to saturate only weaken, never break, the bound).
    pub fn of_chars(chars: &[char]) -> Self {
        let mut counts = [0u16; BAG_BUCKETS];
        for &c in chars {
            let bucket = (c as u32 as usize) & (BAG_BUCKETS - 1);
            counts[bucket] = counts[bucket].saturating_add(1);
        }
        CharBag { counts }
    }

    /// A lower bound on the OSA edit distance between the two underlying
    /// strings: `max(chars only in a, chars only in b)` over the buckets.
    pub fn distance_lower_bound(&self, other: &CharBag) -> usize {
        let (mut extra_a, mut extra_b) = (0usize, 0usize);
        for (&ca, &cb) in self.counts.iter().zip(&other.counts) {
            let (ca, cb) = (ca as usize, cb as usize);
            if ca > cb {
                extra_a += ca - cb;
            } else {
                extra_b += cb - ca;
            }
        }
        extra_a.max(extra_b)
    }

    /// One bit per non-empty bucket — a 64-bit presence summary.
    ///
    /// For two bags with presence masks `pa` and `pb`, every bucket set
    /// in `pa` but not `pb` contributes at least one character to
    /// `|A ∖ B|`, so `popcount(pa & !pb) ≤ |A ∖ B|` and symmetrically
    /// for `pb`. Hence `max(popcount(pa & !pb), popcount(pb & !pa))`
    /// never exceeds [`CharBag::distance_lower_bound`] — a sound O(1)
    /// pre-pre-filter an index can evaluate from one stored word per
    /// entry, before touching the full bag.
    pub fn presence_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            if count > 0 {
                mask |= 1u64 << bucket;
            }
        }
        mask
    }
}

fn hash_gram(gram: &[char]) -> u64 {
    // FNV-1a over the scalar values; collisions only make two distinct
    // grams count as matching, which loosens (never breaks) the filter.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &c in gram {
        h ^= u64::from(c as u32);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The positional q-grams of a string: `(gram hash, start position)`
/// pairs, sorted, ready for a merge-based count filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QgramSig {
    q: u32,
    grams: Vec<(u64, u32)>,
}

impl QgramSig {
    /// Extracts the unpadded q-grams of `chars` (none when the string is
    /// shorter than `q`).
    ///
    /// # Panics
    ///
    /// Panics when `q == 0`.
    pub fn of_chars(chars: &[char], q: usize) -> Self {
        assert!(q >= 1, "q-gram length must be at least 1");
        let mut grams: Vec<(u64, u32)> = if chars.len() >= q {
            chars.windows(q).enumerate().map(|(i, w)| (hash_gram(w), i as u32)).collect()
        } else {
            Vec::new()
        };
        grams.sort_unstable();
        QgramSig { q: q as u32, grams }
    }

    /// Number of grams.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// Whether the string had no grams (shorter than `q`).
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// The distinct gram hashes of the signature, ascending — the posting
    /// keys a q-gram inverted index stores for this string. Positions are
    /// dropped: an index retrieving every tuple that shares *any* gram
    /// hash is a superset of the position-constrained filter, so using
    /// these keys for candidate generation is sound.
    ///
    /// ```
    /// use matchrules_simdist::filters::QgramSig;
    /// let chars: Vec<char> = "abab".chars().collect();
    /// let sig = QgramSig::of_chars(&chars, 2);
    /// // Grams: ab, ba, ab — two distinct hashes.
    /// assert_eq!(sig.distinct_hashes().count(), 2);
    /// ```
    pub fn distinct_hashes(&self) -> impl Iterator<Item = u64> + '_ {
        // Grams are sorted by (hash, position): deduplicate runs.
        self.grams
            .iter()
            .enumerate()
            .filter(|(i, g)| *i == 0 || self.grams[i - 1].0 != g.0)
            .map(|(_, g)| g.0)
    }

    /// Maximum number of gram matches with position displacement at most
    /// `shift`: a merge over the sorted signatures with a greedy
    /// two-pointer matching inside each equal-hash run (optimal for the
    /// interval constraint because positions are ascending).
    pub fn matches_within(&self, other: &QgramSig, shift: usize) -> usize {
        debug_assert_eq!(self.q, other.q, "comparing signatures of different gram length");
        let (a, b) = (&self.grams, &other.grams);
        let (mut i, mut j, mut matched) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let h = a[i].0;
                    let i_end = i + a[i..].iter().take_while(|g| g.0 == h).count();
                    let j_end = j + b[j..].iter().take_while(|g| g.0 == h).count();
                    while i < i_end && j < j_end {
                        let (pa, pb) = (a[i].1 as usize, b[j].1 as usize);
                        if pa.abs_diff(pb) <= shift {
                            matched += 1;
                            i += 1;
                            j += 1;
                        } else if pa < pb {
                            i += 1;
                        } else {
                            j += 1;
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
        }
        matched
    }
}

/// The per-string filter signature: character length, hashed character
/// bag and positional q-grams, extracted once and compared per pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringSig {
    len: u32,
    bag: CharBag,
    grams: QgramSig,
}

impl StringSig {
    /// Extracts the signature with the default [`FILTER_Q`] gram length.
    pub fn of_chars(chars: &[char]) -> Self {
        Self::with_q(chars, FILTER_Q)
    }

    /// Extracts the signature with gram length `q`.
    ///
    /// # Panics
    ///
    /// Panics when `q == 0`.
    pub fn with_q(chars: &[char], q: usize) -> Self {
        StringSig {
            len: chars.len() as u32,
            bag: CharBag::of_chars(chars),
            grams: QgramSig::of_chars(chars, q),
        }
    }

    /// Character count of the underlying string.
    pub fn char_len(&self) -> usize {
        self.len as usize
    }

    /// The positional q-gram component of the signature — what a q-gram
    /// inverted index consumes via [`QgramSig::distinct_hashes`].
    pub fn qgrams(&self) -> &QgramSig {
        &self.grams
    }

    /// The character-bag component — an index stores
    /// [`CharBag::presence_mask`] per entry for retrieval-time rejects.
    pub fn bag(&self) -> &CharBag {
        &self.bag
    }

    /// Runs the filter pipeline (length → bag → q-gram count) against
    /// `other` for an edit bound. `Some(stage)` means the OSA distance
    /// provably exceeds `bound` — no DP needed; `None` means the pair
    /// survived every filter and the DP must decide.
    ///
    /// ```
    /// use matchrules_simdist::filters::{Rejection, StringSig};
    /// let sig = |s: &str| StringSig::of_chars(&s.chars().collect::<Vec<_>>());
    /// // One edit apart: survives every filter at bound 1.
    /// assert_eq!(sig("Clifford").prefilter(&sig("Cliford"), 1), None);
    /// // Five characters longer than the bound allows: rejected in O(1).
    /// assert_eq!(sig("Clifford").prefilter(&sig("Lee"), 1), Some(Rejection::Length));
    /// ```
    pub fn prefilter(&self, other: &StringSig, bound: usize) -> Option<Rejection> {
        if self.len.abs_diff(other.len) as usize > bound {
            return Some(Rejection::Length);
        }
        if self.bag.distance_lower_bound(&other.bag) > bound {
            return Some(Rejection::Bag);
        }
        let per_edit = self.grams.q as usize + 1;
        let needed =
            self.grams.len().max(other.grams.len()).saturating_sub(bound.saturating_mul(per_edit));
        if needed > 0 && self.grams.matches_within(&other.grams, bound) < needed {
            return Some(Rejection::Qgram);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::damerau_levenshtein;

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    fn sig(s: &str) -> StringSig {
        StringSig::of_chars(&chars(s))
    }

    #[test]
    fn bag_lower_bound_is_sound_on_samples() {
        let cases = [
            ("Mark", "Marx"),
            ("Clifford", "Cliford"),
            ("kitten", "sitting"),
            ("", "abc"),
            ("ca", "abc"),
            ("naïve", "naive"),
            ("10 Oak Street", "10 Oak Str"),
        ];
        for (a, b) in cases {
            let lb =
                CharBag::of_chars(&chars(a)).distance_lower_bound(&CharBag::of_chars(&chars(b)));
            assert!(lb <= damerau_levenshtein(a, b), "{a} vs {b}: bag {lb}");
        }
    }

    #[test]
    fn bag_distance_is_symmetric_and_zero_on_anagrams() {
        let a = CharBag::of_chars(&chars("listen"));
        let b = CharBag::of_chars(&chars("silent"));
        assert_eq!(a.distance_lower_bound(&b), 0);
        let c = CharBag::of_chars(&chars("xyz"));
        assert_eq!(a.distance_lower_bound(&c), c.distance_lower_bound(&a));
    }

    #[test]
    fn presence_mask_bound_never_exceeds_the_bag_bound() {
        let words = ["Mark", "Marx", "Clifford", "Cliford", "", "naïve", "10 Oak St", "silent"];
        for a in words {
            for b in words {
                let (ba, bb) = (CharBag::of_chars(&chars(a)), CharBag::of_chars(&chars(b)));
                let (pa, pb) = (ba.presence_mask(), bb.presence_mask());
                let mask_bound = (pa & !pb).count_ones().max((pb & !pa).count_ones()) as usize;
                assert!(
                    mask_bound <= ba.distance_lower_bound(&bb),
                    "{a} vs {b}: mask {mask_bound}"
                );
            }
        }
    }

    #[test]
    fn qgram_matching_counts_positionally() {
        let a = QgramSig::of_chars(&chars("abcdef"), 2);
        let b = QgramSig::of_chars(&chars("abcdef"), 2);
        assert_eq!(a.matches_within(&b, 0), 5);
        // A distant copy of the same grams stops matching at shift 0.
        let c = QgramSig::of_chars(&chars("xxxxabcdef"), 2);
        assert_eq!(a.matches_within(&c, 0), 0);
        assert_eq!(a.matches_within(&c, 4), 5);
        assert!(QgramSig::of_chars(&[], 2).is_empty());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn prefilter_never_rejects_within_bound_samples() {
        let cases = [
            ("Clifford", "Cliford", 1),
            ("Mark", "Mrak", 1),
            ("kitten", "sitting", 3),
            ("same", "same", 0),
            ("", "", 0),
            ("ab", "ba", 1),
        ];
        for (a, b, d) in cases {
            assert_eq!(damerau_levenshtein(a, b), d, "{a} vs {b}");
            for bound in d..(d + 3) {
                assert_eq!(sig(a).prefilter(&sig(b), bound), None, "{a} vs {b} bound {bound}");
            }
        }
    }

    #[test]
    fn prefilter_rejects_obvious_non_matches() {
        assert_eq!(sig("Clifford").prefilter(&sig("Smith"), 1), Some(Rejection::Length));
        assert_eq!(sig("abcdef").prefilter(&sig("uvwxyz"), 1), Some(Rejection::Bag));
        // Same bag, grams displaced beyond the bound: rotation.
        assert_eq!(sig("abcdefgh").prefilter(&sig("efghabcd"), 1), Some(Rejection::Qgram));
    }

    #[test]
    #[should_panic(expected = "q-gram length")]
    fn zero_q_panics() {
        let _ = QgramSig::of_chars(&['a'], 0);
    }
}
