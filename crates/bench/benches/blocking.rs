//! Blocking/windowing benchmarks — the criterion companion of Fig. 9(d),
//! 10(d) and Exp-4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matchrules_bench::experiments::{exp4_windowing, fig9d_10d_blocking, workload};
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9d_blocking");
    group.sample_size(10);
    for k in [1000usize, 2000] {
        let w = workload(k, 0xb10c + k as u64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(fig9d_10d_blocking(&w)))
        });
    }
    group.finish();
}

fn bench_windowing(c: &mut Criterion) {
    let mut group = c.benchmark_group("exp4_windowing");
    group.sample_size(10);
    for k in [1000usize, 2000] {
        let w = workload(k, 0xd0 + k as u64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(exp4_windowing(&w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_blocking, bench_windowing);
criterion_main!(benches);
