//! findRCKs benchmarks — the criterion companion of Fig. 8(a)/(b) at
//! reduced scale (the figure binaries sweep the paper's full ranges).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matchrules_core::cost::CostModel;
use matchrules_core::rck::find_rcks;
use matchrules_data::mdgen::{generate, MdGenConfig};
use std::hint::black_box;

/// Fig. 8(a) shape: runtime vs card(Σ) at m = 20.
fn bench_vs_card(c: &mut Criterion) {
    let mut group = c.benchmark_group("findrcks/card");
    group.sample_size(10);
    for card in [200usize, 400, 800] {
        let setting = generate(&MdGenConfig::fig8(card, 8, 0x8a));
        group.bench_with_input(BenchmarkId::from_parameter(card), &card, |b, _| {
            b.iter(|| {
                let mut cost = CostModel::uniform();
                black_box(find_rcks(&setting.sigma, &setting.target, 20, &mut cost).keys.len())
            })
        });
    }
    group.finish();
}

/// Fig. 8(b) shape: runtime vs m at fixed card(Σ).
fn bench_vs_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("findrcks/m");
    group.sample_size(10);
    let setting = generate(&MdGenConfig::fig8(400, 8, 0x8b));
    for m in [5usize, 20, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                let mut cost = CostModel::uniform();
                black_box(find_rcks(&setting.sigma, &setting.target, m, &mut cost).keys.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vs_card, bench_vs_m);
criterion_main!(benches);
