//! Similarity-kernel benchmarks: the metrics the matching loops spend
//! their time in (§6.2 uses DL with θ = 0.8 throughout).

use criterion::{criterion_group, criterion_main, Criterion};
use matchrules_simdist::edit::{damerau_levenshtein, levenshtein, levenshtein_within};
use matchrules_simdist::jaro::jaro_winkler;
use matchrules_simdist::ops::{DamerauOp, SimilarityOp};
use matchrules_simdist::phonetic::soundex;
use matchrules_simdist::qgram::dice;
use std::hint::black_box;

const PAIRS: &[(&str, &str)] = &[
    ("Mark", "Marx"),
    ("Clifford", "Clivord"),
    ("10 Oak Street, MH, NJ 07974", "10 Oak Str, MH, NJ 07974"),
    ("908-1111111", "908-2222222"),
    ("jamessmith12@gmail.com", "jamessmith21@gmail.com"),
];

fn bench_metrics(c: &mut Criterion) {
    c.bench_function("simdist/levenshtein", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(levenshtein(x, y));
            }
        })
    });
    c.bench_function("simdist/damerau", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(damerau_levenshtein(x, y));
            }
        })
    });
    c.bench_function("simdist/levenshtein_banded", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(levenshtein_within(x, y, 2));
            }
        })
    });
    c.bench_function("simdist/jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(jaro_winkler(x, y));
            }
        })
    });
    c.bench_function("simdist/qgram_dice", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(dice(x, y, 2));
            }
        })
    });
    c.bench_function("simdist/soundex", |b| {
        b.iter(|| {
            for (x, _) in PAIRS {
                black_box(soundex(x));
            }
        })
    });
    let op = DamerauOp::with_threshold(0.8);
    c.bench_function("simdist/dl_operator_theta08", |b| {
        b.iter(|| {
            for (x, y) in PAIRS {
                black_box(op.matches(x, y));
            }
        })
    });
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
