//! End-to-end matcher benchmarks — the criterion companion of Fig. 9/10 at
//! reduced K (the figure binaries sweep 10k..80k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matchrules_bench::experiments::{fig10_sn, fig9_fs, workload};
use std::hint::black_box;

fn bench_fs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fs");
    group.sample_size(10);
    for k in [500usize, 1000] {
        let w = workload(k, 0xbe9 + k as u64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(fig9_fs(&w)))
        });
    }
    group.finish();
}

fn bench_sn(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_sn");
    group.sample_size(10);
    for k in [500usize, 1000] {
        let w = workload(k, 0xbe10 + k as u64);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(fig10_sn(&w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fs, bench_sn);
criterion_main!(benches);
