//! MDClosure (deduction) micro-benchmarks: the §4 algorithm at growing
//! card(Σ), plus the paper's worked example.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use matchrules_core::deduction::deduces;
use matchrules_core::paper;
use matchrules_data::mdgen::{generate, MdGenConfig};
use std::hint::black_box;

fn bench_deduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdclosure");
    for card in [100usize, 400, 1600] {
        let setting = generate(&MdGenConfig::fig8(card, 8, 42));
        // The MD under test: the trivial key's MD form.
        let phi = setting.target.trivial_key().to_md(&setting.target);
        group.bench_with_input(BenchmarkId::new("deduce", card), &card, |b, _| {
            b.iter(|| black_box(deduces(&setting.sigma, &phi)))
        });
    }
    group.finish();
}

fn bench_paper_example(c: &mut Criterion) {
    let setting = paper::example_1_1();
    let rck4 = paper::example_2_4_rcks(&setting).pop().expect("rck4");
    let phi = rck4.to_md(&setting.target);
    c.bench_function("mdclosure/example_4_1_rck4", |b| {
        b.iter(|| black_box(deduces(&setting.sigma, &phi)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_deduction, bench_paper_example
}
criterion_main!(benches);
