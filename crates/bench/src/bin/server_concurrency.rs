//! Concurrent serving: `MatchServer` queries/s and latency percentiles
//! across a (client threads × shards) sweep, plus zero-downtime reads
//! measured *during* rule hot-swaps.
//!
//! For every configuration the server answers are checked hit-for-hit
//! against a single-owner `MatchService` fed the same records before any
//! timing happens, so the sweep only ever measures correct servers. The
//! sweep runs with the probe cache off (every query does real work);
//! the swap section then measures how many reads complete while
//! `swap_rules` rebuilds all shards. Emits `BENCH_server.json`.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin server_concurrency \
//!    [quick|paper] [out.json]`

use matchrules::engine::{ExecConfig, Threads};
use matchrules::server::{MatchServer, ServerConfig};
use matchrules::service::{MatchService, Record, RecordId};
use matchrules_bench::experiments::workload;
use matchrules_bench::json::Json;
use matchrules_bench::table::Table;
use matchrules_bench::{time, Scale};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

const SHARD_SWEEP: [usize; 3] = [1, 2, 4];
const CLIENT_SWEEP: [usize; 3] = [1, 2, 8];

fn percentile(sorted_nanos: &[u64], p: f64) -> f64 {
    if sorted_nanos.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[rank] as f64 / 1e3
}

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_server.json".to_owned());
    let (persons, rounds) = match scale {
        Scale::Paper => (8_000, 4),
        Scale::Quick => (600, 2),
    };

    println!("server concurrency — MatchServer across client threads x shards");
    let w = workload(persons, 0x5EA7);
    let credit = &w.data.credit;
    let billing = &w.data.billing;

    // The single-owner reference every configuration must agree with.
    let mut reference = MatchService::new(w.engine.clone());
    let batch: Vec<(RecordId, Record)> = billing
        .tuples()
        .iter()
        .map(|t| {
            let record = Record::from_values(reference.store_schema().clone(), t.values().to_vec())
                .expect("billing rows instantiate the store schema");
            (RecordId(t.id()), record)
        })
        .collect();
    for (id, record) in &batch {
        reference.upsert(*id, record).expect("fresh ids insert");
    }
    let probes: Vec<Record> = credit
        .tuples()
        .iter()
        .map(|t| {
            Record::from_values(reference.probe_schema().clone(), t.values().to_vec())
                .expect("credit rows instantiate the probe schema")
        })
        .collect();
    let expected: Vec<Vec<(u64, usize)>> = probes
        .iter()
        .map(|p| {
            let response = reference.query(p).expect("probe schema checked");
            response.hits.iter().map(|h| (h.id.0, h.key)).collect()
        })
        .collect();
    println!(
        "catalog: {} probes x {} records, {} RCKs; sweeping shards {SHARD_SWEEP:?} \
         x client threads {CLIENT_SWEEP:?}, {rounds} round(s) per client\n",
        probes.len(),
        billing.len(),
        reference.plan().rcks().len(),
    );

    let mut table = Table::new(&["shards", "clients", "queries", "queries/s", "p50 µs", "p99 µs"]);
    let mut sweep = Vec::new();
    for &shards in &SHARD_SWEEP {
        let server = MatchServer::with_config(
            w.engine.clone(),
            ServerConfig {
                shards,
                cache_capacity: 0, // every timed query does real work
                exec: ExecConfig { threads: Threads::Fixed(2) },
            },
        );
        server.upsert_batch(&batch).expect("fresh ids insert");

        // Correctness gate: hit-for-hit agreement with the reference.
        for (probe, want) in probes.iter().zip(&expected) {
            let response = server.query(probe).expect("probe schema checked");
            let got: Vec<(u64, usize)> = response.hits.iter().map(|h| (h.id.0, h.key)).collect();
            assert_eq!(&got, want, "sharded answers must equal the single-owner service");
        }

        for &clients in &CLIENT_SWEEP {
            let mut latencies: Vec<u64> = Vec::new();
            let (thread_latencies, seconds) = time(|| {
                thread::scope(|scope| {
                    let handles: Vec<_> = (0..clients)
                        .map(|c| {
                            let server = &server;
                            let probes = &probes;
                            scope.spawn(move || {
                                let mut reader = server.reader();
                                let mut nanos =
                                    Vec::with_capacity(rounds * probes.len() / clients + 1);
                                // Each client walks its own stride of the
                                // probe set, `rounds` times over.
                                for round in 0..rounds {
                                    let mut i = (c + round) % clients.max(1);
                                    while i < probes.len() {
                                        let start = Instant::now();
                                        reader.query(&probes[i]).expect("probe schema checked");
                                        nanos.push(start.elapsed().as_nanos() as u64);
                                        i += clients;
                                    }
                                }
                                nanos
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("client thread"))
                        .collect::<Vec<_>>()
                })
            });
            for mut nanos in thread_latencies {
                latencies.append(&mut nanos);
            }
            latencies.sort_unstable();
            let queries = latencies.len();
            let per_sec = queries as f64 / seconds.max(1e-12);
            let p50 = percentile(&latencies, 0.50);
            let p99 = percentile(&latencies, 0.99);
            table.row(vec![
                shards.to_string(),
                clients.to_string(),
                queries.to_string(),
                format!("{per_sec:.0}"),
                format!("{p50:.0}"),
                format!("{p99:.0}"),
            ]);
            sweep.push(
                Json::obj()
                    .field("shards", shards)
                    .field("clients", clients)
                    .field("queries", queries)
                    .field("seconds", seconds)
                    .field("per_sec", per_sec)
                    .field("p50_micros", p50)
                    .field("p99_micros", p99),
            );
        }
    }
    println!("{}", table.render());

    // Cache effectiveness: a cached 4-shard server answers the probe
    // set twice (boolean and ranked) — the second pass should be all
    // hits; a mutation then strands the whole cache, so a third pass
    // is all invalidation-misses.
    let cached = MatchServer::with_config(
        w.engine.clone(),
        ServerConfig {
            shards: 4,
            cache_capacity: 4 * probes.len().max(1),
            exec: ExecConfig { threads: Threads::Fixed(2) },
        },
    );
    cached.upsert_batch(&batch).expect("fresh ids insert");
    for pass in 0..2 {
        for probe in &probes {
            cached.query(probe).expect("probe schema checked");
            cached.query_ranked(probe, 10, 0.0).expect("probe schema checked");
        }
        if pass == 0 {
            let warm = cached.stats();
            assert_eq!(warm.cache_hits, 0, "first pass is all misses");
        }
    }
    let warm = cached.stats();
    assert_eq!(warm.cache_hits as usize, 2 * probes.len(), "second pass is all hits");
    // One upsert bumps the epoch: every cached entry is now stale.
    let (id0, record0) = batch[0].clone();
    cached.upsert(id0, &record0).expect("live id re-upserts");
    for probe in &probes {
        cached.query(probe).expect("probe schema checked");
        cached.query_ranked(probe, 10, 0.0).expect("probe schema checked");
    }
    let cold = cached.stats();
    assert_eq!(cold.cache_hits, warm.cache_hits, "stale entries never serve");
    assert!(
        cold.cache_invalidations >= 2 * probes.len() as u64,
        "every stale lookup counts as an invalidation"
    );
    println!(
        "probe cache: {} hits / {} misses / {} invalidations over boolean + ranked passes\n",
        cold.cache_hits, cold.cache_misses, cold.cache_invalidations,
    );

    // Zero-downtime swaps: readers hammer a 4-shard server while the
    // rule set is hot-swapped back and forth; count the reads that
    // complete strictly inside swap windows.
    let server = MatchServer::with_config(
        w.engine.clone(),
        ServerConfig {
            shards: 4,
            cache_capacity: 0,
            exec: ExecConfig { threads: Threads::Fixed(2) },
        },
    );
    server.upsert_batch(&batch).expect("fresh ids insert");
    let sigma = server.plan().sigma().to_vec();
    let stop = AtomicBool::new(false);
    let swapping = AtomicBool::new(false);
    let reads_during_swap = AtomicU64::new(0);
    let total_reads = AtomicU64::new(0);
    let mut swaps = 0u64;
    let mut swap_seconds_total = 0.0f64;
    thread::scope(|scope| {
        for reader_id in 0..3usize {
            let server = &server;
            let stop = &stop;
            let swapping = &swapping;
            let reads_during_swap = &reads_during_swap;
            let total_reads = &total_reads;
            let probes = &probes;
            scope.spawn(move || {
                let mut reader = server.reader();
                let mut i = reader_id;
                while !stop.load(Ordering::Relaxed) {
                    let in_window = swapping.load(Ordering::Relaxed);
                    reader.query(&probes[i % probes.len()]).expect("reads never fail during swaps");
                    total_reads.fetch_add(1, Ordering::Relaxed);
                    if in_window && swapping.load(Ordering::Relaxed) {
                        reads_during_swap.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                }
            });
        }
        for _ in 0..10 {
            thread::sleep(Duration::from_millis(20));
            swapping.store(true, Ordering::Relaxed);
            let (version, seconds) = time(|| {
                server.swap_rules_with(sigma.clone()).expect("the plan's own rules recompile")
            });
            swapping.store(false, Ordering::Relaxed);
            swaps += 1;
            swap_seconds_total += seconds;
            assert_eq!(version.number(), 1 + swaps, "every swap bumps the version once");
            if swaps >= 2 && reads_during_swap.load(Ordering::Relaxed) > 0 {
                break;
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let during = reads_during_swap.load(Ordering::Relaxed);
    let total = total_reads.load(Ordering::Relaxed);
    assert!(during > 0, "reads must complete during swap windows, not queue behind them");
    println!(
        "swap downtime: {during} of {total} reads completed inside {swaps} swap window(s) \
         (avg swap {:.3}s, all reads succeeded)",
        swap_seconds_total / swaps as f64,
    );

    let doc = Json::obj()
        .field("bench", "server_concurrency")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("records", billing.len())
        .field("probes", probes.len())
        .field("rounds", rounds)
        .field("sweep", sweep)
        .field(
            "cache",
            Json::obj()
                .field("hits", cold.cache_hits as usize)
                .field("misses", cold.cache_misses as usize)
                .field("invalidations", cold.cache_invalidations as usize),
        )
        .field(
            "swap",
            Json::obj()
                .field("swaps", swaps as usize)
                .field("avg_seconds", swap_seconds_total / swaps as f64)
                .field("reads_during_swap", during as usize)
                .field("total_reads", total as usize),
        );
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {out_path}");
}
