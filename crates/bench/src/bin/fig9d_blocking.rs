//! Fig. 9(d) and 10(d): blocking pairs completeness and reduction ratio vs
//! K, comparing the RCK-derived blocking key against a manually chosen one
//! (three attributes each, name Soundex-encoded).
//!
//! Usage: `cargo run --release -p matchrules-bench --bin fig9d_blocking [quick|paper]`

use matchrules_bench::experiments::{fig9d_10d_blocking, workload, ReductionRow};
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let ks: Vec<usize> = match scale {
        Scale::Paper => (1..=8).map(|i| i * 10_000).collect(),
        Scale::Quick => vec![1_000, 2_000, 4_000],
    };
    println!("Fig. 9(d)/10(d) — blocking with vs without RCK keys\n");
    let mut rows: Vec<(usize, ReductionRow, ReductionRow)> = Vec::with_capacity(ks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ks
            .iter()
            .map(|&k| {
                scope.spawn(move || {
                    let w = workload(k, 0x9d + k as u64);
                    let (manual, rck) = fig9d_10d_blocking(&w);
                    (k, manual, rck)
                })
            })
            .collect();
        for h in handles {
            rows.push(h.join().expect("experiment thread"));
        }
    });
    rows.sort_by_key(|r| r.0);

    let mut table = Table::new(&["K", "manual PC", "RCK PC", "manual RR", "RCK RR"]);
    for (k, manual, rck) in rows {
        table.row(vec![
            k.to_string(),
            format!("{:.3}", manual.pc),
            format!("{:.3}", rck.pc),
            format!("{:.4}", manual.rr),
            format!("{:.4}", rck.rr),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: RCK-based blocking keys yield comparable reduction ratios\n\
         and consistently better pairs completeness (~10%)."
    );
}
