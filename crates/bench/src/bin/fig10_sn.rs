//! Fig. 10(a–c): Sorted Neighborhood precision / recall / runtime vs K,
//! with the 25 hand-written rules (SN) and the top-5 RCK rule set (SNrck).
//!
//! Usage: `cargo run --release -p matchrules-bench --bin fig10_sn [quick|paper]`

use matchrules_bench::experiments::{fig10_sn, workload, MethodRow};
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let ks: Vec<usize> = match scale {
        Scale::Paper => (1..=8).map(|i| i * 10_000).collect(),
        Scale::Quick => vec![1_000, 2_000, 4_000],
    };
    println!("Fig. 10(a-c) — Sorted Neighborhood with vs without RCKs\n");
    let mut rows: Vec<(usize, MethodRow, MethodRow)> = Vec::with_capacity(ks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ks
            .iter()
            .map(|&k| {
                scope.spawn(move || {
                    let w = workload(k, 0x105 + k as u64);
                    let (sn, sn_rck) = fig10_sn(&w);
                    (k, sn, sn_rck)
                })
            })
            .collect();
        for h in handles {
            rows.push(h.join().expect("experiment thread"));
        }
    });
    rows.sort_by_key(|r| r.0);

    let mut table =
        Table::new(&["K", "SN prec", "SNrck prec", "SN rec", "SNrck rec", "SN sec", "SNrck sec"]);
    for (k, sn, rck) in rows {
        table.row(vec![
            k.to_string(),
            format!("{:.3}", sn.precision),
            format!("{:.3}", rck.precision),
            format!("{:.3}", sn.recall),
            format!("{:.3}", rck.recall),
            format!("{:.2}", sn.seconds),
            format!("{:.2}", rck.seconds),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: SNrck consistently outperforms SN in precision and recall\n\
         and runs faster (5 minimal keys vs 25 rules)."
    );
}
