//! Fig. 8(c): total number of RCKs deducible from small sets of MDs,
//! card(Σ) ∈ {10, 20, 30, 40}.
//!
//! Usage: `cargo run --release -p matchrules-bench --bin fig8c [quick|paper]`

use matchrules_bench::experiments::fig8c_total_rcks;
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let (cards, y_lens): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Paper => (vec![10, 20, 30, 40], vec![6, 8, 10, 12]),
        Scale::Quick => (vec![10, 20], vec![6, 10]),
    };
    println!("Fig. 8(c) — total number of RCKs vs card(Sigma)\n");
    let header: Vec<String> = std::iter::once("card(Sigma)".to_owned())
        .chain(y_lens.iter().map(|y| format!("|Y|={y}")))
        .collect();
    let mut table = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &card in &cards {
        let mut cells = vec![card.to_string()];
        for &y in &y_lens {
            cells.push(fig8c_total_rcks(card, y, 0x8c).to_string());
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!("Paper shape: even few MDs yield a reasonable number of RCKs.");
}
