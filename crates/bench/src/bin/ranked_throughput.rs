//! Ranked serving and one-to-one resolution: throughput and quality.
//!
//! Two experiments in one binary:
//!
//! 1. **Ranked vs boolean serving** — a `MatchService` over the §6
//!    synthetic catalog answers every credit probe twice: boolean
//!    `query` and `query_ranked` (score + sort + threshold + truncate).
//!    Asserts the ranked hit set equals the boolean hit set on every
//!    probe, then reports both rates — the price of calibrated scores
//!    on the serving path.
//! 2. **One-to-one vs closure dedup quality** — cross-relation
//!    credit→billing matching on a ladder of noise levels. The
//!    rule-matched pairs are resolved two ways: the classic union-find
//!    **closure** (expand clusters to all cross pairs) and the scored
//!    one-to-one **assignment** (`MatchEngine::resolve_links`). Both are
//!    evaluated against the generator's ground truth; the assignment
//!    must never lose precision to the closure.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin ranked_throughput \
//!    [quick|paper] [out.json]`

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::Preset;
use matchrules::service::{MatchService, Record, RecordId};
use matchrules_bench::experiments::{workload, WINDOW};
use matchrules_bench::json::Json;
use matchrules_bench::table::Table;
use matchrules_bench::{time, Scale};
use matchrules_matcher::metrics::evaluate_pairs;
use std::collections::BTreeSet;

/// Expands rule-matched cross pairs into entity clusters by union-find
/// and back out to *all* cross `(credit, billing)` pairs per cluster —
/// the transitive-closure baseline the paper's merge/purge uses.
fn closure_pairs(pairs: &[(usize, usize)], lefts: usize, rights: usize) -> Vec<(usize, usize)> {
    let n = lefts + rights;
    let mut parent: Vec<usize> = (0..n).collect();
    fn root(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(l, r) in pairs {
        let (a, b) = (root(&mut parent, l), root(&mut parent, lefts + r));
        if a != b {
            parent[a.max(b)] = a.min(b);
        }
    }
    let mut clusters: std::collections::HashMap<usize, (Vec<usize>, Vec<usize>)> =
        std::collections::HashMap::new();
    for l in 0..lefts {
        clusters.entry(root(&mut parent, l)).or_default().0.push(l);
    }
    for r in 0..rights {
        clusters.entry(root(&mut parent, lefts + r)).or_default().1.push(r);
    }
    let mut out = Vec::new();
    for (_, (ls, rs)) in clusters {
        for &l in &ls {
            for &r in &rs {
                out.push((l, r));
            }
        }
    }
    out
}

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_ranked.json".to_owned());
    let (persons, ladder_persons) = match scale {
        Scale::Paper => (20_000, 5_000),
        Scale::Quick => (1_200, 600),
    };

    // ----- Experiment 1: ranked vs boolean serving throughput --------
    println!("ranked serving — query_ranked vs query on the synthetic catalog");
    let w = workload(persons, 0x5E21);
    let mut service = MatchService::new(w.engine.clone());
    for t in w.data.billing.tuples() {
        let record = Record::from_values(service.store_schema().clone(), t.values().to_vec())
            .expect("billing rows instantiate the store schema");
        service.upsert(RecordId(t.id()), &record).expect("fresh ids insert");
    }
    let probes: Vec<Record> = w
        .data
        .credit
        .tuples()
        .iter()
        .map(|t| {
            Record::from_values(service.probe_schema().clone(), t.values().to_vec())
                .expect("credit rows instantiate the probe schema")
        })
        .collect();
    println!(
        "catalog: {} probes over {} records; score model fitted: {}\n",
        probes.len(),
        service.len(),
        service.plan().score_model().is_fitted(),
    );

    let mut bool_hits = 0usize;
    let (boolean, boolean_seconds) = time(|| {
        let mut out = Vec::with_capacity(probes.len());
        for probe in &probes {
            let response = service.query(probe).expect("probe schema checked");
            bool_hits += response.hits.len();
            out.push(response.hits);
        }
        out
    });
    let mut ranked_hits = 0usize;
    let (ranked, ranked_seconds) = time(|| {
        let mut out = Vec::with_capacity(probes.len());
        for probe in &probes {
            let response =
                service.query_ranked(probe, usize::MAX, 0.0).expect("probe schema checked");
            ranked_hits += response.hits.len();
            out.push(response.hits);
        }
        out
    });
    for (b, r) in boolean.iter().zip(&ranked) {
        let b_ids: BTreeSet<u64> = b.iter().map(|h| h.id.0).collect();
        let r_ids: BTreeSet<u64> = r.iter().map(|h| h.id.0).collect();
        assert_eq!(b_ids, r_ids, "ranked must return exactly the boolean hit set");
        for pair in r.windows(2) {
            assert!(pair[0].score >= pair[1].score, "ranked answers must be sorted");
        }
        for h in r {
            assert!(h.score.is_finite() && (0.0..=1.0).contains(&h.score));
        }
    }
    let queries = probes.len();
    let boolean_per_sec = queries as f64 / boolean_seconds.max(1e-12);
    let ranked_per_sec = queries as f64 / ranked_seconds.max(1e-12);
    let overhead = boolean_seconds / ranked_seconds.max(1e-12);

    let mut table = Table::new(&["mode", "queries", "seconds", "rate", "hits"]);
    table.row(vec![
        "boolean".to_owned(),
        queries.to_string(),
        format!("{boolean_seconds:.3}"),
        format!("{boolean_per_sec:.0}/s"),
        bool_hits.to_string(),
    ]);
    table.row(vec![
        "ranked".to_owned(),
        queries.to_string(),
        format!("{ranked_seconds:.3}"),
        format!("{ranked_per_sec:.0}/s"),
        ranked_hits.to_string(),
    ]);
    println!("{}", table.render());
    println!("ranked throughput is {:.2}x the boolean path\n", overhead);

    // ----- Experiment 2: one-to-one vs closure on a noise ladder -----
    println!("link quality — one-to-one assignment vs transitive closure");
    let shape = Preset::Extended.paper_setting();
    let rungs = [0.2, 0.5, 0.8];
    let mut quality_rows = Vec::new();
    let mut table = Table::new(&["attr_error", "matched_pairs", "closure P/R", "one-to-one P/R"]);
    for &attr_error_prob in &rungs {
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            ladder_persons,
            &NoiseConfig { attr_error_prob, seed: 0xACE5, ..Default::default() },
        );
        let engine = Preset::Extended
            .builder()
            .top_k(5)
            .window(WINDOW)
            .statistics_from(&data.credit, &data.billing)
            .build()
            .expect("preset engine builds");
        let report =
            engine.match_pairs_indexed(&data.credit, &data.billing).expect("indexed matching");
        let (closure, closure_seconds) =
            time(|| closure_pairs(&report.index_pairs(), data.credit.len(), data.billing.len()));
        let (links, resolve_seconds) = time(|| {
            engine.resolve_links(&data.credit, &data.billing, &report, 0.0).expect("links resolve")
        });
        let one_pairs: Vec<(usize, usize)> = links.iter().map(|l| (l.left, l.right)).collect();
        let closure_q = evaluate_pairs(&closure, &data.truth);
        let one_q = evaluate_pairs(&one_pairs, &data.truth);
        assert!(
            one_q.precision() >= closure_q.precision() - 1e-9,
            "one-to-one precision {:.4} fell below closure {:.4} at error {attr_error_prob}",
            one_q.precision(),
            closure_q.precision(),
        );
        table.row(vec![
            format!("{attr_error_prob:.1}"),
            report.len().to_string(),
            format!("{:.3}/{:.3}", closure_q.precision(), closure_q.recall()),
            format!("{:.3}/{:.3}", one_q.precision(), one_q.recall()),
        ]);
        quality_rows.push(
            Json::obj()
                .field("attr_error_prob", attr_error_prob)
                .field("matched_pairs", report.len())
                .field(
                    "closure",
                    Json::obj()
                        .field("pairs", closure.len())
                        .field("precision", closure_q.precision())
                        .field("recall", closure_q.recall())
                        .field("f1", closure_q.f1())
                        .field("seconds", closure_seconds),
                )
                .field(
                    "one_to_one",
                    Json::obj()
                        .field("links", one_pairs.len())
                        .field("precision", one_q.precision())
                        .field("recall", one_q.recall())
                        .field("f1", one_q.f1())
                        .field("seconds", resolve_seconds),
                ),
        );
    }
    println!("{}", table.render());

    let doc = Json::obj()
        .field("bench", "ranked_throughput")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("queries", queries)
        .field("score_model_fitted", service.plan().score_model().is_fitted())
        .field(
            "boolean",
            Json::obj()
                .field("seconds", boolean_seconds)
                .field("per_sec", boolean_per_sec)
                .field("hits", bool_hits),
        )
        .field(
            "ranked",
            Json::obj()
                .field("seconds", ranked_seconds)
                .field("per_sec", ranked_per_sec)
                .field("hits", ranked_hits),
        )
        .field("ranked_vs_boolean", overhead)
        .field("ladder_persons", ladder_persons)
        .field("quality_ladder", quality_rows);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {out_path}");
}
