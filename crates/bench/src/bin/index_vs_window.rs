//! Index vs window: RCK-driven `MatchIndex` candidate generation against
//! the multi-pass sorted-neighborhood path, end to end on the §6
//! synthetic catalog.
//!
//! Measures the index build cost, point-query throughput (build once,
//! query every credit tuple), and — the headline — candidate pairs
//! examined by each path for the same (or better) match recall. Asserts
//! that the indexed matches are a superset of the windowed matches with
//! identical decisions on shared pairs, and that the index examines
//! strictly fewer candidates. Emits the series as `BENCH_index.json`.
//!
//! A second, person-name workload (jaro-winkler + soundex + token RCKs)
//! exercises the non-equality anchors: the run asserts the plan compiles
//! with `scan_keys == 0` and that indexed probing examines strictly
//! fewer candidates than the windowed path.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin index_vs_window \
//!    [quick|paper] [out.json]`

use matchrules_bench::experiments::{names_workload, workload};
use matchrules_bench::json::Json;
use matchrules_bench::table::Table;
use matchrules_bench::{time, Scale};

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_index.json".to_owned());
    let persons = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 1_200,
    };

    println!("index vs window — RCK-driven MatchIndex on the synthetic catalog");
    let w = workload(persons, 0x1D3A);
    let credit = &w.data.credit;
    let billing = &w.data.billing;
    println!(
        "catalog: {} credit + {} billing rows; plan: {} RCKs, window {}\n",
        credit.len(),
        billing.len(),
        w.engine.plan().rcks().len(),
        w.engine.plan().window()
    );

    // Batch: the sorted-neighborhood path vs the index-backed path.
    let windowed = w.engine.match_pairs(credit, billing).expect("windowed run");
    let indexed = w.engine.match_pairs_indexed(credit, billing).expect("indexed run");

    // Correctness gate: indexed ⊇ windowed, identical on shared pairs
    // (the index retrieves every pair its keys accept; windows can miss).
    for pair in windowed.pairs() {
        assert!(
            indexed.pairs().contains(pair),
            "windowed match {pair:?} missing from the indexed run"
        );
    }
    assert!(
        indexed.candidates() < windowed.candidates(),
        "index must examine strictly fewer candidates ({} vs {})",
        indexed.candidates(),
        windowed.candidates()
    );

    let stage = |r: &matchrules::engine::MatchReport, name: &str| -> f64 {
        r.stages().iter().find(|s| s.name == name).map(|s| s.elapsed.as_secs_f64()).unwrap_or(0.0)
    };

    // Serving: build once, point-query every credit tuple.
    let (index, build_seconds) = time(|| w.engine.index(billing).expect("index builds"));
    let stats = index.stats();
    let (sequential, query_seconds) =
        time(|| credit.tuples().iter().map(|probe| index.query(probe)).collect::<Vec<_>>());
    let hits: usize = sequential.iter().map(|o| o.hits.len()).sum();
    let probed_candidates: usize = sequential.iter().map(|o| o.candidates).sum();
    let queries = credit.len();
    let qps = queries as f64 / query_seconds.max(1e-12);

    // Batched probes: the same credit rows through `query_batch`, which
    // shares prep and scratch across the batch. Answers must be
    // byte-for-byte the sequential outcomes (hits, candidates, every
    // work counter) — and a sampled slice is replayed through the
    // brute-force reference path as a correctness gate.
    let probes: Vec<_> = credit.tuples().to_vec();
    let (batch, batch_seconds) = time(|| index.query_batch(&probes));
    assert_eq!(batch, sequential, "batched probes must equal sequential probes");
    for (i, probe) in credit.tuples().iter().enumerate().step_by(37) {
        let reference = index.query_reference(probe);
        let got: Vec<_> = batch[i].hits.iter().map(|h| (h.id, h.key)).collect();
        let want: Vec<_> = reference.hits.iter().map(|h| (h.id, h.key)).collect();
        assert_eq!(got, want, "compressed retrieval diverged from the reference on probe {i}");
    }
    let batch_qps = queries as f64 / batch_seconds.max(1e-12);

    // Where the probe work went, summed over the batch: block decodes
    // vs skips, gallop vs linear steps, prefilter kills, dedup folds.
    let mut probe_stats = matchrules::engine::FilterStats::default();
    for outcome in &batch {
        probe_stats.merge(&outcome.stats);
    }

    let mut table = Table::new(&["path", "candidates", "matches", "seconds"]);
    table.row(vec![
        "window".to_owned(),
        windowed.candidates().to_string(),
        windowed.len().to_string(),
        format!("{:.3}", windowed.elapsed().as_secs_f64()),
    ]);
    table.row(vec![
        "index".to_owned(),
        indexed.candidates().to_string(),
        indexed.len().to_string(),
        format!("{:.3}", indexed.elapsed().as_secs_f64()),
    ]);
    println!("{}", table.render());
    println!(
        "candidate reduction: {:.1}x fewer pairs examined by the index",
        windowed.candidates() as f64 / indexed.candidates().max(1) as f64
    );
    println!(
        "serving: built in {build_seconds:.3}s ({} live tuples), {queries} queries in \
         {query_seconds:.3}s = {qps:.0} queries/sec ({hits} hits); \
         batched: {batch_qps:.0} queries/sec (answers identical, reference-checked)",
        stats.live
    );
    println!(
        "probe breakdown: {} blocks decoded + {} skipped, {} gallop + {} linear steps, \
         {} prefilter rejects, {} dedup-saved; postings {} -> {} bytes",
        probe_stats.blocks_decoded,
        probe_stats.blocks_skipped,
        probe_stats.gallop_steps,
        probe_stats.linear_steps,
        probe_stats.retrieval_rejects,
        probe_stats.dedup_saved,
        stats.postings_uncompressed_bytes,
        stats.postings_bytes,
    );

    let doc = Json::obj()
        .field("bench", "index_vs_window")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("credit_rows", credit.len())
        .field("billing_rows", billing.len())
        .field("plan_rcks", w.engine.plan().rcks().len())
        .field("window", w.engine.plan().window())
        .field(
            "batch",
            Json::obj()
                .field("window_candidates", windowed.candidates())
                .field("index_candidates", indexed.candidates())
                .field(
                    "candidate_reduction",
                    windowed.candidates() as f64 / indexed.candidates().max(1) as f64,
                )
                .field("window_matches", windowed.len())
                .field("index_matches", indexed.len())
                .field("window_seconds", windowed.elapsed().as_secs_f64())
                .field("index_seconds", indexed.elapsed().as_secs_f64())
                .field("index_build_stage_seconds", stage(&indexed, "index"))
                .field("probe_stage_seconds", stage(&indexed, "probe"))
                .field("window_stage_seconds", stage(&windowed, "window")),
        )
        .field(
            "serving",
            Json::obj()
                .field("build_seconds", build_seconds)
                .field("queries", queries)
                .field("query_seconds", query_seconds)
                .field("queries_per_sec", qps)
                .field("batch_seconds", batch_seconds)
                .field("batch_queries_per_sec", batch_qps)
                .field("hits", hits)
                .field("candidates_examined", probed_candidates)
                .field("exact_anchors", stats.exact_anchors)
                .field("qgram_anchors", stats.qgram_anchors)
                .field("derived_anchors", stats.derived_anchors)
                .field("token_anchors", stats.token_anchors)
                .field("bag_anchors", stats.bag_anchors)
                .field("scan_keys", stats.scan_keys)
                .field("exact_buckets", stats.exact_buckets)
                .field("posting_lists", stats.posting_lists)
                .field("sparse_entries", stats.sparse_entries),
        )
        .field(
            "probe_breakdown",
            Json::obj()
                .field("blocks_decoded", probe_stats.blocks_decoded as usize)
                .field("blocks_skipped", probe_stats.blocks_skipped as usize)
                .field("gallop_steps", probe_stats.gallop_steps as usize)
                .field("linear_steps", probe_stats.linear_steps as usize)
                .field("retrieval_rejects", probe_stats.retrieval_rejects as usize)
                .field("dedup_saved", probe_stats.dedup_saved as usize)
                .field("verify_evaluations", probe_stats.evaluations() as usize)
                .field("postings_bytes", stats.postings_bytes)
                .field("postings_uncompressed_bytes", stats.postings_uncompressed_bytes),
        )
        .field("names", names_section(scale));
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {out_path}");
}

/// The person-name workload: RCKs on jaro-winkler + soundex + token
/// operators (plus one phone-equality tie-breaker), where every key
/// retrieves through the new anchor kinds — `scan_keys` must be 0 and
/// indexed probing must examine strictly fewer candidates than the
/// windowed path.
fn names_section(scale: Scale) -> Json {
    let persons = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 1_200,
    };
    println!("\nnames workload — jw + soundex + token anchors on {persons} persons");
    let w = names_workload(persons, 0x5EED);
    let windowed = w.engine.match_pairs(&w.left, &w.right).expect("windowed run");
    let indexed = w.engine.match_pairs_indexed(&w.left, &w.right).expect("indexed run");

    // Correctness gates: nothing the window found may go missing, the
    // index must probe strictly fewer pairs, and — the point of the
    // workload — not a single key may fall back to scanning.
    for pair in windowed.pairs() {
        assert!(
            indexed.pairs().contains(pair),
            "windowed match {pair:?} missing from the indexed run"
        );
    }
    assert!(
        indexed.candidates() < windowed.candidates(),
        "index must examine strictly fewer candidates ({} vs {})",
        indexed.candidates(),
        windowed.candidates()
    );

    let (index, build_seconds) = time(|| w.engine.index(&w.right).expect("index builds"));
    let stats = index.stats();
    assert_eq!(stats.scan_keys, 0, "names plan fell back to scanning: {stats:?}");
    let mut hits = 0usize;
    let mut probed_candidates = 0usize;
    let mut dedup_saved = 0u64;
    let (_, query_seconds) = time(|| {
        for probe in w.left.tuples() {
            let outcome = index.query(probe);
            hits += outcome.hits.len();
            probed_candidates += outcome.candidates;
            dedup_saved += outcome.stats.dedup_saved;
        }
    });
    let queries = w.left.len();
    let qps = queries as f64 / query_seconds.max(1e-12);

    let mut table = Table::new(&["path", "candidates", "matches", "seconds"]);
    table.row(vec![
        "window".to_owned(),
        windowed.candidates().to_string(),
        windowed.len().to_string(),
        format!("{:.3}", windowed.elapsed().as_secs_f64()),
    ]);
    table.row(vec![
        "index".to_owned(),
        indexed.candidates().to_string(),
        indexed.len().to_string(),
        format!("{:.3}", indexed.elapsed().as_secs_f64()),
    ]);
    println!("{}", table.render());
    println!(
        "anchors: {} derived + {} token + {} bag + {} exact, scan keys: {}; \
         {queries} queries at {qps:.0}/sec ({hits} hits, {dedup_saved} dedup-saved verifications)",
        stats.derived_anchors,
        stats.token_anchors,
        stats.bag_anchors,
        stats.exact_anchors,
        stats.scan_keys
    );

    Json::obj()
        .field("persons", persons)
        .field("window_candidates", windowed.candidates())
        .field("index_candidates", indexed.candidates())
        .field(
            "candidate_reduction",
            windowed.candidates() as f64 / indexed.candidates().max(1) as f64,
        )
        .field("window_matches", windowed.len())
        .field("index_matches", indexed.len())
        .field("window_seconds", windowed.elapsed().as_secs_f64())
        .field("index_seconds", indexed.elapsed().as_secs_f64())
        .field("build_seconds", build_seconds)
        .field("queries", queries)
        .field("queries_per_sec", qps)
        .field("hits", hits)
        .field("candidates_examined", probed_candidates)
        .field("dedup_saved", dedup_saved as usize)
        .field("exact_anchors", stats.exact_anchors)
        .field("derived_anchors", stats.derived_anchors)
        .field("token_anchors", stats.token_anchors)
        .field("bag_anchors", stats.bag_anchors)
        .field("scan_keys", stats.scan_keys)
}
