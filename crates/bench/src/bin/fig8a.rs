//! Fig. 8(a): findRCKs runtime vs card(Σ), m = 20, |Y1| ∈ {6, 8, 10, 12}.
//!
//! Usage: `cargo run --release -p matchrules-bench --bin fig8a [quick|paper]`

use matchrules_bench::experiments::fig8_findrcks_seconds;
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let (cards, y_lens): (Vec<usize>, Vec<usize>) = match scale {
        Scale::Paper => ((1..=10).map(|i| i * 200).collect(), vec![6, 8, 10, 12]),
        Scale::Quick => (vec![200, 400, 600], vec![6, 10]),
    };
    println!("Fig. 8(a) — findRCKs runtime (seconds) vs card(Sigma), m = 20\n");
    let mut table = Table::new(
        &std::iter::once("card(Sigma)".to_owned())
            .chain(y_lens.iter().map(|y| format!("|Y|={y}")))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    );
    for &card in &cards {
        let mut cells = vec![card.to_string()];
        for &y in &y_lens {
            let secs = fig8_findrcks_seconds(card, y, 20, 0x8a);
            cells.push(format!("{secs:.3}"));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!("Paper shape: near-linear growth in card(Sigma); larger |Y| is slower.");
}
