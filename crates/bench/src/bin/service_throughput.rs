//! Serving-layer throughput: `MatchService` upsert / query / rule-swap
//! rates and explanation latency on the §6 synthetic catalog.
//!
//! Builds a service over the extended preset, upserts every billing row
//! (field-name records, stable ids), point-queries every credit row,
//! hot-swaps the rule set (recompile + full index rebuild), and explains
//! a slice of (probe, hit) pairs. Asserts that the post-swap answers to
//! an identical rule set are identical to the pre-swap answers, then
//! emits the series as `BENCH_service.json`.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin service_throughput \
//!    [quick|paper] [out.json]`

use matchrules::service::{MatchService, Record, RecordId};
use matchrules_bench::experiments::workload;
use matchrules_bench::json::Json;
use matchrules_bench::table::Table;
use matchrules_bench::{time, Scale};

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_service.json".to_owned());
    let persons = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 1_200,
    };

    println!("service throughput — MatchService on the synthetic catalog");
    let w = workload(persons, 0x5E21);
    let credit = &w.data.credit;
    let billing = &w.data.billing;
    let mut service = MatchService::new(w.engine.clone());
    println!(
        "catalog: {} credit probes + {} billing records; plan: {} RCKs at {}\n",
        credit.len(),
        billing.len(),
        service.plan().rcks().len(),
        service.version(),
    );

    // Upserts: every billing row becomes a stored record.
    let (_, upsert_seconds) = time(|| {
        for t in billing.tuples() {
            let record = Record::from_values(service.store_schema().clone(), t.values().to_vec())
                .expect("billing rows instantiate the store schema");
            service.upsert(RecordId(t.id()), &record).expect("fresh ids insert");
        }
    });
    let upserts = billing.len();
    let upserts_per_sec = upserts as f64 / upsert_seconds.max(1e-12);

    // Queries: every credit row probed once.
    let probes: Vec<Record> = credit
        .tuples()
        .iter()
        .map(|t| {
            Record::from_values(service.probe_schema().clone(), t.values().to_vec())
                .expect("credit rows instantiate the probe schema")
        })
        .collect();
    let mut hits = 0usize;
    let mut candidates = 0usize;
    let mut key_evals = 0usize;
    let (before, query_seconds) = time(|| {
        let mut responses = Vec::with_capacity(probes.len());
        for probe in &probes {
            let response = service.query(probe).expect("probe schema checked");
            hits += response.hits.len();
            candidates += response.candidates;
            key_evals += response.key_evals;
            responses.push(response.hits);
        }
        responses
    });
    let queries = probes.len();
    let queries_per_sec = queries as f64 / query_seconds.max(1e-12);

    // Key-provenance pruning: the serving path only verifies the keys
    // whose anchors retrieved each candidate. Replay every probe through
    // the unpruned reference path and assert the pruning saved RCK
    // evaluations without changing a single answer.
    let index = w.engine.index(billing).expect("billing relation indexes");
    let mut key_evals_unpruned = 0usize;
    for (probe_tuple, expect) in credit.tuples().iter().zip(&before) {
        let unpruned = index.query_unpruned(probe_tuple);
        key_evals_unpruned += unpruned.key_evals;
        let got: Vec<(u64, usize)> = unpruned.hits.iter().map(|h| (h.id, h.key)).collect();
        let want: Vec<(u64, usize)> = expect.iter().map(|h| (h.id.0, h.key)).collect();
        assert_eq!(got, want, "pruned and unpruned answers must be byte-identical");
    }
    assert!(
        key_evals < key_evals_unpruned,
        "pruning must drop RCK evaluations ({key_evals} pruned vs {key_evals_unpruned} unpruned)"
    );
    let key_evals_saved = 1.0 - key_evals as f64 / key_evals_unpruned.max(1) as f64;

    // Batched queries: the same probes through `query_batch`, which
    // amortizes relation prep and probe scratch across the batch — the
    // serving headline. Answers must be byte-identical to the
    // sequential pass.
    let (batch, batch_seconds) =
        time(|| service.query_batch(&probes).expect("probe schema checked"));
    for (response, expect) in batch.iter().zip(&before) {
        assert_eq!(&response.hits, expect, "batched answers must equal sequential answers");
    }
    let batch_per_sec = queries as f64 / batch_seconds.max(1e-12);
    let batch_speedup = batch_per_sec / queries_per_sec.max(1e-12);

    // Probe-breakdown counters: where retrieval work went, summed over
    // the batch (deterministic — the same counters the differential
    // tests pin).
    let mut probe_stats = matchrules::engine::FilterStats::default();
    for response in &batch {
        probe_stats.merge(&response.stats);
    }
    let index_stats = index.stats();

    // Rule hot-swap: recompile the same MD set and rebuild the index —
    // the full cost of one rule iteration over a populated store.
    let sigma = service.plan().sigma().to_vec();
    let (version, swap_seconds) =
        time(|| service.swap_rules_with(sigma).expect("the plan's own rules recompile"));
    assert_eq!(version.number(), 2, "swap bumps the version");
    // Same rules -> byte-identical answers: the swap carries the plan's
    // measured cost statistics, so the recompiled key list (and hence
    // hit provenance) is the original one.
    for (probe, expect) in probes.iter().zip(&before) {
        let after = service.query(probe).expect("probe schema checked").hits;
        assert_eq!(&after, expect, "swapping to an identical rule set must not change answers");
    }

    // Explanations: one (probe, first hit) trace per matching probe, up
    // to a fixed budget.
    let budget = 500usize;
    let pairs: Vec<(usize, RecordId)> = before
        .iter()
        .enumerate()
        .filter_map(|(i, hits)| hits.first().map(|h| (i, h.id)))
        .take(budget)
        .collect();
    let explains = pairs.len();
    let (_, explain_seconds) = time(|| {
        for &(i, id) in &pairs {
            let why = service.explain(&probes[i], id).expect("hit ids are live");
            assert!(why.matched, "explained hits must verify as matches");
        }
    });
    let explain_micros = if explains == 0 { 0.0 } else { explain_seconds * 1e6 / explains as f64 };

    let mut table = Table::new(&["operation", "count", "seconds", "rate"]);
    table.row(vec![
        "upsert".to_owned(),
        upserts.to_string(),
        format!("{upsert_seconds:.3}"),
        format!("{upserts_per_sec:.0}/s"),
    ]);
    table.row(vec![
        "query".to_owned(),
        queries.to_string(),
        format!("{query_seconds:.3}"),
        format!("{queries_per_sec:.0}/s"),
    ]);
    table.row(vec![
        "query_batch".to_owned(),
        queries.to_string(),
        format!("{batch_seconds:.3}"),
        format!("{batch_per_sec:.0}/s"),
    ]);
    table.row(vec![
        "swap_rules".to_owned(),
        "1".to_owned(),
        format!("{swap_seconds:.3}"),
        "-".to_owned(),
    ]);
    table.row(vec![
        "explain".to_owned(),
        explains.to_string(),
        format!("{explain_seconds:.3}"),
        format!("{explain_micros:.0}µs each"),
    ]);
    println!("{}", table.render());
    println!(
        "{hits} hits over {queries} queries ({candidates} candidates verified); \
         store at {} with {} records",
        service.version(),
        service.len(),
    );
    println!(
        "key pruning: {key_evals} RCK evaluations vs {key_evals_unpruned} unpruned \
         ({:.1}% saved, answers identical)",
        key_evals_saved * 100.0,
    );
    println!(
        "batch: {batch_per_sec:.0} queries/sec ({batch_speedup:.1}x over sequential, \
         answers identical)"
    );
    println!(
        "probe breakdown: {} blocks decoded + {} skipped, {} gallop + {} linear steps, \
         {} prefilter rejects, {} dedup-saved; postings {} -> {} bytes",
        probe_stats.blocks_decoded,
        probe_stats.blocks_skipped,
        probe_stats.gallop_steps,
        probe_stats.linear_steps,
        probe_stats.retrieval_rejects,
        probe_stats.dedup_saved,
        index_stats.postings_uncompressed_bytes,
        index_stats.postings_bytes,
    );

    let doc = Json::obj()
        .field("bench", "service_throughput")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("records", upserts)
        .field("queries", queries)
        .field("plan_rcks", service.plan().rcks().len())
        .field(
            "upsert",
            Json::obj()
                .field("count", upserts)
                .field("seconds", upsert_seconds)
                .field("per_sec", upserts_per_sec),
        )
        .field(
            "query",
            Json::obj()
                .field("count", queries)
                .field("seconds", query_seconds)
                .field("per_sec", queries_per_sec)
                .field("hits", hits)
                .field("candidates_verified", candidates),
        )
        .field(
            "query_batch",
            Json::obj()
                .field("count", queries)
                .field("seconds", batch_seconds)
                .field("per_sec", batch_per_sec)
                .field("speedup_vs_sequential", batch_speedup),
        )
        .field(
            "probe_breakdown",
            Json::obj()
                .field("blocks_decoded", probe_stats.blocks_decoded as usize)
                .field("blocks_skipped", probe_stats.blocks_skipped as usize)
                .field("gallop_steps", probe_stats.gallop_steps as usize)
                .field("linear_steps", probe_stats.linear_steps as usize)
                .field("retrieval_rejects", probe_stats.retrieval_rejects as usize)
                .field("dedup_saved", probe_stats.dedup_saved as usize)
                .field("verify_evaluations", probe_stats.evaluations() as usize)
                .field("postings_bytes", index_stats.postings_bytes)
                .field("postings_uncompressed_bytes", index_stats.postings_uncompressed_bytes),
        )
        .field(
            "key_pruning",
            Json::obj()
                .field("key_evals", key_evals)
                .field("key_evals_unpruned", key_evals_unpruned)
                .field("saved_frac", key_evals_saved),
        )
        .field(
            "swap_rules",
            Json::obj()
                .field("seconds", swap_seconds)
                .field("version_after", version.number() as usize),
        )
        .field(
            "explain",
            Json::obj()
                .field("count", explains)
                .field("seconds", explain_seconds)
                .field("micros_each", explain_micros),
        );
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {out_path}");
}
