//! Runtime scaling: end-to-end `match_pairs` over the §6 synthetic
//! catalog, swept from 1 thread to the hardware parallelism on one
//! compiled plan (`MatchEngine::with_exec` — no recompilation between
//! points). Verifies that every parallel run is byte-identical to the
//! serial baseline and emits the series as `BENCH_runtime.json`.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin runtime_scaling \
//!    [quick|paper] [out.json]`
//!
//! `paper` scale matches ≥ 50k rows (20k credit holders → 20k + 36k
//! tuples); `quick` is a CI-sized smoke run.

use matchrules::engine::{ExecConfig, MatchReport};
use matchrules_bench::experiments::workload;
use matchrules_bench::json::Json;
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

/// Timed runs per sweep point; the minimum is reported.
const REPEATS: usize = 2;

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_runtime.json".to_owned());
    let persons = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 1_200,
    };
    let hardware =
        std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut sweep: Vec<usize> = vec![1, 2, 4];
    if hardware > 4 {
        sweep.push(hardware);
    }

    println!("runtime scaling — end-to-end match_pairs, {persons} holders per relation");
    let w = workload(persons, 0x5CA1E);
    let rows = w.data.credit.len() + w.data.billing.len();
    println!(
        "catalog: {} credit + {} billing = {rows} rows; hardware threads: {hardware}\n",
        w.data.credit.len(),
        w.data.billing.len()
    );

    let mut table = Table::new(&[
        "threads",
        "seconds",
        "speedup",
        "window s",
        "match s",
        "matches",
        "identical",
    ]);
    let mut points: Vec<Json> = Vec::new();
    let mut baseline: Option<(f64, MatchReport)> = None;
    for &threads in &sweep {
        let engine = w.engine.with_exec(ExecConfig::fixed(threads));
        let mut best: Option<MatchReport> = None;
        for _ in 0..REPEATS {
            let report = engine.match_pairs(&w.data.credit, &w.data.billing).expect("engine runs");
            if best.as_ref().is_none_or(|b| report.elapsed() < b.elapsed()) {
                best = Some(report);
            }
        }
        let report = best.expect("at least one repeat ran");
        let seconds = report.elapsed().as_secs_f64();
        let identical = match &baseline {
            None => true, // this IS the serial baseline
            Some((_, serial)) => serial.pairs() == report.pairs(),
        };
        assert!(identical, "parallel output diverged from serial at {threads} threads");
        let speedup = baseline.as_ref().map_or(1.0, |(s, _)| s / seconds);
        let stage = |name: &str| -> f64 {
            report
                .stages()
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.elapsed.as_secs_f64())
                .unwrap_or(0.0)
        };
        table.row(vec![
            threads.to_string(),
            format!("{seconds:.3}"),
            format!("{speedup:.2}x"),
            format!("{:.3}", stage("window")),
            format!("{:.3}", stage("match")),
            report.len().to_string(),
            if identical { "yes".to_owned() } else { "NO".to_owned() },
        ]);
        points.push(
            Json::obj()
                .field("threads", threads)
                .field("seconds", seconds)
                .field("speedup_vs_serial", speedup)
                .field("window_seconds", stage("window"))
                .field("match_seconds", stage("match"))
                .field("matches", report.len())
                .field("candidates", report.candidates())
                .field("identical_to_serial", identical),
        );
        if baseline.is_none() {
            baseline = Some((seconds, report));
        }
    }
    println!("{}", table.render());

    let doc = Json::obj()
        .field("bench", "runtime_scaling")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("rows", rows)
        .field("hardware_threads", hardware)
        .field("plan_rcks", w.engine.plan().rcks().len())
        .field("window", w.engine.plan().window())
        .field("sweep", points);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {out_path}");
    if hardware == 1 {
        println!("note: single-core host — speedups require hardware parallelism.");
    }
}
