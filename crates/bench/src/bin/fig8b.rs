//! Fig. 8(b): findRCKs runtime vs m (number of RCKs), card(Σ) = 2000.
//!
//! Includes the paper's headline point: 50 RCKs from 2000 MDs in well under
//! 100 seconds.
//!
//! Usage: `cargo run --release -p matchrules-bench --bin fig8b [quick|paper]`

use matchrules_bench::experiments::fig8_findrcks_seconds;
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let (card, ms, y_lens): (usize, Vec<usize>, Vec<usize>) = match scale {
        Scale::Paper => (2000, (1..=10).map(|i| i * 5).collect(), vec![6, 8, 10, 12]),
        Scale::Quick => (600, vec![5, 15, 25], vec![6, 10]),
    };
    println!("Fig. 8(b) — findRCKs runtime (seconds) vs m, card(Sigma) = {card}\n");
    let header: Vec<String> =
        std::iter::once("m".to_owned()).chain(y_lens.iter().map(|y| format!("|Y|={y}"))).collect();
    let mut table = Table::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &m in &ms {
        let mut cells = vec![m.to_string()];
        for &y in &y_lens {
            let secs = fig8_findrcks_seconds(card, y, m, 0x8b);
            cells.push(format!("{secs:.3}"));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!("Paper shape: grows with m and |Y|; 50 RCKs from 2000 MDs in < 100 s.");
}
