//! Refinement quality on the §6.2 noise ladder: seed rules vs the
//! refined (selected, θ-tuned) rule set.
//!
//! Per noise rung the experiment seeds an engine with a deliberately
//! weak rule set — one exact email key plus one fuzzy `FN ∧ LN`
//! Jaro–Winkler key at the registry's tight base threshold (0.90) —
//! turns the generator's ground
//! truth into a `LabelStore`, and runs the full refinement loop (mine →
//! θ-sweep → evaluate → select). Reported per rung: before/after
//! precision/recall/F1 on the labeled sample, candidate-pool size,
//! θ-sweep variants selected, and selection wall-time.
//!
//! Hard assertions (the refinement contract):
//!
//! * refined F1 ≥ seed F1 on **every** rung;
//! * at least one θ-sweep variant is selected across the ladder — the
//!   sweep must actually contribute, not just pad the pool;
//! * the refinement hot-swaps into a serving `MatchService` (version
//!   bump, queries answered) on every rung.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin refine_quality \
//!    [quick|paper] [out.json]`

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::{EngineBuilder, Preset};
use matchrules::refine::{LabelStore, RefineConfig, Refiner};
use matchrules::service::{MatchService, Record, RecordId};
use matchrules_bench::json::Json;
use matchrules_bench::table::Table;
use matchrules_bench::{time, Scale};

/// Deliberately weak seed: an exact key that dies with noisy emails and
/// a fuzzy name key at the registry's tight base threshold (`≈jw` is
/// registered at 0.90). Jaro–Winkler has a near-continuous gradient, so
/// typo'd positives land just below the base θ — exactly the headroom
/// the sweep's looser variants (0.85, 0.70…) are meant to claw back.
const SEED_RULES: &str = "\
    credit[email] = billing[email] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n\
    credit[LN] ~jw billing[LN] /\\ credit[FN] ~jw billing[FN] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n";

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_refine.json".to_owned());
    let persons = match scale {
        Scale::Paper => 2_000,
        Scale::Quick => 300,
    };
    let rungs = [0.2, 0.5, 0.8];

    println!("refinement quality — seed vs refined rules on the noise ladder");
    println!("persons per rung: {persons}; seed rules: exact email key + ≈jw FN∧LN at θ=0.90\n");

    let shape = Preset::Extended.paper_setting();
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "attr_error",
        "labels (+/-)",
        "pool",
        "seed P/R/F1",
        "refined P/R/F1",
        "θ-variants",
        "select s",
    ]);
    let mut theta_variants_total = 0usize;
    for &attr_error_prob in &rungs {
        let data = generate_dirty(
            &shape.pair,
            &shape.target,
            persons,
            &NoiseConfig { attr_error_prob, seed: 0xF1DE, ..Default::default() },
        );
        let engine = EngineBuilder::new()
            .schema_pair(shape.pair.clone())
            .md_text(SEED_RULES)
            .target_ids(shape.target.clone())
            .top_k(5)
            .statistics_from(&data.credit, &data.billing)
            .build()
            .expect("seed rules compile");
        let labels = LabelStore::from_truth(&data.credit, &data.billing, &data.truth, 2)
            .expect("ground truth labels are conflict-free");

        let refiner = Refiner::new(engine.plan(), engine.registry())
            .with_config(RefineConfig { beta: 1.0, ..RefineConfig::default() });
        let (refinement, select_seconds) =
            time(|| refiner.refine(&labels).expect("refinement selects a rule set"));
        let report = &refinement.report;

        assert!(
            report.after.f1() >= report.before.f1(),
            "refined F1 {:.4} fell below seed F1 {:.4} at error {attr_error_prob}",
            report.after.f1(),
            report.before.f1(),
        );

        // The refinement must actually deploy: swap into a serving
        // service and answer a probe at the bumped version.
        let mut service = MatchService::new(engine);
        for t in data.billing.tuples() {
            let record = Record::from_values(service.store_schema().clone(), t.values().to_vec())
                .expect("billing rows instantiate the store schema");
            service.upsert(RecordId(t.id()), &record).expect("fresh ids insert");
        }
        let version = service.swap_rules_refined(&refinement).expect("refinement hot-swaps");
        assert_eq!(version.number(), 2, "swap bumps the rule version");
        let probe = Record::from_values(
            service.probe_schema().clone(),
            data.credit.tuples()[0].values().to_vec(),
        )
        .expect("credit rows instantiate the probe schema");
        let answer = service.query(&probe).expect("refined rules serve");
        assert_eq!(answer.version.number(), 2);

        let theta_variants = report.theta_variants_selected();
        theta_variants_total += theta_variants;
        table.row(vec![
            format!("{attr_error_prob:.1}"),
            format!("{} ({}+/{}-)", labels.len(), labels.positives(), labels.negatives()),
            report.pool_size.to_string(),
            format!(
                "{:.3}/{:.3}/{:.3}",
                report.before.precision(),
                report.before.recall(),
                report.before.f1()
            ),
            format!(
                "{:.3}/{:.3}/{:.3}",
                report.after.precision(),
                report.after.recall(),
                report.after.f1()
            ),
            theta_variants.to_string(),
            format!("{select_seconds:.3}"),
        ]);
        rows.push(
            Json::obj()
                .field("attr_error_prob", attr_error_prob)
                .field("labels", labels.len())
                .field("labeled_positives", labels.positives())
                .field("labeled_negatives", labels.negatives())
                .field("pool_size", report.pool_size)
                .field("exhaustive", report.exhaustive)
                .field(
                    "seed",
                    Json::obj()
                        .field("precision", report.before.precision())
                        .field("recall", report.before.recall())
                        .field("f1", report.before.f1()),
                )
                .field(
                    "refined",
                    Json::obj()
                        .field("precision", report.after.precision())
                        .field("recall", report.after.recall())
                        .field("f1", report.after.f1()),
                )
                .field("selected_rules", report.selected.len())
                .field("theta_variants_selected", theta_variants)
                .field(
                    "chosen_thetas",
                    report
                        .chosen_thetas
                        .iter()
                        .map(|(atom, theta)| {
                            Json::obj().field("atom", atom.as_str()).field("theta", *theta)
                        })
                        .collect::<Vec<Json>>(),
                )
                .field("selection_seconds", select_seconds),
        );
    }
    println!("{}", table.render());
    assert!(
        theta_variants_total >= 1,
        "no θ-sweep variant was selected on any rung — the sweep contributed nothing",
    );
    println!("θ-sweep variants selected across the ladder: {theta_variants_total}");

    let doc = Json::obj()
        .field("bench", "refine_quality")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("negatives_per_positive", 2usize)
        .field("theta_variants_selected_total", theta_variants_total)
        .field("rungs", rows.into_iter().collect::<Vec<Json>>());
    std::fs::write(&out_path, format!("{doc}\n")).expect("benchmark output file is writable");
    println!("wrote {out_path}");
}
