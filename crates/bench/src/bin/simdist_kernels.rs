//! Old vs new similarity kernels on the §6 synthetic catalog.
//!
//! Two comparisons over the engine's windowed candidate pairs, plus the
//! filter-effectiveness counters, emitted as `BENCH_simdist.json`:
//!
//! 1. **kernel micro** — the pre-fix behaviour of
//!    `damerau_levenshtein_within` (a full `O(n·m)` OSA matrix per pair,
//!    the exact oracle `damerau_levenshtein`) against the banded
//!    early-exit kernel, on exactly the value pairs the plan's
//!    edit-distance atoms compare;
//! 2. **pair path** — per-pair `dyn SimilarityOp` dispatch
//!    (`KeyMatcher::matching_key`, which re-collects `chars()` for every
//!    string of every pair) against the compiled evaluator (per-relation
//!    signature caches + length/bag/q-gram filters + enum kernels).
//!
//! Both comparisons assert decision equality before reporting timings.
//!
//! Usage:
//! `cargo run --release -p matchrules-bench --bin simdist_kernels \
//!    [quick|paper] [out.json]`

use matchrules_bench::experiments::workload;
use matchrules_bench::json::Json;
use matchrules_bench::{time, Scale};
use matchrules_data::eval::FilterStats;
use matchrules_matcher::key::KeyMatcher;
use matchrules_runtime::WorkPool;
use matchrules_simdist::edit::{damerau_levenshtein, damerau_levenshtein_within, theta_bound};

/// Timed runs per path; the minimum is reported.
const REPEATS: usize = 3;

/// The paper's ≈d threshold — what the micro comparison binds θ to.
const THETA: f64 = 0.75;

fn main() {
    let scale = Scale::from_args();
    let out_path = std::env::args().nth(2).unwrap_or_else(|| "BENCH_simdist.json".to_owned());
    let persons = match scale {
        Scale::Paper => 20_000,
        Scale::Quick => 1_200,
    };
    let w = workload(persons, 0xF117E5);
    let (credit, billing) = (&w.data.credit, &w.data.billing);
    let candidates = w.engine.window(credit, billing).expect("plan has sort keys");
    println!(
        "simdist kernels — {} candidate pairs over {} + {} rows",
        candidates.len(),
        credit.len(),
        billing.len()
    );

    let plan = w.engine.plan();
    let runtime = w.engine.runtime();

    // ---- kernel micro: full-matrix DP vs banded early-exit DP ----
    let mut value_pairs: Vec<(&str, &str)> = Vec::new();
    for key in plan.rcks() {
        for atom in key.atoms() {
            if runtime.needs_signature(atom.op) {
                for &(l, r) in &candidates {
                    if let (Some(a), Some(b)) = (
                        credit.tuples()[l].get(atom.left).as_str(),
                        billing.tuples()[r].get(atom.right).as_str(),
                    ) {
                        value_pairs.push((a, b));
                    }
                }
            }
        }
    }
    let exact = || {
        value_pairs
            .iter()
            .filter(|(a, b)| {
                let max_len = a.chars().count().max(b.chars().count());
                max_len == 0 || damerau_levenshtein(a, b) <= theta_bound(THETA, max_len)
            })
            .count()
    };
    let banded = || {
        value_pairs
            .iter()
            .filter(|(a, b)| {
                let max_len = a.chars().count().max(b.chars().count());
                max_len == 0
                    || damerau_levenshtein_within(a, b, theta_bound(THETA, max_len)).is_some()
            })
            .count()
    };
    let (mut exact_hits, mut exact_secs) = (0usize, f64::INFINITY);
    let (mut banded_hits, mut banded_secs) = (0usize, f64::INFINITY);
    for _ in 0..REPEATS {
        let (hits, secs) = time(exact);
        exact_hits = hits;
        exact_secs = exact_secs.min(secs);
        let (hits, secs) = time(banded);
        banded_hits = hits;
        banded_secs = banded_secs.min(secs);
    }
    assert_eq!(exact_hits, banded_hits, "banded kernel must agree with the exact oracle");
    println!(
        "kernel micro: {} comparisons, {} within θ = {THETA} — exact {exact_secs:.3}s, \
         banded {banded_secs:.3}s ({:.2}x)",
        value_pairs.len(),
        exact_hits,
        exact_secs / banded_secs
    );

    // ---- pair path: dyn dispatch vs compiled evaluator ----
    let matcher = KeyMatcher::new(plan.rcks().iter(), runtime).with_negatives(plan.negatives());
    let pool = WorkPool::serial(); // single-threaded: compare kernels, not cores

    let dyn_path = || {
        let mut out = Vec::new();
        for &(l, r) in &candidates {
            let (lt, rt) = (&credit.tuples()[l], &billing.tuples()[r]);
            if matcher.matching_key(lt, rt).is_some() && !matcher.vetoed(lt, rt) {
                out.push((l, r));
            }
        }
        out
    };
    let mut dyn_matches = Vec::new();
    let mut dyn_secs = f64::INFINITY;
    for _ in 0..REPEATS {
        let (out, secs) = time(dyn_path);
        dyn_matches = out;
        dyn_secs = dyn_secs.min(secs);
    }

    let mut compiled_matches = Vec::new();
    let mut compiled_secs = f64::INFINITY;
    let mut prep_secs = f64::INFINITY;
    let mut stats = FilterStats::default();
    for _ in 0..REPEATS {
        let started = std::time::Instant::now();
        let ((left_prep, right_prep), prep) = time(|| matcher.prepare_in(&pool, credit, billing));
        let mut eval = matcher.evaluator(credit, billing, &left_prep, &right_prep);
        let mut out = Vec::new();
        for &(l, r) in &candidates {
            if eval.matching_key(l, r).is_some() && !eval.vetoed(l, r) {
                out.push((l, r));
            }
        }
        let total = started.elapsed().as_secs_f64();
        if total < compiled_secs {
            compiled_secs = total;
            prep_secs = prep;
            stats = eval.stats();
        }
        compiled_matches = out;
    }
    assert_eq!(
        dyn_matches, compiled_matches,
        "compiled evaluator must decide exactly like dyn dispatch"
    );
    println!(
        "pair path: {} candidates, {} matches — dyn {dyn_secs:.3}s, compiled {compiled_secs:.3}s \
         (prep {prep_secs:.3}s, {:.2}x)",
        candidates.len(),
        dyn_matches.len(),
        dyn_secs / compiled_secs
    );
    println!(
        "filters: {} equal fast-path, {} length + {} bag + {} qgram rejects, {} DP runs of {} \
         edit evaluations",
        stats.equal_fast,
        stats.length_rejects,
        stats.bag_rejects,
        stats.qgram_rejects,
        stats.dp_runs,
        stats.evaluations()
    );

    let doc = Json::obj()
        .field("bench", "simdist_kernels")
        .field(
            "scale",
            match scale {
                Scale::Paper => "paper",
                Scale::Quick => "quick",
            },
        )
        .field("persons", persons)
        .field("candidates", candidates.len())
        .field(
            "kernel",
            Json::obj()
                .field("comparisons", value_pairs.len())
                .field("within_theta", exact_hits)
                .field("exact_seconds", exact_secs)
                .field("banded_seconds", banded_secs)
                .field("speedup", exact_secs / banded_secs),
        )
        .field(
            "pairs",
            Json::obj()
                .field("matches", dyn_matches.len())
                .field("dyn_seconds", dyn_secs)
                .field("compiled_seconds", compiled_secs)
                .field("prep_seconds", prep_secs)
                .field("speedup", dyn_secs / compiled_secs)
                .field("identical_to_dyn", true),
        )
        .field(
            "filters",
            Json::obj()
                .field("equal_fast", stats.equal_fast as usize)
                .field("length_rejects", stats.length_rejects as usize)
                .field("bag_rejects", stats.bag_rejects as usize)
                .field("qgram_rejects", stats.qgram_rejects as usize)
                .field("dp_runs", stats.dp_runs as usize)
                .field("evaluations", stats.evaluations() as usize),
        );
    std::fs::write(&out_path, format!("{doc}\n")).expect("write bench output");
    println!("\nwrote {out_path}");
    assert!(
        compiled_secs < dyn_secs,
        "compiled filter+kernel path ({compiled_secs:.3}s) must beat dyn dispatch ({dyn_secs:.3}s)"
    );
}
