//! Fig. 9(a–c): Fellegi–Sunter precision / recall / runtime vs K, with the
//! EM-picked equality comparison vector (FS) and the top-5-RCK vector
//! (FSrck).
//!
//! K sweeps the paper's 10k..80k at `paper` scale. Points are computed in
//! parallel with std scoped threads.
//!
//! Usage: `cargo run --release -p matchrules-bench --bin fig9_fs [quick|paper]`

use matchrules_bench::experiments::{fig9_fs, workload, MethodRow};
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let ks: Vec<usize> = match scale {
        Scale::Paper => (1..=8).map(|i| i * 10_000).collect(),
        Scale::Quick => vec![1_000, 2_000, 4_000],
    };
    println!("Fig. 9(a-c) — Fellegi-Sunter with vs without RCKs\n");
    let mut rows: Vec<(usize, MethodRow, MethodRow)> = Vec::with_capacity(ks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ks
            .iter()
            .map(|&k| {
                scope.spawn(move || {
                    let w = workload(k, 0x9f5 + k as u64);
                    let (fs, fs_rck) = fig9_fs(&w);
                    (k, fs, fs_rck)
                })
            })
            .collect();
        for h in handles {
            rows.push(h.join().expect("experiment thread"));
        }
    });
    rows.sort_by_key(|r| r.0);

    let mut table =
        Table::new(&["K", "FS prec", "FSrck prec", "FS rec", "FSrck rec", "FS sec", "FSrck sec"]);
    for (k, fs, rck) in rows {
        table.row(vec![
            k.to_string(),
            format!("{:.3}", fs.precision),
            format!("{:.3}", rck.precision),
            format!("{:.3}", fs.recall),
            format!("{:.3}", rck.recall),
            format!("{:.2}", fs.seconds),
            format!("{:.2}", rck.seconds),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper shape: FSrck >= FS in quality at comparable runtime, and FSrck is\n\
         less sensitive to K. (In this reproduction the quality gain lands mostly\n\
         on recall; see EXPERIMENTS.md.)"
    );
}
