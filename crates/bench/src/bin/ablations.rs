//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **single RCK vs union of top-k** — §6.2's observation that single
//!    keys lose recall to per-key noise;
//! 2. **cost-model weights** — diversity (w1) on/off;
//! 3. **window size** — recall vs comparison budget;
//! 4. **closure rule index** — the published O(n²) repeat-loop vs the
//!    Beeri–Bernstein watcher index.
//!
//! Usage: `cargo run --release -p matchrules-bench --bin ablations [quick|paper]`

use matchrules::engine::preset::standard_sort_keys;
use matchrules_bench::experiments::workload;
use matchrules_bench::table::Table;
use matchrules_bench::{time, Scale};
use matchrules_core::closure::Closure;
use matchrules_core::cost::CostModel;
use matchrules_core::rck::find_rcks;
use matchrules_data::mdgen::{generate, MdGenConfig};
use matchrules_matcher::key::KeyMatcher;
use matchrules_matcher::metrics::evaluate_pairs;
use matchrules_matcher::sorted_neighborhood::{sorted_neighborhood, SnConfig};
use std::collections::HashSet;

fn main() {
    let scale = Scale::from_args();
    let k = match scale {
        Scale::Paper => 10_000,
        Scale::Quick => 1_500,
    };
    union_of_keys(k);
    cost_weights(k);
    window_size(k);
    closure_index(scale);
}

/// Ablation 1: recall as the RCK union grows from 1 to 5 keys.
fn union_of_keys(k: usize) {
    println!("== Ablation: single RCK vs union of top-k (K = {k}) ==\n");
    let w = workload(k, 0xab1);
    let rcks = w.engine.plan().rcks();
    let cfg = SnConfig { window: 10, keys: standard_sort_keys(w.engine.plan().pair()) };
    let mut table = Table::new(&["keys", "precision", "recall", "F1"]);
    for take in 1..=rcks.len() {
        let matcher = KeyMatcher::new(rcks.iter().take(take), w.engine.runtime());
        let out = sorted_neighborhood(&w.data.credit, &w.data.billing, &matcher, &cfg);
        let q = evaluate_pairs(&out.pairs, &w.data.truth);
        table.row(vec![
            take.to_string(),
            format!("{:.3}", q.precision()),
            format!("{:.3}", q.recall()),
            format!("{:.3}", q.f1()),
        ]);
    }
    println!("{}", table.render());
    println!("Expected: recall climbs with the union size at stable precision\n");
}

/// Ablation 2: the diversity term of the cost model, on a generated Σ
/// large enough for key choice to matter (the 7-MD §6 setting admits so
/// few keys that every weighting selects the same Γ).
fn cost_weights(_k: usize) {
    println!("== Ablation: cost-model weights (generated Σ, card = 120, m = 12) ==\n");
    let setting = generate(&MdGenConfig::fig8(120, 10, 0xab2));
    let mut table = Table::new(&["weights (w1,w2,w3)", "distinct pairs", "max pair reuse"]);
    for (label, mut cost) in [
        ("1,1,1 (uniform)", CostModel::uniform()),
        ("0,1,1 (no diversity)", CostModel::new(0.0, 1.0, 1.0)),
        ("1,0,0 (diversity only)", CostModel::diversity_only()),
    ] {
        let keys = find_rcks(&setting.sigma, &setting.target, 12, &mut cost).keys;
        let mut reuse: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for key in &keys {
            for a in key.atoms() {
                *reuse.entry((a.left, a.right)).or_insert(0) += 1;
            }
        }
        let pairs: HashSet<(usize, usize)> = reuse.keys().copied().collect();
        let max_reuse = reuse.values().copied().max().unwrap_or(0);
        table.row(vec![label.to_owned(), pairs.len().to_string(), max_reuse.to_string()]);
    }
    println!("{}", table.render());
    println!("Expected: with w1 > 0 keys spread over more pairs (lower max reuse)\n");
}

/// Ablation 3: window size vs quality and cost.
fn window_size(k: usize) {
    println!("== Ablation: window size (K = {k}) ==\n");
    let w = workload(k, 0xab3);
    let rcks = w.engine.plan().rcks();
    let mut table = Table::new(&["window", "comparisons", "precision", "recall"]);
    for window in [2usize, 5, 10, 20, 40] {
        let cfg = SnConfig { window, keys: standard_sort_keys(w.engine.plan().pair()) };
        let matcher = KeyMatcher::new(rcks.iter(), w.engine.runtime());
        let out = sorted_neighborhood(&w.data.credit, &w.data.billing, &matcher, &cfg);
        let q = evaluate_pairs(&out.pairs, &w.data.truth);
        table.row(vec![
            window.to_string(),
            out.comparisons.to_string(),
            format!("{:.3}", q.precision()),
            format!("{:.3}", q.recall()),
        ]);
    }
    println!("{}", table.render());
    println!("Expected: recall saturates while comparisons grow linearly in the window\n");
}

/// Ablation 4: the closure's rule index vs the published repeat loop.
///
/// Random Σ cascades are shallow (a couple of passes suffice), where the
/// repeat loop is actually cheaper than building the watcher index. The
/// index's asymptotic win shows on deep dependency *chains*
/// `a_i = b_i → a_{i+1} ⇌ b_{i+1}`, where each naive pass fires exactly
/// one rule — the Θ(n²) case behind Theorem 4.1's bound. Both regimes are
/// reported.
fn closure_index(scale: Scale) {
    println!("== Ablation: MDClosure rule index vs naive repeat loop ==\n");
    let sizes: &[usize] = match scale {
        Scale::Paper => &[500, 1000, 2000, 4000],
        Scale::Quick => &[250, 500, 1000, 2000],
    };
    let mut table = Table::new(&["workload", "card(Sigma)", "indexed (s)", "naive (s)", "speedup"]);
    for &n in sizes {
        // Deep chain.
        let chain = chain_sigma(n);
        let seed = [matchrules_core::dependency::SimilarityAtom::eq(0, 0)];
        let reps = 5;
        let (_, fast) = time(|| {
            for _ in 0..reps {
                std::hint::black_box(Closure::compute(&chain, &seed, &[]));
            }
        });
        let (_, naive) = time(|| {
            for _ in 0..reps {
                std::hint::black_box(Closure::compute_naive(&chain, &seed, &[]));
            }
        });
        table.row(vec![
            "chain".to_owned(),
            n.to_string(),
            format!("{:.4}", fast / reps as f64),
            format!("{:.4}", naive / reps as f64),
            format!("{:.1}x", naive / fast),
        ]);
        // Shallow random Σ (the generator's regime).
        let setting = generate(&MdGenConfig::fig8(n, 8, 0xab4));
        let phi = setting.target.trivial_key().to_md(&setting.target);
        let (_, fast) = time(|| {
            for _ in 0..reps {
                std::hint::black_box(Closure::compute(&setting.sigma, phi.lhs(), &[]));
            }
        });
        let (_, naive) = time(|| {
            for _ in 0..reps {
                std::hint::black_box(Closure::compute_naive(&setting.sigma, phi.lhs(), &[]));
            }
        });
        table.row(vec![
            "random".to_owned(),
            n.to_string(),
            format!("{:.4}", fast / reps as f64),
            format!("{:.4}", naive / reps as f64),
            format!("{:.1}x", naive / fast),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected: on chains the index is asymptotically faster (naive is Θ(n²));\n\
         on shallow random Σ the naive loop's simplicity wins a constant factor."
    );
}

/// `a_i = b_i → a_{i+1} ⇌ b_{i+1}` for i in 0..n, stored in *reverse*
/// order so each pass of the naive repeat loop fires exactly one rule —
/// the Θ(n·card(Σ)) adversarial case of Fig. 5's control flow.
fn chain_sigma(n: usize) -> Vec<matchrules_core::dependency::MatchingDependency> {
    use matchrules_core::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
    (0..n)
        .rev()
        .map(|i| {
            MatchingDependency::from_validated_parts(
                vec![SimilarityAtom::eq(i, i)],
                vec![IdentPair::new(i + 1, i + 1)],
            )
        })
        .collect()
}
