//! Exp-4 (windowing): pairs completeness / reduction ratio of windowing
//! under RCK-derived sort keys vs a manual key — the paper reports results
//! "comparable to those of Fig. 9(d) and 10(d)".
//!
//! Usage: `cargo run --release -p matchrules-bench --bin exp4_windowing [quick|paper]`

use matchrules_bench::experiments::{exp4_windowing, workload, ReductionRow};
use matchrules_bench::table::Table;
use matchrules_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let ks: Vec<usize> = match scale {
        Scale::Paper => (1..=8).map(|i| i * 10_000).collect(),
        Scale::Quick => vec![1_000, 2_000, 4_000],
    };
    println!("Exp-4 — windowing with vs without RCK sort keys (window = 10)\n");
    let mut rows: Vec<(usize, ReductionRow, ReductionRow)> = Vec::with_capacity(ks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ks
            .iter()
            .map(|&k| {
                scope.spawn(move || {
                    let w = workload(k, 0xe4 + k as u64);
                    let (manual, rck) = exp4_windowing(&w);
                    (k, manual, rck)
                })
            })
            .collect();
        for h in handles {
            rows.push(h.join().expect("experiment thread"));
        }
    });
    rows.sort_by_key(|r| r.0);

    let mut table = Table::new(&["K", "manual PC", "RCK PC", "manual RR", "RCK RR"]);
    for (k, manual, rck) in rows {
        table.row(vec![
            k.to_string(),
            format!("{:.3}", manual.pc),
            format!("{:.3}", rck.pc),
            format!("{:.4}", manual.rr),
            format!("{:.4}", rck.rr),
        ]);
    }
    println!("{}", table.render());
    println!("Paper shape: comparable to the blocking results of Fig. 9(d)/10(d).");
}
