//! Minimal JSON writer for the bench binaries' machine-readable output
//! (`BENCH_*.json`) — std-only, like everything else in the workspace.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a field to an object (panics on non-objects).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

fn escape(s: &str, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Num(_) => write!(f, "null"),
            Json::Str(s) => escape(s, f),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape(k, f)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = Json::obj()
            .field("name", "runtime_scaling")
            .field("ok", true)
            .field("n", 42usize)
            .field("ratio", 0.5)
            .field("items", vec![Json::Num(1.0), Json::Null]);
        assert_eq!(
            doc.to_string(),
            r#"{"name":"runtime_scaling","ok":true,"n":42,"ratio":0.5,"items":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let doc = Json::Str("a\"b\\c\nd".to_owned());
        assert_eq!(doc.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn non_finite_numbers_render_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
