//! # matchrules-bench
//!
//! Benchmark harness regenerating every figure of the paper's §6
//! evaluation. Each experiment lives in [`experiments`] as a pure function
//! (point → row), consumed from two directions:
//!
//! * **binaries** (`src/bin/fig*.rs`) print the full paper-scale series as
//!   text tables — one binary per figure, run with
//!   `cargo run --release -p matchrules-bench --bin <name> [quick|paper]`;
//! * **criterion benches** (`benches/*.rs`) measure the kernels at reduced
//!   scale so `cargo bench` terminates quickly.
//!
//! The mapping from figures to binaries is indexed in `DESIGN.md` §2;
//! recorded paper-vs-measured outcomes live in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod table;

/// Scale presets shared by the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for smoke runs and CI (seconds).
    Quick,
    /// The paper's parameter ranges (minutes).
    Paper,
}

impl Scale {
    /// Parses the first CLI argument (`quick` is the default).
    pub fn from_args() -> Scale {
        match std::env::args().nth(1).as_deref() {
            Some("paper") => Scale::Paper,
            _ => Scale::Quick,
        }
    }
}

/// Wall-clock timing of a closure, in seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}
