//! The §6 experiments as pure point functions.
//!
//! Every figure of the paper maps to one function here; the `fig*` binaries
//! sweep the paper's parameter ranges and print the series, the criterion
//! benches sample reduced points. See DESIGN.md §2 for the index.
//!
//! Workloads run through the schema-agnostic engine API: the `Extended`
//! preset is compiled once into a `MatchPlan` (with data-calibrated cost
//! statistics) and the experiments read its RCKs, derived keys and resolved
//! operators — no `PaperSetting` internals, no hardcoded attribute names.

use matchrules::engine::preset::{manual_block_key, standard_sort_keys};
use matchrules::engine::{EngineBuilder, MatchEngine, Preset};
use matchrules_core::cost::CostModel;
use matchrules_core::rck::find_rcks;
use matchrules_core::schema::{AttrKind, Schema};
use matchrules_data::dirty::{generate_dirty, DirtyData, NoiseConfig};
use matchrules_data::gen::generate_persons;
use matchrules_data::mdgen::{generate, MdGenConfig};
use matchrules_data::relation::Relation;
use matchrules_matcher::blocking::block_candidates;
use matchrules_matcher::fellegi_sunter::{
    equality_comparison_vector, rck_comparison_vector, FsConfig, FsMatcher,
};
use matchrules_matcher::key::KeyMatcher;
use matchrules_matcher::metrics::{evaluate_pairs, BlockingQuality, MatchQuality};
use matchrules_matcher::rules::hernandez_stolfo_25;
use matchrules_matcher::sorted_neighborhood::{sorted_neighborhood, SnConfig};
use matchrules_matcher::windowing::multi_pass_window;

/// Fixed window size of Exp-2/Exp-3 (§6.2).
pub const WINDOW: usize = 10;

/// Fig. 8(a)/(b) point: seconds to deduce `m` RCKs from `card` random MDs
/// with `|Y1| = y_len`.
pub fn fig8_findrcks_seconds(card: usize, y_len: usize, m: usize, seed: u64) -> f64 {
    let setting = generate(&MdGenConfig::fig8(card, y_len, seed));
    let mut cost = CostModel::uniform();
    let start = std::time::Instant::now();
    let outcome = find_rcks(&setting.sigma, &setting.target, m, &mut cost);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(outcome.keys.len());
    secs
}

/// Fig. 8(c) point: total number of RCKs deducible from `card` random MDs.
pub fn fig8c_total_rcks(card: usize, y_len: usize, seed: u64) -> usize {
    let setting = generate(&MdGenConfig::fig8(card, y_len, seed));
    let mut cost = CostModel::uniform();
    let outcome = find_rcks(&setting.sigma, &setting.target, usize::MAX, &mut cost);
    debug_assert!(outcome.complete);
    outcome.keys.len()
}

/// A prepared §6 matching workload: dirty data plus the compiled engine.
pub struct Workload {
    /// The compiled, data-calibrated match engine over the `Extended`
    /// preset (top-5 RCKs, the paper's union size).
    pub engine: MatchEngine,
    /// Generated instances + truth.
    pub data: DirtyData,
}

/// Builds the §6 workload for `k` base tuples per relation: generate the
/// dirty data over the preset's schemas, then compile the plan with `lt`
/// statistics measured on that data.
pub fn workload(k: usize, seed: u64) -> Workload {
    // Shapes only: the preset's schema pair and target, no compiled plan.
    let shape = Preset::Extended.paper_setting();
    let data =
        generate_dirty(&shape.pair, &shape.target, k, &NoiseConfig { seed, ..Default::default() });
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .window(WINDOW)
        .statistics_from(&data.credit, &data.billing)
        .build()
        .expect("preset engine builds");
    Workload { engine, data }
}

/// A prepared person-name serving workload: probe and record relations
/// over a names schema whose RCKs retrieve exclusively through the
/// non-equality anchors — jaro-winkler (char-bag prefix buckets),
/// soundex (derived-key buckets) and tokens (element postings), with
/// one equality tie-breaker on the phone.
pub struct NamesWorkload {
    /// The compiled engine; its `MatchIndex` must report zero scan keys.
    pub engine: MatchEngine,
    /// Clean roster rows (the probe side).
    pub left: Relation,
    /// Perturbed signup rows (the indexed side), one per roster row:
    /// first-name typo + city word rotation, surname and phone intact.
    pub right: Relation,
}

/// splitmix64: the deterministic, dependency-free hash driving the
/// perturbations below (the bench library has no rand dependency).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Swaps two adjacent interior characters of `s` (a classic keyboard
/// transposition), leaving short strings alone.
fn transpose(s: &str, h: u64) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.len() >= 4 {
        let i = 1 + (h as usize) % (chars.len() - 2);
        chars.swap(i, i + 1);
    }
    chars.into_iter().collect()
}

/// Rotates the word order of `s` ("New York" → "York New") — a
/// token-set-preserving corruption (Jaccard 1) that defeats plain
/// equality and prefix-sorted windows alike.
fn rotate_words(s: &str) -> String {
    let words: Vec<&str> = s.split_whitespace().collect();
    match words.split_first() {
        Some((first, rest)) if !rest.is_empty() => format!("{} {}", rest.join(" "), first),
        _ => s.to_owned(),
    }
}

/// Builds the person-name serving workload for `k` persons: roster rows
/// are clean, signup rows carry a deterministic first-name typo and city
/// word rotation (seeded by splitmix64 — no rand in this crate), so the
/// true pairs are reachable only through the fuzzy anchors.
pub fn names_workload(k: usize, seed: u64) -> NamesWorkload {
    let roster = Schema::kinded(
        "roster",
        &[
            ("first", AttrKind::GivenName),
            ("last", AttrKind::Surname),
            ("city", AttrKind::City),
            ("phone", AttrKind::Phone),
        ],
    )
    .expect("roster schema");
    let signup = Schema::kinded(
        "signup",
        &[
            ("first", AttrKind::GivenName),
            ("last", AttrKind::Surname),
            ("city", AttrKind::City),
            ("phone", AttrKind::Phone),
        ],
    )
    .expect("signup schema");
    let engine = EngineBuilder::new()
        .schemas(roster, signup)
        .md_text(
            "roster[first] ~jw signup[first] /\\ roster[last] ~sx signup[last] /\\ \
             roster[city] ~tok signup[city] -> \
             roster[first,last,city] <=> signup[first,last,city]\n\
             roster[phone] = signup[phone] /\\ roster[last] ~sx signup[last] -> \
             roster[first,last,city] <=> signup[first,last,city]\n",
        )
        .target(&["first", "last", "city"], &["first", "last", "city"])
        .window(WINDOW)
        .build()
        .expect("names engine builds");

    let persons = generate_persons(k, seed);
    let mut left = Relation::new(engine.plan().pair().left().clone());
    let mut right = Relation::new(engine.plan().pair().right().clone());
    for (i, p) in persons.iter().enumerate() {
        let id = i as u64 + 1;
        left.push_strs(id, &[&p.first, &p.last, &p.city, &p.tel]);
        let h = mix(seed ^ id);
        right.push_strs(id, &[&transpose(&p.first, h), &p.last, &rotate_words(&p.city), &p.tel]);
    }
    NamesWorkload { engine, left, right }
}

/// One method's quality and runtime at one K.
#[derive(Debug, Clone, Copy)]
pub struct MethodRow {
    /// Precision in `\[0, 1\]`.
    pub precision: f64,
    /// Recall in `\[0, 1\]`.
    pub recall: f64,
    /// Wall-clock seconds for the matching phase (excludes data
    /// generation and plan compilation, includes model fitting).
    pub seconds: f64,
}

impl MethodRow {
    fn new(q: MatchQuality, seconds: f64) -> Self {
        MethodRow { precision: q.precision(), recall: q.recall(), seconds }
    }
}

/// Fig. 9(a–c) point: Fellegi–Sunter with the EM-picked equality vector
/// (`FS`) vs the top-5-RCK vector (`FSrck`).
pub fn fig9_fs(w: &Workload) -> (MethodRow, MethodRow) {
    let plan = w.engine.plan();
    let ops = w.engine.runtime();
    let keys = standard_sort_keys(plan.pair());
    let cfg = FsConfig::default();

    let start = std::time::Instant::now();
    let candidates = multi_pass_window(&w.data.credit, &w.data.billing, &keys, WINDOW);
    let candidate_secs = start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    let base = FsMatcher::fit(
        equality_comparison_vector(plan.target()),
        &w.data.credit,
        &w.data.billing,
        &candidates,
        ops,
        &cfg,
    )
    .expect("EM fit on windowed candidates");
    let base_pairs = base.classify(&w.data.credit, &w.data.billing, &candidates, ops);
    let base_secs = candidate_secs + start.elapsed().as_secs_f64();
    let base_q = evaluate_pairs(&base_pairs, &w.data.truth);

    let start = std::time::Instant::now();
    let rck = FsMatcher::fit(
        rck_comparison_vector(plan.rcks()),
        &w.data.credit,
        &w.data.billing,
        &candidates,
        ops,
        &cfg,
    )
    .expect("EM fit on windowed candidates");
    let rck_pairs = rck.classify(&w.data.credit, &w.data.billing, &candidates, ops);
    let rck_secs = candidate_secs + start.elapsed().as_secs_f64();
    let rck_q = evaluate_pairs(&rck_pairs, &w.data.truth);

    (MethodRow::new(base_q, base_secs), MethodRow::new(rck_q, rck_secs))
}

/// Fig. 10(a–c) point: Sorted Neighborhood with the 25 hand rules (`SN`)
/// vs the top-5 RCK rule set (`SNrck`).
pub fn fig10_sn(w: &Workload) -> (MethodRow, MethodRow) {
    let plan = w.engine.plan();
    let ops = w.engine.runtime();
    let cfg = SnConfig { window: WINDOW, keys: standard_sort_keys(plan.pair()) };

    let dl = plan.ops().get("≈d").expect("preset interns ≈d");
    let rules25 = hernandez_stolfo_25(plan.pair(), dl);
    let start = std::time::Instant::now();
    let matcher = KeyMatcher::new(rules25.iter(), ops);
    let base_out = sorted_neighborhood(&w.data.credit, &w.data.billing, &matcher, &cfg);
    let base_secs = start.elapsed().as_secs_f64();
    let base_q = evaluate_pairs(&base_out.pairs, &w.data.truth);

    let start = std::time::Instant::now();
    let matcher = KeyMatcher::new(plan.rcks().iter(), ops);
    let rck_out = sorted_neighborhood(&w.data.credit, &w.data.billing, &matcher, &cfg);
    let rck_secs = start.elapsed().as_secs_f64();
    let rck_q = evaluate_pairs(&rck_out.pairs, &w.data.truth);

    (MethodRow::new(base_q, base_secs), MethodRow::new(rck_q, rck_secs))
}

/// One blocking/windowing configuration's PC and RR.
#[derive(Debug, Clone, Copy)]
pub struct ReductionRow {
    /// Pairs completeness.
    pub pc: f64,
    /// Reduction ratio.
    pub rr: f64,
}

/// Fig. 9(d)/10(d) point: blocking with the plan's RCK-derived key vs the
/// manual key (both three attributes, name Soundex-encoded).
pub fn fig9d_10d_blocking(w: &Workload) -> (ReductionRow, ReductionRow) {
    let plan = w.engine.plan();
    let rck_key = plan.block_key().expect("preset plan has keys");
    let manual_key = manual_block_key(plan.pair());
    let rck_q = BlockingQuality::from_candidates(
        block_candidates(&w.data.credit, &w.data.billing, rck_key),
        &w.data.truth,
    );
    let manual_q = BlockingQuality::from_candidates(
        block_candidates(&w.data.credit, &w.data.billing, &manual_key),
        &w.data.truth,
    );
    (
        ReductionRow { pc: manual_q.pairs_completeness(), rr: manual_q.reduction_ratio() },
        ReductionRow { pc: rck_q.pairs_completeness(), rr: rck_q.reduction_ratio() },
    )
}

/// Exp-4 windowing point: PC/RR of window candidates under manual vs
/// RCK-derived sort keys.
pub fn exp4_windowing(w: &Workload) -> (ReductionRow, ReductionRow) {
    let plan = w.engine.plan();
    let manual_keys = vec![manual_block_key(plan.pair())];
    let rck_q = BlockingQuality::from_candidates(
        w.engine.window(&w.data.credit, &w.data.billing).expect("plan has sort keys"),
        &w.data.truth,
    );
    let manual_q = BlockingQuality::from_candidates(
        multi_pass_window(&w.data.credit, &w.data.billing, &manual_keys, WINDOW),
        &w.data.truth,
    );
    (
        ReductionRow { pc: manual_q.pairs_completeness(), rr: manual_q.reduction_ratio() },
        ReductionRow { pc: rck_q.pairs_completeness(), rr: rck_q.reduction_ratio() },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_point_runs() {
        let secs = fig8_findrcks_seconds(50, 6, 10, 1);
        assert!((0.0..30.0).contains(&secs));
        let total = fig8c_total_rcks(20, 6, 2);
        assert!(total >= 1);
    }

    #[test]
    fn matching_points_run_and_keep_paper_shape() {
        let w = workload(200, 77);
        let (fs, fs_rck) = fig9_fs(&w);
        assert!(fs_rck.recall >= fs.recall, "FSrck recall dominates");
        let (sn, sn_rck) = fig10_sn(&w);
        assert!(sn_rck.precision > sn.precision, "SNrck precision dominates");
        let (manual, rck) = fig9d_10d_blocking(&w);
        assert!(rck.pc >= manual.pc - 0.02, "RCK blocking PC competitive");
        assert!(manual.rr > 0.5 && rck.rr > 0.5);
        let (wm, wr) = exp4_windowing(&w);
        assert!(wr.pc >= wm.pc - 0.05);
        assert!(wm.rr > 0.5 && wr.rr > 0.5);
    }

    #[test]
    fn names_workload_is_fully_indexed_and_indexed_equals_scan() {
        let w = names_workload(120, 0xA11CE);
        assert!(w.engine.plan().fully_indexable(), "names plan must carry no scan key");
        let index = w.engine.index(&w.right).expect("index builds");
        let stats = index.stats();
        assert_eq!(stats.scan_keys, 0, "no scan fallback: {stats:?}");
        assert!(stats.derived_anchors >= 1 && stats.token_anchors >= 1 && stats.bag_anchors >= 1);
        // Index hit set == exhaustive scan hit set, probe by probe, and
        // every true (same-id) pair is found through the fuzzy anchors.
        let batch = w.engine.match_all(&w.left, &w.right).expect("batch run");
        for (l, probe) in w.left.tuples().iter().enumerate() {
            let mut got: Vec<(u64, usize)> =
                index.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
            got.sort_unstable();
            let mut expected: Vec<(u64, usize)> =
                batch.pairs().iter().filter(|p| p.left == l).map(|p| (p.right_id, p.key)).collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "probe {l} diverged from the scan path");
            assert!(
                got.iter().any(|&(id, _)| id == probe.id()),
                "true partner of probe {l} not found"
            );
        }
    }

    #[test]
    fn engine_report_matches_on_the_workload() {
        let w = workload(150, 9);
        let report = w.engine.match_pairs(&w.data.credit, &w.data.billing).unwrap();
        let q = report.score(&w.data.truth);
        assert!(q.precision() >= 0.9, "engine precision {}", q.precision());
        assert!(q.recall() >= 0.5, "engine recall {}", q.recall());
        assert!(report.reduction_ratio() > 0.5);
    }
}
