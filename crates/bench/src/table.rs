//! Minimal fixed-width table printer for the figure binaries.

/// A text table with a header row.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| (*s).to_owned()).collect(), rows: Vec::new() }
            .validate()
    }

    fn validate(self) -> Self {
        assert!(!self.header.is_empty());
        self
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["K", "precision"]);
        t.row(vec!["10000".into(), "0.91".into()]);
        t.row(vec!["80000".into(), "0.9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("precision"));
        assert!(lines[2].ends_with("0.91"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
