//! Compressed posting lists: sorted-delta blocks with per-block skip
//! pointers, bitset blocks for dense runs, and galloping cursors.
//!
//! A `PostingList` stores an ascending sequence of tuple slots. Slots
//! arrive in insertion order (strictly ascending — `MatchIndex` assigns
//! slots monotonically), accumulate in an uncompressed `tail`, and are
//! sealed into immutable blocks of [`BLOCK_LEN`] entries. A sealed block
//! keeps its maximum slot as a skip pointer, so intersection cursors can
//! discard whole blocks without decoding them. Blocks whose values all
//! fall inside one 256-slot aligned window are stored as a 4-word bitset
//! (`Bits`) — those union into a probe bitmap with four `u64` ORs; the
//! rest are byte-wise varint deltas (`Deltas`).
//!
//! Removal is tombstone-first: `note_removed` bumps a per-block dead
//! counter and rewrites the block in place (dropping dead slots, under
//! the caller's `alive` mask) only once half the block is dead, so a
//! churn-heavy index amortizes the rewrite cost instead of decaying into
//! tombstone scans. Dead slots that have not yet been rewritten away may
//! still surface from a cursor or a bitmap union — callers filter
//! candidates through `alive` at the end, exactly as the uncompressed
//! index always has.

/// Entries per sealed block. 128 keeps varint blocks within two cache
/// lines and makes half-dead rewrites cheap.
pub const BLOCK_LEN: usize = 128;

/// Slots covered by one `Bits` block: four 64-bit words.
const BITS_SPAN: u32 = 256;

#[derive(Clone, Debug)]
enum BlockData {
    /// Varint-encoded: first value absolute, then the gaps.
    Deltas(Box<[u8]>),
    /// Dense block: bit `slot - base` set for each value; `base` is
    /// 256-aligned so the words line up with any 256-aligned bitmap.
    Bits { base: u32, words: [u64; 4] },
}

#[derive(Clone, Debug)]
struct Block {
    /// Largest slot in the block — the skip pointer.
    max: u32,
    /// Values stored (dead ones included until a rewrite).
    count: u16,
    /// Values tombstoned via `note_removed` since the last rewrite.
    dead: u16,
    data: BlockData,
}

impl Block {
    /// Seals `values` (ascending, non-empty) into a block, choosing the
    /// bitset form when every value shares one 256-aligned window.
    fn seal(values: &[u32]) -> Block {
        let first = values[0];
        let max = *values.last().expect("sealed blocks are non-empty");
        let count = values.len() as u16;
        let base = first & !(BITS_SPAN - 1);
        if max - base < BITS_SPAN {
            let mut words = [0u64; 4];
            for &v in values {
                let off = (v - base) as usize;
                words[off >> 6] |= 1u64 << (off & 63);
            }
            Block { max, count, dead: 0, data: BlockData::Bits { base, words } }
        } else {
            let mut bytes = Vec::with_capacity(values.len() * 2);
            let mut prev = 0u32;
            for (i, &v) in values.iter().enumerate() {
                let delta = if i == 0 { v } else { v - prev };
                write_varint(&mut bytes, delta);
                prev = v;
            }
            Block { max, count, dead: 0, data: BlockData::Deltas(bytes.into_boxed_slice()) }
        }
    }

    /// Appends every stored value (dead included) to `out`, ascending.
    fn decode_into(&self, out: &mut Vec<u32>) {
        match &self.data {
            BlockData::Deltas(bytes) => {
                let mut acc = 0u32;
                let mut pos = 0usize;
                for i in 0..self.count {
                    let (delta, next) = read_varint(bytes, pos);
                    pos = next;
                    acc = if i == 0 { delta } else { acc + delta };
                    out.push(acc);
                }
            }
            BlockData::Bits { base, words } => {
                for (w, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        out.push(base + (w as u32) * 64 + b);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Encoded payload bytes (compression accounting).
    fn bytes(&self) -> usize {
        match &self.data {
            BlockData::Deltas(bytes) => bytes.len(),
            BlockData::Bits { .. } => 4 + 32,
        }
    }
}

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_varint(bytes: &[u8], mut pos: usize) -> (u32, usize) {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let b = bytes[pos];
        pos += 1;
        v |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return (v, pos);
        }
        shift += 7;
    }
}

/// An ascending, block-compressed list of tuple slots.
#[derive(Clone, Debug, Default)]
pub struct PostingList {
    blocks: Vec<Block>,
    /// Uncompressed newest entries, sealed at [`BLOCK_LEN`].
    tail: Vec<u32>,
    /// Stored values across blocks and tail, dead ones included.
    total: usize,
    /// Tombstoned values not yet rewritten away.
    dead: usize,
}

impl PostingList {
    /// An empty list.
    pub fn new() -> PostingList {
        PostingList::default()
    }

    /// Stored entries (tombstoned ones included until rewritten).
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Appends `slot`, which must exceed every stored slot.
    pub fn push(&mut self, slot: u32) {
        debug_assert!(
            self.last().is_none_or(|l| l < slot),
            "postings are strictly ascending: {slot} after {:?}",
            self.last()
        );
        self.tail.push(slot);
        self.total += 1;
        if self.tail.len() == BLOCK_LEN {
            self.blocks.push(Block::seal(&self.tail));
            self.tail.clear();
        }
    }

    fn last(&self) -> Option<u32> {
        self.tail.last().copied().or_else(|| self.blocks.last().map(|b| b.max))
    }

    /// Appends every value of `other`, all of which must exceed this
    /// list's last slot (chunk-ordered parallel-build merge).
    pub fn extend_from(&mut self, other: &PostingList, scratch: &mut Vec<u32>) {
        scratch.clear();
        other.decode_all_into(scratch);
        for &slot in scratch.iter() {
            self.push(slot);
        }
    }

    /// Appends every stored value (dead included) to `out`, ascending.
    pub fn decode_all_into(&self, out: &mut Vec<u32>) {
        for block in &self.blocks {
            block.decode_into(out);
        }
        out.extend_from_slice(&self.tail);
    }

    /// ORs every stored value into `words` as bit `slot`. `words` must
    /// cover the largest slot rounded up to a 256-bit boundary. Returns
    /// the number of delta blocks decoded (bitset blocks OR in four word
    /// operations and count as zero decode work).
    pub fn or_into(&self, words: &mut [u64], scratch: &mut Vec<u32>) -> u64 {
        let mut decoded = 0u64;
        for block in &self.blocks {
            match &block.data {
                BlockData::Bits { base, words: bits } => {
                    let w = (*base >> 6) as usize;
                    words[w] |= bits[0];
                    words[w + 1] |= bits[1];
                    words[w + 2] |= bits[2];
                    words[w + 3] |= bits[3];
                }
                BlockData::Deltas(_) => {
                    decoded += 1;
                    scratch.clear();
                    block.decode_into(scratch);
                    for &v in scratch.iter() {
                        words[(v >> 6) as usize] |= 1u64 << (v & 63);
                    }
                }
            }
        }
        for &v in &self.tail {
            words[(v >> 6) as usize] |= 1u64 << (v & 63);
        }
        decoded
    }

    /// Records that `slot` was tombstoned. Tail entries are removed
    /// outright; sealed blocks bump their dead counter and rewrite in
    /// place (keeping only slots still live under `alive`) once at
    /// least half the block is dead.
    pub fn note_removed(&mut self, slot: u32, alive: &[bool]) {
        if let Ok(i) = self.tail.binary_search(&slot) {
            self.tail.remove(i);
            self.total -= 1;
            return;
        }
        let b = self.blocks.partition_point(|blk| blk.max < slot);
        let Some(block) = self.blocks.get_mut(b) else { return };
        block.dead += 1;
        self.dead += 1;
        if u32::from(block.dead) * 2 >= u32::from(block.count) {
            let mut values = Vec::with_capacity(block.count as usize);
            block.decode_into(&mut values);
            values.retain(|&v| alive.get(v as usize).is_some_and(|&a| a));
            self.total -= block.count as usize - values.len();
            self.dead -= block.dead as usize;
            if values.is_empty() {
                self.blocks.remove(b);
            } else {
                *block = Block::seal(&values);
            }
        }
    }

    /// Opens a galloping cursor positioned before the first slot.
    pub fn cursor(&self) -> Cursor<'_> {
        Cursor {
            list: self,
            block: 0,
            decoded: Vec::new(),
            decoded_idx: usize::MAX,
            pos: 0,
            tail_pos: 0,
            blocks_decoded: 0,
            blocks_skipped: 0,
        }
    }

    /// Encoded size: block payloads plus skip headers plus the tail.
    pub fn bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.bytes() + 8).sum::<usize>() + self.tail.len() * 4
    }

    /// What the same entries cost as a plain `Vec<u32>`.
    pub fn uncompressed_bytes(&self) -> usize {
        self.total * 4
    }

    /// Checks the structural invariants (tests and debug assertions):
    /// globally ascending values, per-block max/count agreement, and no
    /// block more than half dead.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut all = Vec::new();
        let mut prev: Option<u32> = None;
        for block in &self.blocks {
            let from = all.len();
            block.decode_into(&mut all);
            let vals = &all[from..];
            assert_eq!(vals.len(), block.count as usize, "block count matches payload");
            assert_eq!(*vals.last().unwrap(), block.max, "block max is its last value");
            assert!(u32::from(block.dead) * 2 < u32::from(block.count).max(1) * 2);
            for &v in vals {
                assert!(prev.is_none_or(|p| p < v), "ascending across blocks");
                prev = Some(v);
            }
        }
        for &v in &self.tail {
            assert!(prev.is_none_or(|p| p < v), "ascending into the tail");
            prev = Some(v);
        }
        assert_eq!(all.len() + self.tail.len(), self.total, "total matches stored entries");
    }
}

/// A forward-only galloping cursor over a [`PostingList`]. Targets must
/// be non-decreasing across calls; whole blocks whose `max` falls below
/// the target are skipped without decoding.
pub struct Cursor<'a> {
    list: &'a PostingList,
    block: usize,
    decoded: Vec<u32>,
    decoded_idx: usize,
    pos: usize,
    tail_pos: usize,
    /// Delta/bitset blocks materialized into the scratch buffer.
    pub blocks_decoded: u64,
    /// Blocks discarded on their skip pointer alone.
    pub blocks_skipped: u64,
}

impl<'a> Cursor<'a> {
    /// Returns the smallest stored slot `>= target` (dead slots
    /// included — callers filter through `alive`), or `None` when the
    /// list is exhausted.
    pub fn advance_to(&mut self, target: u32) -> Option<u32> {
        let blocks = &self.list.blocks;
        // Gallop over skip pointers: double the stride, then settle.
        if self.block < blocks.len() && blocks[self.block].max < target {
            let mut step = 1usize;
            let mut lo = self.block;
            while lo + step < blocks.len() && blocks[lo + step].max < target {
                lo += step;
                step <<= 1;
            }
            let hi = (lo + step).min(blocks.len());
            let next = lo + blocks[lo..hi].partition_point(|b| b.max < target);
            self.blocks_skipped += (next - self.block) as u64;
            self.block = next;
        }
        if self.block < blocks.len() {
            if self.decoded_idx != self.block {
                self.decoded.clear();
                blocks[self.block].decode_into(&mut self.decoded);
                self.decoded_idx = self.block;
                self.pos = 0;
                self.blocks_decoded += 1;
            }
            self.pos += self.decoded[self.pos..].partition_point(|&v| v < target);
            debug_assert!(self.pos < self.decoded.len(), "block max bounds its payload");
            return self.decoded.get(self.pos).copied();
        }
        let tail = &self.list.tail;
        self.tail_pos += tail[self.tail_pos..].partition_point(|&v| v < target);
        tail.get(self.tail_pos).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(values: &[u32]) -> PostingList {
        let mut list = PostingList::new();
        for &v in values {
            list.push(v);
        }
        list
    }

    fn decoded(list: &PostingList) -> Vec<u32> {
        let mut out = Vec::new();
        list.decode_all_into(&mut out);
        out
    }

    /// Intersects via cursor membership probes, as the index does.
    fn cursor_intersect(probe: &[u32], list: &PostingList) -> Vec<u32> {
        let mut cur = list.cursor();
        probe.iter().copied().filter(|&v| cur.advance_to(v) == Some(v)).collect()
    }

    #[test]
    fn empty_list_yields_nothing() {
        let list = PostingList::new();
        assert!(list.is_empty());
        assert_eq!(decoded(&list), Vec::<u32>::new());
        assert_eq!(list.cursor().advance_to(0), None);
        assert_eq!(list.bytes(), 0);
    }

    #[test]
    fn single_element_round_trips() {
        let list = list_of(&[42]);
        assert_eq!(decoded(&list), vec![42]);
        let mut cur = list.cursor();
        assert_eq!(cur.advance_to(0), Some(42));
        assert_eq!(cur.advance_to(42), Some(42));
        assert_eq!(cur.advance_to(43), None);
    }

    #[test]
    fn dense_run_seals_into_bitset_blocks_and_ors_fast() {
        // 0..128 sits inside one 256-slot window: one Bits block.
        let values: Vec<u32> = (0..BLOCK_LEN as u32).collect();
        let list = list_of(&values);
        assert_eq!(decoded(&list), values);
        assert!(list.bytes() < list.uncompressed_bytes());
        let mut words = vec![0u64; 4];
        let mut scratch = Vec::new();
        assert_eq!(list.or_into(&mut words, &mut scratch), 0, "bitset blocks decode nothing");
        assert_eq!(words[0], u64::MAX);
        assert_eq!(words[1], u64::MAX);
        assert_eq!(words[2], 0);
    }

    #[test]
    fn sparse_run_seals_into_delta_blocks() {
        let values: Vec<u32> = (0..BLOCK_LEN as u32).map(|i| i * 1000).collect();
        let list = list_of(&values);
        assert_eq!(decoded(&list), values);
        let mut words = vec![0u64; (values.last().unwrap() / 256 + 1) as usize * 4];
        let mut scratch = Vec::new();
        assert_eq!(list.or_into(&mut words, &mut scratch), 1, "one delta block decoded");
        for &v in &values {
            assert_ne!(words[(v / 64) as usize] & (1 << (v % 64)), 0);
        }
    }

    #[test]
    fn fully_disjoint_intersection_is_empty_and_skips_blocks() {
        // List holds even thousands; probe odd thousands: no overlap.
        let list = list_of(&(0..1024).map(|i| i * 2048).collect::<Vec<_>>());
        let probe: Vec<u32> = (0..1024).map(|i| i * 2048 + 1).collect();
        let mut cur = list.cursor();
        let mut hits = 0;
        for &p in &probe {
            if cur.advance_to(p) == Some(p) {
                hits += 1;
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    fn fully_equal_lists_intersect_to_themselves() {
        let values: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let list = list_of(&values);
        assert_eq!(cursor_intersect(&values, &list), values);
    }

    #[test]
    fn block_boundary_straddles_resolve() {
        // Values dense around each BLOCK_LEN seal point; targets probe
        // one below, at, and one above every boundary value.
        let values: Vec<u32> = (0..(BLOCK_LEN as u32 * 4)).map(|i| i * 7).collect();
        let list = list_of(&values);
        let last = *values.last().unwrap();
        for b in [BLOCK_LEN - 1, BLOCK_LEN, BLOCK_LEN + 1, 2 * BLOCK_LEN, 3 * BLOCK_LEN - 1] {
            let v = values[b];
            let mut cur = list.cursor();
            // v - 1 rounds up to v (values step by 7); v + 1 to v + 7.
            assert_eq!(cur.advance_to(v - 1), Some(v), "below boundary {b}");
            assert_eq!(cur.advance_to(v), Some(v), "at boundary {b}");
            assert_eq!(cur.advance_to(v + 1), Some(v + 7).filter(|&n| n <= last), "above {b}");
        }
    }

    #[test]
    fn galloping_skips_blocks_without_decoding() {
        let list = list_of(&(0..BLOCK_LEN as u32 * 64).map(|i| i * 5).collect::<Vec<_>>());
        let mut cur = list.cursor();
        let last = (BLOCK_LEN as u32 * 64 - 1) * 5;
        assert_eq!(cur.advance_to(last), Some(last));
        assert!(cur.blocks_skipped >= 60, "skipped {} blocks", cur.blocks_skipped);
        assert_eq!(cur.blocks_decoded, 1, "only the final block decoded");
    }

    #[test]
    fn tombstoned_ids_inside_a_block_rewrite_at_half_dead() {
        let values: Vec<u32> = (0..BLOCK_LEN as u32 * 2).collect();
        let mut list = list_of(&values);
        let mut alive = vec![true; values.len()];
        // Kill just under half of the first block: tombstones linger.
        for v in 0..(BLOCK_LEN as u32 / 2 - 1) {
            alive[v as usize] = false;
            list.note_removed(v, &alive);
        }
        assert_eq!(list.len(), values.len(), "tombstones linger below the threshold");
        let mut cur = list.cursor();
        assert_eq!(cur.advance_to(0), Some(0), "dead slots still surface pre-rewrite");
        // One more death crosses the half-dead threshold: block rewrites.
        alive[BLOCK_LEN / 2 - 1] = false;
        list.note_removed(BLOCK_LEN as u32 / 2 - 1, &alive);
        assert_eq!(list.len(), values.len() - BLOCK_LEN / 2, "rewrite dropped the dead");
        list.check_invariants();
        let mut cur = list.cursor();
        assert_eq!(cur.advance_to(0), Some(BLOCK_LEN as u32 / 2), "dead slots gone");
    }

    #[test]
    fn removing_a_whole_block_drops_it() {
        let values: Vec<u32> = (0..BLOCK_LEN as u32).collect();
        let mut list = list_of(&values);
        let mut alive = vec![true; values.len()];
        for &v in &values {
            alive[v as usize] = false;
            list.note_removed(v, &alive);
        }
        assert!(list.is_empty());
        assert_eq!(list.cursor().advance_to(0), None);
        list.check_invariants();
    }

    #[test]
    fn tail_removal_is_immediate() {
        let mut list = list_of(&[1, 5, 9]);
        list.note_removed(5, &[true; 10]);
        assert_eq!(decoded(&list), vec![1, 9]);
        list.check_invariants();
    }
}
