//! Expectation–maximization for the Fellegi–Sunter model (\[17, 21\]).
//!
//! Candidate pairs are summarized as binary *comparison vectors*
//! `γ ∈ {0,1}^d` (field-wise agreement). Under the classic conditional-
//! independence model, a pair is a match with prior `p`, and field `i`
//! agrees with probability `m_i` among matches and `u_i` among non-matches.
//! EM estimates `(p, m, u)` without labels (Jaro 1989); the fitted model
//! yields per-pair match weights `Σ γ_i·log(m_i/u_i) + (1−γ_i)·log((1−m_i)/(1−u_i))`
//! and per-field discriminative powers used to pick comparison vectors —
//! the paper's "EM algorithm … to estimate parameters such as weights and
//! threshold" baseline (§6.2 Exp-2).

use std::fmt;

/// Why an EM fit was rejected before any iteration ran.
///
/// Degenerate inputs used to surface as panics (or, worse, as NaN weights
/// downstream); they are typed now so callers can fall back to a prior
/// model instead of crashing a serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmError {
    /// No comparison vectors were supplied.
    EmptySample,
    /// The comparison vectors disagree on dimension.
    RaggedSample {
        /// Dimension of the first vector.
        expected: usize,
        /// Dimension of the first offending vector.
        got: usize,
    },
}

impl fmt::Display for EmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmError::EmptySample => write!(f, "EM needs at least one comparison vector"),
            EmError::RaggedSample { expected, got } => {
                write!(f, "ragged comparison vectors: expected dimension {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for EmError {}

/// Fitted Fellegi–Sunter parameters.
#[derive(Debug, Clone)]
pub struct EmModel {
    /// Per-field P(agree | match).
    pub m: Vec<f64>,
    /// Per-field P(agree | non-match).
    pub u: Vec<f64>,
    /// Match prior.
    pub p: f64,
    /// EM iterations run.
    pub iterations: usize,
}

/// EM configuration.
#[derive(Debug, Clone)]
pub struct EmConfig {
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence tolerance on parameter movement.
    pub tol: f64,
    /// Initial match prior.
    pub init_p: f64,
    /// Initial `m` (agreement among matches).
    pub init_m: f64,
    /// Initial `u` (agreement among non-matches).
    pub init_u: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig { max_iters: 100, tol: 1e-6, init_p: 0.1, init_m: 0.9, init_u: 0.1 }
    }
}

const EPS: f64 = 1e-6;

fn clamp(x: f64) -> f64 {
    x.clamp(EPS, 1.0 - EPS)
}

impl EmModel {
    /// An unfit prior model of dimension `d` built straight from the
    /// initial parameters of `cfg` (clamped). Used as the fallback when no
    /// sample is available to fit on: posteriors stay defined, finite and
    /// monotone in the number of agreeing fields.
    pub fn prior(d: usize, cfg: &EmConfig) -> Self {
        EmModel {
            m: vec![clamp(cfg.init_m); d],
            u: vec![clamp(cfg.init_u); d],
            p: clamp(cfg.init_p),
            iterations: 0,
        }
    }

    /// Posterior match probability of a *soft* comparison vector: each
    /// entry is an agreement strength in `[0, 1]` rather than a boolean
    /// (1.0 reproduces `posterior` with `true`, 0.0 with `false`).
    /// Inputs are clamped, so the result is always finite and in `[0, 1]`.
    pub fn posterior_soft(&self, gamma: &[f64]) -> f64 {
        let (mut lm, mut lu) = (self.p.ln(), (1.0 - self.p).ln());
        for (i, &g) in gamma.iter().enumerate() {
            let s = if g.is_nan() { 0.0 } else { g.clamp(0.0, 1.0) };
            lm += s * self.m[i].ln() + (1.0 - s) * (1.0 - self.m[i]).ln();
            lu += s * self.u[i].ln() + (1.0 - s) * (1.0 - self.u[i]).ln();
        }
        let max = lm.max(lu);
        let em = (lm - max).exp();
        let eu = (lu - max).exp();
        em / (em + eu)
    }

    /// Posterior match probability of a comparison vector.
    pub fn posterior(&self, gamma: &[bool]) -> f64 {
        let (mut lm, mut lu) = (self.p.ln(), (1.0 - self.p).ln());
        for (i, &agree) in gamma.iter().enumerate() {
            if agree {
                lm += self.m[i].ln();
                lu += self.u[i].ln();
            } else {
                lm += (1.0 - self.m[i]).ln();
                lu += (1.0 - self.u[i]).ln();
            }
        }
        let max = lm.max(lu);
        let em = (lm - max).exp();
        let eu = (lu - max).exp();
        em / (em + eu)
    }

    /// Log-odds match weight of a comparison vector (base 2, as in the
    /// record-linkage literature).
    pub fn weight(&self, gamma: &[bool]) -> f64 {
        gamma
            .iter()
            .enumerate()
            .map(|(i, &agree)| {
                if agree {
                    (self.m[i] / self.u[i]).log2()
                } else {
                    ((1.0 - self.m[i]) / (1.0 - self.u[i])).log2()
                }
            })
            .sum()
    }

    /// Per-field discriminative power: the gap between the agreement and
    /// disagreement weights. High-power fields are the ones the EM baseline
    /// "picks" for its comparison vector.
    pub fn field_powers(&self) -> Vec<f64> {
        (0..self.m.len())
            .map(|i| {
                let agree = (self.m[i] / self.u[i]).log2();
                let disagree = ((1.0 - self.m[i]) / (1.0 - self.u[i])).log2();
                agree - disagree
            })
            .collect()
    }

    /// Indices of the `k` most discriminative fields, best first.
    pub fn top_fields(&self, k: usize) -> Vec<usize> {
        let powers = self.field_powers();
        let mut idx: Vec<usize> = (0..powers.len()).collect();
        idx.sort_by(|&a, &b| powers[b].partial_cmp(&powers[a]).expect("finite powers"));
        idx.truncate(k);
        idx
    }
}

/// Fits the model on comparison vectors (one per candidate pair).
///
/// # Errors
///
/// Returns [`EmError`] when `vectors` is empty or the vectors disagree on
/// dimension. Every estimated probability is clamped into
/// `[1e-6, 1 - 1e-6]`, so fully degenerate fields (always agreeing or
/// never agreeing) still yield finite weights and posteriors.
pub fn fit(vectors: &[Vec<bool>], cfg: &EmConfig) -> Result<EmModel, EmError> {
    if vectors.is_empty() {
        return Err(EmError::EmptySample);
    }
    let d = vectors[0].len();
    if let Some(bad) = vectors.iter().find(|v| v.len() != d) {
        return Err(EmError::RaggedSample { expected: d, got: bad.len() });
    }
    let n = vectors.len() as f64;

    let mut p = clamp(cfg.init_p);
    let mut m = vec![clamp(cfg.init_m); d];
    let mut u = vec![clamp(cfg.init_u); d];

    let mut iterations = 0;
    for iter in 0..cfg.max_iters {
        iterations = iter + 1;
        // E-step: posterior responsibility of the match class per vector.
        let model = EmModel { m: m.clone(), u: u.clone(), p, iterations };
        let w: Vec<f64> = vectors.iter().map(|g| model.posterior(g)).collect();

        // M-step.
        let sum_w: f64 = w.iter().sum();
        let mut new_m = vec![0.0; d];
        let mut new_u = vec![0.0; d];
        for (g, &wi) in vectors.iter().zip(&w) {
            for (i, &agree) in g.iter().enumerate() {
                if agree {
                    new_m[i] += wi;
                    new_u[i] += 1.0 - wi;
                }
            }
        }
        let denom_m = sum_w.max(EPS);
        let denom_u = (n - sum_w).max(EPS);
        let mut delta: f64 = 0.0;
        for i in 0..d {
            let nm = clamp(new_m[i] / denom_m);
            let nu = clamp(new_u[i] / denom_u);
            delta = delta.max((nm - m[i]).abs()).max((nu - u[i]).abs());
            m[i] = nm;
            u[i] = nu;
        }
        let np = clamp(sum_w / n);
        delta = delta.max((np - p).abs());
        p = np;
        if delta < cfg.tol {
            break;
        }
    }
    Ok(EmModel { m, u, p, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesizes vectors from known (p, m, u) and checks EM recovers the
    /// structure (matches agree often, non-matches rarely).
    fn synthesize(p: f64, m: &[f64], u: &[f64], n: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let is_match = rng.random_bool(p);
                (0..m.len()).map(|i| rng.random_bool(if is_match { m[i] } else { u[i] })).collect()
            })
            .collect()
    }

    #[test]
    fn recovers_planted_structure() {
        let true_m = [0.95, 0.9, 0.85];
        let true_u = [0.05, 0.1, 0.2];
        let vectors = synthesize(0.2, &true_m, &true_u, 20_000, 42);
        let model = fit(&vectors, &EmConfig::default()).unwrap();
        assert!((model.p - 0.2).abs() < 0.05, "p = {}", model.p);
        for i in 0..3 {
            assert!((model.m[i] - true_m[i]).abs() < 0.08, "m[{i}] = {}", model.m[i]);
            assert!((model.u[i] - true_u[i]).abs() < 0.08, "u[{i}] = {}", model.u[i]);
        }
    }

    #[test]
    fn posterior_separates_classes() {
        let vectors = synthesize(0.15, &[0.95, 0.9], &[0.05, 0.1], 5_000, 7);
        let model = fit(&vectors, &EmConfig::default()).unwrap();
        let all_agree = model.posterior(&[true, true]);
        let none_agree = model.posterior(&[false, false]);
        assert!(all_agree > 0.9, "all-agree posterior {all_agree}");
        assert!(none_agree < 0.1, "none-agree posterior {none_agree}");
        assert!(model.weight(&[true, true]) > model.weight(&[false, false]));
    }

    #[test]
    fn field_powers_rank_informative_fields() {
        // Field 0 is discriminative, field 1 is noise (agrees randomly).
        let vectors = synthesize(0.2, &[0.95, 0.5], &[0.05, 0.5], 10_000, 9);
        let model = fit(&vectors, &EmConfig::default()).unwrap();
        let powers = model.field_powers();
        assert!(powers[0] > powers[1]);
        assert_eq!(model.top_fields(1), vec![0]);
        assert_eq!(model.top_fields(5).len(), 2, "k caps at dimension");
    }

    #[test]
    fn converges_and_reports_iterations() {
        let vectors = synthesize(0.3, &[0.9], &[0.1], 2_000, 3);
        let model = fit(&vectors, &EmConfig::default()).unwrap();
        assert!(model.iterations < 100, "should converge before the cap");
    }

    #[test]
    fn empty_input_is_typed_error() {
        assert_eq!(fit(&[], &EmConfig::default()).unwrap_err(), EmError::EmptySample);
    }

    #[test]
    fn ragged_input_is_typed_error() {
        assert_eq!(
            fit(&[vec![true], vec![true, false]], &EmConfig::default()).unwrap_err(),
            EmError::RaggedSample { expected: 1, got: 2 }
        );
    }

    /// Degenerate fields (always agreeing, never agreeing) must stay clamped
    /// away from {0, 1} so weights and posteriors remain finite.
    #[test]
    fn degenerate_fields_are_clamped_to_finite_weights() {
        // Field 0 always agrees, field 1 never does, across every vector.
        let vectors: Vec<Vec<bool>> = (0..500).map(|_| vec![true, false]).collect();
        let model = fit(&vectors, &EmConfig::default()).unwrap();
        for i in 0..2 {
            assert!((1e-6..=1.0 - 1e-6).contains(&model.m[i]), "m[{i}] = {}", model.m[i]);
            assert!((1e-6..=1.0 - 1e-6).contains(&model.u[i]), "u[{i}] = {}", model.u[i]);
        }
        assert!((1e-6..=1.0 - 1e-6).contains(&model.p), "p = {}", model.p);
        let w = model.weight(&[true, true]);
        assert!(w.is_finite(), "weight {w}");
        assert!(model.field_powers().iter().all(|p| p.is_finite()));
        for gamma in [[true, true], [true, false], [false, true], [false, false]] {
            let post = model.posterior(&gamma);
            assert!(post.is_finite() && (0.0..=1.0).contains(&post), "posterior {post}");
        }
    }

    /// The prior (unfit) fallback model is always defined and monotone in
    /// the number of agreeing fields.
    #[test]
    fn prior_model_is_finite_and_monotone() {
        let model = EmModel::prior(3, &EmConfig::default());
        assert_eq!(model.iterations, 0);
        let p0 = model.posterior(&[false, false, false]);
        let p1 = model.posterior(&[true, false, false]);
        let p2 = model.posterior(&[true, true, false]);
        let p3 = model.posterior(&[true, true, true]);
        assert!(p0 < p1 && p1 < p2 && p2 < p3, "{p0} {p1} {p2} {p3}");
        assert!(p3.is_finite() && (0.0..=1.0).contains(&p3));
    }

    /// `posterior_soft` agrees with `posterior` at the boolean corners and
    /// never produces NaN, even on garbage inputs.
    #[test]
    fn posterior_soft_matches_boolean_corners() {
        let vectors = synthesize(0.2, &[0.9, 0.85], &[0.1, 0.2], 5_000, 11);
        let model = fit(&vectors, &EmConfig::default()).unwrap();
        for gamma in [[true, true], [true, false], [false, true], [false, false]] {
            let soft: Vec<f64> = gamma.iter().map(|&g| if g { 1.0 } else { 0.0 }).collect();
            assert!((model.posterior(&gamma) - model.posterior_soft(&soft)).abs() < 1e-12);
        }
        // Half-agreement sits between the corners; NaN/out-of-range inputs
        // are sanitized rather than propagated.
        let mid = model.posterior_soft(&[0.5, 0.5]);
        assert!(mid > model.posterior(&[false, false]) && mid < model.posterior(&[true, true]));
        let wild = model.posterior_soft(&[f64::NAN, 7.0]);
        assert!(wild.is_finite() && (0.0..=1.0).contains(&wild));
    }
}
