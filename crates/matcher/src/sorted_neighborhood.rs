//! The Sorted Neighborhood method (merge/purge, \[20\]) — §6.2 Exp-3.
//!
//! 1. merge both relations and sort by a key;
//! 2. slide a fixed-size window, comparing only tuples inside it;
//! 3. declare matches by an equational rule set (here: either the 25
//!    hand-written rules of [`crate::rules`] or the union of deduced RCKs);
//! 4. take the transitive closure of the pairwise decisions (union-find),
//!    as the multi-pass merge/purge of \[20\] prescribes.
//!
//! [`sorted_neighborhood_in`] runs the same algorithm over a
//! [`WorkPool`] — parallel passes, parallel pairwise decisions — with a
//! deterministic, serial-identical outcome.

use crate::key::{KeyMatcher, PAR_MATCH_MIN_CHUNK};
use crate::sortkey::SortKey;
use crate::windowing::multi_pass_window_in;
use matchrules_data::relation::Relation;
use matchrules_data::unionfind::UnionFind;
use matchrules_runtime::{ordered_reduce, WorkPool};

/// Sorted Neighborhood configuration.
#[derive(Debug, Clone)]
pub struct SnConfig {
    /// Window size (the paper fixes 10).
    pub window: usize,
    /// Sort keys, one per pass.
    pub keys: Vec<SortKey>,
}

/// Result of an SN run.
#[derive(Debug, Clone)]
pub struct SnOutcome {
    /// Matched (credit, billing) pairs after transitive closure.
    pub pairs: Vec<(usize, usize)>,
    /// Number of window pairs actually compared.
    pub comparisons: usize,
    /// Number of pairwise rule hits (before closure).
    pub direct_matches: usize,
}

/// Runs Sorted Neighborhood.
///
/// # Panics
///
/// Panics when no sort key is configured.
pub fn sorted_neighborhood(
    credit: &Relation,
    billing: &Relation,
    rules: &KeyMatcher<'_>,
    cfg: &SnConfig,
) -> SnOutcome {
    sorted_neighborhood_in(&WorkPool::serial(), credit, billing, rules, cfg)
}

/// [`sorted_neighborhood`] on a [`WorkPool`]: multi-pass windowing runs
/// one pass per worker, pairwise rule evaluation is chunked over the
/// pool, and the matched pairs merge into the union-find **in candidate
/// order** — the closure (and hence the output) is byte-identical to the
/// serial run.
///
/// # Panics
///
/// Panics when no sort key is configured.
pub fn sorted_neighborhood_in(
    pool: &WorkPool,
    credit: &Relation,
    billing: &Relation,
    rules: &KeyMatcher<'_>,
    cfg: &SnConfig,
) -> SnOutcome {
    assert!(!cfg.keys.is_empty(), "SN needs at least one sort key");
    let candidates = multi_pass_window_in(pool, credit, billing, &cfg.keys, cfg.window);
    let comparisons = candidates.len();

    // Pairwise decisions in parallel through the compiled evaluator
    // (filter signatures extracted once per relation, DP scratch reused
    // per worker), reduced into the union-find over credit ⊎ billing
    // (credit i ↦ i, billing j ↦ |C| + j). The ordered reduce folds
    // chunk hits in chunk order, so the union sequence — and hence the
    // closure — is the serial one.
    let (credit_prep, billing_prep) = rules.prepare_in(pool, credit, billing);
    let n_credit = credit.len();
    let (mut uf, direct) = ordered_reduce(
        pool,
        &candidates,
        PAR_MATCH_MIN_CHUNK,
        |_, chunk| {
            let mut eval = rules.evaluator(credit, billing, &credit_prep, &billing_prep);
            chunk.iter().filter(|&&(c, b)| eval.matches(c, b)).copied().collect::<Vec<_>>()
        },
        (UnionFind::new(n_credit + billing.len()), 0usize),
        |(mut uf, mut direct), hits| {
            for (c, b) in hits {
                uf.union(c, n_credit + b);
                direct += 1;
            }
            (uf, direct)
        },
    );

    // Transitive closure: emit every cross pair sharing a class.
    let mut pairs = Vec::with_capacity(direct);
    let groups = uf.groups();
    for group in groups {
        if group.len() < 2 {
            continue;
        }
        let credits: Vec<usize> = group.iter().copied().filter(|&x| x < n_credit).collect();
        let billings: Vec<usize> =
            group.iter().copied().filter(|&x| x >= n_credit).map(|x| x - n_credit).collect();
        for &c in &credits {
            for &b in &billings {
                pairs.push((c, b));
            }
        }
    }
    SnOutcome { pairs, comparisons, direct_matches: direct }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_pairs;
    use crate::rules::hernandez_stolfo_25;
    use crate::sortkey::KeyField;
    use matchrules_core::cost::CostModel;
    use matchrules_core::paper;
    use matchrules_core::rck::find_rcks;
    use matchrules_data::dirty::{generate_dirty, DirtyData, NoiseConfig};
    use matchrules_data::eval::{paper_registry, RuntimeOps};
    use matchrules_data::fig1;

    fn standard_keys(setting: &paper::PaperSetting) -> Vec<SortKey> {
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        vec![
            SortKey::new(vec![
                KeyField::soundex(l("LN"), r("LN")),
                KeyField::text(l("FN"), r("FN"), 2),
                KeyField::text(l("zip"), r("zip"), 3),
            ]),
            SortKey::new(vec![
                KeyField::digits(l("tel"), r("phn"), 0),
                KeyField::text(l("email"), r("email"), 6),
            ]),
        ]
    }

    #[test]
    fn fig1_smoke_with_rcks() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = paper::example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let cfg = SnConfig {
            window: 6,
            keys: vec![SortKey::new(vec![KeyField::soundex(l("LN"), r("LN"))])],
        };
        let out = sorted_neighborhood(inst.left(), inst.right(), &matcher, &cfg);
        // All four billing tuples link to t1 (credit index 0).
        let mut pairs = out.pairs.clone();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(out.direct_matches, 4);
        assert!(out.comparisons >= 4);
    }

    fn run_sn(
        setting: &paper::PaperSetting,
        data: &DirtyData,
        rules: &[matchrules_core::relative_key::RelativeKey],
        ops: &RuntimeOps,
    ) -> SnOutcome {
        let matcher = KeyMatcher::new(rules.iter(), ops);
        let cfg = SnConfig { window: 10, keys: standard_keys(setting) };
        sorted_neighborhood(&data.credit, &data.billing, &matcher, &cfg)
    }

    /// The Fig. 10 shape: SN with RCK rules beats SN with the 25 hand rules
    /// on F1.
    #[test]
    fn snrck_beats_sn25() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            300,
            &NoiseConfig { seed: 31, ..Default::default() },
        );
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();

        let mut cost = CostModel::uniform();
        let rcks = find_rcks(&setting.sigma, &setting.target, 5, &mut cost).keys;
        let rck_out = run_sn(&setting, &data, &rcks, &ops);
        let rck_q = evaluate_pairs(&rck_out.pairs, &data.truth);

        let rules25 = hernandez_stolfo_25(&setting.pair, setting.dl);
        let base_out = run_sn(&setting, &data, &rules25, &ops);
        let base_q = evaluate_pairs(&base_out.pairs, &data.truth);

        assert!(
            rck_q.f1() > base_q.f1(),
            "SNrck F1 {} must beat SN F1 {}",
            rck_q.f1(),
            base_q.f1()
        );
        assert!(rck_q.precision() > 0.9, "SNrck precision {}", rck_q.precision());
    }

    /// RCK rule sets are smaller, so SNrck does less work per comparison.
    #[test]
    fn rck_rule_set_is_smaller() {
        let setting = paper::extended();
        let mut cost = CostModel::uniform();
        let rcks = find_rcks(&setting.sigma, &setting.target, 5, &mut cost).keys;
        assert!(rcks.len() <= 5);
        assert!(hernandez_stolfo_25(&setting.pair, setting.dl).len() == 25);
    }

    #[test]
    fn transitive_closure_adds_cluster_pairs() {
        // Two credit tuples of the same person (re-issued card) both match
        // one billing tuple → closure links both.
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let mut credit2 = inst.left().clone();
        // A re-issued card: same holder as t1, different card number.
        let mut values = inst.left().by_id(fig1::ids::T1).unwrap().values().to_vec();
        values[0] = matchrules_data::value::Value::str("333");
        credit2.push(matchrules_data::relation::Tuple::new(99, values));

        let rcks = paper::example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let cfg = SnConfig {
            window: 8,
            keys: vec![SortKey::new(vec![KeyField::soundex(l("LN"), r("LN"))])],
        };
        let out = sorted_neighborhood(&credit2, inst.right(), &matcher, &cfg);
        // Both credit 0 and credit 2 (the clone) pair with all 4 billings.
        let with_clone: Vec<_> = out.pairs.iter().filter(|&&(c, _)| c == 2).collect();
        assert_eq!(with_clone.len(), 4);
    }

    #[test]
    fn parallel_pools_reproduce_serial_outcome() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            150,
            &NoiseConfig { seed: 41, ..Default::default() },
        );
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let mut cost = CostModel::uniform();
        let rcks = find_rcks(&setting.sigma, &setting.target, 5, &mut cost).keys;
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let cfg = SnConfig { window: 10, keys: standard_keys(&setting) };
        let serial = sorted_neighborhood(&data.credit, &data.billing, &matcher, &cfg);
        for threads in [2, 4, 8] {
            let pool = WorkPool::with_threads(threads);
            let parallel =
                sorted_neighborhood_in(&pool, &data.credit, &data.billing, &matcher, &cfg);
            assert_eq!(parallel.pairs, serial.pairs, "threads = {threads}");
            assert_eq!(parallel.comparisons, serial.comparisons);
            assert_eq!(parallel.direct_matches, serial.direct_matches);
        }
    }

    #[test]
    #[should_panic(expected = "sort key")]
    fn missing_keys_rejected() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = paper::example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let _ = sorted_neighborhood(
            inst.left(),
            inst.right(),
            &matcher,
            &SnConfig { window: 10, keys: vec![] },
        );
    }
}
