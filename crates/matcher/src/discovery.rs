//! Discovering MDs from sample data — the paper's final §8 future-work
//! item ("develop algorithms for discovering MDs from sample data, along
//! the same lines as discovery of FDs").
//!
//! The miner is a levelwise (apriori-style) search over candidate LHS atom
//! sets, scored on a sample of tuple pairs:
//!
//! * **support** — how many sample pairs match the LHS;
//! * **confidence** — among those, the fraction whose RHS values are
//!   already equal. A high-confidence rule is evidence that "LHS-similar
//!   pairs agree on RHS", i.e. a plausible MD to hand to the reasoning
//!   core (which then deduces RCKs from it).
//!
//! Only *minimal* rules are emitted: an LHS is not extended once it already
//! yields the RHS at the confidence threshold.

use crate::windowing::multi_pass_window;
use matchrules_core::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use matchrules_core::operators::OperatorId;
use matchrules_core::schema::AttrId;
use matchrules_data::eval::RuntimeOps;
use matchrules_data::relation::Relation;

/// Discovery parameters.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Minimum number of LHS-matching sample pairs.
    pub min_support: usize,
    /// Minimum fraction of LHS-matching pairs whose RHS values agree.
    pub min_confidence: f64,
    /// Maximum LHS length explored (levelwise depth).
    pub max_lhs: usize,
    /// Operators tried on every candidate LHS pair (e.g. `=` and `≈d`).
    pub lhs_ops: Vec<OperatorId>,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_support: 20,
            min_confidence: 0.95,
            max_lhs: 2,
            lhs_ops: vec![OperatorId::EQ],
        }
    }
}

/// A mined MD with its sample statistics.
#[derive(Debug, Clone)]
pub struct DiscoveredMd {
    /// The rule, in normal form (single RHS pair).
    pub md: MatchingDependency,
    /// Number of sample pairs matching the LHS.
    pub support: usize,
    /// Fraction of those pairs whose RHS values agree.
    pub confidence: f64,
}

/// Why a discovery request is unrunnable. Refinement feeds the miner
/// user-controlled configuration, so degenerate inputs must surface as
/// values rather than panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscoveryError {
    /// `attr_pairs` was empty: there is nothing to build LHS atoms from.
    NoAttributePairs,
    /// `cfg.lhs_ops` was empty: no operator to try on any attribute pair.
    NoOperators,
    /// `cfg.max_lhs == 0`: the levelwise search would explore no level.
    ZeroMaxLhs,
}

impl std::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryError::NoAttributePairs => {
                write!(f, "discovery needs at least one candidate attribute pair")
            }
            DiscoveryError::NoOperators => {
                write!(f, "discovery needs at least one candidate LHS operator")
            }
            DiscoveryError::ZeroMaxLhs => {
                write!(f, "discovery needs max_lhs >= 1 (got 0)")
            }
        }
    }
}

impl std::error::Error for DiscoveryError {}

/// Mines MDs over the given comparable attribute pairs from a sample of
/// tuple pairs (candidate generation via the provided windowing keys keeps
/// the sample dense in near-matches).
///
/// Fails with a [`DiscoveryError`] when `attr_pairs` or `cfg.lhs_ops` is
/// empty, or `cfg.max_lhs == 0`. An empty *sample* is not an error: it
/// simply mines nothing (no LHS can reach any support).
pub fn discover(
    credit: &Relation,
    billing: &Relation,
    attr_pairs: &[(AttrId, AttrId)],
    sample: &[(usize, usize)],
    ops: &RuntimeOps,
    cfg: &DiscoveryConfig,
) -> Result<Vec<DiscoveredMd>, DiscoveryError> {
    if attr_pairs.is_empty() {
        return Err(DiscoveryError::NoAttributePairs);
    }
    if cfg.lhs_ops.is_empty() {
        return Err(DiscoveryError::NoOperators);
    }
    if cfg.max_lhs == 0 {
        return Err(DiscoveryError::ZeroMaxLhs);
    }

    // Pre-evaluate every (attribute pair, operator) predicate on the sample.
    let atoms: Vec<SimilarityAtom> = attr_pairs
        .iter()
        .flat_map(|&(l, r)| cfg.lhs_ops.iter().map(move |&op| SimilarityAtom::new(l, r, op)))
        .collect();
    let bits: Vec<Vec<bool>> = atoms
        .iter()
        .map(|atom| {
            sample
                .iter()
                .map(|&(c, b)| ops.atom_matches(atom, &credit.tuples()[c], &billing.tuples()[b]))
                .collect()
        })
        .collect();
    // RHS agreement = the equality bits of each attribute pair.
    let rhs_bits: Vec<(IdentPair, &Vec<bool>)> = atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.op.is_eq())
        .map(|(i, a)| (a.pair(), &bits[i]))
        .collect();

    let mut out: Vec<DiscoveredMd> = Vec::new();
    // Levelwise frontier: (sorted atom indices, conjunction bitmap).
    let mut frontier: Vec<(Vec<usize>, Vec<bool>)> =
        (0..atoms.len()).map(|i| (vec![i], bits[i].clone())).collect();

    for _level in 0..cfg.max_lhs {
        let mut next: Vec<(Vec<usize>, Vec<bool>)> = Vec::new();
        for (idxs, mask) in &frontier {
            let support = mask.iter().filter(|&&b| b).count();
            if support < cfg.min_support {
                continue; // anti-monotone prune
            }
            let mut saturated = false;
            for (rhs, eq_bits) in &rhs_bits {
                // Skip trivial rules whose RHS pair is already an LHS atom.
                if idxs.iter().any(|&i| atoms[i].pair() == *rhs) {
                    continue;
                }
                let hits = mask.iter().zip(eq_bits.iter()).filter(|(&m, &e)| m && e).count();
                let confidence = hits as f64 / support as f64;
                if confidence >= cfg.min_confidence {
                    let lhs: Vec<SimilarityAtom> = idxs.iter().map(|&i| atoms[i]).collect();
                    out.push(DiscoveredMd {
                        md: MatchingDependency::from_validated_parts(lhs, vec![*rhs]),
                        support,
                        confidence,
                    });
                    saturated = true;
                }
            }
            // Minimality: only extend LHSs that have not yet produced rules.
            if !saturated && idxs.len() < cfg.max_lhs {
                let last = *idxs.last().expect("non-empty");
                for j in (last + 1)..atoms.len() {
                    // Avoid conjoining two operators on the same pair.
                    if idxs.iter().any(|&i| atoms[i].pair() == atoms[j].pair()) {
                        continue;
                    }
                    let conj: Vec<bool> =
                        mask.iter().zip(&bits[j]).map(|(&a, &b)| a && b).collect();
                    let mut ext = idxs.clone();
                    ext.push(j);
                    next.push((ext, conj));
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    // Highest-confidence, highest-support rules first.
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("finite confidence")
            .then(b.support.cmp(&a.support))
    });
    Ok(out)
}

/// Convenience: mines over a target's attribute pairs using windowing to
/// build the sample. Fails with the same [`DiscoveryError`] values as
/// [`discover`].
pub fn discover_from_windows(
    credit: &Relation,
    billing: &Relation,
    attr_pairs: &[(AttrId, AttrId)],
    keys: &[crate::sortkey::SortKey],
    window: usize,
    ops: &RuntimeOps,
    cfg: &DiscoveryConfig,
) -> Result<Vec<DiscoveredMd>, DiscoveryError> {
    let sample = multi_pass_window(credit, billing, keys, window);
    discover(credit, billing, attr_pairs, &sample, ops, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};
    use matchrules_data::eval::paper_registry;

    fn setup() -> (paper::PaperSetting, matchrules_data::DirtyData, RuntimeOps) {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            250,
            &NoiseConfig { duplicate_rate: 0.8, attr_error_prob: 0.3, seed: 0xD15C },
        );
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        (setting, data, ops)
    }

    fn pairs_of(setting: &paper::PaperSetting) -> Vec<(AttrId, AttrId)> {
        setting.target.y1().iter().zip(setting.target.y2()).map(|(&l, &r)| (l, r)).collect()
    }

    #[test]
    fn discovers_email_implies_name() {
        let (setting, data, ops) = setup();
        let sample: Vec<(usize, usize)> = (0..data.credit.len())
            .flat_map(|c| (0..data.billing.len()).step_by(7).map(move |b| (c, b)))
            .take(40_000)
            .collect();
        // Attribute errors hit 30% of duplicate fields, so a confidence of
        // 0.8 admits the single-atom rules over clean identifiers.
        let mined = discover(
            &data.credit,
            &data.billing,
            &pairs_of(&setting),
            &sample,
            &ops,
            &DiscoveryConfig { min_support: 5, min_confidence: 0.8, ..Default::default() },
        )
        .unwrap();
        assert!(!mined.is_empty());
        // email= → LN⇌LN must be among the mined rules (emails are unique
        // per person in the generator).
        let email = setting.pair.left().attr("email").unwrap();
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let found = mined.iter().any(|d| {
            d.md.lhs().len() == 1 && d.md.lhs()[0].left == email && d.md.rhs()[0].left == ln_l
        });
        assert!(found, "email → LN not mined: {:?}", mined.iter().take(8).collect::<Vec<_>>());
    }

    #[test]
    fn mined_rules_respect_thresholds() {
        let (setting, data, ops) = setup();
        let sample: Vec<(usize, usize)> = (0..data.credit.len())
            .flat_map(|c| (0..data.billing.len()).step_by(13).map(move |b| (c, b)))
            .take(20_000)
            .collect();
        let cfg = DiscoveryConfig { min_support: 10, min_confidence: 0.9, ..Default::default() };
        let mined = discover(&data.credit, &data.billing, &pairs_of(&setting), &sample, &ops, &cfg)
            .unwrap();
        for d in mined {
            assert!(d.support >= 10);
            assert!(d.confidence >= 0.9);
            assert!(d.md.is_normal());
            // No trivial self-rules.
            assert!(d.md.lhs().iter().all(|a| a.pair() != d.md.rhs()[0]));
        }
    }

    #[test]
    fn mined_mds_feed_the_reasoning_core() {
        let (setting, data, ops) = setup();
        let sample: Vec<(usize, usize)> = (0..data.credit.len())
            .map(|c| {
                // base billing tuples were generated aligned with persons,
                // but shuffled; use truth to align a clean sample.
                let b = (0..data.billing.len()).find(|&b| data.truth.is_match(c, b)).unwrap();
                (c, b)
            })
            .collect();
        let mined = discover(
            &data.credit,
            &data.billing,
            &pairs_of(&setting),
            &sample,
            &ops,
            &DiscoveryConfig { min_support: 20, min_confidence: 0.98, ..Default::default() },
        )
        .unwrap();
        assert!(!mined.is_empty());
        let sigma: Vec<MatchingDependency> = mined.iter().map(|d| d.md.clone()).collect();
        // The mined Σ admits RCK deduction.
        let mut cost = matchrules_core::cost::CostModel::uniform();
        let outcome = matchrules_core::rck::find_rcks(&sigma, &setting.target, 8, &mut cost);
        assert!(!outcome.keys.is_empty());
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        let (setting, data, ops) = setup();
        let pairs = pairs_of(&setting);
        let err = discover(
            &data.credit,
            &data.billing,
            &[],
            &[(0, 0)],
            &ops,
            &DiscoveryConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, DiscoveryError::NoAttributePairs);

        let err = discover(
            &data.credit,
            &data.billing,
            &pairs,
            &[(0, 0)],
            &ops,
            &DiscoveryConfig { lhs_ops: vec![], ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, DiscoveryError::NoOperators);

        let err = discover(
            &data.credit,
            &data.billing,
            &pairs,
            &[(0, 0)],
            &ops,
            &DiscoveryConfig { max_lhs: 0, ..Default::default() },
        )
        .unwrap_err();
        assert_eq!(err, DiscoveryError::ZeroMaxLhs);
        // Errors render a human-readable reason for wire transport.
        assert!(err.to_string().contains("max_lhs"));
    }

    #[test]
    fn empty_sample_mines_nothing() {
        let (setting, data, ops) = setup();
        let mined = discover(
            &data.credit,
            &data.billing,
            &pairs_of(&setting),
            &[],
            &ops,
            &DiscoveryConfig::default(),
        )
        .unwrap();
        assert!(mined.is_empty());
    }
}
