//! Blocking: partition both relations by a key and compare only within
//! blocks (§1 "Applications", §6 Exp-4).
//!
//! The §6 experiment builds blocking keys from three attributes — either
//! drawn from the top RCKs or manually chosen — with the name attribute
//! "encoded by Soundex before blocking". Multiple passes with different
//! keys union their candidate pairs, which is how blocking is typically
//! repeated "to improve match quality" (§1).

use crate::sortkey::SortKey;
use matchrules_data::relation::Relation;
use std::collections::{HashMap, HashSet};

/// Generates candidate (credit, billing) pairs sharing a block key.
/// Tuples whose key is entirely empty (all fields null) are skipped — an
/// all-null key would otherwise create one giant junk block.
pub fn block_candidates(
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
) -> Vec<(usize, usize)> {
    let empty_key_len = key.fields().len(); // separators only
    let mut blocks: HashMap<String, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (i, t) in credit.tuples().iter().enumerate() {
        let k = key.render_left(t);
        if k.chars().count() > empty_key_len {
            blocks.entry(k).or_default().0.push(i);
        }
    }
    for (i, t) in billing.tuples().iter().enumerate() {
        let k = key.render_right(t);
        if k.chars().count() > empty_key_len {
            blocks.entry(k).or_default().1.push(i);
        }
    }
    let mut out = Vec::new();
    for (_, (cs, bs)) in blocks {
        for &c in &cs {
            for &b in &bs {
                out.push((c, b));
            }
        }
    }
    out
}

/// Union of several blocking passes.
pub fn multi_pass_block(
    credit: &Relation,
    billing: &Relation,
    keys: &[SortKey],
) -> Vec<(usize, usize)> {
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for key in keys {
        for pair in block_candidates(credit, billing, key) {
            if seen.insert(pair) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BlockingQuality;
    use crate::sortkey::KeyField;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};
    use matchrules_data::fig1;

    #[test]
    fn soundex_blocking_groups_fig1() {
        let (setting, inst) = fig1::setting_and_instance();
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let ln_r = setting.pair.right().attr("LN").unwrap();
        let key = SortKey::new(vec![KeyField::soundex(ln_l, ln_r)]);
        let pairs = block_candidates(inst.left(), inst.right(), &key);
        // Clifford (t1) blocks with Clifford/Clivord (t3..t6): 4 pairs; David
        // Smith blocks with nothing.
        assert_eq!(pairs.len(), 4);
        assert!(pairs.iter().all(|&(c, _)| c == 0));
    }

    #[test]
    fn exact_blocking_misses_typod_keys() {
        let (setting, inst) = fig1::setting_and_instance();
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let ln_r = setting.pair.right().attr("LN").unwrap();
        let key = SortKey::new(vec![KeyField::text(ln_l, ln_r, 0)]);
        let pairs = block_candidates(inst.left(), inst.right(), &key);
        // Without Soundex, "Clivord" (t5, t6) falls out of the block.
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn null_keys_do_not_form_blocks() {
        let (setting, inst) = fig1::setting_and_instance();
        let g_l = setting.pair.left().attr("gender").unwrap();
        let g_r = setting.pair.right().attr("gender").unwrap();
        // All billing genders are null: no (credit, billing) block forms.
        let key = SortKey::new(vec![KeyField::text(g_l, g_r, 0)]);
        let pairs = block_candidates(inst.left(), inst.right(), &key);
        assert!(pairs.is_empty());
    }

    #[test]
    fn multi_pass_improves_pairs_completeness() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            150,
            &NoiseConfig { seed: 5, ..Default::default() },
        );
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let key1 = SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("zip"), r("zip"), 3),
        ]);
        let key2 = SortKey::new(vec![KeyField::digits(l("tel"), r("phn"), 0)]);
        let single = BlockingQuality::from_candidates(
            block_candidates(&data.credit, &data.billing, &key1),
            &data.truth,
        );
        let multi = BlockingQuality::from_candidates(
            multi_pass_block(&data.credit, &data.billing, &[key1, key2]),
            &data.truth,
        );
        assert!(multi.pairs_completeness() >= single.pairs_completeness());
        assert!(multi.reduction_ratio() > 0.5, "blocking must still reduce the space");
    }

    #[test]
    fn blocking_reduces_comparisons_substantially() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            200,
            &NoiseConfig { seed: 6, ..Default::default() },
        );
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let key = SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("city"), r("city"), 4),
        ]);
        let q = BlockingQuality::from_candidates(
            block_candidates(&data.credit, &data.billing, &key),
            &data.truth,
        );
        assert!(q.reduction_ratio() > 0.9);
        assert!(q.pairs_completeness() > 0.3);
    }
}
