//! Blocking: partition both relations by a key and compare only within
//! blocks (§1 "Applications", §6 Exp-4).
//!
//! The §6 experiment builds blocking keys from three attributes — either
//! drawn from the top RCKs or manually chosen — with the name attribute
//! "encoded by Soundex before blocking". Multiple passes with different
//! keys union their candidate pairs, which is how blocking is typically
//! repeated "to improve match quality" (§1).
//!
//! Every function takes a [`WorkPool`]-parameterized `_in` form; the plain
//! forms run on a serial pool. Key rendering and per-block pair emission
//! are chunked over the pool, blocks are processed in ascending key order
//! (a `BTreeMap` partition, never hash-iteration order), and multi-pass
//! unions merge pass results in key order — so the candidate list is
//! deterministic and a parallel run is byte-identical to a serial one.

use crate::sortkey::SortKey;
use matchrules_data::relation::Relation;
use matchrules_runtime::{ordered_reduce, WorkPool};
use std::collections::{BTreeMap, HashSet};

/// One block: the tuples of each side sharing a key.
type Block = (Vec<usize>, Vec<usize>);

/// Generates candidate (credit, billing) pairs sharing a block key.
/// Tuples whose key is entirely empty (all fields null) are skipped — an
/// all-null key would otherwise create one giant junk block.
pub fn block_candidates(
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
) -> Vec<(usize, usize)> {
    block_candidates_in(&WorkPool::serial(), credit, billing, key)
}

/// [`block_candidates`] on a [`WorkPool`]: keys render in parallel, the
/// partition is assembled in key order, and blocks emit their cross
/// products concurrently with results concatenated in block order.
pub fn block_candidates_in(
    pool: &WorkPool,
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
) -> Vec<(usize, usize)> {
    let empty_key_len = key.fields().len(); // separators only
    let credit_keys: Vec<String> = pool.par_map_collect(credit.tuples(), |_, t| key.render_left(t));
    let billing_keys: Vec<String> =
        pool.par_map_collect(billing.tuples(), |_, t| key.render_right(t));

    let mut blocks: BTreeMap<&str, Block> = BTreeMap::new();
    for (i, k) in credit_keys.iter().enumerate() {
        if k.chars().count() > empty_key_len {
            blocks.entry(k).or_default().0.push(i);
        }
    }
    for (i, k) in billing_keys.iter().enumerate() {
        if k.chars().count() > empty_key_len {
            blocks.entry(k).or_default().1.push(i);
        }
    }

    // Cross products per block, evaluated concurrently but reduced in
    // ascending key order.
    let blocks: Vec<Block> = blocks.into_values().collect();
    ordered_reduce(
        pool,
        &blocks,
        16,
        |_, chunk| {
            let mut out = Vec::new();
            for (cs, bs) in chunk {
                for &c in cs {
                    for &b in bs {
                        out.push((c, b));
                    }
                }
            }
            out
        },
        Vec::new(),
        |mut out: Vec<(usize, usize)>, chunk| {
            out.extend(chunk);
            out
        },
    )
}

/// Union of several blocking passes.
pub fn multi_pass_block(
    credit: &Relation,
    billing: &Relation,
    keys: &[SortKey],
) -> Vec<(usize, usize)> {
    multi_pass_block_in(&WorkPool::serial(), credit, billing, keys)
}

/// [`multi_pass_block`] on a [`WorkPool`]: one pass per worker
/// ([`WorkPool::split`] shares the threads), pass results union in key
/// order — identical to the serial union.
pub fn multi_pass_block_in(
    pool: &WorkPool,
    credit: &Relation,
    billing: &Relation,
    keys: &[SortKey],
) -> Vec<(usize, usize)> {
    let inner = pool.split(keys.len());
    let passes: Vec<Vec<(usize, usize)>> =
        pool.par_tasks(keys.len(), |i| block_candidates_in(&inner, credit, billing, &keys[i]));
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for pass in passes {
        for pair in pass {
            if seen.insert(pair) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::BlockingQuality;
    use crate::sortkey::KeyField;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};
    use matchrules_data::fig1;

    #[test]
    fn soundex_blocking_groups_fig1() {
        let (setting, inst) = fig1::setting_and_instance();
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let ln_r = setting.pair.right().attr("LN").unwrap();
        let key = SortKey::new(vec![KeyField::soundex(ln_l, ln_r)]);
        let pairs = block_candidates(inst.left(), inst.right(), &key);
        // Clifford (t1) blocks with Clifford/Clivord (t3..t6): 4 pairs; David
        // Smith blocks with nothing.
        assert_eq!(pairs.len(), 4);
        assert!(pairs.iter().all(|&(c, _)| c == 0));
    }

    #[test]
    fn exact_blocking_misses_typod_keys() {
        let (setting, inst) = fig1::setting_and_instance();
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let ln_r = setting.pair.right().attr("LN").unwrap();
        let key = SortKey::new(vec![KeyField::text(ln_l, ln_r, 0)]);
        let pairs = block_candidates(inst.left(), inst.right(), &key);
        // Without Soundex, "Clivord" (t5, t6) falls out of the block.
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn null_keys_do_not_form_blocks() {
        let (setting, inst) = fig1::setting_and_instance();
        let g_l = setting.pair.left().attr("gender").unwrap();
        let g_r = setting.pair.right().attr("gender").unwrap();
        // All billing genders are null: no (credit, billing) block forms.
        let key = SortKey::new(vec![KeyField::text(g_l, g_r, 0)]);
        let pairs = block_candidates(inst.left(), inst.right(), &key);
        assert!(pairs.is_empty());
    }

    #[test]
    fn multi_pass_improves_pairs_completeness() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            150,
            &NoiseConfig { seed: 5, ..Default::default() },
        );
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let key1 = SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("zip"), r("zip"), 3),
        ]);
        let key2 = SortKey::new(vec![KeyField::digits(l("tel"), r("phn"), 0)]);
        let single = BlockingQuality::from_candidates(
            block_candidates(&data.credit, &data.billing, &key1),
            &data.truth,
        );
        let multi = BlockingQuality::from_candidates(
            multi_pass_block(&data.credit, &data.billing, &[key1, key2]),
            &data.truth,
        );
        assert!(multi.pairs_completeness() >= single.pairs_completeness());
        assert!(multi.reduction_ratio() > 0.5, "blocking must still reduce the space");
    }

    #[test]
    fn blocking_reduces_comparisons_substantially() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            200,
            &NoiseConfig { seed: 6, ..Default::default() },
        );
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let key = SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("city"), r("city"), 4),
        ]);
        let q = BlockingQuality::from_candidates(
            block_candidates(&data.credit, &data.billing, &key),
            &data.truth,
        );
        assert!(q.reduction_ratio() > 0.9);
        assert!(q.pairs_completeness() > 0.3);
    }

    #[test]
    fn parallel_pools_reproduce_serial_output() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            120,
            &NoiseConfig { seed: 9, ..Default::default() },
        );
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let keys = [
            SortKey::new(vec![KeyField::soundex(l("LN"), r("LN"))]),
            SortKey::new(vec![KeyField::digits(l("tel"), r("phn"), 0)]),
        ];
        let serial = multi_pass_block(&data.credit, &data.billing, &keys);
        for threads in [2, 3, 8] {
            let pool = WorkPool::with_threads(threads);
            let parallel = multi_pass_block_in(&pool, &data.credit, &data.billing, &keys);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }
}
