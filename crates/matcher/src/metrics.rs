//! Match-quality metrics (§6.2).
//!
//! * **precision** — true matches correctly found / all matches returned;
//! * **recall** — true matches correctly found / all true matches in the
//!   data;
//! * **pairs completeness** `PC = sM / nM` and **reduction ratio**
//!   `RR = 1 − (sM + sU)/(nM + nU)` for blocking/windowing, where `sM`/`sU`
//!   count matched/non-matched candidate pairs surviving the reduction and
//!   `nM`/`nU` the same without it.

use matchrules_data::dirty::GroundTruth;

/// Confusion counts of a matcher's output against the generator's truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchQuality {
    /// Pairs returned and true.
    pub true_positives: usize,
    /// Pairs returned but false.
    pub false_positives: usize,
    /// True pairs not returned.
    pub false_negatives: usize,
}

impl MatchQuality {
    /// Precision in `\[0, 1\]`; `1.0` when nothing was returned.
    pub fn precision(&self) -> f64 {
        let returned = self.true_positives + self.false_positives;
        if returned == 0 {
            1.0
        } else {
            self.true_positives as f64 / returned as f64
        }
    }

    /// Recall in `\[0, 1\]`; `1.0` when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// The weighted harmonic mean
    /// `F_β = (1 + β²) · P · R / (β² · P + R)`; `β > 1` weighs recall
    /// higher, `β < 1` precision. Returns `0.0` whenever the denominator
    /// vanishes and clamps non-finite or negative `beta` to `1.0`, so the
    /// score is always a finite number in `[0, 1]`.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let beta = if beta.is_finite() && beta > 0.0 { beta } else { 1.0 };
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        let denom = b2 * p + r;
        if denom == 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / denom
        }
    }

    /// Accumulates another confusion count into this one — the per-rule
    /// contributions of a refinement evaluation sum component-wise.
    pub fn merge(&mut self, other: &MatchQuality) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Scores a set of returned (credit, billing) index pairs against the
/// truth. Duplicate pairs in the input are counted once.
pub fn evaluate_pairs(pairs: &[(usize, usize)], truth: &GroundTruth) -> MatchQuality {
    let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    for &p in pairs {
        if !seen.insert(p) {
            continue;
        }
        if truth.is_match(p.0, p.1) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let total_true = truth.total_true_pairs();
    MatchQuality {
        true_positives: tp,
        false_positives: fp,
        false_negatives: total_true.saturating_sub(tp),
    }
}

/// Pairs completeness and reduction ratio of a candidate-pair generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingQuality {
    /// Matched candidate pairs surviving the reduction (`sM`).
    pub surviving_matches: usize,
    /// Non-matched candidate pairs surviving the reduction (`sU`).
    pub surviving_non_matches: usize,
    /// All true match pairs (`nM`).
    pub total_matches: usize,
    /// All non-match pairs (`nU`).
    pub total_non_matches: usize,
}

impl BlockingQuality {
    /// Evaluates a candidate set (deduplicated) against the truth over the
    /// full cross product.
    pub fn from_candidates<I>(candidates: I, truth: &GroundTruth) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        let mut s_m = 0usize;
        let mut s_u = 0usize;
        for pair in candidates {
            if !seen.insert(pair) {
                continue;
            }
            if truth.is_match(pair.0, pair.1) {
                s_m += 1;
            } else {
                s_u += 1;
            }
        }
        let n_m = truth.total_true_pairs();
        let total_pairs = truth.credit_len() * truth.billing_len();
        BlockingQuality {
            surviving_matches: s_m,
            surviving_non_matches: s_u,
            total_matches: n_m,
            // Saturating: an empty comparison space must stay at zero,
            // never wrap (the ratios below each guard their own zero
            // denominators, so the whole struct is NaN-free).
            total_non_matches: total_pairs.saturating_sub(n_m),
        }
    }

    /// `PC = sM / nM`.
    pub fn pairs_completeness(&self) -> f64 {
        if self.total_matches == 0 {
            1.0
        } else {
            self.surviving_matches as f64 / self.total_matches as f64
        }
    }

    /// `RR = 1 − (sM + sU) / (nM + nU)`.
    pub fn reduction_ratio(&self) -> f64 {
        let total = self.total_matches + self.total_non_matches;
        if total == 0 {
            0.0
        } else {
            1.0 - (self.surviving_matches + self.surviving_non_matches) as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};

    fn truth_of(persons: usize) -> GroundTruth {
        let setting = paper::extended();
        let cfg = NoiseConfig { seed: 3, ..NoiseConfig::default() };
        generate_dirty(&setting.pair, &setting.target, persons, &cfg).truth
    }

    #[test]
    fn quality_arithmetic() {
        let q = MatchQuality { true_positives: 8, false_positives: 2, false_negatives: 8 };
        assert!((q.precision() - 0.8).abs() < 1e-12);
        assert!((q.recall() - 0.5).abs() < 1e-12);
        assert!((q.f1() - (2.0 * 0.8 * 0.5 / 1.3)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_quality() {
        let empty = MatchQuality { true_positives: 0, false_positives: 0, false_negatives: 0 };
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        let silent = MatchQuality { true_positives: 0, false_positives: 0, false_negatives: 5 };
        assert_eq!(silent.precision(), 1.0);
        assert_eq!(silent.recall(), 0.0);
        assert_eq!(silent.f1(), 0.0);
    }

    #[test]
    fn f_beta_matches_f1_at_beta_one() {
        let q = MatchQuality { true_positives: 8, false_positives: 2, false_negatives: 8 };
        assert!((q.f_beta(1.0) - q.f1()).abs() < 1e-12);
        // β = 2 weighs recall (0.5) over precision (0.8): F2 < F1 here.
        assert!(q.f_beta(2.0) < q.f1());
        // β = 0.5 weighs precision: F0.5 > F1.
        assert!(q.f_beta(0.5) > q.f1());
    }

    #[test]
    fn f_beta_degenerate_cases_are_finite() {
        // Empty gold set and nothing returned: P = R = 1, any β scores 1.
        let empty = MatchQuality { true_positives: 0, false_positives: 0, false_negatives: 0 };
        assert_eq!(empty.f_beta(1.0), 1.0);
        assert_eq!(empty.f_beta(2.0), 1.0);
        // Nothing returned against a populated gold set: R = 0 → 0.
        let silent = MatchQuality { true_positives: 0, false_positives: 0, false_negatives: 5 };
        assert_eq!(silent.f_beta(1.0), 0.0);
        assert_eq!(silent.f_beta(0.25), 0.0);
        // Only junk returned with an empty gold set: P = 0, R = 1 → 0.
        let junk = MatchQuality { true_positives: 0, false_positives: 3, false_negatives: 0 };
        assert_eq!(junk.f_beta(1.0), 0.0);
        // Hostile β values fall back to β = 1 instead of going NaN.
        let q = MatchQuality { true_positives: 8, false_positives: 2, false_negatives: 8 };
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!((q.f_beta(bad) - q.f1()).abs() < 1e-12, "beta = {bad}");
        }
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut acc = MatchQuality { true_positives: 0, false_positives: 0, false_negatives: 0 };
        acc.merge(&MatchQuality { true_positives: 3, false_positives: 1, false_negatives: 2 });
        acc.merge(&MatchQuality { true_positives: 5, false_positives: 0, false_negatives: 4 });
        assert_eq!(acc, MatchQuality { true_positives: 8, false_positives: 1, false_negatives: 6 });
    }

    #[test]
    fn evaluate_counts_and_dedups() {
        let truth = truth_of(10);
        // Billing tuple 0's entity — find its credit index.
        let e = truth.billing_entity(0) as usize;
        let pairs = vec![(e, 0), (e, 0), ((e + 1) % 10, 0)];
        let q = evaluate_pairs(&pairs, &truth);
        assert_eq!(q.true_positives, 1);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, truth.total_true_pairs() - 1);
    }

    #[test]
    fn perfect_matcher_scores_one() {
        let truth = truth_of(8);
        let mut pairs = Vec::new();
        for b in 0..truth.billing_len() {
            pairs.push((truth.billing_entity(b) as usize, b));
        }
        let q = evaluate_pairs(&pairs, &truth);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn blocking_quality_bounds() {
        let truth = truth_of(12);
        // Candidate set = everything → PC = 1, RR = 0.
        let all: Vec<(usize, usize)> = (0..truth.credit_len())
            .flat_map(|c| (0..truth.billing_len()).map(move |b| (c, b)))
            .collect();
        let q = BlockingQuality::from_candidates(all, &truth);
        assert_eq!(q.pairs_completeness(), 1.0);
        assert!(q.reduction_ratio().abs() < 1e-12);

        // Candidate set = nothing → PC = 0, RR = 1.
        let q = BlockingQuality::from_candidates(std::iter::empty(), &truth);
        assert_eq!(q.pairs_completeness(), 0.0);
        assert!((q.reduction_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_relations_never_produce_nan() {
        // Truth over zero credit and billing tuples: every denominator in
        // the §6.2 metrics is zero.
        let setting = paper::extended();
        let cfg = NoiseConfig { duplicate_rate: 0.0, attr_error_prob: 0.0, seed: 1 };
        let empty = generate_dirty(&setting.pair, &setting.target, 0, &cfg).truth;
        assert_eq!(empty.total_true_pairs(), 0);

        let q = evaluate_pairs(&[], &empty);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 1.0);
        assert!(q.f1().is_finite());

        let b = BlockingQuality::from_candidates(std::iter::empty(), &empty);
        assert!(b.pairs_completeness().is_finite());
        assert!(b.reduction_ratio().is_finite());
        assert_eq!(b.pairs_completeness(), 1.0, "nothing to find => complete");
        assert_eq!(b.reduction_ratio(), 0.0, "empty space => nothing reduced");
    }

    #[test]
    fn zero_candidate_totals_stay_finite() {
        // A silent matcher against a populated truth: recall 0, f1 0 —
        // finite, never 0/0.
        let truth = truth_of(6);
        let q = evaluate_pairs(&[], &truth);
        assert_eq!(q.precision(), 1.0);
        assert_eq!(q.recall(), 0.0);
        assert_eq!(q.f1(), 0.0);
        assert!(q.f1().is_finite());
    }

    #[test]
    fn blocking_quality_partial() {
        let truth = truth_of(10);
        // Only the true pairs as candidates: PC = 1, RR close to 1.
        let pairs: Vec<(usize, usize)> =
            (0..truth.billing_len()).map(|b| (truth.billing_entity(b) as usize, b)).collect();
        let q = BlockingQuality::from_candidates(pairs, &truth);
        assert_eq!(q.pairs_completeness(), 1.0);
        assert!(q.reduction_ratio() > 0.8);
    }
}
