//! Executable match keys: RCKs (or hand-written rules) applied to tuples.
//!
//! An RCK tells a matcher *what attributes to compare and how to compare
//! them* (§1). A [`KeyMatcher`] evaluates a disjunction of such keys — the
//! "union of top-k RCKs" configuration the paper's experiments use to keep
//! single-key misses from hurting recall (§6.2 Exp-2) — optionally guarded
//! by negative rules (§8 extension).

use matchrules_core::negation::NegativeRule;
use matchrules_core::relative_key::RelativeKey;
use matchrules_data::eval::{FilterStats, RuntimeOps};
use matchrules_data::prep::{RelationPrep, SigNeeds};
use matchrules_data::relation::{Relation, Tuple};
use matchrules_runtime::WorkPool;
use std::sync::Arc;

/// Minimum candidate-pairs-per-chunk when a [`KeyMatcher`] is evaluated
/// over a work pool: one evaluation runs a full key disjunction, so
/// chunks this size already amortize chunk claiming. Shared by every
/// parallel pairwise-evaluation site (sorted neighborhood, the engine)
/// so their chunk policy cannot drift apart.
pub const PAR_MATCH_MIN_CHUNK: usize = 64;

/// A compiled disjunction of keys with optional negative-rule vetoes.
pub struct KeyMatcher<'a> {
    keys: Vec<&'a RelativeKey>,
    negatives: &'a [NegativeRule],
    ops: &'a RuntimeOps,
}

impl<'a> KeyMatcher<'a> {
    /// Builds a matcher over `keys` (matched as a disjunction).
    pub fn new(keys: impl IntoIterator<Item = &'a RelativeKey>, ops: &'a RuntimeOps) -> Self {
        KeyMatcher { keys: keys.into_iter().collect(), negatives: &[], ops }
    }

    /// Adds negative rules: a vetoed pair never matches.
    #[must_use]
    pub fn with_negatives(mut self, negatives: &'a [NegativeRule]) -> Self {
        self.negatives = negatives;
        self
    }

    /// Number of keys in the disjunction.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Whether no keys are configured (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Whether `(t1, t2)` match: some key accepts and no negative rule
    /// vetoes.
    pub fn matches(&self, t1: &Tuple, t2: &Tuple) -> bool {
        self.keys.iter().any(|key| self.ops.lhs_matches(key.atoms(), t1, t2))
            && !self.vetoed(t1, t2)
    }

    /// Whether a negative rule vetoes the pair (independent of the keys) —
    /// lets callers that already hold a [`Self::matching_key`] result
    /// finish the decision without re-evaluating the key disjunction.
    pub fn vetoed(&self, t1: &Tuple, t2: &Tuple) -> bool {
        self.negatives.iter().any(|rule| rule.vetoes(|atom| self.ops.atom_matches(atom, t1, t2)))
    }

    /// Which key (by position) first accepts the pair, ignoring negatives —
    /// used in diagnostics and the worked examples.
    pub fn matching_key(&self, t1: &Tuple, t2: &Tuple) -> Option<usize> {
        self.keys.iter().position(|key| self.ops.lhs_matches(key.atoms(), t1, t2))
    }

    /// Which attributes of each side the matcher compares under an
    /// edit-distance kernel — the attributes worth a
    /// [`RelationPrep`] signature.
    pub fn sig_needs(&self, left_arity: usize, right_arity: usize) -> (SigNeeds, SigNeeds) {
        let mut left = SigNeeds::none(left_arity);
        let mut right = SigNeeds::none(right_arity);
        let atoms =
            self.keys.iter().flat_map(|key| key.atoms().iter()).chain(
                self.negatives.iter().flat_map(|rule| rule.guards().iter().map(|g| g.atom())),
            );
        for atom in atoms {
            if self.ops.needs_signature(atom.op) {
                left.mark(atom.left);
                right.mark(atom.right);
            }
        }
        (left, right)
    }

    /// Extracts both relations' signature caches over `pool`, shared when
    /// both sides are the same relation (the dedup case). This is the
    /// once-per-run preprocessing that [`PairEval`] consumes.
    pub fn prepare_in(
        &self,
        pool: &WorkPool,
        left: &Relation,
        right: &Relation,
    ) -> (Arc<RelationPrep>, Arc<RelationPrep>) {
        let (mut ln, rn) = self.sig_needs(left.schema().arity(), right.schema().arity());
        if std::ptr::eq(left, right) {
            // One build covering both sides' needs.
            ln.union(&rn);
            let prep = Arc::new(RelationPrep::build_in(pool, left, &ln));
            return (prep.clone(), prep);
        }
        let lp = Arc::new(RelationPrep::build_in(pool, left, &ln));
        let rp = Arc::new(RelationPrep::build_in(pool, right, &rn));
        (lp, rp)
    }

    /// A pair evaluator over prepared relations. Create one per worker:
    /// it accumulates [`FilterStats`] and drives the compiled kernels,
    /// whose DP scratch rows are reused per thread.
    pub fn evaluator<'m>(
        &'m self,
        left: &'m Relation,
        right: &'m Relation,
        left_prep: &'m RelationPrep,
        right_prep: &'m RelationPrep,
    ) -> PairEval<'m> {
        PairEval {
            matcher: self,
            left,
            right,
            left_prep,
            right_prep,
            stats: FilterStats::default(),
        }
    }
}

/// The compiled pair evaluator: [`KeyMatcher`] semantics (`matches`,
/// `matching_key`, `vetoed`) over per-relation signature caches, with
/// enum-kernel dispatch, the filter pipeline and per-worker DP scratch.
/// Decisions are identical to the uncached [`KeyMatcher`] methods.
pub struct PairEval<'m> {
    matcher: &'m KeyMatcher<'m>,
    left: &'m Relation,
    right: &'m Relation,
    left_prep: &'m RelationPrep,
    right_prep: &'m RelationPrep,
    stats: FilterStats,
}

impl PairEval<'_> {
    /// [`KeyMatcher::matching_key`] for the tuples at positions
    /// `(l, r)`.
    pub fn matching_key(&mut self, l: usize, r: usize) -> Option<usize> {
        let (t1, t2) = (&self.left.tuples()[l], &self.right.tuples()[r]);
        let m = self.matcher;
        m.keys.iter().position(|key| {
            m.ops.lhs_matches_prepped(
                key.atoms(),
                t1,
                t2,
                self.left_prep,
                self.right_prep,
                l,
                r,
                &mut self.stats,
            )
        })
    }

    /// [`KeyMatcher::vetoed`] for the tuples at positions `(l, r)`.
    pub fn vetoed(&mut self, l: usize, r: usize) -> bool {
        let (t1, t2) = (&self.left.tuples()[l], &self.right.tuples()[r]);
        let m = self.matcher;
        m.negatives.iter().any(|rule| {
            rule.vetoes(|atom| {
                m.ops.atom_matches_prepped(
                    atom,
                    t1,
                    t2,
                    self.left_prep,
                    self.right_prep,
                    l,
                    r,
                    &mut self.stats,
                )
            })
        })
    }

    /// [`KeyMatcher::matches`] for the tuples at positions `(l, r)`.
    pub fn matches(&mut self, l: usize, r: usize) -> bool {
        self.matching_key(l, r).is_some() && !self.vetoed(l, r)
    }

    /// The filter-effectiveness counters accumulated so far.
    pub fn stats(&self) -> FilterStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::negation::NegativeRule;
    use matchrules_core::paper::{example_1_1, example_2_4_rcks};
    use matchrules_data::eval::paper_registry;
    use matchrules_data::fig1;

    #[test]
    fn union_of_rcks_matches_all_fig1_duplicates() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        assert_eq!(matcher.key_count(), 4);
        assert!(!matcher.is_empty());
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        let t2 = inst.left().by_id(fig1::ids::T2).unwrap();
        for bt in inst.right().tuples() {
            assert!(matcher.matches(t1, bt), "t1 must match billing #{}", bt.id());
            assert!(!matcher.matches(t2, bt), "t2 must match nothing");
        }
    }

    #[test]
    fn matching_key_reports_first_hit() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        let t6 = inst.right().by_id(fig1::ids::T6).unwrap();
        // t6 is matched by rck4 (index 3) — and by rck2 (index 1) first:
        // LN "Clivord" vs "Clifford" is not equal, so rck2 fails; rck4 hits.
        assert_eq!(matcher.matching_key(t1, t6), Some(3));
        let t3 = inst.right().by_id(fig1::ids::T3).unwrap();
        assert_eq!(matcher.matching_key(t1, t3), Some(0));
    }

    #[test]
    fn negative_rules_veto() {
        let setting = example_1_1();
        let inst = fig1::instance(&setting);
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        // Veto: same email but different c# — nonsense rule, crafted so it
        // vetoes t1/t5 and t1/t6 (same email, c# 111 == 111 → no veto)…
        // use gender instead: same email, different gender. Billing genders
        // are null → "differ" holds (null matches nothing).
        let email_l = setting.pair.left().attr("email").unwrap();
        let email_r = setting.pair.right().attr("email").unwrap();
        let g_l = setting.pair.left().attr("gender").unwrap();
        let g_r = setting.pair.right().attr("gender").unwrap();
        let negatives = vec![NegativeRule::same_but_different(
            &setting.pair,
            "email-gender",
            (email_l, email_r),
            (g_l, g_r),
        )
        .unwrap()];
        let matcher = KeyMatcher::new(rcks.iter(), &ops).with_negatives(&negatives);
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        let t5 = inst.right().by_id(fig1::ids::T5).unwrap();
        let t4 = inst.right().by_id(fig1::ids::T4).unwrap();
        // t5 shares t1's email and has a null gender → vetoed.
        assert!(!matcher.matches(t1, t5));
        // t4's email is corrupted ("mc"), so the veto's email guard fails.
        assert!(matcher.matches(t1, t4));
    }

    #[test]
    fn prepared_evaluator_agrees_with_dyn_path() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        // Include a negative rule so the veto path is exercised too.
        let email_l = setting.pair.left().attr("email").unwrap();
        let email_r = setting.pair.right().attr("email").unwrap();
        let g_l = setting.pair.left().attr("gender").unwrap();
        let g_r = setting.pair.right().attr("gender").unwrap();
        let negatives = vec![NegativeRule::same_but_different(
            &setting.pair,
            "email-gender",
            (email_l, email_r),
            (g_l, g_r),
        )
        .unwrap()];
        let matcher = KeyMatcher::new(rcks.iter(), &ops).with_negatives(&negatives);
        let (left, right) = (inst.left(), inst.right());
        let pool = matchrules_runtime::WorkPool::serial();
        let (lp, rp) = matcher.prepare_in(&pool, left, right);
        let mut ev = matcher.evaluator(left, right, &lp, &rp);
        for l in 0..left.len() {
            for r in 0..right.len() {
                let (t1, t2) = (&left.tuples()[l], &right.tuples()[r]);
                assert_eq!(ev.matching_key(l, r), matcher.matching_key(t1, t2), "({l},{r})");
                assert_eq!(ev.vetoed(l, r), matcher.vetoed(t1, t2), "({l},{r})");
                assert_eq!(ev.matches(l, r), matcher.matches(t1, t2), "({l},{r})");
            }
        }
        assert!(ev.stats().evaluations() > 0, "edit kernels ran through the cache");
    }

    #[test]
    fn sig_needs_cover_edit_atoms_only() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let (ln, rn) =
            matcher.sig_needs(inst.left().schema().arity(), inst.right().schema().arity());
        // The worked example compares LN and address under ≈d; equality
        // atoms (email, phone…) need no signature.
        assert!(!ln.is_empty());
        assert!(!rn.is_empty());
        assert!(ln.len() < inst.left().schema().arity());
    }

    #[test]
    fn dedup_preparation_shares_one_prep() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        let pool = matchrules_runtime::WorkPool::serial();
        let left = inst.left();
        let (lp, rp) = matcher.prepare_in(&pool, left, left);
        assert!(Arc::ptr_eq(&lp, &rp), "same relation on both sides shares the cache");
    }

    #[test]
    fn empty_matcher_matches_nothing() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let matcher = KeyMatcher::new(std::iter::empty(), &ops);
        assert!(matcher.is_empty());
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        let t3 = inst.right().by_id(fig1::ids::T3).unwrap();
        assert!(!matcher.matches(t1, t3));
        assert_eq!(matcher.matching_key(t1, t3), None);
    }
}
