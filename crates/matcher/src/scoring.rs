//! Calibrated scoring and one-to-one resolution on top of boolean matching.
//!
//! The MD rules stay the *sound candidate generator* — the paper's
//! semantics remain the recall floor — and this module ranks within the
//! candidate set:
//!
//! * [`ScoreModel`] — per-atom graded agreement features
//!   ([`RuntimeOps::atom_feature`]) weighted by Fellegi–Sunter `m`/`u`
//!   parameters fit by the existing EM on a sample of the relation,
//!   producing a calibrated match confidence in `[0, 1]`. Degenerate
//!   samples fall back to a clamped prior model, so a score is always
//!   defined and never NaN.
//! * [`resolve_one_to_one`] — a bipartite assignment resolver turning
//!   scored candidate links into a one-to-one matching (each record in at
//!   most one link) instead of greedy union-find closure: greedy
//!   threshold-gated assignment with an exact Hungarian-style fallback for
//!   small conflict components (cf. Sadinle's bipartite-matching prior for
//!   record linkage).

use crate::em::{self, EmConfig, EmModel};
use crate::fellegi_sunter::FsError;
use matchrules_core::dependency::SimilarityAtom;
use matchrules_data::eval::RuntimeOps;
use matchrules_data::relation::{Relation, Tuple};
use std::collections::HashMap;

/// Configuration for fitting a [`ScoreModel`].
#[derive(Debug, Clone)]
pub struct ScoreConfig {
    /// Sample cap for EM fitting (paper: ≤ 30k).
    pub em_sample: usize,
    /// EM settings (the initial parameters double as the prior fallback).
    pub em: EmConfig,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig { em_sample: 30_000, em: EmConfig::default() }
    }
}

/// A calibrated pair-scoring model over a fixed atom comparison vector.
///
/// Scoring is a pure function of (model, tuple pair): no interior state,
/// no randomness, no thread- or shard-dependence — which is what makes
/// ranked serving byte-identical across execution layouts.
#[derive(Debug, Clone)]
pub struct ScoreModel {
    atoms: Vec<SimilarityAtom>,
    model: EmModel,
    fitted: bool,
}

impl ScoreModel {
    /// Fits the model on candidate pairs: boolean comparison vectors for a
    /// deterministic sample of the candidates, then EM.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] when `atoms` or `candidates` is empty (the EM
    /// itself cannot fail on a non-empty rectangular sample).
    pub fn fit(
        atoms: Vec<SimilarityAtom>,
        left: &Relation,
        right: &Relation,
        candidates: &[(usize, usize)],
        ops: &RuntimeOps,
        cfg: &ScoreConfig,
    ) -> Result<Self, FsError> {
        if atoms.is_empty() {
            return Err(FsError::EmptyFields);
        }
        if candidates.is_empty() {
            return Err(FsError::NoCandidates);
        }
        let step = (candidates.len() / cfg.em_sample.max(1)).max(1);
        let sample: Vec<Vec<bool>> = candidates
            .iter()
            .step_by(step)
            .take(cfg.em_sample)
            .map(|&(l, r)| {
                let (t1, t2) = (&left.tuples()[l], &right.tuples()[r]);
                atoms.iter().map(|a| ops.atom_matches(a, t1, t2)).collect()
            })
            .collect();
        let model = em::fit(&sample, &cfg.em)?;
        Ok(ScoreModel { atoms, model, fitted: true })
    }

    /// An unfit model built from the clamped EM priors: defined for any
    /// atom vector, finite everywhere, monotone in the number (and
    /// strength) of agreeing atoms. The fallback when no sample exists.
    pub fn prior(atoms: Vec<SimilarityAtom>, cfg: &EmConfig) -> Self {
        let model = EmModel::prior(atoms.len(), cfg);
        ScoreModel { atoms, model, fitted: false }
    }

    /// Fits when possible, otherwise falls back to the prior — the
    /// total version of [`ScoreModel::fit`] used at plan-compile time.
    pub fn fit_or_prior(
        atoms: Vec<SimilarityAtom>,
        left: &Relation,
        right: &Relation,
        candidates: &[(usize, usize)],
        ops: &RuntimeOps,
        cfg: &ScoreConfig,
    ) -> Self {
        match Self::fit(atoms.clone(), left, right, candidates, ops, cfg) {
            Ok(model) => model,
            Err(_) => Self::prior(atoms, &cfg.em),
        }
    }

    /// Calibrated match confidence of a tuple pair in `[0, 1]`: graded
    /// agreement per atom (warm path — filter rejections score 0 without
    /// an exact distance), folded through the Fellegi–Sunter posterior.
    /// Never NaN; pure in (self, pair).
    pub fn score(&self, ops: &RuntimeOps, t1: &Tuple, t2: &Tuple) -> f64 {
        let gamma: Vec<f64> =
            self.atoms.iter().map(|a| ops.atom_feature(a, t1, t2).strength).collect();
        self.model.posterior_soft(&gamma)
    }

    /// The atom comparison vector.
    pub fn atoms(&self) -> &[SimilarityAtom] {
        &self.atoms
    }

    /// The underlying Fellegi–Sunter parameters.
    pub fn em(&self) -> &EmModel {
        &self.model
    }

    /// Whether EM actually ran (false: prior fallback).
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

/// One scored candidate link between a left record and a right record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEdge {
    /// Left-side record (position or id — opaque to the resolver).
    pub left: usize,
    /// Right-side record.
    pub right: usize,
    /// Link score; NaN edges are discarded.
    pub score: f64,
}

/// Largest conflict component solved exactly: at most this many distinct
/// endpoints (the DP is `O(edges · 2^nodes)`) …
const EXACT_MAX_NODES: usize = 12;
/// … and at most this many edges.
const EXACT_MAX_EDGES: usize = 64;

/// Resolves scored candidate links between **two distinct relations**
/// into a one-to-one matching: every left and every right endpoint
/// appears in at most one selected edge. Returns the indices of the
/// selected edges, ascending.
///
/// Edges below `min_score` (or with NaN scores) are dropped first. The
/// survivors split into conflict components (edges sharing an endpoint);
/// small components are solved *exactly* (max-weight matching by bitmask
/// DP over the component's endpoints), large ones greedily by descending
/// score with `(left, right)` tie-breaks. Deterministic for a fixed
/// input order.
pub fn resolve_one_to_one(edges: &[ScoredEdge], min_score: f64) -> Vec<usize> {
    // Left and right ids live in disjoint node spaces.
    resolve(edges, min_score, |e| ((0, e.left), (1, e.right)))
}

/// [`resolve_one_to_one`] for links **within one relation** (dedup):
/// `left`/`right` are positions in the same id space, so a record linked
/// as the left of one edge and the right of another still counts as one
/// node — the result is a matching in the general-graph sense (each
/// record in at most one link).
pub fn resolve_one_to_one_shared(edges: &[ScoredEdge], min_score: f64) -> Vec<usize> {
    resolve(edges, min_score, |e| ((0, e.left), (0, e.right)))
}

type Node = (u8, usize);

fn resolve(
    edges: &[ScoredEdge],
    min_score: f64,
    endpoints: impl Fn(&ScoredEdge) -> (Node, Node),
) -> Vec<usize> {
    let eligible: Vec<usize> = (0..edges.len())
        .filter(|&i| !edges[i].score.is_nan() && edges[i].score >= min_score)
        .collect();

    // Union-find over endpoint nodes.
    let mut node_of: HashMap<Node, usize> = HashMap::new();
    let mut parent: Vec<usize> = Vec::new();
    fn root(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn intern(node_of: &mut HashMap<Node, usize>, parent: &mut Vec<usize>, key: Node) -> usize {
        *node_of.entry(key).or_insert_with(|| {
            parent.push(parent.len());
            parent.len() - 1
        })
    }
    for &i in &eligible {
        let (a, b) = endpoints(&edges[i]);
        let l = intern(&mut node_of, &mut parent, a);
        let r = intern(&mut node_of, &mut parent, b);
        let (rl, rr) = (root(&mut parent, l), root(&mut parent, r));
        if rl != rr {
            parent[rl.max(rr)] = rl.min(rr);
        }
    }

    // Group eligible edges into components, in first-seen order.
    let mut comp_pos: HashMap<usize, usize> = HashMap::new();
    let mut components: Vec<Vec<usize>> = Vec::new();
    for &i in &eligible {
        let (a, _) = endpoints(&edges[i]);
        let c = root(&mut parent, node_of[&a]);
        let pos = *comp_pos.entry(c).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[pos].push(i);
    }

    let mut selected = Vec::new();
    for comp in &components {
        let mut nodes: Vec<usize> = comp
            .iter()
            .flat_map(|&i| {
                let (a, b) = endpoints(&edges[i]);
                [node_of[&a], node_of[&b]]
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        if nodes.len() <= EXACT_MAX_NODES && comp.len() <= EXACT_MAX_EDGES {
            selected.extend(exact_component(edges, comp, &nodes, &node_of, &endpoints));
        } else {
            selected.extend(greedy_component(edges, comp, &endpoints));
        }
    }
    selected.sort_unstable();
    selected
}

/// Exact max-weight matching of one conflict component via bitmask DP
/// over its (few) endpoint nodes — works on general graphs, so it also
/// covers reflexive (dedup) edge sets.
fn exact_component(
    edges: &[ScoredEdge],
    comp: &[usize],
    nodes: &[usize],
    node_of: &HashMap<Node, usize>,
    endpoints: &impl Fn(&ScoredEdge) -> (Node, Node),
) -> Vec<usize> {
    // (bit of endpoint a, bit of endpoint b, weight, edge index)
    let items: Vec<(usize, usize, f64, usize)> = comp
        .iter()
        .map(|&i| {
            let (a, b) = endpoints(&edges[i]);
            let pa = nodes.binary_search(&node_of[&a]).expect("node present");
            let pb = nodes.binary_search(&node_of[&b]).expect("node present");
            (pa, pb, edges[i].score, i)
        })
        .collect();

    let masks = 1usize << nodes.len();
    let m = items.len();
    // dp[k][mask]: best weight using items[k..] with `mask` nodes used.
    let mut dp = vec![vec![0.0f64; masks]; m + 1];
    let mut take = vec![vec![false; masks]; m];
    for k in (0..m).rev() {
        let (pa, pb, w, _) = items[k];
        let bits = (1usize << pa) | (1usize << pb);
        for mask in 0..masks {
            // Skip-first: ties favor the sparser matching.
            let mut best = dp[k + 1][mask];
            let mut chosen = false;
            if mask & bits == 0 && pa != pb {
                let total = w + dp[k + 1][mask | bits];
                if total > best {
                    best = total;
                    chosen = true;
                }
            }
            dp[k][mask] = best;
            take[k][mask] = chosen;
        }
    }

    let mut out = Vec::new();
    let mut mask = 0usize;
    for (k, &(pa, pb, _, idx)) in items.iter().enumerate() {
        if take[k][mask] {
            out.push(idx);
            mask |= (1 << pa) | (1 << pb);
        }
    }
    out
}

/// Greedy assignment of one (large) conflict component: descending score,
/// `(left, right, index)` tie-breaks, both endpoints must be unused.
fn greedy_component(
    edges: &[ScoredEdge],
    comp: &[usize],
    endpoints: &impl Fn(&ScoredEdge) -> (Node, Node),
) -> Vec<usize> {
    let mut order = comp.to_vec();
    order.sort_by(|&a, &b| {
        edges[b]
            .score
            .total_cmp(&edges[a].score)
            .then(edges[a].left.cmp(&edges[b].left))
            .then(edges[a].right.cmp(&edges[b].right))
            .then(a.cmp(&b))
    });
    let mut used = std::collections::HashSet::new();
    let mut out = Vec::new();
    for i in order {
        let (a, b) = endpoints(&edges[i]);
        if a != b && !used.contains(&a) && !used.contains(&b) {
            used.insert(a);
            used.insert(b);
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::cost::CostModel;
    use matchrules_core::paper;
    use matchrules_core::rck::find_rcks;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};
    use matchrules_data::eval::paper_registry;

    fn edge(left: usize, right: usize, score: f64) -> ScoredEdge {
        ScoredEdge { left, right, score }
    }

    fn assert_one_to_one(edges: &[ScoredEdge], selected: &[usize]) {
        let mut lefts = std::collections::HashSet::new();
        let mut rights = std::collections::HashSet::new();
        for &i in selected {
            assert!(lefts.insert(edges[i].left), "left {} assigned twice", edges[i].left);
            assert!(rights.insert(edges[i].right), "right {} assigned twice", edges[i].right);
        }
    }

    #[test]
    fn exact_fallback_beats_greedy_on_conflict_triangle() {
        // Greedy takes (0,0)@0.6 and strands both others; the exact DP
        // pairs (0,1) with (1,0) for a total of 1.0.
        let edges = [edge(0, 0, 0.6), edge(0, 1, 0.5), edge(1, 0, 0.5)];
        let selected = resolve_one_to_one(&edges, 0.0);
        assert_eq!(selected, vec![1, 2]);
        assert_one_to_one(&edges, &selected);
    }

    #[test]
    fn threshold_gates_edges() {
        let edges = [edge(0, 0, 0.9), edge(1, 1, 0.3), edge(2, 2, f64::NAN)];
        assert_eq!(resolve_one_to_one(&edges, 0.5), vec![0]);
        assert_eq!(resolve_one_to_one(&edges, 0.0), vec![0, 1], "NaN always drops");
    }

    #[test]
    fn large_components_fall_back_to_greedy_and_stay_valid() {
        // A star wider than EXACT_MAX_RIGHTS: one left contested by many
        // rights plus a chain forcing a single component.
        let mut edges = Vec::new();
        for r in 0..20 {
            edges.push(edge(0, r, 0.5 + r as f64 * 0.01));
        }
        for l in 1..20 {
            edges.push(edge(l, l - 1, 0.4));
        }
        let selected = resolve_one_to_one(&edges, 0.0);
        assert_one_to_one(&edges, &selected);
        // The contested left keeps its best right (19, score 0.69).
        assert!(selected.contains(&19));
    }

    #[test]
    fn duplicate_edges_and_disjoint_components() {
        let edges = [edge(0, 0, 0.5), edge(0, 0, 0.9), edge(7, 7, 0.8)];
        let selected = resolve_one_to_one(&edges, 0.0);
        assert_one_to_one(&edges, &selected);
        assert!(selected.contains(&1), "keeps the better duplicate");
        assert!(selected.contains(&2));
        assert_eq!(selected.len(), 2);
    }

    #[test]
    fn shared_space_counts_both_sides_as_one_node() {
        // Record 1 appears as right of edge 0 and left of edge 1. In the
        // bipartite view both edges could be kept; in the shared (dedup)
        // view they conflict and only the better one survives.
        let edges = [edge(0, 1, 0.9), edge(1, 2, 0.8)];
        assert_eq!(resolve_one_to_one(&edges, 0.0), vec![0, 1]);
        let shared = resolve_one_to_one_shared(&edges, 0.0);
        assert_eq!(shared, vec![0]);
        // Self-loops can never be part of a matching.
        assert!(resolve_one_to_one_shared(&[edge(3, 3, 0.9)], 0.0).is_empty());
        // A path 0-1-2-3: exact matching keeps the outer pair over the
        // greedy middle edge.
        let path = [edge(1, 2, 0.6), edge(0, 1, 0.5), edge(2, 3, 0.5)];
        assert_eq!(resolve_one_to_one_shared(&path, 0.0), vec![1, 2]);
    }

    #[test]
    fn empty_input_is_empty_matching() {
        assert!(resolve_one_to_one(&[], 0.0).is_empty());
    }

    #[test]
    fn prior_model_scores_are_monotone_and_bounded() {
        let setting = paper::extended();
        let mut cost = CostModel::uniform();
        let keys = find_rcks(&setting.sigma, &setting.target, 5, &mut cost).keys;
        let atoms = crate::fellegi_sunter::rck_comparison_vector(&keys);
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let model = ScoreModel::prior(atoms, &EmConfig::default());
        assert!(!model.is_fitted());

        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            50,
            &NoiseConfig { seed: 3, ..Default::default() },
        );
        for t1 in data.credit.tuples().iter().take(10) {
            for t2 in data.billing.tuples().iter().take(10) {
                let s = model.score(&ops, t1, t2);
                assert!(s.is_finite() && (0.0..=1.0).contains(&s), "score {s}");
            }
        }
        // A true pair (shared entity) dominates the least-similar stranger.
        let (c, b) = first_true_pair(&data).expect("generator yields true pairs");
        let t = &data.credit.tuples()[c];
        let far = data
            .billing
            .tuples()
            .iter()
            .enumerate()
            .filter(|&(i, _)| !data.truth.is_match(c, i))
            .map(|(_, u)| model.score(&ops, t, u))
            .fold(f64::INFINITY, f64::min);
        assert!(model.score(&ops, t, &data.billing.tuples()[b]) > far);
    }

    fn first_true_pair(data: &matchrules_data::dirty::DirtyData) -> Option<(usize, usize)> {
        (0..data.credit.len()).find_map(|c| {
            (0..data.billing.len()).find(|&b| data.truth.is_match(c, b)).map(|b| (c, b))
        })
    }

    #[test]
    fn fitted_model_separates_duplicates_from_strangers() {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            200,
            &NoiseConfig { seed: 9, ..Default::default() },
        );
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let mut cost = CostModel::uniform();
        let keys = find_rcks(&setting.sigma, &setting.target, 5, &mut cost).keys;
        let atoms = crate::fellegi_sunter::rck_comparison_vector(&keys);
        // Fit on the truth's pairs plus shifted non-pairs.
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        let n = data.credit.len().min(data.billing.len());
        for i in 0..n {
            candidates.push((i, i));
            candidates.push((i, (i + 7) % n));
        }
        let model = ScoreModel::fit(
            atoms.clone(),
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &ScoreConfig::default(),
        )
        .unwrap();
        assert!(model.is_fitted());
        assert_eq!(model.atoms().len(), atoms.len());
        // True pairs outscore strangers on average under the fitted model.
        let mut true_sum = (0.0, 0usize);
        let mut false_sum = (0.0, 0usize);
        for c in 0..n.min(60) {
            for b in 0..n.min(60) {
                let s = model.score(&ops, &data.credit.tuples()[c], &data.billing.tuples()[b]);
                assert!(s.is_finite() && (0.0..=1.0).contains(&s), "score {s}");
                if data.truth.is_match(c, b) {
                    true_sum = (true_sum.0 + s, true_sum.1 + 1);
                } else {
                    false_sum = (false_sum.0 + s, false_sum.1 + 1);
                }
            }
        }
        assert!(true_sum.1 > 0 && false_sum.1 > 0);
        let (true_mean, false_mean) =
            (true_sum.0 / true_sum.1 as f64, false_sum.0 / false_sum.1 as f64);
        assert!(true_mean > false_mean, "true {true_mean} vs false {false_mean}");

        // Degenerate fit inputs are typed errors, not NaN factories.
        assert_eq!(
            ScoreModel::fit(
                vec![],
                &data.credit,
                &data.billing,
                &candidates,
                &ops,
                &Default::default()
            )
            .unwrap_err(),
            FsError::EmptyFields
        );
        assert_eq!(
            ScoreModel::fit(
                atoms.clone(),
                &data.credit,
                &data.billing,
                &[],
                &ops,
                &Default::default()
            )
            .unwrap_err(),
            FsError::NoCandidates
        );
        // fit_or_prior is total.
        let fallback = ScoreModel::fit_or_prior(
            atoms,
            &data.credit,
            &data.billing,
            &[],
            &ops,
            &Default::default(),
        );
        assert!(!fallback.is_fitted());
    }
}
