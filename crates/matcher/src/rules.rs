//! Hand-written equational-theory rules — the SN baseline of §6.2 Exp-3.
//!
//! The paper runs Sorted Neighborhood with "the 25 rules used in \[20\]"
//! (Hernández & Stolfo's merge/purge). Those rules are described in prose,
//! not published as a machine-readable artifact, so this module provides a
//! faithful stand-in: 25 expert-plausible person-matching rules over the
//! extended credit/billing schemas, centred (like \[20\]) on names and
//! addresses, with a spread of strictness. Being hand-written, the set
//! both *misses* the phone/e-mail combinations that MD deduction discovers
//! and *includes* looser rules that cost precision — the Fig. 10 contrast.

use matchrules_core::dependency::SimilarityAtom;
use matchrules_core::operators::OperatorId;
use matchrules_core::relative_key::RelativeKey;
use matchrules_core::schema::SchemaPair;

/// Builds the 25-rule baseline over the extended schemas.
///
/// `pair` must be the extended `(credit, billing)` preset pair and `dl` the
/// interned `≈d` operator; the rule texts are inherently tied to the
/// paper's attribute names (they are the *hand-written* baseline).
///
/// Rules never mention `c#` or `SSN`: in the fraud-detection task the card
/// number is the join condition under test, not evidence of identity.
pub fn hernandez_stolfo_25(pair: &SchemaPair, dl: OperatorId) -> Vec<RelativeKey> {
    let l = |n: &str| pair.left().attr(n).expect("extended schema attribute");
    let r = |n: &str| pair.right().attr(n).expect("extended schema attribute");
    let eq = |a: &str, b: &str| SimilarityAtom::eq(l(a), r(b));
    let sim = |a: &str, b: &str| SimilarityAtom::new(l(a), r(b), dl);

    let rules: Vec<Vec<SimilarityAtom>> = vec![
        // --- tight name + full address rules ---
        vec![eq("FN", "FN"), eq("LN", "LN"), eq("street", "street"), eq("city", "city")],
        vec![sim("FN", "FN"), eq("LN", "LN"), eq("street", "street"), eq("zip", "zip")],
        vec![eq("FN", "FN"), sim("LN", "LN"), eq("street", "street"), eq("city", "city")],
        vec![sim("FN", "FN"), sim("LN", "LN"), eq("street", "street"), eq("zip", "zip")],
        vec![eq("FN", "FN"), eq("LN", "LN"), sim("street", "street"), eq("zip", "zip")],
        // --- name + partial address ---
        vec![eq("FN", "FN"), eq("LN", "LN"), eq("zip", "zip")],
        vec![sim("FN", "FN"), eq("LN", "LN"), eq("city", "city"), eq("state", "state")],
        vec![eq("FN", "FN"), sim("LN", "LN"), eq("zip", "zip")],
        vec![eq("MN", "MN"), eq("LN", "LN"), eq("street", "street")],
        vec![sim("FN", "FN"), sim("LN", "LN"), eq("city", "city"), eq("county", "county")],
        // --- address-dominant rules (households) ---
        vec![eq("LN", "LN"), eq("street", "street"), eq("city", "city")],
        vec![sim("LN", "LN"), eq("street", "street"), eq("zip", "zip")],
        vec![eq("LN", "LN"), sim("street", "street"), eq("city", "city"), eq("state", "state")],
        // --- phone-assisted (the expert set uses the phone sparingly) ---
        vec![eq("FN", "FN"), eq("LN", "LN"), eq("tel", "phn")],
        vec![sim("FN", "FN"), eq("LN", "LN"), eq("tel", "phn")],
        // --- e-mail-assisted ---
        vec![eq("email", "email"), eq("LN", "LN")],
        vec![eq("email", "email"), sim("FN", "FN")],
        // --- looser rules that a pragmatic expert adds for recall ---
        vec![eq("FN", "FN"), eq("LN", "LN"), eq("city", "city")],
        vec![sim("FN", "FN"), sim("LN", "LN"), eq("zip", "zip")],
        vec![eq("LN", "LN"), eq("zip", "zip"), eq("gender", "gender")],
        vec![eq("FN", "FN"), eq("LN", "LN"), eq("state", "state")],
        vec![sim("LN", "LN"), eq("city", "city"), eq("gender", "gender"), eq("state", "state")],
        vec![eq("LN", "LN"), eq("street", "street")],
        vec![eq("FN", "FN"), eq("LN", "LN"), eq("gender", "gender")],
        vec![sim("FN", "FN"), sim("LN", "LN"), eq("county", "county"), eq("gender", "gender")],
    ];
    assert_eq!(rules.len(), 25);
    rules.into_iter().map(RelativeKey::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;
    use std::collections::HashSet;

    #[test]
    fn exactly_25_distinct_rules() {
        let setting = paper::extended();
        let rules = hernandez_stolfo_25(&setting.pair, setting.dl);
        assert_eq!(rules.len(), 25);
        let distinct: HashSet<_> = rules.iter().map(|k| k.atoms().to_vec()).collect();
        assert_eq!(distinct.len(), 25, "rules must be pairwise distinct");
    }

    #[test]
    fn rules_avoid_join_attributes() {
        let setting = paper::extended();
        let cn = setting.pair.left().attr("c#").unwrap();
        let ssn = setting.pair.left().attr("SSN").unwrap();
        for rule in hernandez_stolfo_25(&setting.pair, setting.dl) {
            for atom in rule.atoms() {
                assert_ne!(atom.left, cn, "c# must not appear");
                assert_ne!(atom.left, ssn, "SSN must not appear");
            }
        }
    }

    #[test]
    fn rules_are_well_formed_over_the_schemas() {
        let setting = paper::extended();
        for rule in hernandez_stolfo_25(&setting.pair, setting.dl) {
            assert!(!rule.is_empty());
            assert!(rule.len() <= 4);
            for atom in rule.atoms() {
                assert!(setting.pair.check_comparable(atom.left, atom.right).is_ok());
            }
        }
    }

    #[test]
    fn rule_set_uses_similarity_operators() {
        let setting = paper::extended();
        let rules = hernandez_stolfo_25(&setting.pair, setting.dl);
        let with_sim = rules.iter().filter(|k| k.atoms().iter().any(|a| !a.op.is_eq())).count();
        assert!(with_sim >= 8, "expert rules mix equality and similarity");
    }
}
