//! # matchrules-matcher
//!
//! Record matching methods on top of the `matchrules` reasoning core,
//! reproducing the §6 evaluation of Fan et al., *"Reasoning about Record
//! Matching Rules"* (VLDB 2009):
//!
//! * [`key`] — executable match keys (unions of RCKs, negative-rule vetoes);
//! * [`index`] — RCK-driven inverted indices ([`MatchIndex`]): exact
//!   buckets for equality atoms, q-gram posting lists for edit atoms —
//!   sub-quadratic candidate generation, point-query serving and
//!   incremental insert/remove on top of the same compiled keys;
//! * [`em`] / [`fellegi_sunter`] — the statistical matcher of Exp-2:
//!   Fellegi–Sunter with EM-estimated parameters;
//! * [`rules`] / [`sorted_neighborhood`](mod@sorted_neighborhood) — the rule-based matcher of Exp-3:
//!   merge/purge with an equational rule set (25 hand rules vs deduced
//!   RCKs) and union-find transitive closure;
//! * [`sortkey`] / [`blocking`] / [`windowing`] — the comparison-space
//!   reduction of Exp-4 (Soundex-encoded keys, multi-pass unions);
//! * [`scoring`] — calibrated ranked matching on top of the boolean
//!   candidates: EM-weighted graded agreement features folded into a
//!   `[0, 1]` match confidence ([`ScoreModel`]), plus a bipartite
//!   one-to-one assignment resolver ([`resolve_one_to_one`]);
//! * [`metrics`] — precision/recall/F1 and pairs-completeness /
//!   reduction-ratio accounting;
//! * [`pipeline`] — the shared experiment wiring (data statistics → cost
//!   model → RCKs → keys).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod discovery;
pub mod em;
pub mod fellegi_sunter;
pub mod index;
pub mod key;
pub mod metrics;
pub mod pipeline;
pub mod postings;
pub mod rules;
pub mod scoring;
pub mod sorted_neighborhood;
pub mod sortkey;
pub mod windowing;

pub use fellegi_sunter::{FsConfig, FsError, FsMatcher};
pub use index::{IndexError, IndexStats, MatchIndex, QueryHit, QueryOutcome, SelectivitySnapshot};
pub use key::KeyMatcher;
pub use metrics::{evaluate_pairs, BlockingQuality, MatchQuality};
pub use scoring::{
    resolve_one_to_one, resolve_one_to_one_shared, ScoreConfig, ScoreModel, ScoredEdge,
};
pub use sorted_neighborhood::{sorted_neighborhood, SnConfig, SnOutcome};
pub use sortkey::{Encoding, KeyField, SortKey};
