//! The Fellegi–Sunter statistical matcher (§6.2 Exp-2; \[17, 21\]).
//!
//! Pipeline: candidate pairs (from windowing) → binary comparison vector per
//! pair → EM-fitted model → posterior threshold → matched pairs.
//!
//! Two configurations mirror the experiment:
//! * **FS** — the baseline comparison vector covers the identity lists with
//!   equality tests; EM picks weights/threshold (and effectively which
//!   fields matter) from a sample;
//! * **FSrck** — the comparison vector is the union of the atoms of the top
//!   five RCKs, carrying their similarity operators (`≈d` name comparisons
//!   tolerate typos), which is what lifts precision in Fig. 9.

use crate::em::{self, EmConfig, EmError, EmModel};
use matchrules_core::dependency::SimilarityAtom;
use matchrules_core::relative_key::{RelativeKey, Target};
use matchrules_data::eval::RuntimeOps;
use matchrules_data::relation::Relation;
use std::fmt;

/// Why a Fellegi–Sunter fit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The comparison vector has no fields.
    EmptyFields,
    /// No candidate pairs were supplied to fit on.
    NoCandidates,
    /// The underlying EM fit failed.
    Em(EmError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::EmptyFields => write!(f, "comparison vector cannot be empty"),
            FsError::NoCandidates => write!(f, "need candidate pairs to fit on"),
            FsError::Em(e) => write!(f, "EM fit failed: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Em(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EmError> for FsError {
    fn from(e: EmError) -> Self {
        FsError::Em(e)
    }
}

/// Fellegi–Sunter matcher configuration.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Posterior probability above which a pair is declared a match.
    pub posterior_threshold: f64,
    /// Sample cap for EM fitting (paper: ≤ 30k).
    pub em_sample: usize,
    /// EM settings.
    pub em: EmConfig,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig { posterior_threshold: 0.9, em_sample: 30_000, em: EmConfig::default() }
    }
}

/// A fitted Fellegi–Sunter matcher.
#[derive(Debug)]
pub struct FsMatcher {
    fields: Vec<SimilarityAtom>,
    model: EmModel,
    threshold: f64,
}

/// Builds the baseline comparison vector: every target pair compared with
/// equality (EM weighting then decides what matters).
pub fn equality_comparison_vector(target: &Target) -> Vec<SimilarityAtom> {
    target.y1().iter().zip(target.y2()).map(|(&l, &r)| SimilarityAtom::eq(l, r)).collect()
}

/// Builds the RCK comparison vector: the union of the atoms of `keys`
/// (deduplicated), keeping each atom's similarity operator.
pub fn rck_comparison_vector(keys: &[RelativeKey]) -> Vec<SimilarityAtom> {
    let mut atoms: Vec<SimilarityAtom> = keys.iter().flat_map(|k| k.atoms()).copied().collect();
    atoms.sort_unstable();
    atoms.dedup();
    atoms
}

impl FsMatcher {
    /// Fits the matcher on candidate pairs: computes comparison vectors for
    /// (a sample of) the candidates, runs EM, and stores the decision
    /// threshold.
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] when `fields` or `candidates` is empty, or when
    /// the underlying EM fit rejects its sample.
    pub fn fit(
        fields: Vec<SimilarityAtom>,
        credit: &Relation,
        billing: &Relation,
        candidates: &[(usize, usize)],
        ops: &RuntimeOps,
        cfg: &FsConfig,
    ) -> Result<Self, FsError> {
        if fields.is_empty() {
            return Err(FsError::EmptyFields);
        }
        if candidates.is_empty() {
            return Err(FsError::NoCandidates);
        }
        let step = (candidates.len() / cfg.em_sample.max(1)).max(1);
        let sample: Vec<Vec<bool>> = candidates
            .iter()
            .step_by(step)
            .take(cfg.em_sample)
            .map(|&(c, b)| compare(&fields, &credit.tuples()[c], &billing.tuples()[b], ops))
            .collect();
        let model = em::fit(&sample, &cfg.em)?;
        Ok(FsMatcher { fields, model, threshold: cfg.posterior_threshold })
    }

    /// The fitted model.
    pub fn model(&self) -> &EmModel {
        &self.model
    }

    /// The comparison vector.
    pub fn fields(&self) -> &[SimilarityAtom] {
        &self.fields
    }

    /// Classifies candidate pairs, returning the matches.
    pub fn classify(
        &self,
        credit: &Relation,
        billing: &Relation,
        candidates: &[(usize, usize)],
        ops: &RuntimeOps,
    ) -> Vec<(usize, usize)> {
        candidates
            .iter()
            .copied()
            .filter(|&(c, b)| {
                let gamma = compare(&self.fields, &credit.tuples()[c], &billing.tuples()[b], ops);
                self.model.posterior(&gamma) >= self.threshold
            })
            .collect()
    }

    /// Scores every candidate pair (posterior match probability), for
    /// threshold tuning and precision/recall curves.
    pub fn score(
        &self,
        credit: &Relation,
        billing: &Relation,
        candidates: &[(usize, usize)],
        ops: &RuntimeOps,
    ) -> Vec<((usize, usize), f64)> {
        candidates
            .iter()
            .map(|&(c, b)| {
                let gamma = compare(&self.fields, &credit.tuples()[c], &billing.tuples()[b], ops);
                ((c, b), self.model.posterior(&gamma))
            })
            .collect()
    }
}

/// One point of a precision/recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Posterior threshold producing this point.
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Sweeps classification thresholds over scored candidates against the
/// generator's truth, yielding the precision/recall trade-off curve
/// (Fellegi–Sunter's upper-threshold selection, made explicit).
pub fn precision_recall_curve(
    scored: &[((usize, usize), f64)],
    truth: &matchrules_data::dirty::GroundTruth,
    thresholds: &[f64],
) -> Vec<PrPoint> {
    thresholds
        .iter()
        .map(|&threshold| {
            let pairs: Vec<(usize, usize)> = scored
                .iter()
                .filter(|&&(_, score)| score >= threshold)
                .map(|&(pair, _)| pair)
                .collect();
            let q = crate::metrics::evaluate_pairs(&pairs, truth);
            PrPoint { threshold, precision: q.precision(), recall: q.recall() }
        })
        .collect()
}

/// Computes the binary comparison vector of a tuple pair.
fn compare(
    fields: &[SimilarityAtom],
    t1: &matchrules_data::relation::Tuple,
    t2: &matchrules_data::relation::Tuple,
    ops: &RuntimeOps,
) -> Vec<bool> {
    fields.iter().map(|atom| ops.atom_matches(atom, t1, t2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_pairs;
    use crate::sortkey::{KeyField, SortKey};
    use crate::windowing::window_candidates;
    use matchrules_core::cost::CostModel;
    use matchrules_core::paper;
    use matchrules_core::rck::find_rcks;
    use matchrules_data::dirty::{generate_dirty, DirtyData, NoiseConfig};
    use matchrules_data::eval::paper_registry;

    fn setup(persons: usize, seed: u64) -> (paper::PaperSetting, DirtyData, RuntimeOps) {
        let setting = paper::extended();
        let data = generate_dirty(
            &setting.pair,
            &setting.target,
            persons,
            &NoiseConfig { seed, ..Default::default() },
        );
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        (setting, data, ops)
    }

    fn standard_window(setting: &paper::PaperSetting, data: &DirtyData) -> Vec<(usize, usize)> {
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        let key = SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("FN"), r("FN"), 2),
            KeyField::text(l("zip"), r("zip"), 3),
        ]);
        window_candidates(&data.credit, &data.billing, &key, 10)
    }

    #[test]
    fn comparison_vector_builders() {
        let setting = paper::extended();
        let eq_vec = equality_comparison_vector(&setting.target);
        assert_eq!(eq_vec.len(), 11);
        assert!(eq_vec.iter().all(|a| a.op.is_eq()));

        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&setting.sigma, &setting.target, 5, &mut cost);
        let rck_vec = rck_comparison_vector(&outcome.keys);
        assert!(!rck_vec.is_empty());
        let mut dedup = rck_vec.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), rck_vec.len(), "atoms are deduplicated");
    }

    #[test]
    fn fs_with_rck_vector_beats_equality_vector() {
        let (setting, data, ops) = setup(300, 21);
        let candidates = standard_window(&setting, &data);
        let cfg = FsConfig::default();

        let baseline = FsMatcher::fit(
            equality_comparison_vector(&setting.target),
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &cfg,
        )
        .unwrap();
        let base_pairs = baseline.classify(&data.credit, &data.billing, &candidates, &ops);
        let base_q = evaluate_pairs(&base_pairs, &data.truth);

        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&setting.sigma, &setting.target, 5, &mut cost);
        let rck = FsMatcher::fit(
            rck_comparison_vector(&outcome.keys),
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &cfg,
        )
        .unwrap();
        let rck_pairs = rck.classify(&data.credit, &data.billing, &candidates, &ops);
        let rck_q = evaluate_pairs(&rck_pairs, &data.truth);

        // The Fig. 9 shape: FSrck beats FS overall — the similarity-operator
        // fields of the RCK vector recover the injected noise. (In our
        // synthetic families the gain lands mostly on recall; see
        // EXPERIMENTS.md.)
        assert!(
            rck_q.f1() > base_q.f1() + 0.05,
            "FSrck F1 {} vs FS F1 {}",
            rck_q.f1(),
            base_q.f1()
        );
        assert!(rck_q.recall() > base_q.recall(), "FSrck recall must dominate");
        assert!(
            rck_q.precision() + 0.03 >= base_q.precision(),
            "FSrck precision {} must not trail FS {}",
            rck_q.precision(),
            base_q.precision()
        );
        // And both do real work.
        assert!(rck_q.recall() > 0.8, "recall {}", rck_q.recall());
        assert!(rck_q.precision() > 0.6, "precision {}", rck_q.precision());
    }

    #[test]
    fn threshold_trades_precision_for_recall() {
        let (setting, data, ops) = setup(150, 4);
        let candidates = standard_window(&setting, &data);
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&setting.sigma, &setting.target, 5, &mut cost);
        let fields = rck_comparison_vector(&outcome.keys);

        let strict = FsMatcher::fit(
            fields.clone(),
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &FsConfig { posterior_threshold: 0.99, ..Default::default() },
        )
        .unwrap();
        let lax = FsMatcher::fit(
            fields,
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &FsConfig { posterior_threshold: 0.5, ..Default::default() },
        )
        .unwrap();
        let strict_pairs = strict.classify(&data.credit, &data.billing, &candidates, &ops);
        let lax_pairs = lax.classify(&data.credit, &data.billing, &candidates, &ops);
        assert!(strict_pairs.len() <= lax_pairs.len());
    }

    #[test]
    fn em_sampling_caps_fit_cost() {
        let (setting, data, ops) = setup(120, 8);
        let candidates = standard_window(&setting, &data);
        let cfg = FsConfig { em_sample: 50, ..Default::default() };
        let m = FsMatcher::fit(
            equality_comparison_vector(&setting.target),
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &cfg,
        )
        .unwrap();
        assert_eq!(m.fields().len(), 11);
        assert!(m.model().iterations >= 1);
    }

    #[test]
    fn precision_recall_curve_is_monotone_in_candidates() {
        let (setting, data, ops) = setup(150, 5);
        let candidates = standard_window(&setting, &data);
        let mut cost = CostModel::uniform();
        let keys = find_rcks(&setting.sigma, &setting.target, 5, &mut cost).keys;
        let fs = FsMatcher::fit(
            rck_comparison_vector(&keys),
            &data.credit,
            &data.billing,
            &candidates,
            &ops,
            &FsConfig::default(),
        )
        .unwrap();
        let scored = fs.score(&data.credit, &data.billing, &candidates, &ops);
        assert_eq!(scored.len(), candidates.len());
        assert!(scored.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));

        let curve = precision_recall_curve(&scored, &data.truth, &[0.1, 0.5, 0.9, 0.99]);
        assert_eq!(curve.len(), 4);
        // Recall is non-increasing in the threshold.
        for w in curve.windows(2) {
            assert!(w[0].recall + 1e-12 >= w[1].recall, "{curve:?}");
        }
        // The curve's 0.9 point agrees with classify() at the default
        // threshold.
        let pairs = fs.classify(&data.credit, &data.billing, &candidates, &ops);
        let q = evaluate_pairs(&pairs, &data.truth);
        let p90 = curve.iter().find(|p| (p.threshold - 0.9).abs() < 1e-12).unwrap();
        assert!((q.precision() - p90.precision).abs() < 1e-12);
        assert!((q.recall() - p90.recall).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_typed_errors() {
        let (_, data, ops) = setup(10, 1);
        let no_fields = FsMatcher::fit(
            vec![],
            &data.credit,
            &data.billing,
            &[(0, 0)],
            &ops,
            &FsConfig::default(),
        );
        assert_eq!(no_fields.unwrap_err(), FsError::EmptyFields);

        let setting = paper::extended();
        let no_candidates = FsMatcher::fit(
            equality_comparison_vector(&setting.target),
            &data.credit,
            &data.billing,
            &[],
            &ops,
            &FsConfig::default(),
        );
        assert_eq!(no_candidates.unwrap_err(), FsError::NoCandidates);
    }
}
