//! End-to-end wiring: data statistics → cost model → RCKs → sort/block keys.
//!
//! The benchmark harness and the examples all follow the same recipe; this
//! module keeps it in one place:
//!
//! 1. compute per-pair `lt` statistics from the instances (the cost model's
//!    length term);
//! 2. run `findRCKs` for the top-k keys;
//! 3. derive windowing/blocking keys either from RCK attributes (the
//!    paper's RCK-based configurations) or from the fixed manual choices
//!    (the baselines).

use crate::sortkey::{Encoding, KeyField, SortKey};
use matchrules_core::cost::{CostModel, PairStats};
use matchrules_core::paper::PaperSetting;
use matchrules_core::rck::find_rcks;
use matchrules_core::relative_key::RelativeKey;
use matchrules_core::schema::AttrId;
use matchrules_data::dirty::DirtyData;
use matchrules_data::relation::Relation;

/// Builds the §5 cost model with `lt` statistics measured on the data and
/// the paper's uniform weights (`w1 = w2 = w3 = 1`, `ac ≡ 1`).
///
/// Lengths are scaled into `\[0, 1\]` (divided by the longest average) so the
/// three cost terms stay commensurable.
pub fn cost_model_from_data(
    setting: &PaperSetting,
    credit: &Relation,
    billing: &Relation,
) -> CostModel {
    let mut model = CostModel::uniform();
    let left_lens = credit.avg_lengths();
    let right_lens = billing.avg_lengths();
    let pairs = matchrules_core::rck::pairing(&setting.sigma, &setting.target);
    let max_len = pairs
        .iter()
        .map(|&(l, r)| (left_lens[l] + right_lens[r]) / 2.0)
        .fold(1.0f64, f64::max);
    for (l, r) in pairs {
        let avg = (left_lens[l] + right_lens[r]) / 2.0;
        model.set_stats(l, r, PairStats { avg_len: avg / max_len, accuracy: 1.0 });
    }
    model
}

/// Runs findRCKs with data-driven statistics and returns the top `k` keys.
pub fn top_rcks(setting: &PaperSetting, data: &DirtyData, k: usize) -> Vec<RelativeKey> {
    let mut cost = cost_model_from_data(setting, &data.credit, &data.billing);
    find_rcks(&setting.sigma, &setting.target, k, &mut cost).keys
}

/// Encoding chosen per attribute kind when turning key atoms into sort/block
/// fields: names get Soundex, phones/zips digits, the rest standardized
/// text.
fn field_for(setting: &PaperSetting, left: AttrId, right: AttrId) -> KeyField {
    let name = setting.pair.left().attr_name(left);
    match name {
        "FN" | "MN" | "LN" => KeyField { left, right, encoding: Encoding::Soundex, prefix: 4 },
        // Short prefixes absorb trailing typos — blocking keys must survive
        // the error ladder, not identify tuples.
        "tel" | "zip" => KeyField { left, right, encoding: Encoding::Digits, prefix: 3 },
        _ => KeyField { left, right, encoding: Encoding::Standardized, prefix: 4 },
    }
}

/// The fixed windowing keys used by Exp-2 and Exp-3 ("the same set of
/// windowing keys were used in these experiments to make the evaluation
/// fair"): one name/zip pass and one phone/e-mail pass.
pub fn standard_sort_keys(setting: &PaperSetting) -> Vec<SortKey> {
    let l = |n: &str| setting.pair.left().attr(n).expect("extended schema");
    let r = |n: &str| setting.pair.right().attr(n).expect("extended schema");
    vec![
        SortKey::new(vec![
            KeyField::soundex(l("LN"), r("LN")),
            KeyField::text(l("FN"), r("FN"), 2),
            KeyField::text(l("zip"), r("zip"), 3),
        ]),
        SortKey::new(vec![
            KeyField::digits(l("tel"), r("phn"), 0),
            KeyField::text(l("email"), r("email"), 6),
        ]),
    ]
}

/// Sort keys derived from the top RCKs (Exp-4's RCK-based windowing): the
/// leading atoms of the first two keys become fields.
pub fn rck_sort_keys(setting: &PaperSetting, rcks: &[RelativeKey]) -> Vec<SortKey> {
    rcks.iter()
        .take(2)
        .map(|key| {
            let fields: Vec<KeyField> = key
                .atoms()
                .iter()
                .take(3)
                .map(|a| field_for(setting, a.left, a.right))
                .collect();
            SortKey::new(fields)
        })
        .collect()
}

/// The Exp-4 RCK blocking key: three attributes drawn from the top two
/// RCKs, name component Soundex-encoded.
pub fn rck_block_key(setting: &PaperSetting, rcks: &[RelativeKey]) -> SortKey {
    let mut fields: Vec<KeyField> = Vec::new();
    for key in rcks.iter().take(2) {
        for atom in key.atoms() {
            let f = field_for(setting, atom.left, atom.right);
            if !fields.iter().any(|x| x.left == f.left && x.right == f.right) {
                fields.push(f);
            }
            if fields.len() == 3 {
                return SortKey::new(fields);
            }
        }
    }
    SortKey::new(fields)
}

/// The Exp-4 manual blocking key: "three attributes manually chosen", one
/// being the Soundex-encoded name — a plausible expert choice of name +
/// city + state.
pub fn manual_block_key(setting: &PaperSetting) -> SortKey {
    let l = |n: &str| setting.pair.left().attr(n).expect("extended schema");
    let r = |n: &str| setting.pair.right().attr(n).expect("extended schema");
    SortKey::new(vec![
        KeyField::soundex(l("LN"), r("LN")),
        KeyField::text(l("city"), r("city"), 6),
        KeyField::text(l("state"), r("state"), 2),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};

    #[test]
    fn cost_model_carries_scaled_lengths() {
        let setting = paper::extended();
        let data = generate_dirty(&setting, 60, &NoiseConfig { seed: 2, ..Default::default() });
        let model = cost_model_from_data(&setting, &data.credit, &data.billing);
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        // street values are longer than state values → higher cost.
        let street = model.cost(l("street"), r("street"));
        let state = model.cost(l("state"), r("state"));
        assert!(street > state, "street {street} vs state {state}");
    }

    #[test]
    fn top_rcks_produces_keys() {
        let setting = paper::extended();
        let data = generate_dirty(&setting, 40, &NoiseConfig { seed: 3, ..Default::default() });
        let rcks = top_rcks(&setting, &data, 5);
        assert!(!rcks.is_empty() && rcks.len() <= 5);
    }

    #[test]
    fn derived_keys_are_well_formed() {
        let setting = paper::extended();
        let data = generate_dirty(&setting, 40, &NoiseConfig { seed: 4, ..Default::default() });
        let rcks = top_rcks(&setting, &data, 5);
        let sort_keys = rck_sort_keys(&setting, &rcks);
        assert!(!sort_keys.is_empty());
        let block = rck_block_key(&setting, &rcks);
        assert!(block.fields().len() <= 3 && !block.fields().is_empty());
        let manual = manual_block_key(&setting);
        assert_eq!(manual.fields().len(), 3);
        assert_eq!(standard_sort_keys(&setting).len(), 2);
    }

    #[test]
    fn name_fields_get_soundex_encoding() {
        let setting = paper::extended();
        let l = setting.pair.left().attr("LN").unwrap();
        let r = setting.pair.right().attr("LN").unwrap();
        let f = field_for(&setting, l, r);
        assert_eq!(f.encoding, Encoding::Soundex);
        let lt = setting.pair.left().attr("tel").unwrap();
        let rt = setting.pair.right().attr("phn").unwrap();
        assert_eq!(field_for(&setting, lt, rt).encoding, Encoding::Digits);
    }
}
