//! End-to-end wiring: data statistics → cost model → RCKs → sort/block keys.
//!
//! Every function here is **schema-agnostic**: inputs are the MD set, the
//! target lists and the relations/schema pair under consideration. Encoding
//! choices (Soundex for names, digit extraction for phones and zips) are
//! driven by the schemas' [`AttrKind`] metadata — attribute names never
//! appear. The paper's concrete configurations (its manual baselines and
//! fixed windowing keys) live with the presets in the facade crate.
//!
//! 1. compute per-pair `lt` statistics from the instances (the cost model's
//!    length term);
//! 2. run `findRCKs` for the top-k keys;
//! 3. derive windowing/blocking keys from RCK attributes (the paper's
//!    RCK-based configurations).

use crate::sortkey::{Encoding, KeyField, SortKey};
use matchrules_core::cost::{CostModel, PairStats};
use matchrules_core::dependency::MatchingDependency;
use matchrules_core::rck::find_rcks;
use matchrules_core::relative_key::{RelativeKey, Target};
use matchrules_core::schema::{AttrId, AttrKind, SchemaPair};
use matchrules_data::relation::Relation;

/// Builds the §5 cost model with `lt` statistics measured on the data and
/// the paper's uniform weights (`w1 = w2 = w3 = 1`, `ac ≡ 1`).
///
/// Lengths are scaled into `\[0, 1\]` (divided by the longest average) so the
/// three cost terms stay commensurable.
pub fn cost_model_from_data(
    sigma: &[MatchingDependency],
    target: &Target,
    left: &Relation,
    right: &Relation,
) -> CostModel {
    let mut model = CostModel::uniform();
    apply_length_stats(&mut model, sigma, target, &left.avg_lengths(), &right.avg_lengths());
    model
}

/// Installs scaled `lt` statistics into an existing cost model from
/// per-attribute average lengths (one entry per schema attribute, as
/// produced by [`Relation::avg_lengths`]). Shared by
/// [`cost_model_from_data`] and the engine builder so the normalization
/// cannot diverge between the two paths.
pub fn apply_length_stats(
    model: &mut CostModel,
    sigma: &[MatchingDependency],
    target: &Target,
    left_lens: &[f64],
    right_lens: &[f64],
) {
    let pairs = matchrules_core::rck::pairing(sigma, target);
    let max_len =
        pairs.iter().map(|&(l, r)| (left_lens[l] + right_lens[r]) / 2.0).fold(1.0f64, f64::max);
    for (l, r) in pairs {
        let avg = (left_lens[l] + right_lens[r]) / 2.0;
        model.set_stats(l, r, PairStats { avg_len: avg / max_len, accuracy: 1.0 });
    }
}

/// Runs findRCKs with data-driven statistics and returns the top `k` keys.
pub fn top_rcks(
    sigma: &[MatchingDependency],
    target: &Target,
    left: &Relation,
    right: &Relation,
    k: usize,
) -> Vec<RelativeKey> {
    let mut cost = cost_model_from_data(sigma, target, left, right);
    find_rcks(sigma, target, k, &mut cost).keys
}

/// Encoding chosen per attribute kind when turning key atoms into sort/block
/// fields: names get Soundex, phones/zips digits, the rest standardized
/// text. The kind is read from the *left* schema's metadata (comparable
/// attributes share semantics by construction).
pub fn field_for(pair: &SchemaPair, left: AttrId, right: AttrId) -> KeyField {
    match pair.left().attr_kind(left) {
        AttrKind::GivenName | AttrKind::Surname => {
            KeyField { left, right, encoding: Encoding::Soundex, prefix: 4 }
        }
        // Short prefixes absorb trailing typos — blocking keys must survive
        // the error ladder, not identify tuples.
        AttrKind::Phone | AttrKind::Zip => {
            KeyField { left, right, encoding: Encoding::Digits, prefix: 3 }
        }
        _ => KeyField { left, right, encoding: Encoding::Standardized, prefix: 4 },
    }
}

/// Sort keys derived from the top RCKs (Exp-4's RCK-based windowing): the
/// leading atoms of the first two keys become fields.
pub fn rck_sort_keys(pair: &SchemaPair, rcks: &[RelativeKey]) -> Vec<SortKey> {
    rcks.iter()
        .take(2)
        .map(|key| {
            let fields: Vec<KeyField> =
                key.atoms().iter().take(3).map(|a| field_for(pair, a.left, a.right)).collect();
            SortKey::new(fields)
        })
        .collect()
}

/// The Exp-4 RCK blocking key: three attributes drawn from the top two
/// RCKs, name components Soundex-encoded.
pub fn rck_block_key(pair: &SchemaPair, rcks: &[RelativeKey]) -> SortKey {
    let mut fields: Vec<KeyField> = Vec::new();
    for key in rcks.iter().take(2) {
        for atom in key.atoms() {
            let f = field_for(pair, atom.left, atom.right);
            if !fields.iter().any(|x| x.left == f.left && x.right == f.right) {
                fields.push(f);
            }
            if fields.len() == 3 {
                return SortKey::new(fields);
            }
        }
    }
    SortKey::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::paper;
    use matchrules_data::dirty::{generate_dirty, NoiseConfig};

    #[test]
    fn cost_model_carries_scaled_lengths() {
        let setting = paper::extended();
        let cfg = NoiseConfig { seed: 2, ..Default::default() };
        let data = generate_dirty(&setting.pair, &setting.target, 60, &cfg);
        let model =
            cost_model_from_data(&setting.sigma, &setting.target, &data.credit, &data.billing);
        let l = |n: &str| setting.pair.left().attr(n).unwrap();
        let r = |n: &str| setting.pair.right().attr(n).unwrap();
        // street values are longer than state values → higher cost.
        let street = model.cost(l("street"), r("street"));
        let state = model.cost(l("state"), r("state"));
        assert!(street > state, "street {street} vs state {state}");
    }

    #[test]
    fn top_rcks_produces_keys() {
        let setting = paper::extended();
        let cfg = NoiseConfig { seed: 3, ..Default::default() };
        let data = generate_dirty(&setting.pair, &setting.target, 40, &cfg);
        let rcks = top_rcks(&setting.sigma, &setting.target, &data.credit, &data.billing, 5);
        assert!(!rcks.is_empty() && rcks.len() <= 5);
    }

    #[test]
    fn derived_keys_are_well_formed() {
        let setting = paper::extended();
        let cfg = NoiseConfig { seed: 4, ..Default::default() };
        let data = generate_dirty(&setting.pair, &setting.target, 40, &cfg);
        let rcks = top_rcks(&setting.sigma, &setting.target, &data.credit, &data.billing, 5);
        let sort_keys = rck_sort_keys(&setting.pair, &rcks);
        assert!(!sort_keys.is_empty());
        let block = rck_block_key(&setting.pair, &rcks);
        assert!(block.fields().len() <= 3 && !block.fields().is_empty());
    }

    #[test]
    fn encodings_dispatch_on_kind_not_name() {
        use matchrules_core::schema::{AttrKind, Schema, SchemaPair};
        use std::sync::Arc;
        // A schema with *none* of the paper's attribute names.
        let products = Arc::new(
            Schema::kinded(
                "products",
                &[
                    ("maker_contact", AttrKind::Phone),
                    ("brand_owner", AttrKind::Surname),
                    ("postcode", AttrKind::Zip),
                    ("blurb", AttrKind::FreeText),
                ],
            )
            .unwrap(),
        );
        let pair = SchemaPair::reflexive(products);
        assert_eq!(field_for(&pair, 0, 0).encoding, Encoding::Digits);
        assert_eq!(field_for(&pair, 1, 1).encoding, Encoding::Soundex);
        assert_eq!(field_for(&pair, 2, 2).encoding, Encoding::Digits);
        assert_eq!(field_for(&pair, 3, 3).encoding, Encoding::Standardized);
    }

    #[test]
    fn paper_kinds_reproduce_paper_encodings() {
        let setting = paper::extended();
        let l = setting.pair.left().attr("LN").unwrap();
        let r = setting.pair.right().attr("LN").unwrap();
        assert_eq!(field_for(&setting.pair, l, r).encoding, Encoding::Soundex);
        let lt = setting.pair.left().attr("tel").unwrap();
        let rt = setting.pair.right().attr("phn").unwrap();
        assert_eq!(field_for(&setting.pair, lt, rt).encoding, Encoding::Digits);
    }
}
