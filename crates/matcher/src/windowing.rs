//! Windowing (sorted-neighborhood candidate generation).
//!
//! Tuples of both relations are merged, sorted by a [`SortKey`], and a
//! fixed-size window slides over the sorted list; only tuples within the
//! same window are compared (§1 "Applications", \[20\]). Candidates are the
//! cross-relation pairs inside windows; multiple passes with different keys
//! union their candidates.
//!
//! Every function takes a [`WorkPool`]-parameterized `_in` form; the plain
//! forms run on a serial pool. The parallel decomposition is deterministic
//! end to end — key rendering and the window scan are chunked with results
//! merged in chunk order, the sort uses the total order *(rendered key,
//! merged position)* so ties cannot reorder, and multi-pass unions merge
//! pass results in key order. A parallel run is byte-identical to a serial
//! one.

use crate::sortkey::SortKey;
use matchrules_data::relation::Relation;
use matchrules_runtime::WorkPool;
use std::collections::HashSet;

/// Minimum window-scan chunk: window pair emission is cheap per start
/// index, so small chunks would be all claiming overhead.
const SCAN_MIN_CHUNK: usize = 256;

/// Which relation a merged entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Credit(usize),
    Billing(usize),
}

/// One merged entry: rendered key, merged position (the sort tie-break),
/// origin.
type Entry = (String, u32, Origin);

/// Generates candidate (credit, billing) index pairs with a sliding window
/// of `window` tuples over the union of both relations sorted by `key`.
///
/// # Panics
///
/// Panics when `window < 2` (no pair fits in the window).
pub fn window_candidates(
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
    window: usize,
) -> Vec<(usize, usize)> {
    window_candidates_in(&WorkPool::serial(), credit, billing, key, window)
}

/// [`window_candidates`] on a [`WorkPool`]: parallel key rendering,
/// parallel chunk sort + k-way merge, and a chunked window scan whose
/// per-chunk pair lists are deduplicated in chunk order — the output is
/// identical to the serial run.
pub fn window_candidates_in(
    pool: &WorkPool,
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
    window: usize,
) -> Vec<(usize, usize)> {
    assert!(window >= 2, "window must hold at least two tuples");
    let mut entries = render_entries(pool, credit, billing, key);
    // Total order: ties on the rendered key fall back to the merged
    // position, so no sort algorithm (serial, parallel, stable or not)
    // can reorder equal keys differently.
    pool.par_sort_by(&mut entries, |a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));

    // Window scan, chunked over start-index ranges. Each chunk emits its
    // raw cross-relation pairs in scan order; concatenating chunks in
    // order reproduces the serial scan sequence, so first-seen
    // deduplication gives the serial output.
    let chunks: Vec<Vec<(usize, usize)>> =
        pool.par_ranges(entries.len(), SCAN_MIN_CHUNK, |_, range| {
            let mut out = Vec::new();
            for i in range {
                let a = entries[i].2;
                for entry in entries.iter().skip(i + 1).take(window - 1) {
                    let pair = match (a, entry.2) {
                        (Origin::Credit(c), Origin::Billing(bi))
                        | (Origin::Billing(bi), Origin::Credit(c)) => (c, bi),
                        _ => continue,
                    };
                    out.push(pair);
                }
            }
            out
        });

    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for chunk in chunks {
        for pair in chunk {
            if seen.insert(pair) {
                out.push(pair);
            }
        }
    }
    out
}

/// Renders the merged `(key, position, origin)` entries, both relations
/// chunked over the pool.
fn render_entries(
    pool: &WorkPool,
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
) -> Vec<Entry> {
    let n_credit = credit.len();
    // The sort tie-break stores merged positions as u32 for compactness;
    // beyond that the total order (and determinism) would silently wrap.
    assert!(
        n_credit + billing.len() <= u32::MAX as usize,
        "windowing supports at most u32::MAX merged tuples"
    );
    let mut entries: Vec<Entry> = pool
        .par_map_collect(credit.tuples(), |i, t| (key.render_left(t), i as u32, Origin::Credit(i)));
    entries.extend(pool.par_map_collect(billing.tuples(), |i, t| {
        (key.render_right(t), (n_credit + i) as u32, Origin::Billing(i))
    }));
    entries
}

/// Union of several windowing passes with different sort keys.
pub fn multi_pass_window(
    credit: &Relation,
    billing: &Relation,
    keys: &[SortKey],
    window: usize,
) -> Vec<(usize, usize)> {
    multi_pass_window_in(&WorkPool::serial(), credit, billing, keys, window)
}

/// [`multi_pass_window`] on a [`WorkPool`]: one pass per worker, each
/// pass sorting/scanning with its share of the threads
/// ([`WorkPool::split`]); pass results union in key order, so the output
/// equals the serial multi-pass union.
pub fn multi_pass_window_in(
    pool: &WorkPool,
    credit: &Relation,
    billing: &Relation,
    keys: &[SortKey],
    window: usize,
) -> Vec<(usize, usize)> {
    let inner = pool.split(keys.len());
    let passes: Vec<Vec<(usize, usize)>> = pool
        .par_tasks(keys.len(), |i| window_candidates_in(&inner, credit, billing, &keys[i], window));
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for pass in passes {
        for pair in pass {
            if seen.insert(pair) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sortkey::KeyField;
    use matchrules_core::paper;
    use matchrules_data::fig1;

    fn ln_key(setting: &paper::PaperSetting) -> SortKey {
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let ln_r = setting.pair.right().attr("LN").unwrap();
        SortKey::new(vec![KeyField::text(ln_l, ln_r, 8)])
    }

    #[test]
    fn window_brings_same_names_together() {
        let (setting, inst) = fig1::setting_and_instance();
        let pairs = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 4);
        // t1 (Clifford) must meet t3/t4 (Clifford) in a width-4 window.
        assert!(pairs.contains(&(
            0,
            inst.right().tuples().iter().position(|t| t.id() == fig1::ids::T3).unwrap()
        )));
        // All pairs are cross-relation, within range.
        for (c, b) in &pairs {
            assert!(*c < inst.left().len());
            assert!(*b < inst.right().len());
        }
    }

    #[test]
    fn window_size_bounds_candidates() {
        let (setting, inst) = fig1::setting_and_instance();
        let narrow = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 2);
        let wide = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 6);
        assert!(narrow.len() <= wide.len());
        // Width 6 covers the whole 6-element union: full cross product.
        assert_eq!(wide.len(), inst.left().len() * inst.right().len());
    }

    #[test]
    fn candidates_are_unique() {
        let (setting, inst) = fig1::setting_and_instance();
        let pairs = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 5);
        let set: HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn multi_pass_unions() {
        let (setting, inst) = fig1::setting_and_instance();
        let fn_l = setting.pair.left().attr("FN").unwrap();
        let fn_r = setting.pair.right().attr("FN").unwrap();
        let keys = vec![ln_key(&setting), SortKey::new(vec![KeyField::text(fn_l, fn_r, 8)])];
        let union = multi_pass_window(inst.left(), inst.right(), &keys, 3);
        let single = window_candidates(inst.left(), inst.right(), &keys[0], 3);
        assert!(union.len() >= single.len());
    }

    #[test]
    fn parallel_pools_reproduce_serial_output() {
        let (setting, inst) = fig1::setting_and_instance();
        let fn_l = setting.pair.left().attr("FN").unwrap();
        let fn_r = setting.pair.right().attr("FN").unwrap();
        let keys = vec![ln_key(&setting), SortKey::new(vec![KeyField::text(fn_l, fn_r, 8)])];
        let serial = multi_pass_window(inst.left(), inst.right(), &keys, 3);
        for threads in [2, 4, 8] {
            let pool = WorkPool::with_threads(threads);
            let parallel = multi_pass_window_in(&pool, inst.left(), inst.right(), &keys, 3);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let (setting, inst) = fig1::setting_and_instance();
        let _ = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 1);
    }
}
