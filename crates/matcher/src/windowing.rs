//! Windowing (sorted-neighborhood candidate generation).
//!
//! Tuples of both relations are merged, sorted by a [`SortKey`], and a
//! fixed-size window slides over the sorted list; only tuples within the
//! same window are compared (§1 "Applications", \[20\]). Candidates are the
//! cross-relation pairs inside windows; multiple passes with different keys
//! union their candidates.

use crate::sortkey::SortKey;
use matchrules_data::relation::Relation;
use std::collections::HashSet;

/// Which relation a merged entry came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Origin {
    Credit(usize),
    Billing(usize),
}

/// Generates candidate (credit, billing) index pairs with a sliding window
/// of `window` tuples over the union of both relations sorted by `key`.
///
/// # Panics
///
/// Panics when `window < 2` (no pair fits in the window).
pub fn window_candidates(
    credit: &Relation,
    billing: &Relation,
    key: &SortKey,
    window: usize,
) -> Vec<(usize, usize)> {
    assert!(window >= 2, "window must hold at least two tuples");
    let mut entries: Vec<(String, Origin)> = Vec::with_capacity(credit.len() + billing.len());
    for (i, t) in credit.tuples().iter().enumerate() {
        entries.push((key.render_left(t), Origin::Credit(i)));
    }
    for (i, t) in billing.tuples().iter().enumerate() {
        entries.push((key.render_right(t), Origin::Billing(i)));
    }
    entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));

    let mut out = Vec::new();
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for (i, (_, a)) in entries.iter().enumerate() {
        for (_, b) in entries.iter().skip(i + 1).take(window - 1) {
            let pair = match (a, b) {
                (Origin::Credit(c), Origin::Billing(bi))
                | (Origin::Billing(bi), Origin::Credit(c)) => (*c, *bi),
                _ => continue,
            };
            if seen.insert(pair) {
                out.push(pair);
            }
        }
    }
    out
}

/// Union of several windowing passes with different sort keys.
pub fn multi_pass_window(
    credit: &Relation,
    billing: &Relation,
    keys: &[SortKey],
    window: usize,
) -> Vec<(usize, usize)> {
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut out = Vec::new();
    for key in keys {
        for pair in window_candidates(credit, billing, key, window) {
            if seen.insert(pair) {
                out.push(pair);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sortkey::KeyField;
    use matchrules_core::paper;
    use matchrules_data::fig1;

    fn ln_key(setting: &paper::PaperSetting) -> SortKey {
        let ln_l = setting.pair.left().attr("LN").unwrap();
        let ln_r = setting.pair.right().attr("LN").unwrap();
        SortKey::new(vec![KeyField::text(ln_l, ln_r, 8)])
    }

    #[test]
    fn window_brings_same_names_together() {
        let (setting, inst) = fig1::setting_and_instance();
        let pairs = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 4);
        // t1 (Clifford) must meet t3/t4 (Clifford) in a width-4 window.
        assert!(pairs.contains(&(
            0,
            inst.right().tuples().iter().position(|t| t.id() == fig1::ids::T3).unwrap()
        )));
        // All pairs are cross-relation, within range.
        for (c, b) in &pairs {
            assert!(*c < inst.left().len());
            assert!(*b < inst.right().len());
        }
    }

    #[test]
    fn window_size_bounds_candidates() {
        let (setting, inst) = fig1::setting_and_instance();
        let narrow = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 2);
        let wide = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 6);
        assert!(narrow.len() <= wide.len());
        // Width 6 covers the whole 6-element union: full cross product.
        assert_eq!(wide.len(), inst.left().len() * inst.right().len());
    }

    #[test]
    fn candidates_are_unique() {
        let (setting, inst) = fig1::setting_and_instance();
        let pairs = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 5);
        let set: HashSet<_> = pairs.iter().collect();
        assert_eq!(set.len(), pairs.len());
    }

    #[test]
    fn multi_pass_unions() {
        let (setting, inst) = fig1::setting_and_instance();
        let fn_l = setting.pair.left().attr("FN").unwrap();
        let fn_r = setting.pair.right().attr("FN").unwrap();
        let keys = vec![ln_key(&setting), SortKey::new(vec![KeyField::text(fn_l, fn_r, 8)])];
        let union = multi_pass_window(inst.left(), inst.right(), &keys, 3);
        let single = window_candidates(inst.left(), inst.right(), &keys[0], 3);
        assert!(union.len() >= single.len());
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_rejected() {
        let (setting, inst) = fig1::setting_and_instance();
        let _ = window_candidates(inst.left(), inst.right(), &ln_key(&setting), 1);
    }
}
