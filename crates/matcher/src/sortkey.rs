//! Sort/block key construction.
//!
//! Blocking and windowing both reduce the comparison space by first mapping
//! every tuple to a short key string: blocking groups tuples with *equal*
//! keys, windowing sorts by the key and slides a fixed-size window (§1
//! "Applications", §6 Exp-4). Keys are built from comparable attribute
//! pairs, each with an encoding (e.g. Soundex for names, as in the paper's
//! blocking experiment) and a prefix length.

use matchrules_core::schema::AttrId;
use matchrules_data::relation::Tuple;
use matchrules_simdist::normalize::{digits_only, standardize};
use matchrules_simdist::phonetic::soundex;

/// How a field is rendered into the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Standardized text (lower-case, punctuation stripped).
    Standardized,
    /// Soundex code (names); falls back to the standardized form when the
    /// value has no code.
    Soundex,
    /// Digits only (phone numbers, zips).
    Digits,
}

/// One field of a sort/block key: a comparable attribute pair plus its
/// encoding and prefix length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyField {
    /// Attribute on the credit (left) side.
    pub left: AttrId,
    /// Attribute on the billing (right) side.
    pub right: AttrId,
    /// Encoding applied before concatenation.
    pub encoding: Encoding,
    /// Maximum number of characters contributed (0 = unlimited).
    pub prefix: usize,
}

impl KeyField {
    /// A standardized-text field with a character budget.
    pub fn text(left: AttrId, right: AttrId, prefix: usize) -> Self {
        KeyField { left, right, encoding: Encoding::Standardized, prefix }
    }

    /// A Soundex-encoded field (for names).
    pub fn soundex(left: AttrId, right: AttrId) -> Self {
        KeyField { left, right, encoding: Encoding::Soundex, prefix: 4 }
    }

    /// A digits-only field (phones, zips).
    pub fn digits(left: AttrId, right: AttrId, prefix: usize) -> Self {
        KeyField { left, right, encoding: Encoding::Digits, prefix }
    }
}

/// A composite sort/block key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    fields: Vec<KeyField>,
}

impl SortKey {
    /// Builds a key from fields (at least one).
    ///
    /// # Panics
    ///
    /// Panics when `fields` is empty.
    pub fn new(fields: Vec<KeyField>) -> Self {
        assert!(!fields.is_empty(), "sort keys need at least one field");
        SortKey { fields }
    }

    /// The fields.
    pub fn fields(&self) -> &[KeyField] {
        &self.fields
    }

    /// Renders the key of a credit-side tuple.
    pub fn render_left(&self, t: &Tuple) -> String {
        self.render(t, true)
    }

    /// Renders the key of a billing-side tuple.
    pub fn render_right(&self, t: &Tuple) -> String {
        self.render(t, false)
    }

    fn render(&self, t: &Tuple, left: bool) -> String {
        let mut out = String::with_capacity(16);
        for f in &self.fields {
            let attr = if left { f.left } else { f.right };
            let raw = t.get(attr).as_str().unwrap_or("");
            let encoded = match f.encoding {
                Encoding::Standardized => standardize(raw),
                Encoding::Soundex => soundex(raw).unwrap_or_else(|| standardize(raw)),
                Encoding::Digits => digits_only(raw),
            };
            if f.prefix > 0 {
                out.extend(encoded.chars().take(f.prefix));
            } else {
                out.push_str(&encoded);
            }
            out.push('\u{1}'); // field separator, sorts before any content
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_data::relation::Tuple;
    use matchrules_data::value::Value;

    fn tuple(values: &[&str]) -> Tuple {
        Tuple::new(
            0,
            values.iter().map(|s| if s.is_empty() { Value::Null } else { Value::str(s) }).collect(),
        )
    }

    #[test]
    fn renders_standardized_prefixes() {
        let key = SortKey::new(vec![KeyField::text(0, 1, 4)]);
        let t = tuple(&["Clifford, Mark", "x"]);
        assert_eq!(key.render_left(&t), "clif\u{1}");
        assert_eq!(key.render_right(&t), "x\u{1}");
    }

    #[test]
    fn soundex_encoding_collides_variants() {
        let key = SortKey::new(vec![KeyField::soundex(0, 0)]);
        let a = tuple(&["Clifford"]);
        let b = tuple(&["Clivord"]);
        assert_eq!(key.render_left(&a), key.render_left(&b));
    }

    #[test]
    fn digit_encoding_strips_formatting() {
        let key = SortKey::new(vec![KeyField::digits(0, 0, 6)]);
        let a = tuple(&["908-111-1111"]);
        let b = tuple(&["(908) 111 1111"]);
        assert_eq!(key.render_left(&a), "908111\u{1}");
        assert_eq!(key.render_left(&a), key.render_left(&b));
    }

    #[test]
    fn nulls_render_empty_components() {
        let key = SortKey::new(vec![KeyField::text(0, 0, 4), KeyField::text(1, 1, 4)]);
        let t = tuple(&["", "Smith"]);
        assert_eq!(key.render_left(&t), "\u{1}smit\u{1}");
    }

    #[test]
    fn multi_field_keys_concatenate_in_order() {
        let key = SortKey::new(vec![KeyField::text(1, 1, 3), KeyField::text(0, 0, 2)]);
        let t = tuple(&["Mark", "Clifford"]);
        assert_eq!(key.render_left(&t), "cli\u{1}ma\u{1}");
    }

    #[test]
    #[should_panic(expected = "at least one field")]
    fn empty_keys_rejected() {
        let _ = SortKey::new(vec![]);
    }
}
