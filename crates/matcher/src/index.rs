//! [`MatchIndex`]: RCK-driven inverted indices for sub-quadratic candidate
//! generation and point-query serving.
//!
//! The paper's central argument (§4–5) is that a *small* set of key
//! attribute pairs — the deduced relative candidate keys — suffices to
//! decide matches. That makes RCKs the natural source of **index keys**,
//! not merely sort/block keys: the index builds one inverted index per
//! distinct *indexable atom* appearing in the compiled RCKs (shared when
//! several keys mention the same atom),
//!
//! * **exact buckets** for equality atoms — a hash map from the
//!   attribute's string value to the tuple slots carrying it;
//! * **q-gram posting lists** for thresholded edit-distance atoms —
//!   reusing the [`StringSig`](matchrules_simdist::filters::StringSig)
//!   signatures of the relation preparation cache. A posting list alone
//!   would be unsound for short strings (a within-bound pair need not
//!   share a gram when `max(|a|, |b|)` is small), so every tuple whose
//!   anchor string is shorter than a per-atom *safe length* also goes
//!   into a **sparse list** that short probes always scan; the safe
//!   length is derived from the same `θ`-bound arithmetic that makes the
//!   q-gram count filter sound (see [`qgram_safe_len`]);
//! * **derived-key buckets** for operators that emit exact-bucketable
//!   keys (soundex codes, digit strings, synonym classes) — matching
//!   values share a key by the operator's `IndexStrategy` contract, so a
//!   hash bucket per key retrieves a superset of the atom's match set;
//! * **element posting lists** for token/q-gram set operators — one list
//!   per distinct element, with candidates filtered by the operator's
//!   sound element-count ratio bound (Jaccard ≥ s forces the smaller set
//!   to hold ≥ s·|larger| elements), plus an **empty list** retrieved
//!   only by element-less probes (∅ ≈ ∅ scores 1 under both Dice and
//!   Jaccard conventions);
//! * **sorted-char-prefix buckets** for operators with a character-bag
//!   overlap bound (Jaro–Winkler above 0.8): a matching pair shares
//!   ≥ `⌈α·max(len)⌉` characters with multiplicity, so the two sorted
//!   char sequences must share a value within their first
//!   `len − ⌈α·len⌉ + 1` characters — each side is indexed/probed under
//!   the distinct characters of that prefix, with a length-ratio filter
//!   and an empty-string bucket handled as above.
//!
//! Which anchor (if any) an atom gets is decided by the operator's
//! declared `IndexStrategy`, surfaced through
//! [`KernelClass`] — operators are index-ready by
//! capability, not by a hardcoded operator list.
//!
//! Because an RCK is a *conjunction*, a key's candidates are the
//! **intersection** of its indexed atoms' retrievals (each retrieval is a
//! superset of the tuples satisfying that atom, so the intersection is a
//! superset of the tuples satisfying the key — and usually a far smaller
//! one than any single atom's list). A key none of whose atoms is
//! indexable (all operators opaque) falls back to scanning every live
//! tuple, so correctness never depends on indexability.
//!
//! A candidate set is the union over the plan's RCKs — deduplicated
//! across keys, with each candidate remembering *which* keys retrieved
//! it — always a superset of the tuples any key accepts. Every candidate
//! is then verified through the same
//! [`lhs_matches_prepped`](RuntimeOps::lhs_matches_prepped) path the
//! batch engine uses, evaluating only the keys that retrieved it (a key
//! whose retrieval missed the slot cannot accept it), so query answers
//! are *exactly* the batch answers at a fraction of the verification
//! work ([`QueryOutcome::key_evals`]).
//! The index supports incremental [`MatchIndex::insert`] /
//! [`MatchIndex::remove`] (tombstoned slots; rebuild to compact), which
//! turns the batch reproduction into a serving core: build once, then
//! answer "which tuples match this record?" per point query instead of
//! rescanning sorted-neighborhood windows per batch.
//!
//! ```
//! use matchrules_core::paper::example_2_4_rcks;
//! use matchrules_data::eval::{paper_registry, RuntimeOps};
//! use matchrules_data::fig1;
//! use matchrules_matcher::index::MatchIndex;
//! use std::sync::Arc;
//!
//! let (setting, inst) = fig1::setting_and_instance();
//! let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
//! let rcks = example_2_4_rcks(&setting);
//! let index =
//!     MatchIndex::build(setting.pair.left().arity(), inst.right(), &rcks, &[], ops).unwrap();
//! // t1 matches all four billing tuples, t2 none — same answers as the
//! // batch path, without scanning the relation.
//! let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
//! assert_eq!(index.query(t1).hits.len(), 4);
//! let t2 = inst.left().by_id(fig1::ids::T2).unwrap();
//! assert!(index.query(t2).hits.is_empty());
//! ```

use crate::key::KeyMatcher;
use crate::postings::PostingList;
use matchrules_core::dependency::SimilarityAtom;
use matchrules_core::negation::NegativeRule;
use matchrules_core::operators::OperatorId;
use matchrules_core::relative_key::RelativeKey;
use matchrules_core::schema::AttrId;
use matchrules_data::eval::{AtomTrace, FilterStats, KernelClass, RuntimeOps};
use matchrules_data::prep::{AttrSig, RelationPrep, SigNeeds};
use matchrules_data::relation::{Relation, Tuple, TupleId};
use matchrules_runtime::WorkPool;
use matchrules_simdist::edit::theta_bound;
use matchrules_simdist::filters::FILTER_Q;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Minimum tuples per chunk when anchor indices are built over a pool:
/// one tuple contributes a handful of hash insertions, so smaller chunks
/// would be all claiming overhead.
const BUILD_MIN_CHUNK: usize = 256;

/// Minimum probes per chunk when a query batch runs over a pool: one
/// probe is tens of microseconds, so smaller chunks would be claiming
/// overhead.
const BATCH_MIN_CHUNK: usize = 16;

/// Errors raised while building or maintaining a [`MatchIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// Two tuples carry the same id — incremental maintenance addresses
    /// tuples by id, so ids must be unique within the indexed relation.
    DuplicateId {
        /// The offending id.
        id: TupleId,
    },
    /// An inserted tuple's arity does not match the indexed schema.
    ArityMismatch {
        /// Arity of the indexed relation's schema.
        expected: usize,
        /// Arity of the offered tuple.
        got: usize,
    },
    /// A removal named an id that is not (or no longer) indexed.
    UnknownId {
        /// The unresolved id.
        id: TupleId,
    },
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DuplicateId { id } => {
                write!(f, "tuple id {id} is already indexed (ids must be unique)")
            }
            IndexError::ArityMismatch { expected, got } => {
                write!(f, "tuple has {got} values but the indexed schema has {expected}")
            }
            IndexError::UnknownId { id } => {
                write!(f, "tuple id {id} is not indexed")
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// The smallest length `L₀` such that for **every** `max(|a|, |b|) ≥ L₀`,
/// a pair within the edit bound `⌊(1 − θ)·max(|a|, |b|)⌋` is guaranteed
/// to share at least one q-gram — i.e. the length above which a posting
/// list alone retrieves every true match. `None` when no such length
/// exists (θ so low that one string can be edited past all of the other's
/// grams at any length), in which case gram indexing is unusable for the
/// operator.
///
/// Soundness: a string of `n ≥ q` characters has `n − q + 1` unpadded
/// grams and one OSA edit destroys at most `q + 1` of them (the same
/// bound the q-gram count filter uses), so `dist ≤ k` forces at least
/// `max(|Gₐ|, |G_b|) − k·(q + 1)` shared grams; with `L = max(|a|, |b|)`
/// that is `(L − q + 1) − ⌊(1 − θ)L⌋·(q + 1)`, and `L₀` is the point
/// past which this stays ≥ 1.
pub fn qgram_safe_len(theta: f64, q: usize) -> Option<usize> {
    let per_edit = q + 1;
    // Tail bound: (L − q + 1) − (1 − θ)·L·(q + 1) = L·c − q + 1 with
    // c = 1 − (1 − θ)(q + 1). For c ≤ 0 the guarantee never holds.
    let c = 1.0 - (1.0 - theta) * per_edit as f64;
    if c <= 0.0 {
        return None;
    }
    // Past this cap the (floor-free) tail bound is ≥ 1; the floor in
    // theta_bound only strengthens it. Scan below the cap for the last
    // unguaranteed length.
    let cap = (q as f64 / c).ceil() as usize + q + 1;
    let mut safe = 1usize;
    for len in 1..=cap {
        let grams = (len + 1).saturating_sub(q) as i64;
        if grams - ((theta_bound(theta, len) * per_edit) as i64) < 1 {
            safe = len + 1;
        }
    }
    Some(safe)
}

/// Float slack absorbing rounding error in ratio/overlap arithmetic.
/// Always applied in the permissive direction, so a filter can only get
/// *weaker* than the exact real-arithmetic bound — never unsound.
const RATIO_EPS: f64 = 1e-9;

/// Sentinel in per-slot aligned arrays (`counts` / `lens`) for slots
/// whose anchor value is `Null`. Such slots appear on no posting or
/// empty list, so the sentinel is never read by a ratio filter.
const NULL_SLOT: u32 = u32::MAX;

/// The minimum character-multiset overlap `⌈α·n⌉` a match must reach
/// against a string of `n` characters, computed with downward float
/// slack (an underestimate only lengthens the indexed prefix — sound).
fn overlap_need(alpha: f64, n: usize) -> usize {
    ((alpha * n as f64) - RATIO_EPS).ceil().max(1.0) as usize
}

/// The sound size-ratio filter shared by element and char-bag anchors:
/// keeps a pair iff `min(a, b) ≥ ratio·max(a, b)` up to float slack.
fn ratio_ok(ratio: f64, a: u32, b: u32) -> bool {
    let (min, max) = if a <= b { (a, b) } else { (b, a) };
    min as f64 + RATIO_EPS >= ratio * max as f64
}

/// An inverted index over one indexable atom, shared by every key that
/// mentions the atom. Each variant realises one `IndexStrategy` from
/// `simdist` (surfaced as a [`KernelClass`]); see the [module
/// docs](self) for the per-variant soundness argument.
#[derive(Clone)]
enum AtomIndex {
    /// Equality atom: value → slots carrying it (`Null` values excluded —
    /// null matches nothing, so such tuples can never satisfy the atom).
    Exact { left: AttrId, right: AttrId, buckets: HashMap<String, Vec<u32>> },
    /// Thresholded edit atom: gram hash → compressed posting list of
    /// slots whose string contains the gram, plus the sparse list of
    /// slots whose string is shorter than `safe_len` (scanned whenever
    /// the probe itself is short, because gram sharing is only
    /// guaranteed above the safe length). `lens` / `masks` hold one
    /// entry per slot (char length and char-bag presence mask,
    /// [`NULL_SLOT`]/0 for nulls) backing the retrieval-time length
    /// window and presence-mask prefilters — both sound because each
    /// lower-bounds the OSA distance the verification kernel would
    /// compute.
    Qgram {
        left: AttrId,
        right: AttrId,
        theta: f64,
        safe_len: usize,
        postings: HashMap<u64, PostingList>,
        sparse: Vec<u32>,
        lens: Vec<u32>,
        masks: Vec<u64>,
    },
    /// Derived-key atom (soundex, digit equality, synonym tables):
    /// key → slots deriving it. Matching values share a key and every
    /// non-null value derives at least one, so the union of the probe's
    /// key buckets is a superset of the atom's match set.
    Derived { left: AttrId, right: AttrId, op: OperatorId, buckets: HashMap<String, Vec<u32>> },
    /// Element-set atom (token Jaccard, q-gram Dice): element hash →
    /// slots containing it, with per-slot element counts for the
    /// `min ≥ min_ratio·max` size filter. Slots whose value produces no
    /// elements live on `empty`, retrieved only by element-less probes
    /// (∅ ≈ ∅ scores 1; a one-sided ∅ can never match).
    Tokens {
        left: AttrId,
        right: AttrId,
        op: OperatorId,
        min_ratio: f64,
        postings: HashMap<u64, PostingList>,
        counts: Vec<u32>,
        empty: Vec<u32>,
    },
    /// Char-bag-bounded atom (Jaro–Winkler above 0.8): character →
    /// slots whose *sorted-char prefix* (the first `n − ⌈α·n⌉ + 1`
    /// sorted characters) contains it. A pair with multiset overlap
    /// `m ≥ max(⌈α·|a|⌉, ⌈α·|b|⌉)` must share a character value between
    /// the two prefixes — otherwise all `m` matched characters of one
    /// side avoid its own prefix, leaving at most `⌈α·n⌉ − 1 < m` of
    /// them, a contradiction. `lens` backs the length-ratio filter
    /// (`min(len) ≥ α·max(len)` is implied by the overlap bound);
    /// `empty` is the empty-string bucket, as above.
    BagPrefix {
        left: AttrId,
        right: AttrId,
        alpha: f64,
        postings: HashMap<char, PostingList>,
        lens: Vec<u32>,
        empty: Vec<u32>,
    },
}

impl AtomIndex {
    /// Indexes one tuple (slot ids arrive in ascending order, so every
    /// bucket/posting/sparse list stays sorted; variants with per-slot
    /// aligned arrays push exactly one entry per call). Gram signatures
    /// come from `prep` — edit-atom attributes are always marked in the
    /// relation's signature needs, so the extraction already done for
    /// pair evaluation is not repeated here; derived keys and elements
    /// come from the operator via `ops`.
    fn add(&mut self, slot: u32, tuple: &Tuple, prep: &RelationPrep, ops: &RuntimeOps) {
        match self {
            AtomIndex::Exact { right, buckets, .. } => {
                if let Some(s) = tuple.get(*right).as_str() {
                    buckets.entry(s.to_owned()).or_default().push(slot);
                }
            }
            AtomIndex::Qgram { right, safe_len, postings, sparse, lens, masks, .. } => {
                let computed;
                let sig = match prep.sig(slot as usize, *right) {
                    Some(sig) => sig,
                    None => {
                        computed = AttrSig::of_value(tuple.get(*right));
                        &computed
                    }
                };
                if sig.is_null() {
                    // Null slots still need aligned metadata entries; they
                    // never appear on a posting or sparse list, so the
                    // sentinel is never consulted by the prefilter.
                    lens.push(NULL_SLOT);
                    masks.push(0);
                    return;
                }
                lens.push(sig.sig().char_len() as u32);
                masks.push(sig.sig().bag().presence_mask());
                if sig.sig().char_len() < *safe_len {
                    sparse.push(slot);
                }
                for hash in sig.sig().qgrams().distinct_hashes() {
                    postings.entry(hash).or_default().push(slot);
                }
            }
            AtomIndex::Derived { right, op, buckets, .. } => {
                if let Some(s) = tuple.get(*right).as_str() {
                    let mut keys = Vec::new();
                    ops.derived_keys_into(*op, s, &mut keys);
                    keys.sort_unstable();
                    keys.dedup();
                    for key in keys {
                        buckets.entry(key).or_default().push(slot);
                    }
                }
            }
            AtomIndex::Tokens { right, op, postings, counts, empty, .. } => {
                match tuple.get(*right).as_str() {
                    None => counts.push(NULL_SLOT),
                    Some(s) => {
                        let mut elems = Vec::new();
                        ops.index_elements_into(*op, s, &mut elems);
                        counts.push(elems.len() as u32);
                        if elems.is_empty() {
                            empty.push(slot);
                        } else {
                            elems.sort_unstable();
                            elems.dedup();
                            for elem in elems {
                                postings.entry(elem).or_default().push(slot);
                            }
                        }
                    }
                }
            }
            AtomIndex::BagPrefix { right, alpha, postings, lens, empty, .. } => {
                match tuple.get(*right).as_str() {
                    None => lens.push(NULL_SLOT),
                    Some(s) => {
                        let mut chars: Vec<char> = s.chars().collect();
                        let n = chars.len();
                        lens.push(n as u32);
                        if n == 0 {
                            empty.push(slot);
                        } else {
                            chars.sort_unstable();
                            chars.truncate(n - overlap_need(*alpha, n) + 1);
                            chars.dedup();
                            for c in chars {
                                postings.entry(c).or_default().push(slot);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Folds another (partial, higher-slot) index of the same shape in —
    /// the deterministic merge step of the parallel build.
    fn merge(&mut self, other: AtomIndex) {
        let mut scratch = Vec::new();
        match (self, other) {
            (AtomIndex::Exact { buckets, .. }, AtomIndex::Exact { buckets: partial, .. }) => {
                for (value, slots) in partial {
                    buckets.entry(value).or_default().extend(slots);
                }
            }
            (
                AtomIndex::Qgram { postings, sparse, lens, masks, .. },
                AtomIndex::Qgram { postings: p2, sparse: s2, lens: l2, masks: m2, .. },
            ) => {
                for (hash, list) in p2 {
                    postings.entry(hash).or_default().extend_from(&list, &mut scratch);
                }
                sparse.extend(s2);
                lens.extend(l2);
                masks.extend(m2);
            }
            (AtomIndex::Derived { buckets, .. }, AtomIndex::Derived { buckets: partial, .. }) => {
                for (key, slots) in partial {
                    buckets.entry(key).or_default().extend(slots);
                }
            }
            (
                AtomIndex::Tokens { postings, counts, empty, .. },
                AtomIndex::Tokens { postings: p2, counts: c2, empty: e2, .. },
            ) => {
                for (elem, list) in p2 {
                    postings.entry(elem).or_default().extend_from(&list, &mut scratch);
                }
                counts.extend(c2);
                empty.extend(e2);
            }
            (
                AtomIndex::BagPrefix { postings, lens, empty, .. },
                AtomIndex::BagPrefix { postings: p2, lens: l2, empty: e2, .. },
            ) => {
                for (c, list) in p2 {
                    postings.entry(c).or_default().extend_from(&list, &mut scratch);
                }
                lens.extend(l2);
                empty.extend(e2);
            }
            _ => unreachable!("parallel build merges atom indices of one shape"),
        }
    }

    /// An empty index of the same shape (the per-chunk accumulator of
    /// the parallel build).
    fn empty_like(&self) -> AtomIndex {
        match self {
            AtomIndex::Exact { left, right, .. } => {
                AtomIndex::Exact { left: *left, right: *right, buckets: HashMap::new() }
            }
            AtomIndex::Qgram { left, right, theta, safe_len, .. } => AtomIndex::Qgram {
                left: *left,
                right: *right,
                theta: *theta,
                safe_len: *safe_len,
                postings: HashMap::new(),
                sparse: Vec::new(),
                lens: Vec::new(),
                masks: Vec::new(),
            },
            AtomIndex::Derived { left, right, op, .. } => {
                AtomIndex::Derived { left: *left, right: *right, op: *op, buckets: HashMap::new() }
            }
            AtomIndex::Tokens { left, right, op, min_ratio, .. } => AtomIndex::Tokens {
                left: *left,
                right: *right,
                op: *op,
                min_ratio: *min_ratio,
                postings: HashMap::new(),
                counts: Vec::new(),
                empty: Vec::new(),
            },
            AtomIndex::BagPrefix { left, right, alpha, .. } => AtomIndex::BagPrefix {
                left: *left,
                right: *right,
                alpha: *alpha,
                postings: HashMap::new(),
                lens: Vec::new(),
                empty: Vec::new(),
            },
        }
    }

    /// Relative retrieval cost, for the cheapest-first intersection
    /// order: exact buckets are one hash lookup on a tiny list; derived
    /// keys a handful of lookups; element postings union a few dozen
    /// lists; gram postings union more and longer lists; char-prefix
    /// postings have the coarsest buckets (single characters). The plan
    /// cost model prices atoms of every rank as indexed retrievals, not
    /// scans.
    fn cost_rank(&self) -> u8 {
        match self {
            AtomIndex::Exact { .. } => 0,
            AtomIndex::Derived { .. } => 1,
            AtomIndex::Tokens { .. } => 2,
            AtomIndex::Qgram { .. } => 3,
            AtomIndex::BagPrefix { .. } => 4,
        }
    }

    /// Resolves the probe against this atom's buckets/postings into a
    /// [`PreparedAtom`]: the posting lists and plain slot lists whose
    /// union (filtered by the per-entry prefilter) is the atom's
    /// retrieval — a superset of the slots whose tuples satisfy the atom
    /// against the probe. An unsatisfiable probe value (`Null`)
    /// prepares an empty retrieval. `probe_prep` is the probe side's
    /// signature cache and `row` the probe's position in it (batched
    /// probes share one prep). The string/element buffers are reusable
    /// scratch.
    #[allow(clippy::too_many_arguments)]
    fn prepare<'a>(
        &'a self,
        probe: &Tuple,
        probe_prep: &RelationPrep,
        row: usize,
        ops: &RuntimeOps,
        keybuf: &mut Vec<String>,
        elembuf: &mut Vec<u64>,
        charbuf: &mut Vec<char>,
    ) -> PreparedAtom<'a> {
        let mut pa = PreparedAtom::empty();
        match self {
            AtomIndex::Exact { left, buckets, .. } => {
                if let Some(s) = probe.get(*left).as_str() {
                    if let Some(bucket) = buckets.get(s) {
                        pa.plain.push(bucket.as_slice());
                    }
                }
            }
            AtomIndex::Qgram { left, theta, safe_len, postings, sparse, lens, masks, .. } => {
                let computed;
                let sig = match probe_prep.sig(row, *left) {
                    Some(sig) => sig,
                    None => {
                        computed = AttrSig::of_value(probe.get(*left));
                        &computed
                    }
                };
                if sig.is_null() {
                    return pa; // null matches nothing
                }
                if sig.sig().char_len() < *safe_len {
                    // Short probe: pairs below the safe length need not
                    // share a gram; partners at or above it are caught by
                    // the postings (their length alone puts the pair in
                    // the guaranteed regime).
                    pa.plain.push(sparse.as_slice());
                }
                for hash in sig.sig().qgrams().distinct_hashes() {
                    if let Some(list) = postings.get(&hash) {
                        pa.comp.push(list);
                    }
                }
                pa.filter = SlotFilter::EditMeta {
                    lens,
                    masks,
                    theta: *theta,
                    probe_len: sig.sig().char_len() as u32,
                    probe_mask: sig.sig().bag().presence_mask(),
                };
            }
            AtomIndex::Derived { left, op, buckets, .. } => {
                let Some(s) = probe.get(*left).as_str() else {
                    return pa;
                };
                keybuf.clear();
                ops.derived_keys_into(*op, s, keybuf);
                keybuf.sort_unstable();
                keybuf.dedup();
                for key in keybuf.iter() {
                    if let Some(bucket) = buckets.get(key) {
                        pa.plain.push(bucket.as_slice());
                    }
                }
            }
            AtomIndex::Tokens { left, op, min_ratio, postings, counts, empty, .. } => {
                let Some(s) = probe.get(*left).as_str() else {
                    return pa;
                };
                elembuf.clear();
                ops.index_elements_into(*op, s, elembuf);
                if elembuf.is_empty() {
                    // ∅ ≈ ∅ scores 1; an element-less probe can only
                    // match element-less tuples (the ratio bound rules
                    // everything else out).
                    pa.plain.push(empty.as_slice());
                    return pa;
                }
                let probe_count = elembuf.len() as u32;
                elembuf.sort_unstable();
                elembuf.dedup();
                for elem in elembuf.iter() {
                    if let Some(list) = postings.get(elem) {
                        pa.comp.push(list);
                    }
                }
                pa.filter = SlotFilter::Ratio { ratio: *min_ratio, counts, probe: probe_count };
            }
            AtomIndex::BagPrefix { left, alpha, postings, lens, empty, .. } => {
                let Some(s) = probe.get(*left).as_str() else {
                    return pa;
                };
                charbuf.clear();
                charbuf.extend(s.chars());
                let n = charbuf.len();
                if n == 0 {
                    // jw("", "") = 1 via equality; "" matches nothing else.
                    pa.plain.push(empty.as_slice());
                    return pa;
                }
                charbuf.sort_unstable();
                charbuf.truncate(n - overlap_need(*alpha, n) + 1);
                charbuf.dedup();
                for &c in charbuf.iter() {
                    if let Some(list) = postings.get(&c) {
                        pa.comp.push(list);
                    }
                }
                pa.filter = SlotFilter::Ratio { ratio: *alpha, counts: lens, probe: n as u32 };
            }
        }
        pa
    }

    /// Purges `slot` from this atom's buckets and postings — the inverse
    /// of [`AtomIndex::add`], recomputing the same anchor keys from the
    /// stored tuple. Plain lists drop the entry immediately; compressed
    /// posting lists tombstone it and rewrite their block once half dead
    /// (`alive` drives the rewrite's liveness check). Aligned per-slot
    /// metadata (`counts` / `lens` / `masks`) keeps its entry: slots are
    /// never reused, and the data stays correct for any stale reader.
    fn remove_slot(
        &mut self,
        slot: u32,
        tuple: &Tuple,
        prep: &RelationPrep,
        ops: &RuntimeOps,
        alive: &[bool],
    ) {
        fn drop_from(list: &mut Vec<u32>, slot: u32) {
            if let Ok(i) = list.binary_search(&slot) {
                list.remove(i);
            }
        }
        match self {
            AtomIndex::Exact { right, buckets, .. } => {
                if let Some(s) = tuple.get(*right).as_str() {
                    let emptied = match buckets.get_mut(s) {
                        Some(bucket) => {
                            drop_from(bucket, slot);
                            bucket.is_empty()
                        }
                        None => false,
                    };
                    if emptied {
                        buckets.remove(s);
                    }
                }
            }
            AtomIndex::Qgram { right, safe_len, postings, sparse, .. } => {
                let computed;
                let sig = match prep.sig(slot as usize, *right) {
                    Some(sig) => sig,
                    None => {
                        computed = AttrSig::of_value(tuple.get(*right));
                        &computed
                    }
                };
                if sig.is_null() {
                    return;
                }
                if sig.sig().char_len() < *safe_len {
                    drop_from(sparse, slot);
                }
                for hash in sig.sig().qgrams().distinct_hashes() {
                    let emptied = match postings.get_mut(&hash) {
                        Some(list) => {
                            list.note_removed(slot, alive);
                            list.is_empty()
                        }
                        None => false,
                    };
                    if emptied {
                        postings.remove(&hash);
                    }
                }
            }
            AtomIndex::Derived { right, op, buckets, .. } => {
                if let Some(s) = tuple.get(*right).as_str() {
                    let mut keys = Vec::new();
                    ops.derived_keys_into(*op, s, &mut keys);
                    keys.sort_unstable();
                    keys.dedup();
                    for key in keys {
                        let emptied = match buckets.get_mut(&key) {
                            Some(bucket) => {
                                drop_from(bucket, slot);
                                bucket.is_empty()
                            }
                            None => false,
                        };
                        if emptied {
                            buckets.remove(&key);
                        }
                    }
                }
            }
            AtomIndex::Tokens { right, op, postings, empty, .. } => {
                if let Some(s) = tuple.get(*right).as_str() {
                    let mut elems = Vec::new();
                    ops.index_elements_into(*op, s, &mut elems);
                    if elems.is_empty() {
                        drop_from(empty, slot);
                        return;
                    }
                    elems.sort_unstable();
                    elems.dedup();
                    for elem in elems {
                        let emptied = match postings.get_mut(&elem) {
                            Some(list) => {
                                list.note_removed(slot, alive);
                                list.is_empty()
                            }
                            None => false,
                        };
                        if emptied {
                            postings.remove(&elem);
                        }
                    }
                }
            }
            AtomIndex::BagPrefix { right, alpha, postings, empty, .. } => {
                if let Some(s) = tuple.get(*right).as_str() {
                    let mut chars: Vec<char> = s.chars().collect();
                    let n = chars.len();
                    if n == 0 {
                        drop_from(empty, slot);
                        return;
                    }
                    chars.sort_unstable();
                    chars.truncate(n - overlap_need(*alpha, n) + 1);
                    chars.dedup();
                    for c in chars {
                        let emptied = match postings.get_mut(&c) {
                            Some(list) => {
                                list.note_removed(slot, alive);
                                list.is_empty()
                            }
                            None => false,
                        };
                        if emptied {
                            postings.remove(&c);
                        }
                    }
                }
            }
        }
    }
}

/// A per-entry retrieval prefilter: decided from metadata the index
/// stores alongside its slots, applied while a posting union is scanned
/// out of the probe bitmap — candidates failing it die before the
/// verification kernel ever sees them. Every variant is sound: a slot it
/// rejects would be rejected by the corresponding verification filter
/// (size ratio, length window, char-bag bound) anyway.
enum SlotFilter<'a> {
    /// No per-entry metadata (exact / derived buckets, empty-value
    /// lists).
    None,
    /// The size-ratio bound of element and char-bag anchors:
    /// `min ≥ ratio·max` over per-slot counts vs the probe's count.
    Ratio { ratio: f64, counts: &'a [u32], probe: u32 },
    /// The edit-atom prefilters: length window plus char-bag
    /// presence-mask bound, both against `theta_bound(θ, max(len))`.
    EditMeta { lens: &'a [u32], masks: &'a [u64], theta: f64, probe_len: u32, probe_mask: u64 },
}

impl SlotFilter<'_> {
    #[inline]
    fn accepts(&self, slot: u32) -> bool {
        match self {
            SlotFilter::None => true,
            SlotFilter::Ratio { ratio, counts, probe } => {
                ratio_ok(*ratio, counts[slot as usize], *probe)
            }
            SlotFilter::EditMeta { lens, masks, theta, probe_len, probe_mask } => {
                let ls = lens[slot as usize];
                if ls == NULL_SLOT {
                    return false;
                }
                let bound = theta_bound(*theta, (*probe_len).max(ls) as usize);
                if probe_len.abs_diff(ls) as usize > bound {
                    return false;
                }
                let sm = masks[slot as usize];
                let diff = (probe_mask & !sm).count_ones().max((sm & !probe_mask).count_ones());
                diff as usize <= bound
            }
        }
    }
}

/// One atom's retrieval, resolved against a probe but not yet
/// materialized: the compressed posting lists and plain slot slices
/// whose union — filtered per entry — is the atom's candidate set.
struct PreparedAtom<'a> {
    /// Compressed posting lists (gram / element / char-prefix postings).
    comp: Vec<&'a PostingList>,
    /// Plain sorted slot lists (exact/derived buckets, sparse/empty).
    plain: Vec<&'a [u32]>,
    filter: SlotFilter<'a>,
}

impl<'a> PreparedAtom<'a> {
    fn empty() -> Self {
        PreparedAtom { comp: Vec::new(), plain: Vec::new(), filter: SlotFilter::None }
    }

    /// ORs the atom's *unfiltered* union into `words` (cleared first,
    /// sized to a 256-slot boundary so bitset blocks OR in whole) — the
    /// building block of bitmap-level intersection, where per-entry
    /// filters are deferred until the intersected set is scanned out.
    fn or_bitmap(
        &self,
        n_slots: usize,
        words: &mut Vec<u64>,
        decode: &mut Vec<u32>,
        stats: &mut FilterStats,
    ) {
        let n_words = n_slots.div_ceil(256) * 4;
        words.clear();
        words.resize(n_words, 0);
        for list in &self.comp {
            stats.blocks_decoded += list.or_into(words, decode);
        }
        for plain in &self.plain {
            for &slot in *plain {
                words[(slot >> 6) as usize] |= 1u64 << (slot & 63);
            }
        }
    }

    /// Materializes the filtered union, ascending and deduplicated: OR
    /// every list into a bitmap over the relation's slots (bitset blocks
    /// land as four word-ORs each), then scan set bits through the
    /// per-entry filter. A single unfiltered plain list (exact bucket,
    /// empty-value list) short-circuits without touching the bitmap.
    fn materialize(
        &self,
        n_slots: usize,
        words: &mut Vec<u64>,
        decode: &mut Vec<u32>,
        stats: &mut FilterStats,
    ) -> Vec<u32> {
        if self.comp.is_empty() && self.plain.len() <= 1 && matches!(self.filter, SlotFilter::None)
        {
            return self.plain.first().map(|list| list.to_vec()).unwrap_or_default();
        }
        self.or_bitmap(n_slots, words, decode, stats);
        let mut out = Vec::new();
        for (w, &word) in words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let slot = (w as u32) * 64 + bits.trailing_zeros();
                bits &= bits - 1;
                stats.linear_steps += 1;
                if self.filter.accepts(slot) {
                    out.push(slot);
                } else {
                    stats.retrieval_rejects += 1;
                }
            }
        }
        out
    }
}

/// Intersects `acc` (sorted ascending) with a materialized retrieval in
/// place, galloping through `list` — exponential stride doubling then a
/// binary settle, so a small `acc` against a long list costs
/// `O(|acc|·log)` instead of a full merge.
fn gallop_intersect(acc: &mut Vec<u32>, list: &[u32], stats: &mut FilterStats) {
    let mut kept = 0usize;
    let mut j = 0usize;
    for i in 0..acc.len() {
        let v = acc[i];
        let mut step = 1usize;
        while j + step < list.len() && list[j + step] < v {
            j += step;
            step <<= 1;
            stats.gallop_steps += 1;
        }
        let hi = (j + step + 1).min(list.len());
        j += list[j..hi].partition_point(|&x| x < v);
        stats.gallop_steps += 1;
        if list.get(j) == Some(&v) {
            acc[kept] = v;
            kept += 1;
        }
    }
    acc.truncate(kept);
}

/// When the running candidate set is at most this small, a key's next
/// atom is intersected by *membership probes* (per-list galloping
/// cursors over the compressed blocks) instead of materializing the
/// atom's full union — the whole point of skip pointers.
const LAZY_MAX: usize = 8;

/// Intersects `acc` with an unmaterialized atom by membership: a slot
/// survives iff it passes the per-entry filter and appears on at least
/// one of the atom's lists. Cursor targets ascend with `acc`, so whole
/// blocks are skipped on their max without decoding. Produces exactly
/// the same `acc` as `gallop_intersect` against the materialized union.
fn lazy_intersect(acc: &mut Vec<u32>, pa: &PreparedAtom<'_>, stats: &mut FilterStats) {
    let mut cursors: Vec<_> = pa.comp.iter().map(|list| list.cursor()).collect();
    acc.retain(|&slot| {
        if !pa.filter.accepts(slot) {
            stats.retrieval_rejects += 1;
            return false;
        }
        cursors.iter_mut().any(|cur| cur.advance_to(slot) == Some(slot))
            || pa.plain.iter().any(|plain| plain.binary_search(&slot).is_ok())
    });
    for cur in cursors {
        stats.blocks_decoded += cur.blocks_decoded;
        stats.blocks_skipped += cur.blocks_skipped;
    }
}

/// Reusable per-thread buffers of the probe hot path: the union bitmap,
/// block-decode scratch and the probe-side key/element/char buffers.
/// Thread-local so concurrent queries (server shards, batched pools)
/// never contend, and sequential queries never re-allocate.
#[derive(Default)]
struct ProbeScratch {
    words: Vec<u64>,
    and_words: Vec<u64>,
    decode: Vec<u32>,
    keys: Vec<String>,
    elems: Vec<u64>,
    chars: Vec<char>,
}

/// Set bits in a bitmap (the size of the running intersection during
/// bitmap-level AND).
fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

thread_local! {
    static PROBE_SCRATCH: RefCell<ProbeScratch> = RefCell::new(ProbeScratch::default());
}

/// EWMA weight of one new selectivity observation (≈ the last 16 probes
/// dominate).
const EWMA_ALPHA: f64 = 1.0 / 16.0;

/// Lock-free observed-selectivity accumulator: one EWMA cell per anchor
/// kind (indexed by `AtomIndex::cost_rank`), updated from the query hot
/// path with relaxed atomics — races can drop an update, never corrupt
/// a value — and frozen into a [`SelectivitySnapshot`] when a new index
/// version is built.
#[derive(Debug)]
pub struct SelectivityObserver {
    cells: [AtomicU64; 5],
}

impl Default for SelectivityObserver {
    fn default() -> Self {
        // NaN = no observation yet (0.0 is a meaningful selectivity).
        SelectivityObserver { cells: std::array::from_fn(|_| AtomicU64::new(f64::NAN.to_bits())) }
    }
}

impl SelectivityObserver {
    /// Folds one observation (retrieved fraction of live tuples) into
    /// the kind's EWMA.
    fn observe(&self, kind: u8, selectivity: f64) {
        let cell = &self.cells[kind as usize];
        let old = f64::from_bits(cell.load(Ordering::Relaxed));
        let new = if old.is_nan() { selectivity } else { old + EWMA_ALPHA * (selectivity - old) };
        cell.store(new.to_bits(), Ordering::Relaxed);
    }

    /// Freezes the current EWMAs into a snapshot; kinds never observed
    /// keep their rank from `fallback` (typically the snapshot that
    /// ordered the current index).
    fn snapshot(&self, fallback: &SelectivitySnapshot) -> SelectivitySnapshot {
        let mut by_kind = fallback.by_kind;
        for (kind, cell) in self.cells.iter().enumerate() {
            let v = f64::from_bits(cell.load(Ordering::Relaxed));
            if !v.is_nan() {
                by_kind[kind] = v;
            }
        }
        SelectivitySnapshot { by_kind }
    }
}

/// Per-anchor-kind selectivity ranks (lower = more selective = first)
/// ordering every key's atom intersections, frozen at build time — so
/// answers and work accounting are deterministic for the lifetime of an
/// index (one `RuleVersion` in the serving stack), no matter how the
/// live EWMAs move underneath. Any ordering is *correct* (an
/// intersection prefix is a sound candidate superset and verification
/// decides membership); the snapshot only tunes how fast candidate sets
/// shrink.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectivitySnapshot {
    by_kind: [f64; 5],
}

impl Default for SelectivitySnapshot {
    /// Ranks equal to the static `cost_rank` order — the default build
    /// reproduces the untuned cheapest-first order exactly.
    fn default() -> Self {
        SelectivitySnapshot { by_kind: [0.0, 1.0, 2.0, 3.0, 4.0] }
    }
}

impl SelectivitySnapshot {
    /// A snapshot with explicit ranks, indexed by anchor kind in
    /// `cost_rank` order: exact, derived, tokens, q-gram, bag-prefix.
    pub fn from_ranks(by_kind: [f64; 5]) -> Self {
        SelectivitySnapshot { by_kind }
    }

    /// The ranks, in the same kind order as [`Self::from_ranks`].
    pub fn ranks(&self) -> [f64; 5] {
        self.by_kind
    }

    fn rank(&self, kind: u8) -> f64 {
        self.by_kind[kind as usize]
    }
}

/// When a key's running candidate set is this small, further
/// intersection with its remaining (costlier) atom retrievals is skipped:
/// verifying the leftover candidate is cheaper than another retrieval,
/// and any prefix of the intersection is a sound superset.
const ENOUGH: usize = 1;

/// One query answer: a tuple the probe matches, and the key that fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryHit {
    /// Id of the matched tuple.
    pub id: TupleId,
    /// Slot (position in the indexed relation) of the matched tuple.
    pub slot: usize,
    /// Index (into the key list) of the first key that accepted the pair.
    pub key: usize,
}

/// The result of one [`MatchIndex::query`]: the verified hits plus the
/// work accounting (how many candidates the anchors retrieved, and how
/// the similarity filter pipeline decided them). Comparable wholesale
/// (`PartialEq`) so differential tests can assert byte-for-byte
/// equality of outcomes, counters included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The matched tuples, in ascending slot order.
    pub hits: Vec<QueryHit>,
    /// Candidate slots the anchors retrieved (the pairs verified),
    /// deduplicated across keys — the per-query analogue of a batch
    /// report's candidate count.
    pub candidates: usize,
    /// Key evaluations the verification pass ran: per candidate, only
    /// the keys whose retrieval produced the candidate are tried
    /// (a key that did not retrieve a slot cannot accept it — retrieval
    /// is a superset of acceptance), so this is at most
    /// `candidates × keys` and usually far less.
    pub key_evals: usize,
    /// Filter-effectiveness counters of the verification pass.
    pub stats: FilterStats,
}

/// The evaluation trace of one key against one `(probe, indexed tuple)`
/// pair: every atom's outcome, in the key's canonical atom order.
#[derive(Debug, Clone)]
pub struct KeyTrace {
    /// Index of the key in the compiled key list.
    pub key: usize,
    /// Whether every atom held (the key accepted the pair).
    pub matched: bool,
    /// Per-atom outcomes: the atom and how it was decided.
    pub atoms: Vec<(SimilarityAtom, AtomTrace)>,
}

/// The full decision trace of one pair — what [`MatchIndex::explain`]
/// returns: every key's every atom, traced through the same compiled
/// kernels the hot path uses (decisions are identical), plus the veto
/// outcome.
#[derive(Debug, Clone)]
pub struct PairTrace {
    /// One trace per key, in key order.
    pub keys: Vec<KeyTrace>,
    /// The first key that accepted the pair, if any — the key
    /// [`MatchIndex::query`] reports for a hit.
    pub matched_key: Option<usize>,
    /// Whether a negative rule vetoes the pair (a vetoed pair never
    /// matches even when a key accepts).
    pub vetoed: bool,
}

impl PairTrace {
    /// The final decision: some key accepted and no negative rule vetoed.
    pub fn matched(&self) -> bool {
        self.matched_key.is_some() && !self.vetoed
    }
}

/// Aggregate shape of a built index (for reports and benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of keys.
    pub keys: usize,
    /// Distinct equality atoms indexed (exact buckets).
    pub exact_anchors: usize,
    /// Distinct edit atoms indexed (q-gram postings + sparse list).
    pub qgram_anchors: usize,
    /// Distinct derived-key atoms indexed (soundex / digits / synonym
    /// buckets).
    pub derived_anchors: usize,
    /// Distinct element-set atoms indexed (token / q-gram postings).
    pub token_anchors: usize,
    /// Distinct char-bag-bounded atoms indexed (sorted-char-prefix
    /// postings).
    pub bag_anchors: usize,
    /// Keys with no indexable atom (full scan per probe).
    pub scan_keys: usize,
    /// Live (queryable) tuples.
    pub live: usize,
    /// Removed tuples still occupying slots (rebuild to compact).
    pub tombstones: usize,
    /// Distinct bucket values across all exact and derived-key anchors.
    pub exact_buckets: usize,
    /// Distinct posting lists across all q-gram, element and char-bag
    /// anchors.
    pub posting_lists: usize,
    /// Slots on sparse/empty lists (short strings below an edit atom's
    /// safe length, element-less or empty values under set/bag anchors).
    pub sparse_entries: usize,
    /// Resident bytes of the compressed posting lists (delta blocks,
    /// bitset blocks, unsealed tails) across all posting anchors.
    pub postings_bytes: usize,
    /// Bytes the same postings would occupy as plain `u32` slot lists —
    /// `postings_bytes / postings_uncompressed_bytes` is the compression
    /// ratio.
    pub postings_uncompressed_bytes: usize,
}

/// The key-provenance mask of a candidate slot when pruning is off
/// (more than 64 keys, or the unpruned reference path): every key must
/// be verified.
const NO_PRUNE: u64 = u64::MAX;

/// Whether `mask` obliges the verifier to evaluate `key` — bit `key` of
/// the provenance mask, with every index ≥ 64 unconditionally evaluated
/// (plans that large never prune; their masks are [`NO_PRUNE`]).
#[inline]
fn mask_allows(mask: u64, key: usize) -> bool {
    key >= 64 || mask & (1u64 << key) != 0
}

/// An RCK-driven inverted index over one relation: sub-quadratic
/// candidate generation, point-query serving, incremental maintenance.
///
/// Built from the same compiled artifacts the batch engine uses (the key
/// list, the negative rules, the resolved operators), and guaranteed to
/// answer exactly like the batch path: candidates are a superset of every
/// key's accepted pairs, and each candidate is verified by the full
/// compiled disjunction. See the [module docs](self) for the anchor
/// design.
///
/// The index is `Clone`: serving layers publish immutable copies as
/// snapshots and mutate a fresh clone off to the side.
#[derive(Clone)]
pub struct MatchIndex {
    keys: Vec<RelativeKey>,
    negatives: Vec<NegativeRule>,
    ops: Arc<RuntimeOps>,
    /// The indexed tuples; slots are positions, removals leave tombstones.
    relation: Relation,
    alive: Vec<bool>,
    live: usize,
    /// Signature cache for the indexed side, extended on insert.
    prep: RelationPrep,
    /// Signature needs of the probe side (probes are prepared per query).
    probe_needs: SigNeeds,
    /// Inverted indices over the distinct indexable atoms of the keys.
    atom_indices: Vec<AtomIndex>,
    /// Per key: positions into `atom_indices` of the key's indexed atoms.
    /// An empty list means the key is unindexable and scans.
    key_atoms: Vec<Vec<usize>>,
    by_id: HashMap<TupleId, u32>,
    /// The selectivity snapshot that ordered `key_atoms` at build time.
    planner: SelectivitySnapshot,
    /// Live selectivity EWMAs, fed by the query path and harvested when
    /// the next index version is built. Shared across clones: serving
    /// snapshots of one lineage pool their observations.
    observer: Arc<SelectivityObserver>,
}

impl fmt::Debug for MatchIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("MatchIndex")
            .field("keys", &stats.keys)
            .field("live", &stats.live)
            .field("tombstones", &stats.tombstones)
            .field("exact_anchors", &stats.exact_anchors)
            .field("qgram_anchors", &stats.qgram_anchors)
            .field("derived_anchors", &stats.derived_anchors)
            .field("token_anchors", &stats.token_anchors)
            .field("bag_anchors", &stats.bag_anchors)
            .field("scan_keys", &stats.scan_keys)
            .finish()
    }
}

impl MatchIndex {
    /// Serial build — see [`MatchIndex::build_in`].
    pub fn build(
        probe_arity: usize,
        relation: &Relation,
        keys: &[RelativeKey],
        negatives: &[NegativeRule],
        ops: Arc<RuntimeOps>,
    ) -> Result<Self, IndexError> {
        Self::build_in(&WorkPool::serial(), probe_arity, relation, keys, negatives, ops)
    }

    /// Builds the index over `relation` (cloned: the index owns its data
    /// so it can be maintained incrementally), anchoring each key as
    /// described in the [module docs](self). `probe_arity` is the arity
    /// of the probe side's schema — for a reflexive (dedup) setting it
    /// equals the relation's own arity.
    ///
    /// Signature extraction and anchor population are chunked over
    /// `pool`, with per-chunk partial indices merged in chunk order, so a
    /// parallel build is identical to a serial one.
    ///
    /// Fails with [`IndexError::DuplicateId`] when the relation carries
    /// two tuples with one id (incremental maintenance addresses tuples
    /// by id).
    ///
    /// # Panics
    ///
    /// Panics when the relation holds more than `u32::MAX` tuples (slots
    /// are stored as `u32` for posting-list compactness).
    pub fn build_in(
        pool: &WorkPool,
        probe_arity: usize,
        relation: &Relation,
        keys: &[RelativeKey],
        negatives: &[NegativeRule],
        ops: Arc<RuntimeOps>,
    ) -> Result<Self, IndexError> {
        Self::build_planned(
            pool,
            probe_arity,
            relation,
            keys,
            negatives,
            ops,
            &SelectivitySnapshot::default(),
        )
    }

    /// [`MatchIndex::build_in`] with an explicit [`SelectivitySnapshot`]
    /// ordering each key's atom intersections — the adaptive-planner
    /// entry point. Serving layers pass the previous index's
    /// [`MatchIndex::observed_selectivity`] so each new version probes
    /// most-selective-first; the default snapshot reproduces the static
    /// cheapest-first order. The snapshot only reorders *work* —
    /// verified hits are identical under every snapshot, because any
    /// intersection prefix is a sound candidate superset.
    #[allow(clippy::too_many_arguments)]
    pub fn build_planned(
        pool: &WorkPool,
        probe_arity: usize,
        relation: &Relation,
        keys: &[RelativeKey],
        negatives: &[NegativeRule],
        ops: Arc<RuntimeOps>,
        planner: &SelectivitySnapshot,
    ) -> Result<Self, IndexError> {
        assert!(
            relation.len() <= u32::MAX as usize,
            "match index supports at most u32::MAX tuples"
        );
        let matcher = KeyMatcher::new(keys.iter(), &ops).with_negatives(negatives);
        let (probe_needs, index_needs) = matcher.sig_needs(probe_arity, relation.schema().arity());
        let prep = RelationPrep::build_in(pool, relation, &index_needs);

        // One inverted index per distinct indexable atom (several keys
        // often share an atom — email equality, say — and pay for one
        // index); each key records which of them constrain it.
        let mut atom_indices: Vec<AtomIndex> = Vec::new();
        let mut atom_of: HashMap<(AttrId, AttrId, u16), usize> = HashMap::new();
        let mut key_atoms: Vec<Vec<usize>> = Vec::with_capacity(keys.len());
        for key in keys {
            let mut refs = Vec::new();
            for atom in key.atoms() {
                let empty = match ops.kernel_class(atom.op) {
                    KernelClass::Equality => Some(AtomIndex::Exact {
                        left: atom.left,
                        right: atom.right,
                        buckets: HashMap::new(),
                    }),
                    KernelClass::Edit { theta } => {
                        qgram_safe_len(theta, FILTER_Q).map(|safe_len| AtomIndex::Qgram {
                            left: atom.left,
                            right: atom.right,
                            theta,
                            safe_len,
                            postings: HashMap::new(),
                            sparse: Vec::new(),
                            lens: Vec::new(),
                            masks: Vec::new(),
                        })
                    }
                    KernelClass::DerivedKey => Some(AtomIndex::Derived {
                        left: atom.left,
                        right: atom.right,
                        op: atom.op,
                        buckets: HashMap::new(),
                    }),
                    KernelClass::TokenSet { min_ratio } => Some(AtomIndex::Tokens {
                        left: atom.left,
                        right: atom.right,
                        op: atom.op,
                        min_ratio,
                        postings: HashMap::new(),
                        counts: Vec::new(),
                        empty: Vec::new(),
                    }),
                    KernelClass::Bounded { alpha } => Some(AtomIndex::BagPrefix {
                        left: atom.left,
                        right: atom.right,
                        alpha,
                        postings: HashMap::new(),
                        lens: Vec::new(),
                        empty: Vec::new(),
                    }),
                    KernelClass::Opaque => None,
                };
                if let Some(empty) = empty {
                    let pos =
                        *atom_of.entry((atom.left, atom.right, atom.op.0)).or_insert_with(|| {
                            atom_indices.push(empty);
                            atom_indices.len() - 1
                        });
                    refs.push(pos);
                }
            }
            // Most selective retrievals first, once and for all, by the
            // planner snapshot's per-kind rank (the default ranks equal
            // the static cost order: exact buckets are one hash lookup
            // on a tiny list, gram postings union dozens of lists).
            // Probing iterates this order directly; static cost then
            // position break rank ties so the order is total.
            refs.sort_by(|&a, &b| {
                let (ka, kb) = (atom_indices[a].cost_rank(), atom_indices[b].cost_rank());
                planner.rank(ka).total_cmp(&planner.rank(kb)).then(ka.cmp(&kb)).then(a.cmp(&b))
            });
            refs.dedup();
            key_atoms.push(refs);
        }

        // Populate every atom index: per-chunk partial indices, folded in
        // chunk order so slot lists come out ascending.
        let tuples = relation.tuples();
        let partials: Vec<Vec<AtomIndex>> =
            pool.par_ranges(tuples.len(), BUILD_MIN_CHUNK, |_, range| {
                let mut partial: Vec<AtomIndex> =
                    atom_indices.iter().map(AtomIndex::empty_like).collect();
                for pos in range {
                    for atom in &mut partial {
                        atom.add(pos as u32, &tuples[pos], &prep, &ops);
                    }
                }
                partial
            });
        for chunk in partials {
            for (atom, partial) in atom_indices.iter_mut().zip(chunk) {
                atom.merge(partial);
            }
        }

        let mut by_id = HashMap::with_capacity(tuples.len());
        for (pos, tuple) in tuples.iter().enumerate() {
            if by_id.insert(tuple.id(), pos as u32).is_some() {
                return Err(IndexError::DuplicateId { id: tuple.id() });
            }
        }

        Ok(MatchIndex {
            keys: keys.to_vec(),
            negatives: negatives.to_vec(),
            ops,
            relation: relation.clone(),
            alive: vec![true; tuples.len()],
            live: tuples.len(),
            prep,
            probe_needs,
            atom_indices,
            key_atoms,
            by_id,
            planner: planner.clone(),
            observer: Arc::new(SelectivityObserver::default()),
        })
    }

    /// The selectivity snapshot that ordered this index's intersections
    /// at build time.
    pub fn planner_snapshot(&self) -> &SelectivitySnapshot {
        &self.planner
    }

    /// The selectivities observed on this index's query path so far,
    /// frozen into a snapshot (kinds not yet observed keep their
    /// build-time rank) — pass to [`MatchIndex::build_planned`] when
    /// building the next version so its plans reflect live traffic.
    pub fn observed_selectivity(&self) -> SelectivitySnapshot {
        self.observer.snapshot(&self.planner)
    }

    /// Number of live (queryable) tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live tuples are indexed.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The indexed relation (tombstoned tuples included — check
    /// [`MatchIndex::contains`] before trusting a slot).
    pub fn relation(&self) -> &Relation {
        &self.relation
    }

    /// Whether `id` is indexed and live.
    pub fn contains(&self, id: TupleId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The live tuple with `id` — `None` for unknown *and* for removed
    /// ids (unlike scanning [`MatchIndex::relation`], which still holds
    /// tombstoned tuples).
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.by_id.get(&id).map(|&slot| &self.relation.tuples()[slot as usize])
    }

    /// Aggregate shape counters.
    pub fn stats(&self) -> IndexStats {
        let mut stats = IndexStats {
            keys: self.key_atoms.len(),
            exact_anchors: 0,
            qgram_anchors: 0,
            derived_anchors: 0,
            token_anchors: 0,
            bag_anchors: 0,
            scan_keys: self.key_atoms.iter().filter(|refs| refs.is_empty()).count(),
            live: self.live,
            tombstones: self.relation.len() - self.live,
            exact_buckets: 0,
            posting_lists: 0,
            sparse_entries: 0,
            postings_bytes: 0,
            postings_uncompressed_bytes: 0,
        };
        for atom in &self.atom_indices {
            match atom {
                AtomIndex::Exact { buckets, .. } => {
                    stats.exact_anchors += 1;
                    stats.exact_buckets += buckets.len();
                }
                AtomIndex::Qgram { postings, sparse, .. } => {
                    stats.qgram_anchors += 1;
                    stats.posting_lists += postings.len();
                    stats.sparse_entries += sparse.len();
                    for list in postings.values() {
                        stats.postings_bytes += list.bytes();
                        stats.postings_uncompressed_bytes += list.uncompressed_bytes();
                    }
                }
                AtomIndex::Derived { buckets, .. } => {
                    stats.derived_anchors += 1;
                    stats.exact_buckets += buckets.len();
                }
                AtomIndex::Tokens { postings, empty, .. } => {
                    stats.token_anchors += 1;
                    stats.posting_lists += postings.len();
                    stats.sparse_entries += empty.len();
                    for list in postings.values() {
                        stats.postings_bytes += list.bytes();
                        stats.postings_uncompressed_bytes += list.uncompressed_bytes();
                    }
                }
                AtomIndex::BagPrefix { postings, empty, .. } => {
                    stats.bag_anchors += 1;
                    stats.posting_lists += postings.len();
                    stats.sparse_entries += empty.len();
                    for list in postings.values() {
                        stats.postings_bytes += list.bytes();
                        stats.postings_uncompressed_bytes += list.uncompressed_bytes();
                    }
                }
            }
        }
        stats
    }

    /// The candidate slots for one probe tuple: per key, the
    /// intersection of its indexed atoms' retrievals (a key is a
    /// conjunction); across keys, the union (the matcher is a
    /// disjunction) — ascending, deduplicated, live slots only. Always a
    /// superset of the slots whose tuples the key disjunction accepts —
    /// the retrieval contract everything else rests on.
    ///
    /// # Panics
    ///
    /// Panics when the probe's arity is smaller than the probe-side
    /// schema the keys were compiled for.
    pub fn candidates_for(&self, probe: &Tuple) -> Vec<usize> {
        let mut stats = FilterStats::default();
        self.candidate_masks(probe, &RelationPrep::single(probe, &self.probe_needs), 0, &mut stats)
            .into_iter()
            .map(|(slot, _)| slot)
            .collect()
    }

    /// Candidate slots for every tuple of a probe *relation*, in probe
    /// order — the batch engine's probe stage. Signature extraction is
    /// shared across the whole batch and probes are chunked over `pool`;
    /// the result is identical to mapping [`MatchIndex::candidates_for`]
    /// over the tuples.
    pub fn candidates_batch_in(&self, pool: &WorkPool, probes: &Relation) -> Vec<Vec<usize>> {
        let prep = RelationPrep::build_in(pool, probes, &self.probe_needs);
        let tuples = probes.tuples();
        let chunks = pool.par_ranges(tuples.len(), BATCH_MIN_CHUNK, |_, range| {
            range
                .map(|row| {
                    let mut stats = FilterStats::default();
                    self.candidate_masks(&tuples[row], &prep, row, &mut stats)
                        .into_iter()
                        .map(|(slot, _)| slot)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        });
        chunks.into_iter().flatten().collect()
    }

    /// [`MatchIndex::candidates_for`] with the probe's signatures already
    /// extracted (the one-row prep is built once per query, not once per
    /// phase), carrying **key provenance**: each candidate slot comes
    /// with the bitmask of the keys whose retrieval produced it. A key
    /// whose bit is clear cannot accept the slot — its retrieval is a
    /// superset of its acceptance — so verification skips it. Plans with
    /// more than 64 keys disable pruning (every mask is [`NO_PRUNE`]);
    /// a scan-fallback key marks every live slot for every key.
    ///
    /// Retrieval work is accounted in `stats`: duplicate retrievals
    /// folded away ([`FilterStats::dedup_saved`]), blocks decoded and
    /// skipped, gallop and linear-scan steps, and candidates killed by
    /// per-entry prefilters ([`FilterStats::retrieval_rejects`]). `row`
    /// is the probe's position in `probe_prep` (batched probes share one
    /// prep).
    ///
    /// Per key, the first atom's retrieval is *materialized* (posting
    /// blocks OR'd into a bitmap, prefilters applied while scanning it
    /// out); each later atom either galloping-intersects a previously
    /// materialized retrieval, or — when the running set is at most
    /// [`LAZY_MAX`] — probes the atom's compressed blocks by membership
    /// without materializing at all. Which path runs depends only on the
    /// probe and the index version, so answers *and* counters are
    /// deterministic per probe. Each materialization feeds the
    /// [`SelectivityObserver`] for the next version's plans.
    fn candidate_masks(
        &self,
        probe: &Tuple,
        probe_prep: &RelationPrep,
        row: usize,
        stats: &mut FilterStats,
    ) -> Vec<(usize, u64)> {
        let prune = self.key_atoms.len() <= 64;
        let n_slots = self.relation.len();
        PROBE_SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let ProbeScratch { words, and_words, decode, keys, elems, chars } = scratch;
            // Prepare and materialize each distinct atom at most once,
            // lazily: several keys usually share atoms, and a key whose
            // earlier atoms already pin the candidates down never pays
            // for its gram retrievals. The refs were ordered
            // most-selective-first at build time.
            let mut prepared: Vec<Option<PreparedAtom<'_>>> =
                (0..self.atom_indices.len()).map(|_| None).collect();
            let mut retrieved: Vec<Option<Vec<u32>>> = vec![None; self.atom_indices.len()];
            let mut pairs: Vec<(u32, u64)> = Vec::new();
            for (key, refs) in self.key_atoms.iter().enumerate() {
                if refs.is_empty() {
                    // Unindexable key: every live slot is a candidate, no
                    // other key can add more, and later keys were never
                    // intersected — so no key may be pruned (and no
                    // duplicate retrievals exist to fold).
                    return (0..n_slots)
                        .filter(|&s| self.alive[s])
                        .map(|s| (s, NO_PRUNE))
                        .collect();
                }
                let bit = if prune { 1u64 << key } else { NO_PRUNE };
                let mut acc: Option<Vec<u32>> = None;

                // Bitmap-AND prefix: while no candidate vector exists
                // yet, fold the key's leading un-memoized posting-backed
                // atoms at the *bitmap* level — whole-word ANDs instead
                // of per-slot scans — deferring every per-entry filter
                // until the intersected set is scanned out once. Dense
                // unions (shared q-grams, common tokens) shrink each
                // other before any slot is visited individually.
                let mut folded: Vec<usize> = Vec::new();
                let mut taken = 0usize;
                for &pos in refs.iter().take(if refs.len() >= 2 { refs.len() } else { 0 }) {
                    if retrieved[pos].is_some() {
                        break; // a memoized union intersects cheaper below
                    }
                    if !folded.is_empty() && popcount(words) <= LAZY_MAX {
                        break; // small enough; remaining atoms go lazy
                    }
                    if prepared[pos].is_none() {
                        prepared[pos] = Some(
                            self.atom_indices[pos]
                                .prepare(probe, probe_prep, row, &self.ops, keys, elems, chars),
                        );
                    }
                    let pa = prepared[pos].as_ref().expect("prepared above");
                    if pa.comp.is_empty() {
                        break; // plain buckets short-circuit via materialize
                    }
                    let target = if folded.is_empty() { &mut *words } else { &mut *and_words };
                    pa.or_bitmap(n_slots, target, decode, stats);
                    self.observer.observe(
                        self.atom_indices[pos].cost_rank(),
                        popcount(target) as f64 / self.live.max(1) as f64,
                    );
                    if !folded.is_empty() {
                        for (w, m) in words.iter_mut().zip(and_words.iter()) {
                            *w &= *m;
                        }
                    }
                    folded.push(pos);
                    taken += 1;
                }
                if folded.len() > 1 {
                    // Scan the intersection out once, through every
                    // deferred per-entry filter.
                    let mut out = Vec::new();
                    for (w, &word) in words.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let slot = (w as u32) * 64 + bits.trailing_zeros();
                            bits &= bits - 1;
                            stats.linear_steps += 1;
                            let ok = folded.iter().all(|&p| {
                                prepared[p]
                                    .as_ref()
                                    .expect("folded atoms prepared")
                                    .filter
                                    .accepts(slot)
                            });
                            if ok {
                                out.push(slot);
                            } else {
                                stats.retrieval_rejects += 1;
                            }
                        }
                    }
                    acc = Some(out);
                } else {
                    taken = 0; // a lone atom materializes (and memoizes) below
                }

                for &pos in &refs[taken..] {
                    if acc.as_ref().is_some_and(|a| a.len() <= ENOUGH) {
                        break; // already cheap to verify; a prefix is sound
                    }
                    if prepared[pos].is_none() {
                        prepared[pos] = Some(
                            self.atom_indices[pos]
                                .prepare(probe, probe_prep, row, &self.ops, keys, elems, chars),
                        );
                    }
                    let pa = prepared[pos].as_ref().expect("prepared above");
                    match acc {
                        Some(ref mut a) if retrieved[pos].is_none() && a.len() <= LAZY_MAX => {
                            // Small running set against an atom nobody
                            // materialized: membership-probe its blocks.
                            lazy_intersect(a, pa, stats);
                        }
                        _ => {
                            if retrieved[pos].is_none() {
                                let list = pa.materialize(n_slots, words, decode, stats);
                                self.observer.observe(
                                    self.atom_indices[pos].cost_rank(),
                                    list.len() as f64 / self.live.max(1) as f64,
                                );
                                retrieved[pos] = Some(list);
                            }
                            let list = retrieved[pos].as_deref().expect("materialized above");
                            match acc {
                                None => acc = Some(list.to_vec()),
                                Some(ref mut a) => gallop_intersect(a, list, stats),
                            }
                        }
                    }
                    if acc.as_ref().is_some_and(Vec::is_empty) {
                        break;
                    }
                }
                pairs.extend(acc.unwrap_or_default().into_iter().map(|slot| (slot, bit)));
            }
            pairs.sort_unstable_by_key(|&(slot, _)| slot);
            let pairs_len = pairs.len();
            // Fold duplicate slots (retrieved by several keys) into one
            // candidate carrying the union of their key bits — each fold
            // is one preparation + verification saved.
            let mut masked: Vec<(u32, u64)> = Vec::with_capacity(pairs.len());
            for (slot, bit) in pairs {
                match masked.last_mut() {
                    Some((last, mask)) if *last == slot => *mask |= bit,
                    _ => masked.push((slot, bit)),
                }
            }
            stats.dedup_saved += (pairs_len - masked.len()) as u64;
            masked
                .into_iter()
                .map(|(slot, mask)| (slot as usize, mask))
                .filter(|&(slot, _)| self.alive[slot])
                .collect()
        })
    }

    /// Point query: every live tuple the probe matches (some key accepts,
    /// no negative rule vetoes), with the key that fired, in ascending
    /// slot order — exactly the pairs a batch run over
    /// `({probe}, relation)` would report for this probe.
    ///
    /// Candidates are deduplicated across keys before verification
    /// (verifications saved by the fold are counted in
    /// [`FilterStats::dedup_saved`]), and each candidate is verified
    /// only against the keys that retrieved it (sound because a key's
    /// retrieval is a superset of its acceptance);
    /// [`QueryOutcome::key_evals`] counts the evaluations actually run.
    /// Answers are byte-identical to [`MatchIndex::query_unpruned`].
    pub fn query(&self, probe: &Tuple) -> QueryOutcome {
        self.query_impl_at(probe, &RelationPrep::single(probe, &self.probe_needs), 0, true)
    }

    /// [`MatchIndex::query`] without key-provenance pruning: every
    /// candidate is verified against the full key disjunction. Answers
    /// are always identical to [`MatchIndex::query`], only
    /// [`QueryOutcome::key_evals`] differs.
    pub fn query_unpruned(&self, probe: &Tuple) -> QueryOutcome {
        self.query_impl_at(probe, &RelationPrep::single(probe, &self.probe_needs), 0, false)
    }

    /// The brute-force reference answer: every live tuple verified
    /// against the full key disjunction, no retrieval at all. The ground
    /// truth of the differential test harness — `hits` are always
    /// identical to [`MatchIndex::query`]'s; `candidates` counts every
    /// live tuple and the work counters reflect the scan.
    pub fn query_reference(&self, probe: &Tuple) -> QueryOutcome {
        let probe_prep = RelationPrep::single(probe, &self.probe_needs);
        let mut stats = FilterStats::default();
        let mut key_evals = 0usize;
        let mut hits = Vec::new();
        for slot in 0..self.relation.len() {
            if !self.alive[slot] {
                continue;
            }
            if let Some(key) = self.matching_key_at(
                probe,
                &probe_prep,
                0,
                slot,
                NO_PRUNE,
                &mut key_evals,
                &mut stats,
            ) {
                if !self.vetoed_at(probe, &probe_prep, 0, slot, &mut stats) {
                    hits.push(QueryHit { id: self.relation.tuples()[slot].id(), slot, key });
                }
            }
        }
        QueryOutcome { hits, candidates: self.live, key_evals, stats }
    }

    /// Queries a batch of probes, sharing signature extraction and
    /// per-thread scratch across the whole batch. Outcomes are
    /// byte-identical — hits, counters and all — to mapping
    /// [`MatchIndex::query`] over the probes one by one; only the
    /// amortized preparation cost differs.
    pub fn query_batch(&self, probes: &[Tuple]) -> Vec<QueryOutcome> {
        let mut prep = RelationPrep::empty(&self.probe_needs);
        for probe in probes {
            prep.push_row(probe);
        }
        probes.iter().enumerate().map(|(row, p)| self.query_impl_at(p, &prep, row, true)).collect()
    }

    /// [`MatchIndex::query_batch`] chunked over `pool`. Chunks are
    /// mapped back in probe order, so the outcomes are identical to the
    /// serial batch (and to one-by-one queries) at any thread count.
    pub fn query_batch_in(&self, pool: &WorkPool, probes: &[Tuple]) -> Vec<QueryOutcome> {
        let mut prep = RelationPrep::empty(&self.probe_needs);
        for probe in probes {
            prep.push_row(probe);
        }
        let chunks = pool.par_ranges(probes.len(), BATCH_MIN_CHUNK, |_, range| {
            range.map(|row| self.query_impl_at(&probes[row], &prep, row, true)).collect::<Vec<_>>()
        });
        chunks.into_iter().flatten().collect()
    }

    fn query_impl_at(
        &self,
        probe: &Tuple,
        probe_prep: &RelationPrep,
        row: usize,
        prune: bool,
    ) -> QueryOutcome {
        let mut stats = FilterStats::default();
        let masked = self.candidate_masks(probe, probe_prep, row, &mut stats);
        let candidates = masked.len();
        let mut key_evals = 0usize;
        let mut hits = Vec::new();
        for (slot, mask) in masked {
            let mask = if prune { mask } else { NO_PRUNE };
            if let Some(key) =
                self.matching_key_at(probe, probe_prep, row, slot, mask, &mut key_evals, &mut stats)
            {
                if !self.vetoed_at(probe, probe_prep, row, slot, &mut stats) {
                    hits.push(QueryHit { id: self.relation.tuples()[slot].id(), slot, key });
                }
            }
        }
        QueryOutcome { hits, candidates, key_evals, stats }
    }

    /// The compiled keys the index retrieves and verifies with.
    pub fn keys(&self) -> &[RelativeKey] {
        &self.keys
    }

    /// A compacted snapshot of the live tuples, in slot order — the
    /// relation an index rebuild (rule swap, tombstone compaction) starts
    /// from. Building a fresh index over this snapshot answers every
    /// query exactly like `self`.
    pub fn live_relation(&self) -> Relation {
        let mut rel = Relation::new(self.relation.schema().clone());
        for (slot, tuple) in self.relation.tuples().iter().enumerate() {
            if self.alive[slot] {
                rel.push(tuple.clone());
            }
        }
        rel
    }

    /// Explains the decision for `(probe, tuple with id)`: every key's
    /// every atom traced through the compiled kernels (operator outcome,
    /// deciding stage, θ-bound and exact edit distance — see
    /// [`AtomTrace`]), plus the veto outcome. Decisions agree exactly
    /// with [`MatchIndex::query`]: `trace.matched()` iff the query
    /// returns the id, and `trace.matched_key` is the hit's key.
    ///
    /// Fails with [`IndexError::UnknownId`] when `id` is not live.
    pub fn explain(&self, probe: &Tuple, id: TupleId) -> Result<PairTrace, IndexError> {
        let &slot = self.by_id.get(&id).ok_or(IndexError::UnknownId { id })?;
        let probe_prep = RelationPrep::single(probe, &self.probe_needs);
        let tuple = &self.relation.tuples()[slot as usize];
        let keys: Vec<KeyTrace> = self
            .keys
            .iter()
            .enumerate()
            .map(|(key, k)| {
                let atoms: Vec<(SimilarityAtom, AtomTrace)> = k
                    .atoms()
                    .iter()
                    .map(|atom| {
                        let trace = self.ops.atom_trace(
                            atom,
                            probe,
                            tuple,
                            &probe_prep,
                            &self.prep,
                            0,
                            slot as usize,
                        );
                        (*atom, trace)
                    })
                    .collect();
                KeyTrace { key, matched: atoms.iter().all(|(_, t)| t.matched), atoms }
            })
            .collect();
        let matched_key = keys.iter().find(|k| k.matched).map(|k| k.key);
        let mut stats = FilterStats::default();
        let vetoed = self.vetoed_at(probe, &probe_prep, 0, slot as usize, &mut stats);
        Ok(PairTrace { keys, matched_key, vetoed })
    }

    /// Inserts one tuple, indexing it under every anchor; returns its
    /// slot. The tuple is immediately visible to queries.
    pub fn insert(&mut self, tuple: Tuple) -> Result<usize, IndexError> {
        let expected = self.relation.schema().arity();
        if tuple.values().len() != expected {
            return Err(IndexError::ArityMismatch { expected, got: tuple.values().len() });
        }
        if self.by_id.contains_key(&tuple.id()) {
            return Err(IndexError::DuplicateId { id: tuple.id() });
        }
        assert!(
            self.relation.len() < u32::MAX as usize,
            "match index supports at most u32::MAX tuples"
        );
        let slot = self.relation.len() as u32;
        // Prep first: the atom indices read the new row's signatures.
        self.prep.push_row(&tuple);
        for atom in &mut self.atom_indices {
            atom.add(slot, &tuple, &self.prep, &self.ops);
        }
        self.by_id.insert(tuple.id(), slot);
        self.alive.push(true);
        self.live += 1;
        self.relation.push(tuple);
        Ok(slot as usize)
    }

    /// Removes the tuple with `id` from query visibility. The slot is
    /// tombstoned and purged from every anchor: plain buckets drop the
    /// entry immediately, compressed posting lists count it dead and
    /// rewrite each block in place once half its entries are dead — so a
    /// heavily-churned index keeps probing at near-fresh cost without a
    /// rebuild. (The relation and signature cache still hold the tuple;
    /// rebuild to reclaim that space.)
    pub fn remove(&mut self, id: TupleId) -> Result<(), IndexError> {
        let slot = self.by_id.remove(&id).ok_or(IndexError::UnknownId { id })?;
        self.alive[slot as usize] = false;
        self.live -= 1;
        let tuple = &self.relation.tuples()[slot as usize];
        for atom in &mut self.atom_indices {
            atom.remove_slot(slot, tuple, &self.prep, &self.ops, &self.alive);
        }
        Ok(())
    }

    /// First key accepting `(probe, tuple@slot)` through the compiled
    /// evaluation path — the index-side counterpart of
    /// [`KeyMatcher::matching_key`]. Keys whose provenance bit is clear
    /// in `mask` are skipped without evaluation: their retrieval did not
    /// produce the slot, so they cannot accept it, and skipping them
    /// cannot change which key fires first.
    #[allow(clippy::too_many_arguments)]
    fn matching_key_at(
        &self,
        probe: &Tuple,
        probe_prep: &RelationPrep,
        row: usize,
        slot: usize,
        mask: u64,
        key_evals: &mut usize,
        stats: &mut FilterStats,
    ) -> Option<usize> {
        let tuple = &self.relation.tuples()[slot];
        for (key, k) in self.keys.iter().enumerate() {
            if !mask_allows(mask, key) {
                continue;
            }
            *key_evals += 1;
            if self.ops.lhs_matches_prepped(
                k.atoms(),
                probe,
                tuple,
                probe_prep,
                &self.prep,
                row,
                slot,
                stats,
            ) {
                return Some(key);
            }
        }
        None
    }

    /// Whether a negative rule vetoes `(probe, tuple@slot)`.
    fn vetoed_at(
        &self,
        probe: &Tuple,
        probe_prep: &RelationPrep,
        row: usize,
        slot: usize,
        stats: &mut FilterStats,
    ) -> bool {
        let tuple = &self.relation.tuples()[slot];
        self.negatives.iter().any(|rule| {
            rule.vetoes(|atom| {
                self.ops.atom_matches_prepped(
                    atom, probe, tuple, probe_prep, &self.prep, row, slot, stats,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matchrules_core::dependency::SimilarityAtom;
    use matchrules_core::operators::OperatorTable;
    use matchrules_core::paper::example_2_4_rcks;
    use matchrules_core::schema::Schema;
    use matchrules_data::eval::paper_registry;
    use matchrules_data::fig1;
    use matchrules_data::value::Value;
    use matchrules_simdist::ops::{EqualityOp, SynonymOp};

    fn fig1_index(
    ) -> (matchrules_core::paper::PaperSetting, matchrules_data::relation::InstancePair, MatchIndex)
    {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
        let rcks = example_2_4_rcks(&setting);
        let index =
            MatchIndex::build(setting.pair.left().arity(), inst.right(), &rcks, &[], ops).unwrap();
        (setting, inst, index)
    }

    #[test]
    fn query_agrees_with_key_matcher_on_the_cross_product() {
        let (setting, inst, index) = fig1_index();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        for probe in inst.left().tuples() {
            let outcome = index.query(probe);
            for (slot, tuple) in inst.right().tuples().iter().enumerate() {
                let expect = matcher.matching_key(probe, tuple);
                let got = outcome.hits.iter().find(|h| h.slot == slot).map(|h| h.key);
                assert_eq!(got, expect, "probe #{} vs slot {slot}", probe.id());
            }
            assert!(outcome.candidates >= outcome.hits.len());
        }
    }

    #[test]
    fn parallel_build_answers_like_serial() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
        let rcks = example_2_4_rcks(&setting);
        let serial =
            MatchIndex::build(setting.pair.left().arity(), inst.right(), &rcks, &[], ops.clone())
                .unwrap();
        for threads in [2, 8] {
            let pool = WorkPool::with_threads(threads);
            let parallel = MatchIndex::build_in(
                &pool,
                setting.pair.left().arity(),
                inst.right(),
                &rcks,
                &[],
                ops.clone(),
            )
            .unwrap();
            for probe in inst.left().tuples() {
                assert_eq!(parallel.query(probe).hits, serial.query(probe).hits);
                assert_eq!(parallel.candidates_for(probe), serial.candidates_for(probe));
            }
        }
    }

    #[test]
    fn insert_makes_a_tuple_queryable_and_remove_hides_it() {
        let (_setting, inst, mut index) = fig1_index();
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        assert_eq!(index.len(), 4);
        // A fifth billing tuple: t5's twin under a fresh id.
        let twin = inst.right().by_id(fig1::ids::T5).unwrap();
        let inserted = Tuple::new(99, twin.values().to_vec());
        let slot = index.insert(inserted).unwrap();
        assert_eq!(index.len(), 5);
        assert!(index.contains(99));
        let hits = index.query(t1).hits;
        assert!(hits.iter().any(|h| h.id == 99 && h.slot == slot), "{hits:?}");

        index.remove(99).unwrap();
        assert_eq!(index.len(), 4);
        assert!(!index.contains(99));
        assert!(index.query(t1).hits.iter().all(|h| h.id != 99));
        assert_eq!(index.stats().tombstones, 1);
        // Removing again is an error; so is removing the never-indexed.
        assert_eq!(index.remove(99), Err(IndexError::UnknownId { id: 99 }));
    }

    #[test]
    fn insert_validates_arity_and_id() {
        let (_setting, inst, mut index) = fig1_index();
        let bad = Tuple::new(100, vec![Value::str("x")]);
        assert!(matches!(index.insert(bad), Err(IndexError::ArityMismatch { got: 1, .. })));
        let dup_id = inst.right().tuples()[0].id();
        let dup = Tuple::new(dup_id, inst.right().tuples()[0].values().to_vec());
        assert_eq!(index.insert(dup), Err(IndexError::DuplicateId { id: dup_id }));
    }

    #[test]
    fn duplicate_ids_fail_the_build() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
        let rcks = example_2_4_rcks(&setting);
        let mut rel = inst.right().clone();
        rel.push(Tuple::new(
            inst.right().tuples()[0].id(),
            inst.right().tuples()[0].values().to_vec(),
        ));
        let err = MatchIndex::build(setting.pair.left().arity(), &rel, &rcks, &[], ops);
        assert!(matches!(err, Err(IndexError::DuplicateId { .. })));
    }

    #[test]
    fn negative_rules_veto_query_hits() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
        let rcks = example_2_4_rcks(&setting);
        let email_l = setting.pair.left().attr("email").unwrap();
        let email_r = setting.pair.right().attr("email").unwrap();
        let g_l = setting.pair.left().attr("gender").unwrap();
        let g_r = setting.pair.right().attr("gender").unwrap();
        let negatives = vec![NegativeRule::same_but_different(
            &setting.pair,
            "email-gender",
            (email_l, email_r),
            (g_l, g_r),
        )
        .unwrap()];
        let index = MatchIndex::build(
            setting.pair.left().arity(),
            inst.right(),
            &rcks,
            &negatives,
            ops.clone(),
        )
        .unwrap();
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        let t5_slot = inst.right().tuples().iter().position(|t| t.id() == fig1::ids::T5).unwrap();
        let hits = index.query(t1).hits;
        // Same veto outcome as the KeyMatcher test: t5 vetoed, t4 kept.
        assert!(hits.iter().all(|h| h.slot != t5_slot), "{hits:?}");
        let t4_slot = inst.right().tuples().iter().position(|t| t.id() == fig1::ids::T4).unwrap();
        assert!(hits.iter().any(|h| h.slot == t4_slot));
    }

    /// A registry whose `≈opaque` operator declares `IndexStrategy::Scan`
    /// (a synonym table with a fallback — the one standard shape retrieval
    /// cannot cover) but still matches like plain equality.
    fn scan_registry() -> matchrules_simdist::ops::OpRegistry {
        let mut reg = paper_registry();
        reg.register(Arc::new(
            SynonymOp::from_groups("≈opaque", Vec::<Vec<&str>>::new())
                .with_fallback(Arc::new(EqualityOp)),
        ));
        reg
    }

    #[test]
    fn unindexable_keys_fall_back_to_scanning() {
        // A key whose only operator declares Scan: the key gets no
        // anchor, and every live tuple becomes a candidate.
        let schema = Arc::new(Schema::text("R", &["name"]).unwrap());
        let mut rel = Relation::new(schema);
        rel.push_strs(1, &["Jones"]);
        rel.push_strs(2, &["Johnson"]);
        let mut table = OperatorTable::new();
        let op = table.intern("≈opaque");
        let ops = Arc::new(RuntimeOps::resolve(&table, &scan_registry()).unwrap());
        let key = RelativeKey::new(vec![SimilarityAtom::new(0, 0, op)]);
        let index = MatchIndex::build(1, &rel, std::slice::from_ref(&key), &[], ops).unwrap();
        assert_eq!(index.stats().scan_keys, 1);
        let probe = Tuple::new(7, vec![Value::str("Jones")]);
        assert_eq!(index.candidates_for(&probe), vec![0, 1]);
        let hits = index.query(&probe).hits;
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn qgram_anchor_retrieves_near_matches_and_sparse_short_strings() {
        // One key, one edit atom: the anchor is a q-gram posting index.
        let schema = Arc::new(Schema::text("R", &["name"]).unwrap());
        let mut rel = Relation::new(schema);
        rel.push_strs(1, &["Clifford"]);
        rel.push_strs(2, &["Cliford"]); // 1 edit from Clifford
        rel.push_strs(3, &["Z"]); // one char: no grams, below the safe length
        rel.push_strs(4, &["Washington"]);
        let mut table = OperatorTable::new();
        let dl = table.intern("≈dl"); // θ = 0.8
        let ops = Arc::new(RuntimeOps::resolve(&table, &paper_registry()).unwrap());
        let key = RelativeKey::new(vec![SimilarityAtom::new(0, 0, dl)]);
        let index = MatchIndex::build(1, &rel, std::slice::from_ref(&key), &[], ops).unwrap();
        let stats = index.stats();
        assert_eq!(stats.qgram_anchors, 1);
        assert!(stats.sparse_entries >= 1, "short strings live on the sparse list");

        let probe = Tuple::new(9, vec![Value::str("Clifford")]);
        let hits = index.query(&probe).hits;
        assert_eq!(
            hits.iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![1, 2],
            "both Clifford variants, nothing else"
        );
        // A gram-less probe can only be reached through the sparse list
        // (at θ = 0.8 a length-1 pair matches only on equality).
        let short = Tuple::new(10, vec![Value::str("Z")]);
        let hits = index.query(&short).hits;
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3]);
        // A null probe matches nothing.
        let null = Tuple::new(11, vec![Value::Null]);
        assert!(index.query(&null).hits.is_empty());
        assert!(index.candidates_for(&null).is_empty());
    }

    #[test]
    fn provenance_pruning_is_byte_identical_and_cheaper() {
        let (_setting, inst, index) = fig1_index();
        let mut pruned_evals = 0usize;
        let mut full_evals = 0usize;
        for probe in inst.left().tuples() {
            let pruned = index.query(probe);
            let full = index.query_unpruned(probe);
            assert_eq!(pruned.hits, full.hits, "probe #{}", probe.id());
            assert_eq!(pruned.candidates, full.candidates);
            assert!(pruned.key_evals <= full.key_evals);
            pruned_evals += pruned.key_evals;
            full_evals += full.key_evals;
        }
        assert!(
            pruned_evals < full_evals,
            "pruning must skip some key evaluations ({pruned_evals} vs {full_evals})"
        );
    }

    #[test]
    fn scan_fallback_disables_pruning() {
        // Key 0 is indexable, key 1 declares Scan: every live slot
        // must still be verified against *both* keys — a hit through the
        // scan key must not be lost to pruning.
        let schema = Arc::new(Schema::text("R", &["name", "alias"]).unwrap());
        let mut rel = Relation::new(schema);
        rel.push_strs(1, &["Jones", "JJ"]);
        rel.push_strs(2, &["Smith", "Slim"]);
        let mut table = OperatorTable::new();
        let eq = table.intern("=");
        let op = table.intern("≈opaque");
        let ops = Arc::new(RuntimeOps::resolve(&table, &scan_registry()).unwrap());
        let keys = vec![
            RelativeKey::new(vec![SimilarityAtom::new(0, 0, eq)]),
            RelativeKey::new(vec![SimilarityAtom::new(1, 1, op)]),
        ];
        let index = MatchIndex::build(2, &rel, &keys, &[], ops).unwrap();
        assert_eq!(index.stats().scan_keys, 1);
        // "Slim" matches only via the opaque alias key; the name key's
        // exact bucket never retrieves slot 1.
        let probe = Tuple::new(9, vec![Value::str("nobody"), Value::str("Slim")]);
        let outcome = index.query(&probe);
        assert_eq!(outcome.hits.len(), 1);
        assert_eq!(outcome.hits[0].id, 2);
        assert_eq!(outcome.hits[0].key, 1);
        assert_eq!(outcome.hits, index.query_unpruned(&probe).hits);
    }

    /// One single-atom key over a one-column relation, with the hit sets
    /// checked against a brute-force scan through the same operator.
    fn single_atom_index(op_name: &str, values: &[&str]) -> (MatchIndex, Arc<RuntimeOps>) {
        let schema = Arc::new(Schema::text("R", &["v"]).unwrap());
        let mut rel = Relation::new(schema);
        for (i, v) in values.iter().enumerate() {
            // Not push_strs: "" must stay a real empty string here (the
            // empty-bucket behaviour under set/bag anchors is under test).
            rel.push(Tuple::new(i as u64 + 1, vec![Value::str(v)]));
        }
        let mut table = OperatorTable::new();
        let op = table.intern(op_name);
        let ops = Arc::new(RuntimeOps::resolve(&table, &paper_registry()).unwrap());
        let key = RelativeKey::new(vec![SimilarityAtom::new(0, 0, op)]);
        let index =
            MatchIndex::build(1, &rel, std::slice::from_ref(&key), &[], ops.clone()).unwrap();
        (index, ops)
    }

    /// Asserts that the index's hit set for each probe equals the scan
    /// answer, and that candidates are a superset of the hits.
    fn assert_matches_scan(index: &MatchIndex, ops: &RuntimeOps, op_name: &str, probes: &[&str]) {
        let mut table = OperatorTable::new();
        let op = table.intern(op_name);
        let ops2 = RuntimeOps::resolve(&table, &paper_registry()).unwrap();
        let _ = ops; // decisions below run through the rebuilt table
        for (i, p) in probes.iter().enumerate() {
            let probe = Tuple::new(1000 + i as u64, vec![Value::str(p)]);
            let hits: Vec<u64> = index.query(&probe).hits.iter().map(|h| h.id).collect();
            let scan: Vec<u64> = index
                .relation()
                .tuples()
                .iter()
                .filter(|t| {
                    index.contains(t.id()) && ops2.value_matches(op, probe.get(0), t.get(0))
                })
                .map(|t| t.id())
                .collect();
            assert_eq!(hits, scan, "{op_name} probe {p:?}");
            let cands = index.candidates_for(&probe);
            for hit in &hits {
                let slot = index.relation().tuples().iter().position(|t| t.id() == *hit);
                assert!(cands.contains(&slot.unwrap()), "{op_name} probe {p:?} missed {hit}");
            }
        }
    }

    #[test]
    fn derived_anchor_buckets_soundex_codes() {
        let values = ["Robert", "Rupert", "Smith", "Smyth", "", "908-1111"];
        let (index, ops) = single_atom_index("≈sx", &values);
        let stats = index.stats();
        assert_eq!(stats.derived_anchors, 1);
        assert_eq!(stats.scan_keys, 0);
        assert_matches_scan(&index, &ops, "≈sx", &["Robert", "Smith", "smith", "", "none"]);
        // Soundex twins are retrieved through one bucket, not a scan.
        let probe = Tuple::new(50, vec![Value::str("Robert")]);
        let cands = index.candidates_for(&probe);
        assert!(cands.len() < values.len(), "bucket should prune: {cands:?}");
    }

    #[test]
    fn token_anchor_retrieves_by_shared_tokens_with_ratio_filter() {
        let values = [
            "10 Oak Street",
            "Oak Street 10",
            "10 Maple Avenue",
            "!!!", // token-less: empty-elements bucket
            "Oak",
        ];
        let (index, ops) = single_atom_index("≈tok", &values);
        let stats = index.stats();
        assert_eq!(stats.token_anchors, 1);
        assert_eq!(stats.scan_keys, 0);
        assert!(stats.sparse_entries >= 1, "token-less value on the empty list");
        assert_matches_scan(
            &index,
            &ops,
            "≈tok",
            &["10 Oak Street", "oak street", "???", "Maple", ""],
        );
        // A token-less probe retrieves only the empty bucket, never the
        // full relation.
        let probe = Tuple::new(60, vec![Value::str("...")]);
        assert_eq!(index.candidates_for(&probe), vec![3]);
    }

    #[test]
    fn qgram_dice_anchor_uses_element_postings() {
        let values = ["Clifford", "Cliford", "Washington", ""];
        let (index, ops) = single_atom_index("≈qg", &values);
        let stats = index.stats();
        assert_eq!(stats.token_anchors, 1, "Dice anchors through element postings");
        assert_eq!(stats.qgram_anchors, 0);
        assert_matches_scan(&index, &ops, "≈qg", &["Clifford", "Washingtan", "", "zzz"]);
    }

    #[test]
    fn bag_prefix_anchor_is_sound_for_jaro_winkler() {
        let values = ["Clifford", "Cliford", "martha", "marhta", "Jones", ""];
        let (index, ops) = single_atom_index("≈jw", &values);
        let stats = index.stats();
        assert_eq!(stats.bag_anchors, 1);
        assert_eq!(stats.scan_keys, 0, "jw at 0.9 must be indexable");
        assert_matches_scan(&index, &ops, "≈jw", &["Clifford", "marhta", "Jonse", "", "xyz"]);
        // An empty probe only reaches the empty-string bucket.
        let probe = Tuple::new(70, vec![Value::str("")]);
        assert_eq!(index.candidates_for(&probe), vec![5]);
    }

    #[test]
    fn new_anchors_support_insert_and_remove() {
        for op_name in ["≈sx", "≈tok", "≈jw", "≈qg", "≈num"] {
            let (mut index, _ops) = single_atom_index(op_name, &["Robert", "Oak Street"]);
            let probe = Tuple::new(90, vec![Value::str("Robert")]);
            let before = index.query(&probe).hits.len();
            index.insert(Tuple::new(42, vec![Value::str("Robert")])).unwrap();
            let hits = index.query(&probe).hits;
            assert_eq!(hits.len(), before + 1, "{op_name}: insert not visible");
            assert!(hits.iter().any(|h| h.id == 42));
            index.remove(42).unwrap();
            let hits = index.query(&probe).hits;
            assert_eq!(hits.len(), before, "{op_name}: remove not hidden");
            assert!(hits.iter().all(|h| h.id != 42));
        }
    }

    #[test]
    fn dedup_saved_counts_folded_candidates() {
        // Two keys over the same attribute: every value retrieved by both
        // keys is folded into one candidate, and the fold is counted.
        let schema = Arc::new(Schema::text("R", &["name"]).unwrap());
        let mut rel = Relation::new(schema);
        rel.push_strs(1, &["Jones"]);
        rel.push_strs(2, &["Jonse"]);
        let mut table = OperatorTable::new();
        let eq = table.intern("=");
        let sx = table.intern("≈sx");
        let ops = Arc::new(RuntimeOps::resolve(&table, &paper_registry()).unwrap());
        let keys = vec![
            RelativeKey::new(vec![SimilarityAtom::new(0, 0, eq)]),
            RelativeKey::new(vec![SimilarityAtom::new(0, 0, sx)]),
        ];
        let index = MatchIndex::build(1, &rel, &keys, &[], ops).unwrap();
        let probe = Tuple::new(9, vec![Value::str("Jones")]);
        let outcome = index.query(&probe);
        // "Jones" is retrieved by the equality key AND the soundex key:
        // one duplicate folded; "Jonse" only by soundex.
        assert_eq!(outcome.candidates, 2);
        assert_eq!(outcome.stats.dedup_saved, 1);
        assert_eq!(outcome.hits.len(), 2);
    }

    #[test]
    fn safe_len_matches_hand_checked_values() {
        // θ = 0.8, q = 2: bound = ⌊0.2·L⌋ is 0 up to L = 4, so only
        // gram-less length-1 strings are unguaranteed.
        assert_eq!(qgram_safe_len(0.8, 2), Some(2));
        // θ = 0.75, q = 2: L = 4 has bound 1 and 3 grams — 3 − 3 < 1 —
        // while every L ≥ 5 is guaranteed.
        assert_eq!(qgram_safe_len(0.75, 2), Some(5));
        // (1 − θ)(q + 1) ≥ 1: no length is ever guaranteed.
        assert_eq!(qgram_safe_len(0.6, 2), None);
        assert_eq!(qgram_safe_len(0.0, 2), None);
    }

    #[test]
    fn safe_len_guarantee_is_sound_exhaustively() {
        // For every length pair below 4·safe_len, any two strings within
        // the θ-bound must share a gram when max(len) ≥ safe_len. Checked
        // structurally: needed-grams arithmetic, per length pair.
        for theta in [0.7, 0.75, 0.8, 0.9] {
            let q = FILTER_Q;
            let safe = qgram_safe_len(theta, q).unwrap();
            for la in 0..safe * 4 {
                for lb in 0..safe * 4 {
                    let max_len = la.max(lb);
                    if max_len < safe || max_len == 0 {
                        continue;
                    }
                    let bound = theta_bound(theta, max_len);
                    let grams = (max_len + 1).saturating_sub(q) as i64;
                    assert!(
                        grams - (bound * (q + 1)) as i64 >= 1,
                        "θ={theta} la={la} lb={lb}: safe length {safe} is wrong"
                    );
                }
            }
        }
    }

    #[test]
    fn explain_agrees_with_query_and_key_matcher() {
        let (setting, inst, index) = fig1_index();
        let ops = RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap();
        let rcks = example_2_4_rcks(&setting);
        let matcher = KeyMatcher::new(rcks.iter(), &ops);
        for probe in inst.left().tuples() {
            let hits = index.query(probe).hits;
            for tuple in inst.right().tuples() {
                let trace = index.explain(probe, tuple.id()).unwrap();
                // Final decision and key provenance match the query path.
                let hit = hits.iter().find(|h| h.id == tuple.id());
                assert_eq!(trace.matched(), hit.is_some());
                assert_eq!(trace.matched_key, matcher.matching_key(probe, tuple));
                // Every atom of every key agrees with the dynamic path.
                assert_eq!(trace.keys.len(), rcks.len());
                for (key, kt) in rcks.iter().zip(&trace.keys) {
                    assert_eq!(kt.atoms.len(), key.atoms().len());
                    assert_eq!(kt.matched, ops.lhs_matches(key.atoms(), probe, tuple));
                    for (atom, at) in &kt.atoms {
                        assert_eq!(at.matched, ops.atom_matches(atom, probe, tuple));
                    }
                }
            }
        }
        // Unknown (and removed) ids are errors.
        assert!(matches!(
            index.explain(inst.left().tuples().first().unwrap(), 999),
            Err(IndexError::UnknownId { id: 999 })
        ));
    }

    #[test]
    fn live_relation_snapshot_rebuilds_identically() {
        let (setting, inst, mut index) = fig1_index();
        let removed = inst.right().tuples()[1].id();
        index.remove(removed).unwrap();
        let live = index.live_relation();
        assert_eq!(live.len(), index.len());
        assert!(live.by_id(removed).is_none());
        let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
        let rebuilt =
            MatchIndex::build(setting.pair.left().arity(), &live, index.keys(), &[], ops).unwrap();
        assert_eq!(rebuilt.stats().tombstones, 0);
        for probe in inst.left().tuples() {
            let a: Vec<_> = index.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
            let b: Vec<_> = rebuilt.query(probe).hits.iter().map(|h| (h.id, h.key)).collect();
            assert_eq!(a, b, "rebuilt index diverges for probe #{}", probe.id());
        }
    }

    #[test]
    fn empty_key_list_matches_nothing() {
        let (setting, inst) = fig1::setting_and_instance();
        let ops = Arc::new(RuntimeOps::resolve(&setting.ops, &paper_registry()).unwrap());
        let index =
            MatchIndex::build(setting.pair.left().arity(), inst.right(), &[], &[], ops).unwrap();
        let t1 = inst.left().by_id(fig1::ids::T1).unwrap();
        assert!(index.query(t1).hits.is_empty());
        assert!(!index.is_empty());
        assert_eq!(index.stats().keys, 0);
    }
}
