//! Deterministic ordered reduction: parallel chunk map, serial fold in
//! chunk order.

use crate::pool::WorkPool;

/// Maps contiguous chunks of `items` through `map` in parallel, then
/// folds the chunk results **in chunk order** with `fold`, starting from
/// `init`. Because the fold order is the chunk order — not the
/// completion order — the reduction is deterministic even for
/// non-commutative folds (e.g. merging matched pairs into a union-find,
/// deduplicating candidates while keeping first-seen order).
pub fn ordered_reduce<T, A, B, M, F>(
    pool: &WorkPool,
    items: &[T],
    min_chunk: usize,
    map: M,
    init: B,
    mut fold: F,
) -> B
where
    T: Sync,
    A: Send,
    M: Fn(usize, &[T]) -> A + Sync,
    F: FnMut(B, A) -> B,
{
    pool.par_chunks(items, min_chunk, map).into_iter().fold(init, &mut fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_commutative_fold_is_deterministic() {
        let items: Vec<u32> = (0..2_000).collect();
        let serial: String =
            items.iter().filter(|x| *x % 97 == 0).map(|x| format!("{x},")).collect();
        for threads in [1, 2, 5, 8] {
            let pool = WorkPool::with_threads(threads);
            let got = ordered_reduce(
                &pool,
                &items,
                1,
                |_, chunk| {
                    chunk
                        .iter()
                        .filter(|x| *x % 97 == 0)
                        .map(|x| format!("{x},"))
                        .collect::<String>()
                },
                String::new(),
                |mut acc, s: String| {
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(got, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_input_returns_init() {
        let pool = WorkPool::with_threads(4);
        let got = ordered_reduce(&pool, &[] as &[u8], 1, |_, _| 1u64, 10u64, |a, b| a + b);
        assert_eq!(got, 10);
    }
}
