//! # matchrules-runtime
//!
//! A std-only parallel execution runtime for the match engine: no
//! crates.io dependencies, no unsafe code — just [`std::thread::scope`]
//! under a work-chunking facade.
//!
//! The §6 workloads (multi-pass sorted neighborhood, blocking, pairwise
//! key evaluation) are embarrassingly parallel over sort passes, blocks
//! and candidate pairs, but every result the engine reports must be
//! **byte-identical to the serial run**. The runtime therefore provides
//! deterministic primitives only:
//!
//! * [`WorkPool::par_chunks`] — apply a closure to contiguous chunks of a
//!   slice, claimed dynamically by workers, with results returned **in
//!   chunk order** regardless of scheduling;
//! * [`WorkPool::par_map_collect`] — per-element map with the output in
//!   input order;
//! * [`WorkPool::par_sort_by`] — stable parallel sort (per-chunk sort +
//!   k-way merge with chunk-index tie-break), equal to the serial stable
//!   sort;
//! * [`ordered_reduce`] — parallel chunk map + serial fold in chunk
//!   order.
//!
//! For the serving layers there is one concurrency primitive next to the
//! pool: [`EpochCell`], an atomically-swapped shared snapshot
//! (`Arc<T>` + monotone epoch counter) whose steady-state read path is
//! lock-free through the per-reader [`EpochReader`] cache — the
//! publish/subscribe half of the "build off to the side, then swap"
//! pattern.
//!
//! Thread counts come from [`ExecConfig`] (`Threads::Auto` resolves to
//! the hardware parallelism). A pool with one thread executes everything
//! inline, so the serial path and the parallel path share one code path.
//!
//! ```
//! use matchrules_runtime::{ExecConfig, Threads, WorkPool};
//!
//! let pool = WorkPool::new(ExecConfig { threads: Threads::Fixed(4) });
//! let squares = pool.par_map_collect(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod epoch;
mod pool;
mod reduce;
mod sort;

pub use config::{ExecConfig, Threads};
pub use epoch::{EpochCell, EpochReader};
pub use pool::WorkPool;
pub use reduce::ordered_reduce;
