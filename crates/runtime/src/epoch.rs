//! [`EpochCell`]: an atomically-swapped shared snapshot with an epoch
//! counter, and [`EpochReader`], a per-reader cache that makes the
//! steady-state read path lock-free.
//!
//! The serving layers publish immutable snapshots (`Arc<T>`) that many
//! reader threads consume while a writer occasionally replaces the whole
//! value — the "build off to the side, then swap" pattern of the rule
//! hot-swap, extended to every mutation. `std` has no atomic `Arc` swap,
//! so the cell pairs a mutex-guarded slot with a monotone [`AtomicU64`]
//! **epoch** that is bumped *after* every store:
//!
//! * [`EpochCell::store`] replaces the snapshot and bumps the epoch — the
//!   lock is held only for the pointer assignment, never while the new
//!   value is being built;
//! * [`EpochCell::load`] clones the `Arc` under the lock — a few
//!   nanoseconds, but still a lock;
//! * [`EpochReader`] removes even that: each reader caches the `Arc` it
//!   last loaded together with the epoch it observed, and
//!   [`EpochReader::get`] revalidates with **one atomic load**. While no
//!   writer publishes — the hot serving state — readers touch no lock at
//!   all; after a publish, each reader pays one `load` to refresh.
//!
//! A reader therefore never blocks on a rebuild and never observes a
//! torn value: it either holds the previous snapshot or the new one,
//! both complete. The cost of this std-only design is that a refresh
//! (and a cold `load`) takes the mutex briefly; the epoch fast path is
//! what makes saturated read loops lock-free in practice.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically-replaceable `Arc<T>` slot with a monotone epoch.
///
/// ```
/// use matchrules_runtime::{EpochCell, EpochReader};
/// use std::sync::Arc;
///
/// let cell = EpochCell::new(Arc::new(1));
/// let mut reader = EpochReader::new(&cell);
/// assert_eq!(**reader.get(&cell), 1);
/// cell.store(Arc::new(2));
/// assert_eq!(**reader.get(&cell), 2); // one refresh after the swap
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    slot: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        EpochCell { slot: Mutex::new(value), epoch: AtomicU64::new(0) }
    }

    /// The current epoch: bumped by one **after** every [`EpochCell::store`].
    /// A reader that re-checks the epoch and sees its cached value's
    /// number is guaranteed the cell still holds that value.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The current snapshot (an `Arc` clone under a briefly-held lock),
    /// with the epoch it was read at.
    pub fn load(&self) -> (Arc<T>, u64) {
        // Recover from poisoning: the guarded value is a plain Arc, so a
        // panicking reader elsewhere cannot have left it torn — a server
        // must keep serving.
        let slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        // The epoch is read while the lock is held, so it is the number
        // of the store that published exactly this Arc (stores bump the
        // epoch inside the lock too).
        let epoch = self.epoch.load(Ordering::Acquire);
        (slot.clone(), epoch)
    }

    /// Publishes a new snapshot and bumps the epoch. The lock is held
    /// only for the pointer swap; build the value before calling.
    pub fn store(&self, value: Arc<T>) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = value;
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Atomically replaces the snapshot with `f(current)` and returns the
    /// new value. The lock is held across `f`, so keep `f` cheap (pointer
    /// shuffling, not index rebuilding) — concurrent `update`s serialize
    /// here, which is exactly what a multi-writer publish point needs.
    pub fn update(&self, f: impl FnOnce(&Arc<T>) -> Arc<T>) -> Arc<T> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let next = f(&slot);
        *slot = next.clone();
        self.epoch.fetch_add(1, Ordering::Release);
        next
    }
}

/// A per-reader cache over an [`EpochCell`]: holds the last snapshot and
/// revalidates it with one atomic load, so the unchanged-epoch hot path
/// takes no lock. One reader per thread; the reader is `Send` but not
/// meant to be shared.
#[derive(Debug)]
pub struct EpochReader<T> {
    value: Arc<T>,
    epoch: u64,
}

impl<T> EpochReader<T> {
    /// A reader primed with the cell's current snapshot.
    pub fn new(cell: &EpochCell<T>) -> Self {
        let (value, epoch) = cell.load();
        EpochReader { value, epoch }
    }

    /// The cell's current snapshot: the cached `Arc` when the epoch is
    /// unchanged (no lock), a fresh [`EpochCell::load`] otherwise.
    pub fn get(&mut self, cell: &EpochCell<T>) -> &Arc<T> {
        if cell.epoch() != self.epoch {
            let (value, epoch) = cell.load();
            self.value = value;
            self.epoch = epoch;
        }
        &self.value
    }

    /// The epoch the cached snapshot was published at — after
    /// [`EpochReader::get`], the epoch of the value it returned. Lets
    /// callers key caches on "which publish produced this".
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn store_bumps_epoch_and_load_sees_the_new_value() {
        let cell = EpochCell::new(Arc::new("a"));
        assert_eq!(cell.epoch(), 0);
        let (v, e) = cell.load();
        assert_eq!((*v, e), ("a", 0));
        cell.store(Arc::new("b"));
        assert_eq!(cell.epoch(), 1);
        assert_eq!(*cell.load().0, "b");
    }

    #[test]
    fn reader_caches_until_the_epoch_moves() {
        let cell = EpochCell::new(Arc::new(10));
        let mut reader = EpochReader::new(&cell);
        let first = Arc::as_ptr(reader.get(&cell));
        // Unchanged epoch: the very same Arc comes back.
        assert_eq!(Arc::as_ptr(reader.get(&cell)), first);
        cell.store(Arc::new(11));
        assert_eq!(**reader.get(&cell), 11);
        assert_ne!(Arc::as_ptr(reader.get(&cell)), first);
    }

    #[test]
    fn update_serializes_read_modify_write() {
        let cell = EpochCell::new(Arc::new(0u64));
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        cell.update(|v| Arc::new(**v + 1));
                    }
                });
            }
        });
        assert_eq!(*cell.load().0, 400);
        assert_eq!(cell.epoch(), 400);
    }

    #[test]
    fn readers_never_observe_a_torn_snapshot() {
        // Snapshots are (n, n): a torn read would see unequal halves.
        let cell = EpochCell::new(Arc::new((0u64, 0u64)));
        let stop = AtomicBool::new(false);
        thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let mut reader = EpochReader::new(&cell);
                    while !stop.load(Ordering::Relaxed) {
                        let snap = reader.get(&cell);
                        assert_eq!(snap.0, snap.1, "torn snapshot");
                    }
                });
            }
            for n in 1..=1000u64 {
                cell.store(Arc::new((n, n)));
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 1000);
    }
}
