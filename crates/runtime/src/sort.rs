//! Parallel stable sort: per-chunk sort + k-way merge.
//!
//! The merge breaks ties by run index (earlier run first), so the result
//! is exactly the serial **stable** sort of the input — callers can swap
//! serial and parallel sorting without changing a single output byte.

use crate::pool::WorkPool;
use std::cmp::Ordering;
use std::thread;

/// Below this length the scoped-thread spawn cost dominates; sort
/// inline.
const PAR_SORT_MIN: usize = 4 * 1024;

impl WorkPool {
    /// Sorts `v` by `cmp`, in parallel when the pool and the input are
    /// large enough. Always equivalent to `v.sort_by(cmp)` (the stable
    /// serial sort).
    pub fn par_sort_by<T, F>(&self, v: &mut Vec<T>, cmp: F)
    where
        T: Send,
        F: Fn(&T, &T) -> Ordering + Sync,
    {
        let n = v.len();
        if self.threads() <= 1 || n < PAR_SORT_MIN {
            v.sort_by(cmp);
            return;
        }

        // Split into one run per thread (contiguous, ~equal length —
        // comparison cost is uniform enough that static assignment
        // beats chunk claiming here).
        let runs_wanted = self.threads().min(n);
        let run_len = n.div_ceil(runs_wanted);
        let mut rest = std::mem::take(v);
        let mut runs: Vec<Vec<T>> = Vec::with_capacity(runs_wanted);
        while rest.len() > run_len {
            let tail = rest.split_off(run_len);
            runs.push(rest);
            rest = tail;
        }
        runs.push(rest);

        thread::scope(|scope| {
            // The caller sorts the first run itself while the spawned
            // threads take the rest.
            let (first, rest) = runs.split_first_mut().expect("at least one run");
            for run in rest {
                let cmp = &cmp;
                scope.spawn(move || run.sort_by(cmp));
            }
            first.sort_by(&cmp);
        });

        *v = merge_runs(runs, &cmp);
    }
}

/// K-way merge of sorted runs; ties go to the earliest run (stability).
/// `k` is at most the pool width, so the linear head scan stays cheaper
/// than a binary heap's bookkeeping. Runs are reversed so the current
/// head is `last()` (peeked immutably) and consuming it is a `pop()`.
fn merge_runs<T>(mut runs: Vec<Vec<T>>, cmp: &impl Fn(&T, &T) -> Ordering) -> Vec<T> {
    let total: usize = runs.iter().map(Vec::len).sum();
    for run in &mut runs {
        run.reverse();
    }
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for i in 0..runs.len() {
            let Some(candidate) = runs[i].last() else { continue };
            best = match best {
                None => Some(i),
                Some(b) => {
                    // Strict `Less` only: an equal later run must not
                    // win, or stability breaks.
                    let head = runs[b].last().expect("best run is non-empty");
                    if cmp(candidate, head) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        match best {
            Some(i) => out.push(runs[i].pop().expect("peeked head exists")),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random u64s (SplitMix64).
    fn noise(n: usize, mut state: u64) -> Vec<u64> {
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
            .collect()
    }

    #[test]
    fn par_sort_equals_serial_sort() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkPool::with_threads(threads);
            let mut a = noise(10_000, 42);
            let mut b = a.clone();
            pool.par_sort_by(&mut a, |x, y| x.cmp(y));
            b.sort();
            assert_eq!(a, b, "threads = {threads}");
        }
    }

    #[test]
    fn par_sort_is_stable() {
        // Keys collide heavily; payloads record the input order.
        let items: Vec<(u8, usize)> =
            noise(20_000, 7).into_iter().enumerate().map(|(i, v)| ((v % 5) as u8, i)).collect();
        for threads in [2, 4, 7] {
            let pool = WorkPool::with_threads(threads);
            let mut a = items.clone();
            let mut b = items.clone();
            pool.par_sort_by(&mut a, |x, y| x.0.cmp(&y.0));
            b.sort_by_key(|x| x.0);
            assert_eq!(a, b, "stable order diverged at {threads} threads");
        }
    }

    #[test]
    fn par_sort_handles_reverse_orders() {
        let pool = WorkPool::with_threads(4);
        let mut a: Vec<u64> = noise(8_192, 3);
        let mut b = a.clone();
        pool.par_sort_by(&mut a, |x, y| y.cmp(x));
        b.sort_by_key(|x| std::cmp::Reverse(*x));
        assert_eq!(a, b);
    }

    #[test]
    fn small_and_empty_inputs() {
        let pool = WorkPool::with_threads(8);
        let mut v: Vec<u32> = Vec::new();
        pool.par_sort_by(&mut v, |a, b| a.cmp(b));
        assert!(v.is_empty());
        let mut v = vec![3u32, 1, 2];
        pool.par_sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn merge_runs_merges_in_order() {
        let runs = vec![vec![1, 4, 7], vec![2, 5, 8], vec![], vec![0, 3, 6, 9]];
        let merged = merge_runs(runs, &|a: &i32, b: &i32| a.cmp(b));
        assert_eq!(merged, (0..10).collect::<Vec<_>>());
    }
}
