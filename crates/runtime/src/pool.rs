//! The work pool: chunk-claiming parallelism over scoped threads.

use crate::config::ExecConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// How many chunks each worker should see on average: enough that an
/// uneven chunk (one giant block, one expensive window) does not leave
/// the other workers idle, few enough that claiming stays cheap.
const OVERSUBSCRIPTION: usize = 4;

/// A work-chunking thread pool over [`std::thread::scope`].
///
/// The pool holds no OS resources — it is a resolved thread count plus a
/// chunking policy. Every operation spawns scoped workers that claim
/// contiguous chunks from a shared atomic cursor and deposit results
/// into per-chunk slots, so the output order is **always the input
/// order**, independent of scheduling. A one-thread pool runs everything
/// inline on the caller's stack; parallel and serial execution share one
/// code path.
///
/// Scoped threads may borrow from the caller, which is what keeps the
/// pool std-only and free of `unsafe`: no `'static` bounds, no channels,
/// no lifetime laundering — the scope joins all workers before any
/// borrow expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkPool {
    threads: usize,
}

impl WorkPool {
    /// A pool honoring `cfg` (resolved once, at construction).
    pub fn new(cfg: ExecConfig) -> Self {
        WorkPool { threads: cfg.resolve() }
    }

    /// A single-threaded pool: every primitive executes inline.
    pub fn serial() -> Self {
        WorkPool { threads: 1 }
    }

    /// A pool with exactly `n` threads (clamped to ≥ 1).
    pub fn with_threads(n: usize) -> Self {
        WorkPool { threads: n.max(1) }
    }

    /// The resolved thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A pool for one of `ways` concurrent sub-tasks: the threads are
    /// divided evenly (at least one each), so nesting — e.g. one sort
    /// pass per worker, each pass sorting with its own share — cannot
    /// oversubscribe by more than the rounding.
    pub fn split(&self, ways: usize) -> WorkPool {
        WorkPool { threads: self.threads.div_ceil(ways.max(1)) }
    }

    /// The chunk length used for a slice of `n` items with a floor of
    /// `min_chunk` items per chunk.
    fn chunk_len(&self, n: usize, min_chunk: usize) -> usize {
        n.div_ceil(self.threads * OVERSUBSCRIPTION).max(min_chunk).max(1)
    }

    /// Runs `f` over contiguous index ranges covering `0..n` (each at
    /// least `min_chunk` long, except possibly the last) and returns the
    /// per-range results **in range order**. Workers claim ranges
    /// dynamically, so uneven costs balance out. This is the base
    /// primitive — [`WorkPool::par_chunks`] and
    /// [`WorkPool::par_map_collect`] are views of it, so the chunk
    /// geometry is computed in exactly one place.
    pub fn par_ranges<U, F>(&self, n: usize, min_chunk: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize, std::ops::Range<usize>) -> U + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let len = self.chunk_len(n, min_chunk);
        let chunks = n.div_ceil(len);
        let range_of = |i: usize| (i * len)..((i + 1) * len).min(n);
        let workers = self.threads.min(chunks);
        if workers <= 1 {
            return (0..chunks).map(|i| f(i, range_of(i))).collect();
        }
        let results: Mutex<Vec<Option<U>>> = Mutex::new((0..chunks).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        let work = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= chunks {
                break;
            }
            let out = f(i, range_of(i));
            results.lock().expect("result slots poisoned")[i] = Some(out);
        };
        thread::scope(|scope| {
            // The caller claims chunks too: `workers` includes it, so
            // only `workers - 1` threads are spawned and nobody idles
            // at the join.
            for _ in 1..workers {
                scope.spawn(work);
            }
            work();
        });
        results
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("every chunk was claimed"))
            .collect()
    }

    /// Runs `f` over contiguous chunks of `items` (each at least
    /// `min_chunk` long, except possibly the last) and returns the
    /// per-chunk results **in chunk order**. `f` receives the chunk
    /// index and the chunk. Workers claim chunks dynamically, so uneven
    /// chunk costs balance out.
    pub fn par_chunks<T, U, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        self.par_ranges(items.len(), min_chunk, |i, range| f(i, &items[range]))
    }

    /// Maps every element of `items` through `f` (which receives the
    /// element index) and collects the results in input order.
    pub fn par_map_collect<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let nested: Vec<Vec<U>> = self.par_ranges(items.len(), 1, |_, range| {
            let base = range.start;
            items[range].iter().enumerate().map(|(i, item)| f(base + i, item)).collect()
        });
        let mut out = Vec::with_capacity(items.len());
        for v in nested {
            out.extend(v);
        }
        out
    }

    /// Runs `count` independent tasks (task index → result), results in
    /// task order. Meant for coarse units — one windowing pass, one
    /// blocking pass — where each task may itself use
    /// [`WorkPool::split`] for its inner work.
    pub fn par_tasks<U, F>(&self, count: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let results: Mutex<Vec<Option<U>>> = Mutex::new((0..count).map(|_| None).collect());
        let cursor = AtomicUsize::new(0);
        let work = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            let out = f(i);
            results.lock().expect("result slots poisoned")[i] = Some(out);
        };
        thread::scope(|scope| {
            // As in par_ranges: the caller is one of the workers.
            for _ in 1..workers {
                scope.spawn(work);
            }
            work();
        });
        results
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("every task was claimed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_chunks_preserves_chunk_order() {
        for threads in [1, 2, 3, 8] {
            let pool = WorkPool::with_threads(threads);
            let items: Vec<usize> = (0..1000).collect();
            let sums = pool.par_chunks(&items, 1, |i, chunk| (i, chunk.iter().sum::<usize>()));
            // Chunk indices are ascending and the total is preserved.
            for (k, (i, _)) in sums.iter().enumerate() {
                assert_eq!(k, *i);
            }
            let total: usize = sums.iter().map(|(_, s)| s).sum();
            assert_eq!(total, 1000 * 999 / 2);
        }
    }

    #[test]
    fn par_map_collect_matches_serial_map() {
        let items: Vec<u64> = (0..507).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 3 + i as u64).collect();
        for threads in [1, 2, 4, 16] {
            let pool = WorkPool::with_threads(threads);
            let got = pool.par_map_collect(&items, |i, &x| x * 3 + i as u64);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_tasks_runs_every_task_once() {
        let pool = WorkPool::with_threads(4);
        let counter = AtomicUsize::new(0);
        let out = pool.par_tasks(17, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i * i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 17);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let pool = WorkPool::with_threads(4);
        let out: Vec<usize> = pool.par_chunks(&[] as &[usize], 1, |_, c| c.len());
        assert!(out.is_empty());
        let out: Vec<usize> = pool.par_map_collect(&[] as &[usize], |_, &x| x);
        assert!(out.is_empty());
        let out: Vec<usize> = pool.par_tasks(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn min_chunk_floors_chunk_count() {
        let pool = WorkPool::with_threads(8);
        let items: Vec<usize> = (0..100).collect();
        let chunks = pool.par_chunks(&items, 64, |_, c| c.len());
        // 100 items with a 64-item floor → exactly two chunks.
        assert_eq!(chunks, vec![64, 36]);
    }

    #[test]
    fn par_ranges_cover_exactly_once() {
        for threads in [1, 3, 8] {
            let pool = WorkPool::with_threads(threads);
            let ranges = pool.par_ranges(1000, 1, |i, r| (i, r));
            let mut next = 0usize;
            for (k, (i, r)) in ranges.iter().enumerate() {
                assert_eq!(k, *i);
                assert_eq!(r.start, next, "ranges must tile 0..n gaplessly");
                next = r.end;
            }
            assert_eq!(next, 1000);
        }
    }

    #[test]
    fn split_divides_threads() {
        let pool = WorkPool::with_threads(8);
        assert_eq!(pool.split(2).threads(), 4);
        assert_eq!(pool.split(3).threads(), 3);
        assert_eq!(pool.split(100).threads(), 1);
        assert_eq!(WorkPool::serial().split(2).threads(), 1);
    }
}
