//! Execution configuration: how many threads a pool may use.

use std::fmt;

/// Thread-count policy of a [`WorkPool`](crate::WorkPool).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Use the hardware parallelism reported by the OS
    /// ([`std::thread::available_parallelism`]), falling back to 1 when
    /// it cannot be queried.
    #[default]
    Auto,
    /// Use exactly `n` threads (clamped to at least 1 on resolution; a
    /// fixed count above the hardware parallelism is honored — useful
    /// for oversubscription experiments).
    Fixed(usize),
}

impl fmt::Display for Threads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Threads::Auto => write!(f, "auto"),
            Threads::Fixed(n) => write!(f, "{n}"),
        }
    }
}

/// Execution configuration surfaced on the engine builder and carried by
/// compiled match plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecConfig {
    /// Thread-count policy.
    pub threads: Threads,
}

impl ExecConfig {
    /// A serial configuration (one thread, everything inline).
    pub fn serial() -> Self {
        ExecConfig { threads: Threads::Fixed(1) }
    }

    /// A fixed-width configuration.
    pub fn fixed(n: usize) -> Self {
        ExecConfig { threads: Threads::Fixed(n) }
    }

    /// Resolves the policy to a concrete thread count (always ≥ 1).
    pub fn resolve(&self) -> usize {
        match self.threads {
            Threads::Auto => {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            }
            Threads::Fixed(n) => n.max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_resolves_verbatim() {
        assert_eq!(ExecConfig::fixed(4).resolve(), 4);
        assert_eq!(ExecConfig::serial().resolve(), 1);
        // Fixed(0) is clamped, never a zero-width pool.
        assert_eq!(ExecConfig::fixed(0).resolve(), 1);
    }

    #[test]
    fn auto_resolves_positive() {
        assert!(ExecConfig::default().resolve() >= 1);
        assert_eq!(ExecConfig::default().threads, Threads::Auto);
    }

    #[test]
    fn displays() {
        assert_eq!(Threads::Auto.to_string(), "auto");
        assert_eq!(Threads::Fixed(8).to_string(), "8");
    }
}
