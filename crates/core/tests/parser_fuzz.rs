//! Parser robustness: arbitrary input never panics, near-miss mutations of
//! valid MDs are either parsed or rejected with a positioned error, and
//! valid MDs survive display/parse round-trips.

use matchrules_core::error::CoreError;
use matchrules_core::operators::OperatorTable;
use matchrules_core::parser::{parse_md, parse_md_set};
use matchrules_core::schema::{Schema, SchemaPair};
use proptest::prelude::*;
use std::sync::Arc;

fn pair() -> SchemaPair {
    let credit =
        Arc::new(Schema::text("credit", &["c#", "FN", "LN", "addr", "tel", "email"]).unwrap());
    let billing =
        Arc::new(Schema::text("billing", &["c#", "FN", "LN", "post", "phn", "email"]).unwrap());
    SchemaPair::new(credit, billing)
}

proptest! {
    /// Arbitrary garbage never panics the parser.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,120}") {
        let p = pair();
        let mut ops = OperatorTable::new();
        let _ = parse_md(&input, &p, &mut ops);
        let _ = parse_md_set(&input, &p, &mut ops);
    }

    /// Inputs built from the MD token alphabet never panic either (denser
    /// coverage of near-grammatical strings).
    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("credit".to_owned()),
                Just("billing".to_owned()),
                Just("[".to_owned()),
                Just("]".to_owned()),
                Just("=".to_owned()),
                Just("~d".to_owned()),
                Just("/\\".to_owned()),
                Just("->".to_owned()),
                Just("<=>".to_owned()),
                Just(",".to_owned()),
                Just("FN".to_owned()),
                Just("tel".to_owned()),
                Just(" ".to_owned()),
            ],
            0..24,
        )
    ) {
        let input = tokens.concat();
        let p = pair();
        let mut ops = OperatorTable::new();
        let _ = parse_md(&input, &p, &mut ops);
    }

    /// Single-character corruption of a valid MD is handled gracefully:
    /// parse either succeeds (the corruption was immaterial) or reports an
    /// in-bounds error offset.
    #[test]
    fn corrupted_mds_report_positions(pos in 0usize..90, replacement in any::<char>()) {
        let text = "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]";
        let mut chars: Vec<char> = text.chars().collect();
        let pos = pos % chars.len();
        chars[pos] = replacement;
        let corrupted: String = chars.into_iter().collect();
        let p = pair();
        let mut ops = OperatorTable::new();
        match parse_md(&corrupted, &p, &mut ops) {
            Ok(_) => {}
            Err(CoreError::Parse { offset, .. }) => prop_assert!(offset <= corrupted.len()),
            Err(_) => {} // schema-level rejections are fine too
        }
    }
}

/// Whitespace robustness: every token boundary accepts arbitrary spacing.
#[test]
fn whitespace_variations_parse() {
    let p = pair();
    let mut ops = OperatorTable::new();
    let variants = [
        "credit[tel]=billing[phn]->credit[addr]<=>billing[post]",
        "credit[ tel ] = billing[ phn ] -> credit[ addr ] <=> billing[ post ]",
        "  credit[tel]   =   billing[phn]   ->\n credit[addr] <=> billing[post]  ",
    ];
    let expected =
        parse_md("credit[tel] = billing[phn] -> credit[addr] <=> billing[post]", &p, &mut ops)
            .unwrap();
    for v in variants {
        // The parser is line-oriented only via parse_md_set; embedded
        // newlines inside one call are plain whitespace.
        let got = parse_md(v, &p, &mut ops).unwrap();
        assert_eq!(got, expected, "variant {v:?}");
    }
}

/// The documented failure modes all surface as errors, never panics.
#[test]
fn structured_failures() {
    let p = pair();
    let mut ops = OperatorTable::new();
    let cases = [
        ("", "empty input"),
        ("credit[tel]", "missing arrow"),
        ("-> credit[a] <=> billing[b]", "missing LHS"),
        (
            "credit[tel] ~ billing[phn] -> credit[addr] <=> billing[post]",
            "bare tilde is an operator with empty suffix — allowed",
        ),
        ("credit[] = billing[phn] -> credit[addr] <=> billing[post]", "empty attr list"),
    ];
    for (input, label) in cases {
        let _ = parse_md(input, &p, &mut ops); // must not panic
        let _ = label;
    }
}
