//! Differential testing: the inference-system layer (§3.2 axioms) against
//! the algorithmic deduction (§4 MDClosure), and the indexed closure
//! against the published repeat-loop control flow.

use matchrules_core::axioms;
use matchrules_core::closure::Closure;
use matchrules_core::deduction::deduces;
use matchrules_core::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use matchrules_core::operators::OperatorId;
use proptest::prelude::*;

/// Random normal-form MDs over an aligned pair pool of `arity` pairs and
/// `ops` operators (operator 0 is `=`).
fn arb_md(arity: usize, ops: u16) -> impl Strategy<Value = MatchingDependency> {
    (proptest::collection::vec((0..arity, 0..ops), 1..4), 0..arity).prop_map(|(lhs, rhs)| {
        MatchingDependency::from_validated_parts(
            lhs.into_iter().map(|(i, op)| SimilarityAtom::new(i, i, OperatorId(op))).collect(),
            vec![IdentPair::new(rhs, rhs)],
        )
    })
}

fn arb_sigma() -> impl Strategy<Value = Vec<MatchingDependency>> {
    proptest::collection::vec(arb_md(6, 3), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of every axiom step: conclusions derived by the §3.2
    /// rules are confirmed by MDClosure.
    #[test]
    fn axiom_steps_are_algorithmically_deducible(sigma in arb_sigma(), extra in 0usize..6) {
        let phi = &sigma[0];

        // Lemma 3.1 (augmentation).
        let aug = axioms::augment_lhs(phi, SimilarityAtom::eq(extra, extra));
        prop_assert!(deduces(&sigma, &aug));
        let both = axioms::augment_both(phi, IdentPair::new(extra, extra));
        prop_assert!(deduces(&sigma, &both));

        // Lemma 3.2(2) (strengthening a similarity guard to equality).
        if let Some(guard) = phi.lhs().iter().find(|a| !a.op.is_eq()) {
            let guard = *guard;
            let strong = axioms::strengthen_guard(phi, &guard).expect("non-eq guard");
            prop_assert!(deduces(&sigma, &strong));
        }

        // Lemma 3.3 (transitivity) whenever applicable within Σ.
        for phi2 in &sigma {
            if let Some(conclusion) = axioms::transitivity(phi, phi2) {
                prop_assert!(deduces(&sigma, &conclusion), "transitivity unsound");
            }
        }

        // RHS union of MDs with identical LHS.
        for phi2 in &sigma {
            if let Some(combined) = axioms::union_rhs(phi, phi2) {
                prop_assert!(deduces(&sigma, &combined), "union unsound");
            }
        }

        // Guard absorption is an equivalence.
        let tidied = axioms::absorb_weaker_guards(phi);
        prop_assert!(deduces(&sigma, &tidied));
        prop_assert!(deduces(std::slice::from_ref(&tidied), phi));
    }

    /// The indexed engine and the published repeat loop compute identical
    /// closures on random Σ and seeds.
    #[test]
    fn indexed_and_naive_closures_agree(sigma in arb_sigma(), seed in arb_md(6, 3)) {
        let fast = Closure::compute(&sigma, seed.lhs(), &[]);
        let naive = Closure::compute_naive(&sigma, seed.lhs(), &[]);
        let mut f1 = fast.facts();
        let mut f2 = naive.facts();
        let key = |f: &matchrules_core::closure::Fact| (f.a, f.b, f.op);
        f1.sort_by_key(key);
        f2.sort_by_key(key);
        prop_assert_eq!(f1, f2);
        // Same rules fire (possibly in different order).
        let mut r1 = fast.fired().to_vec();
        let mut r2 = naive.fired().to_vec();
        r1.sort_unstable();
        r2.sort_unstable();
        prop_assert_eq!(r1, r2);
    }

    /// Closure growth is monotone in the seed: adding seed atoms never
    /// removes facts.
    #[test]
    fn closure_monotone_in_seed(sigma in arb_sigma(), seed in arb_md(6, 3), extra in 0usize..6) {
        let small = Closure::compute(&sigma, seed.lhs(), &[]);
        let mut bigger_seed = seed.lhs().to_vec();
        bigger_seed.push(SimilarityAtom::eq(extra, extra));
        let big = Closure::compute(&sigma, &bigger_seed, &[]);
        for fact in small.facts() {
            prop_assert!(
                big.holds_refs(fact.a, fact.b, fact.op),
                "lost fact {fact:?} after enlarging the seed"
            );
        }
    }

    /// Deduction is invariant under normalization: Σ |=m ϕ iff Σ deduces
    /// every normal-form projection of ϕ.
    #[test]
    fn deduction_respects_normal_form(sigma in arb_sigma(), a in 0usize..6, b in 0usize..6) {
        let phi = MatchingDependency::from_validated_parts(
            sigma[0].lhs().to_vec(),
            vec![IdentPair::new(a, a), IdentPair::new(b, b)],
        );
        let whole = deduces(&sigma, &phi);
        let pieces = phi.normalize().iter().all(|p| deduces(&sigma, p));
        prop_assert_eq!(whole, pieces);
    }
}
