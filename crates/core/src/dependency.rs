//! Matching dependencies (MDs) — §2.1 of the paper.
//!
//! An MD over `(R1, R2)` has the form
//!
//! ```text
//! ⋀_{j∈[1,k]} R1[X1[j]] ≈j R2[X2[j]]  →  R1[Z1] ⇌ R2[Z2]
//! ```
//!
//! read *"if the `X` attributes pairwise match w.r.t. the comparison vector,
//! identify the `Z` attributes"*. The `⇌` (paper: `≍`) is the matching
//! operator with the dynamic semantics of §2.1: the `Z` values are updated to
//! become equal in the successor instance.

use crate::error::{CoreError, Result};
use crate::operators::{OperatorId, OperatorTable};
use crate::schema::{AttrId, SchemaPair};
use std::fmt;

/// One LHS conjunct `R1[left] ≈op R2[right]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimilarityAtom {
    /// Attribute of `R1`.
    pub left: AttrId,
    /// Attribute of `R2`.
    pub right: AttrId,
    /// The similarity operator `≈ ∈ Θ`.
    pub op: OperatorId,
}

impl SimilarityAtom {
    /// Convenience constructor.
    pub fn new(left: AttrId, right: AttrId, op: OperatorId) -> Self {
        SimilarityAtom { left, right, op }
    }

    /// An equality conjunct `R1[left] = R2[right]`.
    pub fn eq(left: AttrId, right: AttrId) -> Self {
        SimilarityAtom { left, right, op: OperatorId::EQ }
    }

    /// The attribute pair without the operator.
    pub fn pair(&self) -> IdentPair {
        IdentPair { left: self.left, right: self.right }
    }
}

/// One RHS pair `R1[left] ⇌ R2[right]` to be identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdentPair {
    /// Attribute of `R1`.
    pub left: AttrId,
    /// Attribute of `R2`.
    pub right: AttrId,
}

impl IdentPair {
    /// Convenience constructor.
    pub fn new(left: AttrId, right: AttrId) -> Self {
        IdentPair { left, right }
    }
}

/// A matching dependency.
///
/// Invariants (enforced by [`MatchingDependency::new`]):
/// * LHS and RHS are non-empty;
/// * all attribute pairs are comparable over the schema pair;
/// * LHS atoms are deduplicated and stored sorted (canonical form), so MDs
///   compare structurally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MatchingDependency {
    lhs: Vec<SimilarityAtom>,
    rhs: Vec<IdentPair>,
}

impl MatchingDependency {
    /// Builds an MD, validating comparability against the schema pair and
    /// canonicalizing both sides.
    pub fn new(pair: &SchemaPair, lhs: Vec<SimilarityAtom>, rhs: Vec<IdentPair>) -> Result<Self> {
        if lhs.is_empty() || rhs.is_empty() {
            return Err(CoreError::EmptyDependency);
        }
        for atom in &lhs {
            pair.check_comparable(atom.left, atom.right)?;
        }
        for ident in &rhs {
            pair.check_comparable(ident.left, ident.right)?;
        }
        Ok(Self::new_unchecked(lhs, rhs))
    }

    /// Builds an MD from parts already known to be comparable — atoms and
    /// pairs taken from validated MDs or targets. Canonicalizes both sides
    /// like [`MatchingDependency::new`] but skips schema validation; use it
    /// when no [`SchemaPair`] is in scope (e.g. recombination of existing
    /// rules).
    pub fn from_validated_parts(lhs: Vec<SimilarityAtom>, rhs: Vec<IdentPair>) -> Self {
        Self::new_unchecked(lhs, rhs)
    }

    /// Builds an MD from already-validated parts (used internally where the
    /// atoms are known to come from a validated MD).
    pub(crate) fn new_unchecked(mut lhs: Vec<SimilarityAtom>, mut rhs: Vec<IdentPair>) -> Self {
        lhs.sort_unstable();
        lhs.dedup();
        rhs.sort_unstable();
        rhs.dedup();
        MatchingDependency { lhs, rhs }
    }

    /// The LHS conjuncts.
    pub fn lhs(&self) -> &[SimilarityAtom] {
        &self.lhs
    }

    /// The RHS pairs to identify.
    pub fn rhs(&self) -> &[IdentPair] {
        &self.rhs
    }

    /// Number of LHS conjuncts (the MD's length).
    pub fn len(&self) -> usize {
        self.lhs.len()
    }

    /// MDs always have at least one conjunct.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The *size* of the MD — total number of atoms on both sides. The `n`
    /// of the paper's complexity bounds is the summed size of Σ.
    pub fn size(&self) -> usize {
        self.lhs.len() + self.rhs.len()
    }

    /// Splits a general MD into its normal form: one MD per RHS pair
    /// (justified by Lemmas 3.1 and 3.3 — the general form is equivalent to
    /// the set of its single-pair projections).
    pub fn normalize(&self) -> Vec<MatchingDependency> {
        self.rhs
            .iter()
            .map(|&ident| MatchingDependency { lhs: self.lhs.clone(), rhs: vec![ident] })
            .collect()
    }

    /// Whether this MD is in normal form (single RHS pair).
    pub fn is_normal(&self) -> bool {
        self.rhs.len() == 1
    }

    /// Pretty-printer bound to naming context.
    pub fn display<'a>(&'a self, pair: &'a SchemaPair, ops: &'a OperatorTable) -> MdDisplay<'a> {
        MdDisplay { md: self, pair, ops }
    }
}

/// Renders an MD with relation, attribute and operator names, e.g.
/// `credit[tel] = billing[phn] -> credit[addr] <=> billing[post]`.
pub struct MdDisplay<'a> {
    md: &'a MatchingDependency,
    pair: &'a SchemaPair,
    ops: &'a OperatorTable,
}

impl fmt::Display for MdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let left = self.pair.left();
        let right = self.pair.right();
        for (i, atom) in self.md.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(
                f,
                "{}[{}] {} {}[{}]",
                left.name(),
                left.attr_name(atom.left),
                self.ops.name(atom.op),
                right.name(),
                right.attr_name(atom.right),
            )?;
        }
        write!(f, " -> {}[", left.name())?;
        for (i, ident) in self.md.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", left.attr_name(ident.left))?;
        }
        write!(f, "] <=> {}[", right.name())?;
        for (i, ident) in self.md.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", right.attr_name(ident.right))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn pair() -> SchemaPair {
        let credit =
            Arc::new(Schema::text("credit", &["c#", "FN", "LN", "addr", "tel", "email"]).unwrap());
        let billing =
            Arc::new(Schema::text("billing", &["c#", "FN", "LN", "post", "phn", "email"]).unwrap());
        SchemaPair::new(credit, billing)
    }

    #[test]
    fn construction_validates_and_canonicalizes() {
        let p = pair();
        let tel = p.left().attr("tel").unwrap();
        let phn = p.right().attr("phn").unwrap();
        let addr = p.left().attr("addr").unwrap();
        let post = p.right().attr("post").unwrap();
        let md = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(tel, phn), SimilarityAtom::eq(tel, phn)],
            vec![IdentPair::new(addr, post)],
        )
        .unwrap();
        assert_eq!(md.len(), 1, "duplicates removed");
        assert_eq!(md.size(), 2);
        assert!(md.is_normal());
        assert!(!md.is_empty());
    }

    #[test]
    fn empty_sides_rejected() {
        let p = pair();
        assert!(matches!(
            MatchingDependency::new(&p, vec![], vec![IdentPair::new(0, 0)]),
            Err(CoreError::EmptyDependency)
        ));
        assert!(matches!(
            MatchingDependency::new(&p, vec![SimilarityAtom::eq(0, 0)], vec![]),
            Err(CoreError::EmptyDependency)
        ));
    }

    #[test]
    fn out_of_range_attr_rejected() {
        let p = pair();
        assert!(MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(99, 0)],
            vec![IdentPair::new(0, 0)]
        )
        .is_err());
    }

    #[test]
    fn normalization_splits_rhs() {
        let p = pair();
        let email_l = p.left().attr("email").unwrap();
        let email_r = p.right().attr("email").unwrap();
        let fn_l = p.left().attr("FN").unwrap();
        let fn_r = p.right().attr("FN").unwrap();
        let ln_l = p.left().attr("LN").unwrap();
        let ln_r = p.right().attr("LN").unwrap();
        // ϕ3 of the paper: email = email → FN,LN ⇌ FN,LN.
        let md = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(email_l, email_r)],
            vec![IdentPair::new(fn_l, fn_r), IdentPair::new(ln_l, ln_r)],
        )
        .unwrap();
        let normal = md.normalize();
        assert_eq!(normal.len(), 2);
        assert!(normal.iter().all(MatchingDependency::is_normal));
        assert!(normal.iter().all(|n| n.lhs() == md.lhs()));
    }

    #[test]
    fn display_renders_names() {
        let p = pair();
        let ops = OperatorTable::new();
        let tel = p.left().attr("tel").unwrap();
        let phn = p.right().attr("phn").unwrap();
        let addr = p.left().attr("addr").unwrap();
        let post = p.right().attr("post").unwrap();
        let md = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(tel, phn)],
            vec![IdentPair::new(addr, post)],
        )
        .unwrap();
        assert_eq!(
            md.display(&p, &ops).to_string(),
            "credit[tel] = billing[phn] -> credit[addr] <=> billing[post]"
        );
    }

    #[test]
    fn structural_equality_via_canonical_form() {
        let p = pair();
        let a = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(1, 1), SimilarityAtom::eq(2, 2)],
            vec![IdentPair::new(3, 3)],
        )
        .unwrap();
        let b = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(2, 2), SimilarityAtom::eq(1, 1)],
            vec![IdentPair::new(3, 3)],
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
