//! **MDClosure** — the deduction algorithm of §4 (Fig. 5/6 of the paper).
//!
//! Given a set Σ of MDs and the LHS of a candidate MD ϕ, the algorithm
//! computes the *closure*: every fact `R[A] ≈ R'[B]` such that
//! `Σ |=m LHS(ϕ) → R[A] ≈ R'[B]` on stable instances. ϕ is deduced iff every
//! RHS pair of ϕ appears in the closure with equality.
//!
//! The closure is stored in the paper's `h × h × p` matrix `M` (`h` distinct
//! attributes, `p` distinct similarity operators, plane 0 = equality).
//! Facts are symmetric; `=` subsumes every `≈` at query time.
//!
//! Three ingredients mirror the paper's procedures:
//!
//! * `Closure::assign` — `AssignVal`: record a fact unless it (or its
//!   equality strengthening) is already known;
//! * the worklist in `Closure::propagate` — `Propagate`/`Infer`: saturate
//!   the generic-axiom consequences. For a new fact `a ≈ b`, any known
//!   equality `b = c` yields `a ≈ c` (and symmetrically); for a new equality
//!   `a = b`, any known `b ≈d c` yields `a ≈d c` (the Lemma 3.4 interactions
//!   between the matching operator, equality and similarity). This saturates
//!   attributes of *both* relations uniformly — a sound-and-complete
//!   superset of the published pseudo-code's case analysis;
//! * the rule loop — MDs in Σ fire when all their LHS atoms hold; each MD
//!   fires at most once (line 9 of Fig. 5).
//!
//! Instead of re-scanning Σ until fixpoint (the paper's `repeat` loop, which
//! yields the `O(n²)` bound of Theorem 4.1), rules are indexed by their LHS
//! atoms with unsatisfied-atom counters — the classic Beeri–Bernstein
//! linear-time structure the paper points to for its `O(n + h³)` refinement.

use crate::dependency::{MatchingDependency, SimilarityAtom};
use crate::operators::OperatorId;
use crate::schema::{AttrId, AttrRef};
use std::collections::HashMap;

/// A deduced fact: `left ≈op right` over universe attribute references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fact {
    /// First attribute reference.
    pub a: AttrRef,
    /// Second attribute reference.
    pub b: AttrRef,
    /// The operator relating them (`=` for identified pairs).
    pub op: OperatorId,
}

/// The closure of Σ and a seed LHS, i.e. the matrix `M` of §4 plus the
/// firing trace.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Dense universe of distinct attribute references (the `h` dimension).
    attrs: Vec<AttrRef>,
    attr_idx: HashMap<AttrRef, u32>,
    /// Dense universe of operators (the `p` dimension); plane 0 is `=`.
    planes: Vec<OperatorId>,
    plane_idx: HashMap<OperatorId, u32>,
    h: usize,
    bits: Vec<bool>,
    /// Indices (into the normalized Σ) of rules that fired, in firing order.
    fired: Vec<usize>,
}

impl Closure {
    /// Runs MDClosure: computes the closure of `sigma` and the seed atoms
    /// (the LHS of the MD under test).
    ///
    /// `sigma` may contain general (multi-pair RHS) MDs; they are normalized
    /// internally. `extra_attrs` lets callers force additional attributes
    /// into the universe so they can be queried afterwards (typically the
    /// RHS attributes of the MD under test).
    ///
    /// ```
    /// use matchrules_core::closure::Closure;
    /// use matchrules_core::operators::OperatorId;
    /// use matchrules_core::paper;
    ///
    /// // Example 4.1: seed with LHS(rck4) = {email = email, tel = phn} and
    /// // watch Σc identify the names and the address.
    /// let setting = paper::example_1_1();
    /// let rck4 = &paper::example_2_4_rcks(&setting)[3];
    /// let closure = Closure::compute(&setting.sigma, rck4.atoms(), &[]);
    /// let fn_c = setting.pair.left().attr("FN").unwrap();
    /// let fn_b = setting.pair.right().attr("FN").unwrap();
    /// assert!(closure.holds(fn_c, fn_b, OperatorId::EQ));
    /// assert_eq!(closure.fired().len(), 8); // ϕ2 + ϕ3 (2 pairs) + ϕ1 (5 pairs)
    /// ```
    pub fn compute(
        sigma: &[MatchingDependency],
        seed: &[SimilarityAtom],
        extra_attrs: &[AttrRef],
    ) -> Closure {
        let normalized: Vec<NormalRule> = sigma
            .iter()
            .enumerate()
            .flat_map(|(i, md)| {
                md.rhs().iter().map(move |&ident| NormalRule {
                    source: i,
                    lhs: md.lhs(),
                    rhs_left: ident.left,
                    rhs_right: ident.right,
                })
            })
            .collect();
        let mut builder = UniverseBuilder::default();
        for rule in &normalized {
            for atom in rule.lhs {
                builder.add_atom(atom);
            }
            builder.add_ref(AttrRef::left(rule.rhs_left));
            builder.add_ref(AttrRef::right(rule.rhs_right));
        }
        for atom in seed {
            builder.add_atom(atom);
        }
        for &r in extra_attrs {
            builder.add_ref(r);
        }
        let mut closure = builder.finish();
        let mut engine = Engine::new(&mut closure, &normalized);
        for atom in seed {
            engine.assert_atom(atom.left, atom.right, atom.op);
        }
        engine.run();
        let fired = engine.fired.iter().map(|&i| normalized[i].source).collect();
        closure.fired = fired;
        closure
    }

    /// Runs MDClosure with the *published* control flow: a `repeat` loop
    /// re-scanning all of Σ until no rule fires (Fig. 5, lines 5–11),
    /// giving the `O(n²)` bound of Theorem 4.1. Semantically equivalent to
    /// [`Closure::compute`] (property-tested); kept as a differential
    /// oracle and for the rule-index ablation benchmark.
    pub fn compute_naive(
        sigma: &[MatchingDependency],
        seed: &[SimilarityAtom],
        extra_attrs: &[AttrRef],
    ) -> Closure {
        let normalized: Vec<NormalRule> = sigma
            .iter()
            .enumerate()
            .flat_map(|(i, md)| {
                md.rhs().iter().map(move |&ident| NormalRule {
                    source: i,
                    lhs: md.lhs(),
                    rhs_left: ident.left,
                    rhs_right: ident.right,
                })
            })
            .collect();
        let mut builder = UniverseBuilder::default();
        for rule in &normalized {
            for atom in rule.lhs {
                builder.add_atom(atom);
            }
            builder.add_ref(AttrRef::left(rule.rhs_left));
            builder.add_ref(AttrRef::right(rule.rhs_right));
        }
        for atom in seed {
            builder.add_atom(atom);
        }
        for &r in extra_attrs {
            builder.add_ref(r);
        }
        let mut closure = builder.finish();
        // Seed + propagate without the rule index: the engine's watcher
        // machinery is bypassed by giving it no rules.
        let mut engine = Engine::new(&mut closure, &[]);
        for atom in seed {
            engine.assert_atom(atom.left, atom.right, atom.op);
        }
        engine.run();
        // Fig. 5's repeat loop: scan Σ until no change; each rule fires at
        // most once (line 9).
        let mut applied = vec![false; normalized.len()];
        let mut fired = Vec::new();
        loop {
            let mut changed = false;
            for (ri, rule) in normalized.iter().enumerate() {
                if applied[ri] {
                    continue;
                }
                let lhs_holds =
                    rule.lhs.iter().all(|atom| engine.m.holds(atom.left, atom.right, atom.op));
                if !lhs_holds {
                    continue;
                }
                applied[ri] = true;
                fired.push(ri);
                changed = true;
                let ia = engine.m.attr_idx[&AttrRef::left(rule.rhs_left)];
                let ib = engine.m.attr_idx[&AttrRef::right(rule.rhs_right)];
                engine.assign(ia, ib, 0);
                engine.run();
            }
            if !changed {
                break;
            }
        }
        let fired = fired.into_iter().map(|i| normalized[i].source).collect();
        closure.fired = fired;
        closure
    }

    /// Whether `R1[left] ≈op R2[right]` is in the closure (`=` facts satisfy
    /// every operator — equality subsumes similarity).
    pub fn holds(&self, left: AttrId, right: AttrId, op: OperatorId) -> bool {
        self.holds_refs(AttrRef::left(left), AttrRef::right(right), op)
    }

    /// Whether `a ≈op b` is in the closure, for arbitrary attribute
    /// references (both sides of the schema pair).
    pub fn holds_refs(&self, a: AttrRef, b: AttrRef, op: OperatorId) -> bool {
        if a == b {
            // Reflexivity of every operator.
            return true;
        }
        let (Some(&ia), Some(&ib)) = (self.attr_idx.get(&a), self.attr_idx.get(&b)) else {
            return false;
        };
        if self.get(ia as usize, ib as usize, 0) {
            return true;
        }
        match self.plane_idx.get(&op) {
            Some(&p) => self.get(ia as usize, ib as usize, p as usize),
            None => false,
        }
    }

    /// All non-reflexive facts in the closure (for inspection and traces).
    /// Each symmetric fact is reported once, with `a ≤ b`.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for ia in 0..self.h {
            for ib in (ia + 1)..self.h {
                for (pi, &op) in self.planes.iter().enumerate() {
                    if self.get(ia, ib, pi) {
                        out.push(Fact { a: self.attrs[ia], b: self.attrs[ib], op });
                    }
                }
            }
        }
        out
    }

    /// Indices into Σ (pre-normalization) of the MDs that fired, in order.
    /// An MD with a `k`-pair RHS can appear up to `k` times.
    pub fn fired(&self) -> &[usize] {
        &self.fired
    }

    /// Number of distinct attributes in the universe (`h` of Theorem 4.1).
    pub fn universe_size(&self) -> usize {
        self.h
    }

    fn cell(&self, a: usize, b: usize, plane: usize) -> usize {
        (a * self.h + b) * self.planes.len() + plane
    }

    fn get(&self, a: usize, b: usize, plane: usize) -> bool {
        self.bits[self.cell(a, b, plane)]
    }
}

/// A normalized (single-RHS-pair) view of a rule in Σ.
struct NormalRule<'a> {
    /// Index of the originating MD in Σ.
    source: usize,
    lhs: &'a [SimilarityAtom],
    rhs_left: AttrId,
    rhs_right: AttrId,
}

#[derive(Default)]
struct UniverseBuilder {
    attrs: Vec<AttrRef>,
    attr_idx: HashMap<AttrRef, u32>,
    planes: Vec<OperatorId>,
    plane_idx: HashMap<OperatorId, u32>,
}

impl UniverseBuilder {
    fn add_ref(&mut self, r: AttrRef) -> u32 {
        *self.attr_idx.entry(r).or_insert_with(|| {
            self.attrs.push(r);
            (self.attrs.len() - 1) as u32
        })
    }

    fn add_op(&mut self, op: OperatorId) -> u32 {
        *self.plane_idx.entry(op).or_insert_with(|| {
            self.planes.push(op);
            (self.planes.len() - 1) as u32
        })
    }

    fn add_atom(&mut self, atom: &SimilarityAtom) {
        self.add_ref(AttrRef::left(atom.left));
        self.add_ref(AttrRef::right(atom.right));
        self.add_op(atom.op);
    }

    fn finish(mut self) -> Closure {
        // Plane 0 must be equality even when no rule mentions `=` explicitly.
        if self.planes.first() != Some(&OperatorId::EQ) {
            if let Some(pos) = self.planes.iter().position(|&op| op == OperatorId::EQ) {
                self.planes.swap(0, pos);
            } else {
                self.planes.insert(0, OperatorId::EQ);
            }
            self.plane_idx =
                self.planes.iter().enumerate().map(|(i, &op)| (op, i as u32)).collect();
        }
        let h = self.attrs.len();
        let p = self.planes.len();
        Closure {
            attrs: self.attrs,
            attr_idx: self.attr_idx,
            planes: self.planes,
            plane_idx: self.plane_idx,
            h,
            bits: vec![false; h * h * p],
            fired: Vec::new(),
        }
    }
}

/// One watcher: rule `rule` is waiting for its `atom`-th LHS conjunct on
/// this attribute pair.
#[derive(Clone, Copy)]
struct Watcher {
    rule: u32,
    atom: u32,
}

/// The worklist engine: owns the matrix plus the rule index during a single
/// `compute` run.
struct Engine<'c, 'r> {
    m: &'c mut Closure,
    rules: &'r [NormalRule<'r>],
    /// Watchers keyed by unordered universe-index pair.
    watchers: HashMap<(u32, u32), Vec<Watcher>>,
    /// Per-rule count of LHS atoms not yet satisfied.
    remaining: Vec<u32>,
    /// Per-rule bitmap of satisfied atoms (guards against double counting
    /// when a pair is first similar and later equal).
    satisfied: Vec<Vec<bool>>,
    /// Worklist of newly-recorded facts, as universe indices + plane.
    queue: Vec<(u32, u32, u32)>,
    fired: Vec<usize>,
}

impl<'c, 'r> Engine<'c, 'r> {
    fn new(m: &'c mut Closure, rules: &'r [NormalRule<'r>]) -> Self {
        let mut watchers: HashMap<(u32, u32), Vec<Watcher>> = HashMap::new();
        let mut remaining = Vec::with_capacity(rules.len());
        let mut satisfied = Vec::with_capacity(rules.len());
        for (ri, rule) in rules.iter().enumerate() {
            remaining.push(rule.lhs.len() as u32);
            satisfied.push(vec![false; rule.lhs.len()]);
            for (ai, atom) in rule.lhs.iter().enumerate() {
                let ia = m.attr_idx[&AttrRef::left(atom.left)];
                let ib = m.attr_idx[&AttrRef::right(atom.right)];
                watchers
                    .entry(key(ia, ib))
                    .or_default()
                    .push(Watcher { rule: ri as u32, atom: ai as u32 });
            }
        }
        Engine { m, rules, watchers, remaining, satisfied, queue: Vec::new(), fired: Vec::new() }
    }

    /// Seeds one LHS atom of the MD under test.
    fn assert_atom(&mut self, left: AttrId, right: AttrId, op: OperatorId) {
        let ia = self.m.attr_idx[&AttrRef::left(left)];
        let ib = self.m.attr_idx[&AttrRef::right(right)];
        let plane = self.m.plane_idx[&op];
        self.assign(ia, ib, plane);
    }

    /// `AssignVal` (Fig. 5): records the symmetric fact unless it is already
    /// known outright or via equality; enqueues it for propagation.
    fn assign(&mut self, a: u32, b: u32, plane: u32) -> bool {
        if a == b {
            return false; // reflexive facts carry no information
        }
        let (ia, ib, pl) = (a as usize, b as usize, plane as usize);
        if self.m.get(ia, ib, 0) || self.m.get(ia, ib, pl) {
            return false;
        }
        let c1 = self.m.cell(ia, ib, pl);
        let c2 = self.m.cell(ib, ia, pl);
        self.m.bits[c1] = true;
        self.m.bits[c2] = true;
        self.queue.push((a, b, plane));
        true
    }

    /// Runs propagation and rule firing to fixpoint.
    fn run(&mut self) {
        while let Some((a, b, plane)) = self.queue.pop() {
            self.notify(a, b, plane);
            self.propagate(a, b, plane);
        }
    }

    /// Wakes rules watching the pair `(a, b)`; fires those whose LHS became
    /// fully satisfied. A watcher's atom is satisfied by its own operator or
    /// by equality (line 7 of Fig. 5).
    fn notify(&mut self, a: u32, b: u32, plane: u32) {
        let op = self.m.planes[plane as usize];
        let Some(watchers) = self.watchers.get(&key(a, b)) else { return };
        let mut to_fire = Vec::new();
        // Split borrows: copy the watcher list heads we need.
        let watchers = watchers.clone();
        for w in watchers {
            let rule = &self.rules[w.rule as usize];
            let atom = &rule.lhs[w.atom as usize];
            if self.satisfied[w.rule as usize][w.atom as usize] {
                continue;
            }
            if atom.op == op || op.is_eq() {
                self.satisfied[w.rule as usize][w.atom as usize] = true;
                self.remaining[w.rule as usize] -= 1;
                if self.remaining[w.rule as usize] == 0 {
                    to_fire.push(w.rule as usize);
                }
            }
        }
        for ri in to_fire {
            self.fire(ri);
        }
    }

    /// Applies a rule: its RHS pair becomes an equality fact (Lemma 3.2 —
    /// on stable instances the matching operator yields equality).
    fn fire(&mut self, rule_idx: usize) {
        let rule = &self.rules[rule_idx];
        self.fired.push(rule_idx);
        let ia = self.m.attr_idx[&AttrRef::left(rule.rhs_left)];
        let ib = self.m.attr_idx[&AttrRef::right(rule.rhs_right)];
        self.assign(ia, ib, 0);
    }

    /// `Propagate`/`Infer` (Fig. 6): saturates the generic-axiom
    /// consequences of the new fact `a ≈ b`.
    fn propagate(&mut self, a: u32, b: u32, plane: u32) {
        let h = self.m.h as u32;
        let p = self.m.planes.len() as u32;
        for c in 0..h {
            if c == a || c == b {
                continue;
            }
            // x ≈ y ∧ y = z ⇒ x ≈ z (both orientations).
            if self.m.get(b as usize, c as usize, 0) {
                self.assign(a, c, plane);
            }
            if self.m.get(a as usize, c as usize, 0) {
                self.assign(b, c, plane);
            }
            if plane == 0 {
                // New equality a = b: carry existing similarities across it
                // (the Lemma 3.4 interaction).
                for d in 1..p {
                    if self.m.get(b as usize, c as usize, d as usize) {
                        self.assign(a, c, d);
                    }
                    if self.m.get(a as usize, c as usize, d as usize) {
                        self.assign(b, c, d);
                    }
                }
            }
        }
    }
}

/// Unordered pair key for the watcher index.
fn key(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::IdentPair;
    use crate::operators::OperatorTable;
    use crate::schema::{Schema, SchemaPair};
    use std::sync::Arc;

    /// (R(A,B,C), R(A,B,C)) — the reflexive pair of Examples 2.3/3.1.
    fn abc_pair() -> SchemaPair {
        let r = Arc::new(Schema::text("R", &["A", "B", "C"]).unwrap());
        SchemaPair::reflexive(r)
    }

    fn md(pair: &SchemaPair, lhs: Vec<SimilarityAtom>, rhs: Vec<IdentPair>) -> MatchingDependency {
        MatchingDependency::new(pair, lhs, rhs).unwrap()
    }

    #[test]
    fn example_3_1_transitivity_deduced() {
        // ψ1: R[A] = R[A] → R[B] ⇌ R[B]; ψ2: R[B] = R[B] → R[C] ⇌ R[C].
        // ψ3: R[A] = R[A] → R[C] ⇌ R[C] is deduced (Σ0 |=m ψ3, Example 3.3).
        let pair = abc_pair();
        let (a, b, c) = (0, 1, 2);
        let sigma = vec![
            md(&pair, vec![SimilarityAtom::eq(a, a)], vec![IdentPair::new(b, b)]),
            md(&pair, vec![SimilarityAtom::eq(b, b)], vec![IdentPair::new(c, c)]),
        ];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::eq(a, a)], &[]);
        assert!(closure.holds(b, b, OperatorId::EQ));
        assert!(closure.holds(c, c, OperatorId::EQ));
        assert_eq!(closure.fired(), &[0, 1]);
    }

    #[test]
    fn no_firing_without_lhs() {
        let pair = abc_pair();
        let sigma = vec![md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)])];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::eq(2, 2)], &[]);
        assert!(!closure.holds(1, 1, OperatorId::EQ));
        assert!(closure.fired().is_empty());
    }

    #[test]
    fn equality_satisfies_similarity_guards() {
        // LHS asks for A ≈d A; seeding A = A must fire the rule (Fig. 5,
        // line 7: equality subsumes the similarity requirement).
        let pair = abc_pair();
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈dl");
        let sigma =
            vec![md(&pair, vec![SimilarityAtom::new(0, 0, dl)], vec![IdentPair::new(1, 1)])];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::eq(0, 0)], &[]);
        assert!(closure.holds(1, 1, OperatorId::EQ));
    }

    #[test]
    fn similarity_does_not_fake_equality() {
        // Seeding A ≈d A does NOT deduce identification of A, and a rule
        // requiring A = A must not fire.
        let pair = abc_pair();
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈dl");
        let sigma = vec![md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)])];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::new(0, 0, dl)], &[]);
        assert!(!closure.holds(1, 1, OperatorId::EQ));
        assert!(closure.holds(0, 0, dl));
        assert!(!closure.holds(0, 0, OperatorId::EQ));
    }

    #[test]
    fn similarity_transfers_through_equality() {
        // Facts: A ≈d B(seed)  and  rule fires B ⇌ C  ⇒  A ≈d C.
        // Schema pair (R(A), S(B, C)) keeps the roles apart.
        let r = Arc::new(Schema::text("R", &["A", "X"]).unwrap());
        let s = Arc::new(Schema::text("S", &["B", "C"]).unwrap());
        let pair = SchemaPair::new(r, s);
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈dl");
        // Rule: R[X] = S[B] → R[X] ⇌ S[C]; hmm — instead use a rule that
        // merges S[B] and S[C] indirectly via R[X]:
        let sigma = vec![
            // R[X] = S[B] → R[X] ⇌ S[C]
            md(&pair, vec![SimilarityAtom::eq(1, 0)], vec![IdentPair::new(1, 1)]),
        ];
        // Seed: R[A] ≈d S[B], R[X] = S[B].
        let seed = vec![SimilarityAtom::new(0, 0, dl), SimilarityAtom::eq(1, 0)];
        let closure = Closure::compute(&sigma, &seed, &[]);
        // Fired: R[X] = S[C]. Then R[X] = S[B] ∧ R[X] = S[C] ⇒ S[B] = S[C]
        // (same-relation fact), and A ≈d B ∧ B = C ⇒ A ≈d C.
        assert!(closure.holds_refs(AttrRef::right(0), AttrRef::right(1), OperatorId::EQ));
        assert!(closure.holds(0, 1, dl));
    }

    #[test]
    fn lemma_3_4_shared_rhs_attribute() {
        // ϕ: L → R1[A1, A2] ⇌ R2[B, B]: firing identifies A1 and A2 with the
        // same B, hence with each other (Lemma 3.4(1)).
        let r1 = Arc::new(Schema::text("R1", &["A1", "A2", "L"]).unwrap());
        let r2 = Arc::new(Schema::text("R2", &["B", "L"]).unwrap());
        let pair = SchemaPair::new(r1, r2);
        let sigma = vec![md(
            &pair,
            vec![SimilarityAtom::eq(2, 1)],
            vec![IdentPair::new(0, 0), IdentPair::new(1, 0)],
        )];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::eq(2, 1)], &[]);
        assert!(closure.holds_refs(AttrRef::left(0), AttrRef::left(1), OperatorId::EQ));
    }

    #[test]
    fn lemma_3_4_similarity_interaction() {
        // ϕ = (L ∧ R1[A1] ≈ R2[B]) → R1[A2] ⇌ R2[B] ⇒ A2 ≈ A1 afterwards
        // (Lemma 3.4(2)).
        let r1 = Arc::new(Schema::text("R1", &["A1", "A2", "L"]).unwrap());
        let r2 = Arc::new(Schema::text("R2", &["B", "L"]).unwrap());
        let pair = SchemaPair::new(r1, r2);
        let mut ops = OperatorTable::new();
        let sim = ops.intern("≈");
        let sigma = vec![md(
            &pair,
            vec![SimilarityAtom::eq(2, 1), SimilarityAtom::new(0, 0, sim)],
            vec![IdentPair::new(1, 0)],
        )];
        let seed = vec![SimilarityAtom::eq(2, 1), SimilarityAtom::new(0, 0, sim)];
        let closure = Closure::compute(&sigma, &seed, &[]);
        assert!(closure.holds_refs(AttrRef::left(1), AttrRef::left(0), sim));
    }

    #[test]
    fn facts_listing_is_symmetric_free() {
        let pair = abc_pair();
        let sigma = vec![md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)])];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::eq(0, 0)], &[]);
        let facts = closure.facts();
        // Seed (A,A) + fired (B,B); no duplicated orientations.
        assert_eq!(facts.len(), 2);
        for f in &facts {
            assert!(f.a <= f.b);
        }
    }

    #[test]
    fn each_rule_fires_at_most_once() {
        let pair = abc_pair();
        let sigma = vec![
            md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)]),
            md(&pair, vec![SimilarityAtom::eq(1, 1)], vec![IdentPair::new(0, 0)]),
        ];
        let closure = Closure::compute(&sigma, &[SimilarityAtom::eq(0, 0)], &[]);
        assert_eq!(closure.fired().len(), 2);
    }

    #[test]
    fn reflexive_holds_without_universe() {
        let closure = Closure::compute(&[], &[], &[]);
        assert!(closure.holds_refs(AttrRef::left(7), AttrRef::left(7), OperatorId::EQ));
        assert!(!closure.holds(7, 7, OperatorId::EQ));
        assert_eq!(closure.universe_size(), 0);
    }

    /// The naive (published control flow) and indexed engines compute the
    /// same closure, fact for fact.
    #[test]
    fn naive_and_indexed_closures_agree() {
        let pair = abc_pair();
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈dl");
        let sigma = vec![
            md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)]),
            md(&pair, vec![SimilarityAtom::new(1, 1, dl)], vec![IdentPair::new(2, 2)]),
            md(
                &pair,
                vec![SimilarityAtom::eq(2, 2), SimilarityAtom::new(0, 0, dl)],
                vec![IdentPair::new(0, 0), IdentPair::new(1, 1)],
            ),
        ];
        for seed in [
            vec![SimilarityAtom::eq(0, 0)],
            vec![SimilarityAtom::new(0, 0, dl)],
            vec![SimilarityAtom::eq(2, 2), SimilarityAtom::new(0, 0, dl)],
        ] {
            let fast = Closure::compute(&sigma, &seed, &[]);
            let naive = Closure::compute_naive(&sigma, &seed, &[]);
            let mut f1 = fast.facts();
            let mut f2 = naive.facts();
            let key = |f: &Fact| (f.a, f.b, f.op);
            f1.sort_by_key(key);
            f2.sort_by_key(key);
            assert_eq!(f1, f2, "closures diverge for seed {seed:?}");
        }
    }
}
