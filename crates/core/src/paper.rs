//! The paper's running examples, built once and shared by tests, examples
//! and the benchmark harness.
//!
//! * [`example_1_1`] — the 9/9-attribute `credit`/`billing` schemas of
//!   Example 1.1 with Σc = {ϕ1, ϕ2, ϕ3} (Example 2.1) and the `(Yc, Yb)`
//!   lists.
//! * [`extended`] — the §6 evaluation setting: extended schemas with 13 and
//!   21 attributes, 11-attribute identity lists, and 7 simple MDs for card
//!   holders.

use crate::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use crate::operators::{OperatorId, OperatorTable};
use crate::parser::parse_md_set;
use crate::relative_key::Target;
use crate::schema::{AttrKind, Schema, SchemaPair};
use std::sync::Arc;

/// The kind metadata of the paper's attribute names — the *only* place the
/// system maps hardcoded names to semantics. Everything downstream
/// (sort/block-key encodings, the noise model's error ladder) dispatches on
/// [`AttrKind`], so user schemas get the same machinery by declaring kinds
/// instead of imitating the paper's names.
fn paper_kind(name: &str) -> AttrKind {
    match name {
        "FN" | "MN" => AttrKind::GivenName,
        "LN" => AttrKind::Surname,
        "street" | "addr" | "post" => AttrKind::Street,
        "city" => AttrKind::City,
        "county" => AttrKind::County,
        "state" | "ship_state" => AttrKind::State,
        "zip" | "ship_zip" => AttrKind::Zip,
        "tel" | "phn" => AttrKind::Phone,
        "email" => AttrKind::Email,
        "gender" => AttrKind::Gender,
        "c#" | "SSN" => AttrKind::Id,
        "order_date" => AttrKind::Date,
        "price" => AttrKind::Money,
        _ => AttrKind::FreeText,
    }
}

/// Builds one of the paper's schemas with kind metadata attached.
fn paper_schema(name: &str, attrs: &[&str]) -> Arc<Schema> {
    let kinded: Vec<(&str, AttrKind)> = attrs.iter().map(|&a| (a, paper_kind(a))).collect();
    Arc::new(Schema::kinded(name, &kinded).expect("static schema"))
}

/// A bundled reasoning setting: schemas, operators, MDs and the target
/// lists the paper matches on.
#[derive(Debug, Clone)]
pub struct PaperSetting {
    /// The `(credit, billing)` schema pair.
    pub pair: SchemaPair,
    /// Operator table; `≈d` (the DL operator) is interned as `"≈d"`.
    pub ops: OperatorTable,
    /// The given MDs (Σc for Example 1.1, the 7 MDs of §6 for `extended`).
    pub sigma: Vec<MatchingDependency>,
    /// The `(Y1, Y2)` lists identifying card holders.
    pub target: Target,
    /// Id of the `≈d` operator.
    pub dl: OperatorId,
}

/// Example 1.1's schemas:
///
/// ```text
/// credit (c#, SSN, FN, LN, addr, tel, email, gender, type)
/// billing(c#, FN, LN, post, phn, email, gender, item, price)
/// ```
///
/// with Σc of Example 2.1 and `Yc/Yb = [FN, LN, addr|post, tel|phn, gender]`.
pub fn example_1_1() -> PaperSetting {
    let credit = paper_schema(
        "credit",
        &["c#", "SSN", "FN", "LN", "addr", "tel", "email", "gender", "type"],
    );
    let billing = paper_schema(
        "billing",
        &["c#", "FN", "LN", "post", "phn", "email", "gender", "item", "price"],
    );
    let pair = SchemaPair::new(credit, billing);
    let mut ops = OperatorTable::new();
    let sigma = parse_md_set(
        "// ϕ1: same last name & address, similar first name -> same holder\n\
         credit[LN] = billing[LN] /\\ credit[addr] = billing[post] /\\ \
         credit[FN] ~d billing[FN] -> \
         credit[FN,LN,addr,tel,gender] <=> billing[FN,LN,post,phn,gender]\n\
         // ϕ2: same phone -> same address\n\
         credit[tel] = billing[phn] -> credit[addr] <=> billing[post]\n\
         // ϕ3: same email -> same name\n\
         credit[email] = billing[email] -> credit[FN,LN] <=> billing[FN,LN]\n",
        &pair,
        &mut ops,
    )
    .expect("static MDs parse");
    let target = Target::by_names(
        &pair,
        &["FN", "LN", "addr", "tel", "gender"],
        &["FN", "LN", "post", "phn", "gender"],
    )
    .expect("static target");
    let dl = ops.get("≈d").expect("interned by the MD set");
    PaperSetting { pair, ops, sigma, target, dl }
}

/// The four RCKs of Example 2.4, in paper order, as similarity-atom sets.
pub fn example_2_4_rcks(setting: &PaperSetting) -> Vec<crate::relative_key::RelativeKey> {
    use crate::relative_key::RelativeKey;
    let l = |n: &str| setting.pair.left().attr(n).expect("attr");
    let r = |n: &str| setting.pair.right().attr(n).expect("attr");
    let dl = setting.dl;
    vec![
        RelativeKey::new(vec![
            SimilarityAtom::eq(l("LN"), r("LN")),
            SimilarityAtom::eq(l("addr"), r("post")),
            SimilarityAtom::new(l("FN"), r("FN"), dl),
        ]),
        RelativeKey::new(vec![
            SimilarityAtom::eq(l("LN"), r("LN")),
            SimilarityAtom::eq(l("tel"), r("phn")),
            SimilarityAtom::new(l("FN"), r("FN"), dl),
        ]),
        RelativeKey::new(vec![
            SimilarityAtom::eq(l("email"), r("email")),
            SimilarityAtom::eq(l("addr"), r("post")),
        ]),
        RelativeKey::new(vec![
            SimilarityAtom::eq(l("email"), r("email")),
            SimilarityAtom::eq(l("tel"), r("phn")),
        ]),
    ]
}

/// The §6 evaluation setting: extended `credit` (13 attributes) and
/// `billing` (21 attributes) schemas, 11-attribute identity lists, and 7
/// simple MDs specifying matching rules for card holders.
pub fn extended() -> PaperSetting {
    let credit = paper_schema(
        "credit",
        &[
            "c#", "SSN", "FN", "MN", "LN", "street", "city", "county", "state", "zip", "tel",
            "email", "gender",
        ],
    );
    let billing = paper_schema(
        "billing",
        &[
            "c#",
            "FN",
            "MN",
            "LN",
            "street",
            "city",
            "county",
            "state",
            "zip",
            "phn",
            "email",
            "gender",
            "item",
            "category",
            "price",
            "qty",
            "order_date",
            "ship_state",
            "ship_zip",
            "store",
            "payment",
        ],
    );
    assert_eq!(credit.arity(), 13);
    assert_eq!(billing.arity(), 21);
    let pair = SchemaPair::new(credit, billing);
    let mut ops = OperatorTable::new();
    let y = "FN,MN,LN,street,city,county,state,zip,tel,email,gender";
    let y2 = "FN,MN,LN,street,city,county,state,zip,phn,email,gender";
    let text = format!(
        "// 1: name + street address key (similarity guards tolerate typos)\n\
         credit[LN] ~d billing[LN] /\\ credit[street] ~d billing[street] /\\ \
         credit[city] ~d billing[city] /\\ credit[FN] ~d billing[FN] -> \
         credit[{y}] <=> billing[{y2}]\n\
         // 2: same phone -> same full address\n\
         credit[tel] = billing[phn] -> \
         credit[street,city,county,state,zip] <=> billing[street,city,county,state,zip]\n\
         // 3: same email -> same name\n\
         credit[email] = billing[email] -> credit[FN,MN,LN] <=> billing[FN,MN,LN]\n\
         // 4: zip determines locality\n\
         credit[zip] = billing[zip] -> \
         credit[city,county,state] <=> billing[city,county,state]\n\
         // 5: name + phone key\n\
         credit[LN] ~d billing[LN] /\\ credit[tel] = billing[phn] /\\ \
         credit[FN] ~d billing[FN] -> credit[{y}] <=> billing[{y2}]\n\
         // 6: similar street within a zip is the same street\n\
         credit[street] ~d billing[street] /\\ credit[zip] = billing[zip] -> \
         credit[street] <=> billing[street]\n\
         // 7: same street address + zip -> same household phone\n\
         credit[street] ~d billing[street] /\\ credit[zip] = billing[zip] -> \
         credit[tel] <=> billing[phn]\n"
    );
    let sigma = parse_md_set(&text, &pair, &mut ops).expect("static MDs parse");
    assert_eq!(sigma.len(), 7);
    let names: Vec<&str> = y.split(',').collect();
    let names2: Vec<&str> = y2.split(',').collect();
    let target = Target::by_names(&pair, &names, &names2).expect("static target");
    assert_eq!(target.len(), 11);
    let dl = ops.get("≈d").expect("interned by the MD set");
    PaperSetting { pair, ops, sigma, target, dl }
}

/// Convenience: the identification pairs of ϕ1's RHS (all of `(Yc, Yb)`).
pub fn y_pairs(setting: &PaperSetting) -> Vec<IdentPair> {
    setting.target.ident_pairs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduction::deduces;

    #[test]
    fn example_1_1_wiring() {
        let s = example_1_1();
        assert_eq!(s.sigma.len(), 3);
        assert_eq!(s.target.len(), 5);
        assert_eq!(s.pair.left().arity(), 9);
        assert_eq!(s.pair.right().arity(), 9);
        assert_eq!(y_pairs(&s).len(), 5);
    }

    #[test]
    fn example_2_4_keys_are_deduced_keys() {
        let s = example_1_1();
        for (i, key) in example_2_4_rcks(&s).iter().enumerate() {
            assert!(deduces(&s.sigma, &key.to_md(&s.target)), "rck{} not deduced", i + 1);
        }
    }

    #[test]
    fn extended_wiring() {
        let s = extended();
        assert_eq!(s.sigma.len(), 7);
        assert_eq!(s.target.len(), 11);
        assert_eq!(s.pair.left().arity(), 13);
        assert_eq!(s.pair.right().arity(), 21);
    }

    #[test]
    fn preset_schemas_carry_kind_metadata() {
        use crate::schema::AttrKind;
        let s = extended();
        let left = s.pair.left();
        let right = s.pair.right();
        let kind =
            |schema: &crate::schema::Schema, n: &str| schema.attr_kind(schema.attr(n).unwrap());
        assert_eq!(kind(left, "FN"), AttrKind::GivenName);
        assert_eq!(kind(left, "LN"), AttrKind::Surname);
        assert_eq!(kind(left, "tel"), AttrKind::Phone);
        assert_eq!(kind(right, "phn"), AttrKind::Phone);
        assert_eq!(kind(right, "ship_zip"), AttrKind::Zip);
        assert_eq!(kind(right, "order_date"), AttrKind::Date);
        assert_eq!(kind(right, "item"), AttrKind::FreeText);
        let e = example_1_1();
        assert_eq!(kind(e.pair.left(), "addr"), AttrKind::Street);
        assert_eq!(kind(e.pair.right(), "post"), AttrKind::Street);
        assert_eq!(kind(e.pair.left(), "SSN"), AttrKind::Id);
    }

    #[test]
    fn extended_email_phone_key_deduced() {
        // The analogue of rck4: email + phone identify the holder.
        let s = extended();
        let l = |n: &str| s.pair.left().attr(n).unwrap();
        let r = |n: &str| s.pair.right().attr(n).unwrap();
        let key = MatchingDependency::new(
            &s.pair,
            vec![
                SimilarityAtom::eq(l("email"), r("email")),
                SimilarityAtom::eq(l("tel"), r("phn")),
            ],
            s.target.ident_pairs(),
        )
        .unwrap();
        assert!(deduces(&s.sigma, &key));
    }

    #[test]
    fn extended_email_zip_key_deduced() {
        // email (names) + phone via ϕ7 needs LN; email+zip alone must NOT be
        // a key (zip only fixes locality, not street).
        let s = extended();
        let l = |n: &str| s.pair.left().attr(n).unwrap();
        let r = |n: &str| s.pair.right().attr(n).unwrap();
        let not_key = MatchingDependency::new(
            &s.pair,
            vec![
                SimilarityAtom::eq(l("email"), r("email")),
                SimilarityAtom::eq(l("zip"), r("zip")),
            ],
            s.target.ident_pairs(),
        )
        .unwrap();
        assert!(!deduces(&s.sigma, &not_key));
    }

    #[test]
    fn extended_email_alone_is_not_a_key() {
        // email= only gives the names (ϕ3) — no address, no phone.
        let s = extended();
        let l = |n: &str| s.pair.left().attr(n).unwrap();
        let r = |n: &str| s.pair.right().attr(n).unwrap();
        let email_only = MatchingDependency::new(
            &s.pair,
            vec![SimilarityAtom::eq(l("email"), r("email"))],
            s.target.ident_pairs(),
        )
        .unwrap();
        assert!(!deduces(&s.sigma, &email_only));
    }

    #[test]
    fn extended_street_zip_derives_phone() {
        // ϕ7: same street + zip → same household phone; together with ϕ3
        // (names from email) and ϕ4 (locality from zip), {email, street,
        // zip} is a key.
        let s = extended();
        let l = |n: &str| s.pair.left().attr(n).unwrap();
        let r = |n: &str| s.pair.right().attr(n).unwrap();
        let key = MatchingDependency::new(
            &s.pair,
            vec![
                SimilarityAtom::eq(l("email"), r("email")),
                SimilarityAtom::eq(l("street"), r("street")),
                SimilarityAtom::eq(l("zip"), r("zip")),
            ],
            s.target.ident_pairs(),
        )
        .unwrap();
        assert!(deduces(&s.sigma, &key));
    }
}
