//! The inference-system view of MD reasoning (§3.2).
//!
//! The paper states a sound and complete finite inference system `I` of 11
//! axioms for `Σ |=m ϕ` but only exhibits its key lemmas. This module makes
//! those lemmas executable as *derivation steps*: each function takes
//! premise MDs and produces a conclusion MD that is deducible from them.
//! The crate's tests cross-check every step against the algorithmic
//! deduction ([`deduces`](crate::deduction::deduces)) — a soundness witness
//! for the closure implementation.

use crate::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use crate::operators::OperatorId;

/// **Reflexivity.** `LHS → R1[A] ⇌ R2[B]` whenever `R1[A] = R2[B]` is an
/// LHS conjunct: values already equal in a stable instance are identified.
pub fn reflexivity(lhs: Vec<SimilarityAtom>, pair: IdentPair) -> Option<MatchingDependency> {
    lhs.iter()
        .any(|a| a.op.is_eq() && a.left == pair.left && a.right == pair.right)
        .then(|| MatchingDependency::new_unchecked(lhs, vec![pair]))
}

/// **LHS augmentation** (Lemma 3.1, first form): from ϕ derive
/// `(LHS(ϕ) ∧ R1[A] ≈ R2[B]) → RHS(ϕ)` — extra similarity tests never hurt.
pub fn augment_lhs(phi: &MatchingDependency, atom: SimilarityAtom) -> MatchingDependency {
    let mut lhs = phi.lhs().to_vec();
    lhs.push(atom);
    MatchingDependency::new_unchecked(lhs, phi.rhs().to_vec())
}

/// **Both-side augmentation** (Lemma 3.1, second form): from ϕ derive
/// `(LHS(ϕ) ∧ R1[A] = R2[B]) → (RHS(ϕ) ∧ R1[A] ⇌ R2[B])`. Only *equality*
/// conjuncts may be promoted to the RHS.
pub fn augment_both(phi: &MatchingDependency, pair: IdentPair) -> MatchingDependency {
    let mut lhs = phi.lhs().to_vec();
    lhs.push(SimilarityAtom::eq(pair.left, pair.right));
    let mut rhs = phi.rhs().to_vec();
    rhs.push(pair);
    MatchingDependency::new_unchecked(lhs, rhs)
}

/// **Equality strengthening** (Lemma 3.2(2)): from
/// `(L ∧ R1[A] ≈ R2[B]) → RHS` derive `(L ∧ R1[A] = R2[B]) → RHS` —
/// replacing a similarity guard by the stronger equality guard preserves
/// deducibility, because `x = y` implies `x ≈ y`.
pub fn strengthen_guard(
    phi: &MatchingDependency,
    atom: &SimilarityAtom,
) -> Option<MatchingDependency> {
    if !phi.lhs().contains(atom) || atom.op.is_eq() {
        return None;
    }
    let lhs: Vec<SimilarityAtom> = phi
        .lhs()
        .iter()
        .map(|a| if a == atom { SimilarityAtom::eq(a.left, a.right) } else { *a })
        .collect();
    Some(MatchingDependency::new_unchecked(lhs, phi.rhs().to_vec()))
}

/// **Transitivity** (Lemma 3.3): from `ϕ1 = L → (W1 ⇌ W2)` and
/// `ϕ2 = ⋀ (W1[j] ≈j W2[j]) → (Z1 ⇌ Z2)` derive `L → (Z1 ⇌ Z2)`.
///
/// Returns `None` unless every LHS pair of `ϕ2` is identified by `RHS(ϕ1)`
/// (the operator of the `ϕ2` conjunct is irrelevant: after `ϕ1` fires the
/// pair is *equal*, which subsumes any similarity guard).
pub fn transitivity(
    phi1: &MatchingDependency,
    phi2: &MatchingDependency,
) -> Option<MatchingDependency> {
    let all_provided = phi2.lhs().iter().all(|atom| phi1.rhs().contains(&atom.pair()));
    all_provided
        .then(|| MatchingDependency::new_unchecked(phi1.lhs().to_vec(), phi2.rhs().to_vec()))
}

/// **RHS decomposition / union** (normal-form equivalence via Lemmas 3.1 and
/// 3.3): two MDs with identical LHS combine their RHS lists.
pub fn union_rhs(
    phi1: &MatchingDependency,
    phi2: &MatchingDependency,
) -> Option<MatchingDependency> {
    if phi1.lhs() != phi2.lhs() {
        return None;
    }
    let mut rhs = phi1.rhs().to_vec();
    rhs.extend_from_slice(phi2.rhs());
    Some(MatchingDependency::new_unchecked(phi1.lhs().to_vec(), rhs))
}

/// **Permutation-invariance of guards**: an MD whose guard list mentions the
/// same pair under both `≈` and `=` keeps only the stronger `=` guard.
/// (A tidying axiom; sound because `=` subsumes `≈`.)
pub fn absorb_weaker_guards(phi: &MatchingDependency) -> MatchingDependency {
    let lhs: Vec<SimilarityAtom> = phi
        .lhs()
        .iter()
        .filter(|a| {
            a.op.is_eq()
                || !phi
                    .lhs()
                    .iter()
                    .any(|b| b.op == OperatorId::EQ && b.left == a.left && b.right == a.right)
        })
        .copied()
        .collect();
    MatchingDependency::new_unchecked(lhs, phi.rhs().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduction::deduces;
    use crate::operators::OperatorTable;
    use crate::schema::{Schema, SchemaPair};
    use std::sync::Arc;

    fn setting() -> (SchemaPair, OperatorTable) {
        let r1 = Arc::new(Schema::text("R1", &["A", "B", "C", "D"]).unwrap());
        let r2 = Arc::new(Schema::text("R2", &["A", "B", "C", "D"]).unwrap());
        (SchemaPair::new(r1, r2), OperatorTable::new())
    }

    fn md(pair: &SchemaPair, lhs: Vec<SimilarityAtom>, rhs: Vec<IdentPair>) -> MatchingDependency {
        MatchingDependency::new(pair, lhs, rhs).unwrap()
    }

    /// Every axiom's conclusion must be algorithmically deducible from its
    /// premises — soundness of the closure w.r.t. the inference system.
    #[test]
    fn reflexivity_sound() {
        let atom = SimilarityAtom::eq(0, 0);
        let phi = reflexivity(vec![atom], IdentPair::new(0, 0)).unwrap();
        assert!(deduces(&[], &phi));
        // Similarity guards do not admit reflexivity:
        let sim = SimilarityAtom::new(0, 0, OperatorId(1));
        assert!(reflexivity(vec![sim], IdentPair::new(0, 0)).is_none());
    }

    #[test]
    fn augmentation_sound() {
        let (pair, mut ops) = setting();
        let dl = ops.intern("≈");
        let phi = md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)]);
        let stronger = augment_lhs(&phi, SimilarityAtom::new(2, 2, dl));
        assert!(deduces(std::slice::from_ref(&phi), &stronger));
        assert_eq!(stronger.len(), 2);

        let both = augment_both(&phi, IdentPair::new(3, 3));
        assert!(deduces(&[phi], &both));
        assert_eq!(both.rhs().len(), 2);
    }

    #[test]
    fn strengthening_sound() {
        let (pair, mut ops) = setting();
        let dl = ops.intern("≈");
        let guard = SimilarityAtom::new(0, 0, dl);
        let phi = md(&pair, vec![guard], vec![IdentPair::new(1, 1)]);
        let strong = strengthen_guard(&phi, &guard).unwrap();
        assert!(strong.lhs()[0].op.is_eq());
        assert!(deduces(std::slice::from_ref(&phi), &strong));
        // Equality guards cannot be strengthened further.
        let eq_guard = strong.lhs()[0];
        assert!(strengthen_guard(&strong, &eq_guard).is_none());
        // Unknown guards are rejected.
        assert!(strengthen_guard(&phi, &SimilarityAtom::new(2, 2, dl)).is_none());
    }

    #[test]
    fn transitivity_sound() {
        let (pair, mut ops) = setting();
        let dl = ops.intern("≈");
        // ϕ1: A = A → B ⇌ B; ϕ2: B ≈ B → C ⇌ C; conclusion: A = A → C ⇌ C.
        let phi1 = md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)]);
        let phi2 = md(&pair, vec![SimilarityAtom::new(1, 1, dl)], vec![IdentPair::new(2, 2)]);
        let conclusion = transitivity(&phi1, &phi2).unwrap();
        assert_eq!(conclusion.lhs(), phi1.lhs());
        assert_eq!(conclusion.rhs(), phi2.rhs());
        assert!(deduces(&[phi1.clone(), phi2.clone()], &conclusion));
        // Not applicable when ϕ2 needs pairs ϕ1 does not provide.
        let phi2b = md(&pair, vec![SimilarityAtom::eq(3, 3)], vec![IdentPair::new(2, 2)]);
        assert!(transitivity(&phi1, &phi2b).is_none());
    }

    #[test]
    fn union_rhs_sound() {
        let (pair, _) = setting();
        let phi1 = md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)]);
        let phi2 = md(&pair, vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(2, 2)]);
        let combined = union_rhs(&phi1, &phi2).unwrap();
        assert_eq!(combined.rhs().len(), 2);
        assert!(deduces(&[phi1.clone(), phi2.clone()], &combined));
        let phi3 = md(&pair, vec![SimilarityAtom::eq(3, 3)], vec![IdentPair::new(2, 2)]);
        assert!(union_rhs(&phi1, &phi3).is_none());
    }

    #[test]
    fn absorb_weaker_guards_tidies() {
        let (pair, mut ops) = setting();
        let dl = ops.intern("≈");
        let phi = md(
            &pair,
            vec![SimilarityAtom::eq(0, 0), SimilarityAtom::new(0, 0, dl)],
            vec![IdentPair::new(1, 1)],
        );
        let tidied = absorb_weaker_guards(&phi);
        assert_eq!(tidied.len(), 1);
        assert!(tidied.lhs()[0].op.is_eq());
        assert!(deduces(std::slice::from_ref(&phi), &tidied));
        assert!(deduces(&[tidied], &phi));
    }

    /// The derivation of Example 3.5: rck4 from Σc via augmentation +
    /// transitivity, replayed step by step through axiom functions.
    #[test]
    fn example_3_5_derivation_replay() {
        let credit = Arc::new(
            Schema::text("credit", &["FN", "LN", "addr", "tel", "email", "gender"]).unwrap(),
        );
        let billing = Arc::new(
            Schema::text("billing", &["FN", "LN", "post", "phn", "email", "gender"]).unwrap(),
        );
        let pair = SchemaPair::new(credit.clone(), billing.clone());
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈d");
        let l = |n: &str| credit.attr(n).unwrap();
        let r = |n: &str| billing.attr(n).unwrap();
        let y: Vec<IdentPair> = ["FN", "LN", "addr", "tel", "gender"]
            .iter()
            .zip(&["FN", "LN", "post", "phn", "gender"])
            .map(|(&a, &b)| IdentPair::new(l(a), r(b)))
            .collect();
        let phi1 = md(
            &pair,
            vec![
                SimilarityAtom::eq(l("LN"), r("LN")),
                SimilarityAtom::eq(l("addr"), r("post")),
                SimilarityAtom::new(l("FN"), r("FN"), dl),
            ],
            y.clone(),
        );
        let phi2 = md(
            &pair,
            vec![SimilarityAtom::eq(l("tel"), r("phn"))],
            vec![IdentPair::new(l("addr"), r("post"))],
        );
        let phi3 = md(
            &pair,
            vec![SimilarityAtom::eq(l("email"), r("email"))],
            vec![IdentPair::new(l("FN"), r("FN")), IdentPair::new(l("LN"), r("LN"))],
        );

        // (a) tel = phn ∧ email = email → addr,FN,LN ⇌ post,FN,LN
        let a1 = augment_lhs(&phi2, SimilarityAtom::eq(l("email"), r("email")));
        let a2 = augment_lhs(&phi3, SimilarityAtom::eq(l("tel"), r("phn")));
        let step_a = union_rhs(&a1, &a2).unwrap();
        // (b) LN=LN ∧ addr=post ∧ FN=FN → Yc ⇌ Yb (ϕ1 strengthened, Lemma 3.2)
        let fn_guard = SimilarityAtom::new(l("FN"), r("FN"), dl);
        let step_b = strengthen_guard(&phi1, &fn_guard).unwrap();
        // (c) rck4 by transitivity of (a) and (b).
        let rck4 = transitivity(&step_a, &step_b).unwrap();
        assert_eq!(rck4.lhs().len(), 2);
        let sigma = vec![phi1, phi2, phi3];
        assert!(deduces(&sigma, &rck4));
    }
}
