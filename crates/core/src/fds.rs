//! Classical functional dependencies — the baseline formalism the paper
//! departs from.
//!
//! The paper motivates MDs by analogy: *"to identify a tuple in a relation
//! we use candidate keys. To find the keys we first specify a set of FDs,
//! and then infer keys by the implication analysis of the FDs"* (§1). It
//! contrasts the two theories throughout — FDs have a *static* semantics
//! and equality-only comparisons (Example 2.3), classical implication
//! diverges from MD deduction (Example 3.1), and candidate-key enumeration
//! is exponential (Lucchesi & Osborn \[24\], motivating findRCKs' top-`m`
//! design).
//!
//! This module makes those contrasts executable: linear-time FD implication
//! (the Beeri–Bernstein closure the paper cites for its own `O(n + h³)`
//! remark), Armstrong-axiom helpers, and the Lucchesi–Osborn candidate-key
//! enumeration.

use crate::error::{CoreError, Result};
use crate::schema::{AttrId, Schema};
use std::collections::BTreeSet;

/// An attribute set, kept sorted for canonical comparison.
pub type AttrSet = BTreeSet<AttrId>;

/// A functional dependency `X → Y` over a single relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    lhs: AttrSet,
    rhs: AttrSet,
}

impl FunctionalDependency {
    /// Builds `X → Y`, validating the attributes against the schema.
    /// An empty `X` is allowed (constant attributes); an empty `Y` is not.
    pub fn new(
        schema: &Schema,
        lhs: impl IntoIterator<Item = AttrId>,
        rhs: impl IntoIterator<Item = AttrId>,
    ) -> Result<Self> {
        let lhs: AttrSet = lhs.into_iter().collect();
        let rhs: AttrSet = rhs.into_iter().collect();
        if rhs.is_empty() {
            return Err(CoreError::EmptyDependency);
        }
        for &a in lhs.iter().chain(&rhs) {
            schema.attribute(a)?;
        }
        Ok(FunctionalDependency { lhs, rhs })
    }

    /// By-name convenience: `FunctionalDependency::named(&s, &["A"], &["B"])`.
    pub fn named(schema: &Schema, lhs: &[&str], rhs: &[&str]) -> Result<Self> {
        Ok(FunctionalDependency {
            lhs: schema.attrs(lhs)?.into_iter().collect(),
            rhs: schema.attrs(rhs)?.into_iter().collect(),
        })
    }

    /// The determinant `X`.
    pub fn lhs(&self) -> &AttrSet {
        &self.lhs
    }

    /// The dependent `Y`.
    pub fn rhs(&self) -> &AttrSet {
        &self.rhs
    }

    /// Whether the FD is trivial (`Y ⊆ X` — Armstrong reflexivity).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }
}

/// Computes the attribute closure `X⁺` under Σ with the linear-time
/// counter algorithm of Beeri & Bernstein (the structure our MDClosure's
/// rule index generalizes).
pub fn attribute_closure(attrs: &AttrSet, sigma: &[FunctionalDependency]) -> AttrSet {
    let mut closure = attrs.clone();
    // Counters of unsatisfied LHS attributes per FD; work queue of newly
    // added attributes.
    let mut remaining: Vec<usize> = sigma.iter().map(|fd| fd.lhs.len()).collect();
    let mut queue: Vec<AttrId> = closure.iter().copied().collect();
    // Fire FDs with empty LHS immediately.
    for (i, fd) in sigma.iter().enumerate() {
        if remaining[i] == 0 {
            for &b in &fd.rhs {
                if closure.insert(b) {
                    queue.push(b);
                }
            }
        }
    }
    while let Some(a) = queue.pop() {
        for (i, fd) in sigma.iter().enumerate() {
            if remaining[i] > 0 && fd.lhs.contains(&a) {
                remaining[i] -= 1;
                if remaining[i] == 0 {
                    for &b in &fd.rhs {
                        if closure.insert(b) {
                            queue.push(b);
                        }
                    }
                }
            }
        }
    }
    closure
}

/// Classical implication: `Σ |= X → Y` iff `Y ⊆ X⁺`.
pub fn implies(sigma: &[FunctionalDependency], fd: &FunctionalDependency) -> bool {
    let closure = attribute_closure(&fd.lhs, sigma);
    fd.rhs.is_subset(&closure)
}

/// Whether `attrs` is a superkey of the schema under Σ (`X⁺` = all
/// attributes).
pub fn is_superkey(schema: &Schema, attrs: &AttrSet, sigma: &[FunctionalDependency]) -> bool {
    attribute_closure(attrs, sigma).len() == schema.arity()
}

/// Enumerates **all candidate keys** with the Lucchesi–Osborn algorithm
/// \[24\]: start from one minimal key, and for every found key `K` and FD
/// `X → Y`, the set `X ∪ (K \ Y)` is a superkey whose minimization may be
/// a new key. Worst-case exponential — exactly the cost findRCKs' quality
/// model avoids (§5).
pub fn candidate_keys(schema: &Schema, sigma: &[FunctionalDependency]) -> Vec<AttrSet> {
    let all: AttrSet = (0..schema.arity()).collect();
    let first = minimize_key(schema, all, sigma);
    let mut keys: Vec<AttrSet> = vec![first];
    let mut i = 0;
    while i < keys.len() {
        let key = keys[i].clone();
        for fd in sigma {
            let mut candidate: AttrSet = fd.lhs.clone();
            candidate.extend(key.difference(&fd.rhs).copied());
            if !keys.iter().any(|k| k.is_subset(&candidate)) {
                let minimized = minimize_key(schema, candidate, sigma);
                if !keys.contains(&minimized) {
                    keys.push(minimized);
                }
            }
        }
        i += 1;
    }
    keys.sort();
    keys
}

/// Shrinks a superkey to a minimal key by dropping attributes greedily.
fn minimize_key(schema: &Schema, mut key: AttrSet, sigma: &[FunctionalDependency]) -> AttrSet {
    let attrs: Vec<AttrId> = key.iter().copied().collect();
    for a in attrs {
        key.remove(&a);
        if !is_superkey(schema, &key, sigma) {
            key.insert(a);
        }
    }
    key
}

/// Armstrong's axioms as derivation steps (the classical counterpart of
/// [`crate::axioms`]).
pub mod armstrong {
    use super::{AttrSet, FunctionalDependency};

    /// Reflexivity: `Y ⊆ X ⊢ X → Y`.
    pub fn reflexivity(x: &AttrSet, y: &AttrSet) -> Option<FunctionalDependency> {
        y.is_subset(x).then(|| FunctionalDependency { lhs: x.clone(), rhs: y.clone() })
    }

    /// Augmentation: `X → Y ⊢ XZ → YZ`.
    pub fn augmentation(fd: &FunctionalDependency, z: &AttrSet) -> FunctionalDependency {
        FunctionalDependency {
            lhs: fd.lhs.union(z).copied().collect(),
            rhs: fd.rhs.union(z).copied().collect(),
        }
    }

    /// Transitivity: `X → Y, Y → Z ⊢ X → Z` (requires `Y ⊆` the first
    /// FD's RHS).
    pub fn transitivity(
        first: &FunctionalDependency,
        second: &FunctionalDependency,
    ) -> Option<FunctionalDependency> {
        second
            .lhs
            .is_subset(&first.rhs)
            .then(|| FunctionalDependency { lhs: first.lhs.clone(), rhs: second.rhs.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deduction::deduces;
    use crate::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
    use crate::schema::SchemaPair;
    use std::sync::Arc;

    fn abc() -> Arc<Schema> {
        Arc::new(Schema::text("R", &["A", "B", "C"]).unwrap())
    }

    #[test]
    fn closure_and_implication() {
        let s = abc();
        let sigma = vec![
            FunctionalDependency::named(&s, &["A"], &["B"]).unwrap(),
            FunctionalDependency::named(&s, &["B"], &["C"]).unwrap(),
        ];
        let a: AttrSet = [0].into_iter().collect();
        let closure = attribute_closure(&a, &sigma);
        assert_eq!(closure, [0, 1, 2].into_iter().collect::<AttrSet>());
        let f3 = FunctionalDependency::named(&s, &["A"], &["C"]).unwrap();
        assert!(implies(&sigma, &f3), "Γ0 implies f3 (Example 3.1)");
        let back = FunctionalDependency::named(&s, &["C"], &["A"]).unwrap();
        assert!(!implies(&sigma, &back));
    }

    /// Example 3.1 executable from both sides: classical implication and
    /// MD deduction AGREE on the conclusion here (`Γ0 |= f3` and
    /// `Σ0 |=m ψ3`) — the paper's point is that the *reasoning principle*
    /// must change (implication is unsound for MDs), not the outcome.
    #[test]
    fn example_3_1_both_formalisms() {
        let s = abc();
        let gamma0 = vec![
            FunctionalDependency::named(&s, &["A"], &["B"]).unwrap(),
            FunctionalDependency::named(&s, &["B"], &["C"]).unwrap(),
        ];
        let f3 = FunctionalDependency::named(&s, &["A"], &["C"]).unwrap();
        assert!(implies(&gamma0, &f3));

        let pair = SchemaPair::reflexive(s);
        let sigma0 = vec![
            MatchingDependency::new(
                &pair,
                vec![SimilarityAtom::eq(0, 0)],
                vec![IdentPair::new(1, 1)],
            )
            .unwrap(),
            MatchingDependency::new(
                &pair,
                vec![SimilarityAtom::eq(1, 1)],
                vec![IdentPair::new(2, 2)],
            )
            .unwrap(),
        ];
        let psi3 = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(0, 0)],
            vec![IdentPair::new(2, 2)],
        )
        .unwrap();
        assert!(deduces(&sigma0, &psi3));
    }

    #[test]
    fn empty_lhs_fds_are_constants() {
        let s = abc();
        let sigma = vec![FunctionalDependency::new(&s, [], [1]).unwrap()];
        let empty: AttrSet = AttrSet::new();
        let closure = attribute_closure(&empty, &sigma);
        assert!(closure.contains(&1));
    }

    #[test]
    fn trivial_fds() {
        let s = abc();
        let fd = FunctionalDependency::named(&s, &["A", "B"], &["A"]).unwrap();
        assert!(fd.is_trivial());
        assert!(implies(&[], &fd), "trivial FDs hold in every theory");
        assert!(!fd.lhs().is_empty());
        assert!(!fd.rhs().is_empty());
    }

    #[test]
    fn invalid_fds_rejected() {
        let s = abc();
        assert!(matches!(FunctionalDependency::new(&s, [0], []), Err(CoreError::EmptyDependency)));
        assert!(FunctionalDependency::new(&s, [9], [0]).is_err());
        assert!(FunctionalDependency::named(&s, &["A"], &["nope"]).is_err());
    }

    #[test]
    fn candidate_keys_textbook_case() {
        // R(A,B,C,D) with A→B, B→C: keys must contain A and D.
        let s = Arc::new(Schema::text("R", &["A", "B", "C", "D"]).unwrap());
        let sigma = vec![
            FunctionalDependency::named(&s, &["A"], &["B"]).unwrap(),
            FunctionalDependency::named(&s, &["B"], &["C"]).unwrap(),
        ];
        let keys = candidate_keys(&s, &sigma);
        assert_eq!(keys, vec![[0, 3].into_iter().collect::<AttrSet>()]);
    }

    #[test]
    fn candidate_keys_cyclic_case() {
        // R(A,B) with A→B, B→A: both {A} and {B} are keys.
        let s = Arc::new(Schema::text("R", &["A", "B"]).unwrap());
        let sigma = vec![
            FunctionalDependency::named(&s, &["A"], &["B"]).unwrap(),
            FunctionalDependency::named(&s, &["B"], &["A"]).unwrap(),
        ];
        let keys = candidate_keys(&s, &sigma);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&[0].into_iter().collect()));
        assert!(keys.contains(&[1].into_iter().collect()));
    }

    #[test]
    fn candidate_keys_without_fds() {
        let s = abc();
        let keys = candidate_keys(&s, &[]);
        assert_eq!(keys, vec![[0, 1, 2].into_iter().collect::<AttrSet>()]);
    }

    #[test]
    fn armstrong_axioms() {
        let s = abc();
        let x: AttrSet = [0, 1].into_iter().collect();
        let y: AttrSet = [1].into_iter().collect();
        let refl = armstrong::reflexivity(&x, &y).unwrap();
        assert!(refl.is_trivial());
        assert!(armstrong::reflexivity(&y, &x).is_none());

        let fd = FunctionalDependency::named(&s, &["A"], &["B"]).unwrap();
        let z: AttrSet = [2].into_iter().collect();
        let aug = armstrong::augmentation(&fd, &z);
        assert!(implies(std::slice::from_ref(&fd), &aug));

        let fd2 = FunctionalDependency::named(&s, &["B"], &["C"]).unwrap();
        let trans = armstrong::transitivity(&fd, &fd2).unwrap();
        assert_eq!(trans, FunctionalDependency::named(&s, &["A"], &["C"]).unwrap());
        assert!(implies(&[fd.clone(), fd2], &trans));
        let fd3 = FunctionalDependency::named(&s, &["C"], &["A"]).unwrap();
        assert!(armstrong::transitivity(&fd, &fd3).is_none());
    }

    /// Keys are minimal: removing any attribute breaks the superkey
    /// property.
    #[test]
    fn enumerated_keys_are_minimal() {
        let s = Arc::new(Schema::text("R", &["A", "B", "C", "D", "E"]).unwrap());
        let sigma = vec![
            FunctionalDependency::named(&s, &["A", "B"], &["C"]).unwrap(),
            FunctionalDependency::named(&s, &["C", "D"], &["E"]).unwrap(),
            FunctionalDependency::named(&s, &["E"], &["A"]).unwrap(),
        ];
        for key in candidate_keys(&s, &sigma) {
            assert!(is_superkey(&s, &key, &sigma));
            for &a in &key {
                let mut sub = key.clone();
                sub.remove(&a);
                assert!(!is_superkey(&s, &sub, &sigma), "key {key:?} not minimal");
            }
        }
    }
}
