//! The quality model for selecting RCKs (§5).
//!
//! `findRCKs` prefers keys over *low-cost* attribute pairs, where
//!
//! ```text
//! cost(R1[A], R2[B]) = w1·ct(R1[A], R2[B]) + w2·lt(R1[A], R2[B]) + w3/ac(R1[A], R2[B])
//! ```
//!
//! * `ct` — how often the pair already occurs in selected RCKs (diversity:
//!   incremented whenever a key using the pair is added to Γ);
//! * `lt` — average value length of the pair (longer values attract more
//!   errors);
//! * `ac` — the user's confidence in the pair's accuracy.
//!
//! The paper's experiments use `w1 = w2 = w3 = 1` and `ac ≡ 1` (§6.1); the
//! worked Example 5.1 uses `w1 = 1, w2 = w3 = 0`.

use crate::schema::AttrId;
use std::collections::HashMap;

/// Static per-pair statistics (`lt` and `ac`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairStats {
    /// Average length `lt` of the values of the attribute pair.
    pub avg_len: f64,
    /// Accuracy/confidence `ac ∈ (0, 1]` placed in the pair.
    pub accuracy: f64,
}

impl Default for PairStats {
    fn default() -> Self {
        PairStats { avg_len: 0.0, accuracy: 1.0 }
    }
}

/// The cost model: weights, per-pair statistics, and the dynamic `ct`
/// counters maintained during `findRCKs`.
#[derive(Debug, Clone)]
pub struct CostModel {
    w1: f64,
    w2: f64,
    w3: f64,
    stats: HashMap<(AttrId, AttrId), PairStats>,
    counters: HashMap<(AttrId, AttrId), u32>,
}

impl CostModel {
    /// The paper's experimental setting: `w1 = w2 = w3 = 1`, `ac ≡ 1`,
    /// `lt ≡ 0` unless statistics are supplied.
    pub fn uniform() -> Self {
        CostModel::new(1.0, 1.0, 1.0)
    }

    /// The setting of worked Example 5.1: only diversity counts.
    pub fn diversity_only() -> Self {
        CostModel::new(1.0, 0.0, 0.0)
    }

    /// A model with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or not finite.
    pub fn new(w1: f64, w2: f64, w3: f64) -> Self {
        for w in [w1, w2, w3] {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
        }
        CostModel { w1, w2, w3, stats: HashMap::new(), counters: HashMap::new() }
    }

    /// Sets the statistics of an attribute pair.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is not in `(0, 1]` or `avg_len` is negative.
    pub fn set_stats(&mut self, left: AttrId, right: AttrId, stats: PairStats) {
        assert!(stats.accuracy > 0.0 && stats.accuracy <= 1.0, "accuracy must be in (0, 1]");
        assert!(stats.avg_len >= 0.0, "avg_len must be non-negative");
        self.stats.insert((left, right), stats);
    }

    /// The current cost of the pair.
    pub fn cost(&self, left: AttrId, right: AttrId) -> f64 {
        let stats = self.stats.get(&(left, right)).copied().unwrap_or_default();
        let ct = self.counters.get(&(left, right)).copied().unwrap_or(0);
        self.w1 * f64::from(ct) + self.w2 * stats.avg_len + self.w3 / stats.accuracy
    }

    /// The current `ct` counter of the pair.
    pub fn counter(&self, left: AttrId, right: AttrId) -> u32 {
        self.counters.get(&(left, right)).copied().unwrap_or(0)
    }

    /// `incrementCt`: bumps the counter of a pair because a selected RCK
    /// uses it.
    pub fn increment(&mut self, left: AttrId, right: AttrId) {
        *self.counters.entry((left, right)).or_insert(0) += 1;
    }

    /// Resets all `ct` counters (run before a fresh `findRCKs` invocation).
    pub fn reset_counters(&mut self) {
        self.counters.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_is_w3() {
        let model = CostModel::uniform();
        assert!((model.cost(0, 0) - 1.0).abs() < 1e-12);
        let model = CostModel::diversity_only();
        assert_eq!(model.cost(0, 0), 0.0);
    }

    #[test]
    fn counters_add_w1() {
        let mut model = CostModel::uniform();
        model.increment(1, 2);
        model.increment(1, 2);
        assert_eq!(model.counter(1, 2), 2);
        assert!((model.cost(1, 2) - 3.0).abs() < 1e-12); // 2·1 + 0 + 1/1
        model.reset_counters();
        assert_eq!(model.counter(1, 2), 0);
    }

    #[test]
    fn stats_contribute_length_and_accuracy() {
        let mut model = CostModel::new(0.0, 1.0, 2.0);
        model.set_stats(3, 4, PairStats { avg_len: 12.5, accuracy: 0.5 });
        assert!((model.cost(3, 4) - (12.5 + 4.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn zero_accuracy_rejected() {
        let mut model = CostModel::uniform();
        model.set_stats(0, 0, PairStats { avg_len: 0.0, accuracy: 0.0 });
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn negative_weight_rejected() {
        let _ = CostModel::new(-1.0, 0.0, 0.0);
    }
}
