//! Error types for the reasoning core.

use std::fmt;

/// Errors raised while constructing schemas, dependencies or keys, or while
/// parsing the textual MD syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A schema was declared with two attributes of the same name.
    DuplicateAttribute {
        /// The schema being constructed.
        schema: String,
        /// The offending attribute name.
        attribute: String,
    },
    /// A schema was declared with no attributes.
    EmptySchema {
        /// The schema being constructed.
        schema: String,
    },
    /// A relation name did not resolve against the schema pair.
    UnknownRelation {
        /// The unresolved name.
        name: String,
    },
    /// An attribute name did not resolve against its schema.
    UnknownAttribute {
        /// The schema searched.
        schema: String,
        /// The unresolved attribute name.
        attribute: String,
    },
    /// An attribute index was out of range for its schema.
    AttributeOutOfRange {
        /// The schema searched.
        schema: String,
        /// The out-of-range index.
        index: usize,
    },
    /// Two attributes were compared whose domains differ; the paper requires
    /// comparable lists to be pairwise of the same domain (§2.1).
    DomainMismatch {
        /// Left attribute name.
        left: String,
        /// Right attribute name.
        right: String,
    },
    /// Two lists that must be comparable have different lengths.
    LengthMismatch {
        /// Length of the left list.
        left: usize,
        /// Length of the right list.
        right: usize,
    },
    /// An MD was declared with an empty LHS or RHS.
    EmptyDependency,
    /// A similarity operator name did not resolve.
    UnknownOperator {
        /// The unresolved operator name.
        name: String,
    },
    /// A CSV record's field count disagrees with the header — short rows
    /// would otherwise silently read as trailing `Null`s, long rows would
    /// drop data.
    CsvRow {
        /// 1-based record number in the document (the header is record 1,
        /// so the first data record is 2). Records, not lines: a quoted
        /// field may span several physical lines.
        row: usize,
        /// Field count the header declares.
        expected: usize,
        /// Field count the record actually has.
        got: usize,
    },
    /// The textual MD syntax could not be parsed.
    Parse {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// `findRCKs` was asked for keys relative to an invalid target list.
    InvalidTarget {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateAttribute { schema, attribute } => {
                write!(f, "schema {schema:?} declares attribute {attribute:?} twice")
            }
            CoreError::EmptySchema { schema } => {
                write!(f, "schema {schema:?} has no attributes")
            }
            CoreError::UnknownRelation { name } => {
                write!(f, "relation {name:?} is not part of the schema pair")
            }
            CoreError::UnknownAttribute { schema, attribute } => {
                write!(f, "schema {schema:?} has no attribute {attribute:?}")
            }
            CoreError::AttributeOutOfRange { schema, index } => {
                write!(f, "attribute index {index} out of range for schema {schema:?}")
            }
            CoreError::DomainMismatch { left, right } => {
                write!(f, "attributes {left:?} and {right:?} have incomparable domains")
            }
            CoreError::LengthMismatch { left, right } => {
                write!(f, "comparable lists must have equal length, got {left} and {right}")
            }
            CoreError::EmptyDependency => {
                write!(f, "matching dependencies need a non-empty LHS and RHS")
            }
            CoreError::UnknownOperator { name } => {
                write!(f, "similarity operator {name:?} is not registered")
            }
            CoreError::CsvRow { row, expected, got } => {
                let gap = if got < expected { "missing fields" } else { "extra fields" };
                write!(
                    f,
                    "CSV record {row} has {got} fields but the header declares {expected} ({gap})"
                )
            }
            CoreError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            CoreError::InvalidTarget { message } => {
                write!(f, "invalid RCK target: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = CoreError::DomainMismatch { left: "tel".into(), right: "price".into() };
        assert!(e.to_string().contains("incomparable"));
        let e = CoreError::Parse { offset: 7, message: "expected '['".into() };
        assert!(e.to_string().contains("byte 7"));
        let e = CoreError::CsvRow { row: 3, expected: 4, got: 2 };
        assert!(e.to_string().contains("record 3"));
        assert!(e.to_string().contains("missing fields"));
        let e = CoreError::CsvRow { row: 9, expected: 2, got: 5 };
        assert!(e.to_string().contains("extra fields"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::EmptyDependency);
    }
}
