//! **findRCKs** — computing `m` quality relative candidate keys (§5, Fig. 7).
//!
//! Enumerating *all* RCKs is infeasible (exponentially many candidate keys
//! exist already for traditional FDs [Lucchesi & Osborn 1978]); instead the
//! algorithm greedily deduces up to `m` keys built from low-cost attribute
//! pairs under the `CostModel`:
//!
//! 1. start from the trivial key `(Y1, Y2 ‖ =,…,=)`, minimized;
//! 2. repeatedly `apply` MDs of Σ (cheapest LHS first) to keys already in Γ,
//!    minimizing each result, until Γ holds `m` keys or no application
//!    yields a key that is not already covered (`⪯`) by Γ;
//! 3. by Proposition 5.1, when the loop exhausts without reaching `m`, Γ is
//!    *complete*: it contains every RCK deducible from Σ.
//!
//! `minimize` (Fig. 7) drops atoms in descending cost order as long as the
//! remainder still deduces the target — so surviving keys keep their
//! cheapest attributes and are subset-minimal (removing any single atom
//! breaks them; by monotonicity of the closure this implies no sub-key
//! works).

use crate::cost::CostModel;
use crate::deduction::deduces;
use crate::dependency::MatchingDependency;
use crate::relative_key::{RelativeKey, Target};
use crate::schema::AttrId;
use std::collections::HashSet;

/// The result of [`find_rcks`].
#[derive(Debug, Clone)]
pub struct RckOutcome {
    /// The deduced keys, in selection order. The first entry is the
    /// minimized trivial key; later entries come from MD applications.
    pub keys: Vec<RelativeKey>,
    /// `true` when the enumeration exhausted before reaching `m`: by
    /// Proposition 5.1, `keys` then contains **all** RCKs deducible from Σ.
    pub complete: bool,
}

impl RckOutcome {
    /// The top `k` keys (selection order is quality order).
    pub fn top(&self, k: usize) -> &[RelativeKey] {
        &self.keys[..k.min(self.keys.len())]
    }
}

/// Runs findRCKs: returns at most `m` quality RCKs relative to `target`,
/// deduced from `sigma`.
///
/// The cost model's `ct` counters are reset at entry and updated as keys are
/// selected, exactly as in Fig. 7 (lines 2, 4, 14).
///
/// ```
/// use matchrules_core::{paper, cost::CostModel, rck::find_rcks};
///
/// let setting = paper::example_1_1();
/// let mut cost = CostModel::uniform();
/// let outcome = find_rcks(&setting.sigma, &setting.target, 10, &mut cost);
/// assert!(outcome.complete, "3 MDs admit only a handful of keys");
/// // The deduced ([email, tel], [email, phn] || [=, =]) key is among them:
/// let rck4 = &paper::example_2_4_rcks(&setting)[3];
/// assert!(outcome.keys.contains(rck4));
/// ```
pub fn find_rcks(
    sigma: &[MatchingDependency],
    target: &Target,
    m: usize,
    cost: &mut CostModel,
) -> RckOutcome {
    cost.reset_counters();
    if m == 0 {
        return RckOutcome { keys: Vec::new(), complete: false };
    }

    // Γ := { minimize((Y1, Y2 ‖ =,…,=)) }   (Fig. 7, lines 3–4)
    let trivial = target.trivial_key();
    let first = minimize(trivial, sigma, target, cost);
    increment_counters(cost, &first);
    let mut gamma: Vec<RelativeKey> = vec![first];
    let mut selected = 1usize;

    // Worklist over Γ: every (γ, φ) combination is inspected once — exactly
    // the completeness condition of Proposition 5.1.
    let mut i = 0usize;
    while i < gamma.len() {
        let key = gamma[i].clone();
        // LΣ := sortMD(Σ), ascending by summed LHS cost (line 6); re-sorted
        // after every selection because `ct` counters moved (line 14).
        let mut remaining: Vec<usize> = (0..sigma.len()).collect();
        sort_by_lhs_cost(&mut remaining, sigma, cost);
        while let Some(&phi_idx) = remaining.first() {
            remaining.remove(0);
            let phi = &sigma[phi_idx];
            let applied = key.apply(phi);
            if applied.is_empty() || covered(&gamma, &applied) {
                continue;
            }
            let minimized = minimize(applied, sigma, target, cost);
            // The published pseudo-code only ⪯-checks before minimize; we
            // also check after, so Γ stays an antichain set (minimize can
            // collapse distinct candidates onto an existing key).
            if covered(&gamma, &minimized) {
                continue;
            }
            increment_counters(cost, &minimized);
            gamma.push(minimized);
            selected += 1;
            if selected == m {
                return RckOutcome { keys: gamma, complete: false };
            }
            sort_by_lhs_cost(&mut remaining, sigma, cost);
        }
        i += 1;
    }
    RckOutcome { keys: gamma, complete: true }
}

/// `minimize` (Fig. 7): removes atoms in descending cost order while the
/// remainder still deduces `R1[Y1] ⇌ R2[Y2]` from Σ.
pub fn minimize(
    key: RelativeKey,
    sigma: &[MatchingDependency],
    target: &Target,
    cost: &CostModel,
) -> RelativeKey {
    let mut order: Vec<_> = key.atoms().to_vec();
    order.sort_by(|a, b| {
        cost.cost(b.left, b.right)
            .partial_cmp(&cost.cost(a.left, a.right))
            .expect("costs are finite")
    });
    let mut current = key;
    for atom in order {
        let candidate = current.without(&atom);
        if candidate.is_empty() {
            continue;
        }
        if deduces(sigma, &candidate.to_md(target)) {
            current = candidate;
        }
    }
    current
}

/// `pairing(Σ, Y1, Y2)` (Fig. 7, line 1): the attribute pairs occurring in
/// the target or anywhere in Σ — the universe the cost counters range over.
pub fn pairing(sigma: &[MatchingDependency], target: &Target) -> Vec<(AttrId, AttrId)> {
    let mut set: HashSet<(AttrId, AttrId)> = HashSet::new();
    let mut out = Vec::new();
    let mut push = |l: AttrId, r: AttrId| {
        if set.insert((l, r)) {
            out.push((l, r));
        }
    };
    for (&l, &r) in target.y1().iter().zip(target.y2()) {
        push(l, r);
    }
    for md in sigma {
        for atom in md.lhs() {
            push(atom.left, atom.right);
        }
        for ident in md.rhs() {
            push(ident.left, ident.right);
        }
    }
    out
}

fn covered(gamma: &[RelativeKey], candidate: &RelativeKey) -> bool {
    gamma.iter().any(|existing| existing.covers(candidate))
}

fn increment_counters(cost: &mut CostModel, key: &RelativeKey) {
    for atom in key.atoms() {
        cost.increment(atom.left, atom.right);
    }
}

fn sort_by_lhs_cost(indices: &mut [usize], sigma: &[MatchingDependency], cost: &CostModel) {
    indices.sort_by(|&a, &b| {
        let ca: f64 = sigma[a].lhs().iter().map(|t| cost.cost(t.left, t.right)).sum();
        let cb: f64 = sigma[b].lhs().iter().map(|t| cost.cost(t.left, t.right)).sum();
        ca.partial_cmp(&cb).expect("costs are finite").then(a.cmp(&b))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{IdentPair, SimilarityAtom};
    use crate::operators::OperatorTable;
    use crate::schema::{Schema, SchemaPair};
    use std::sync::Arc;

    /// Example 2.1's Σc over the credit/billing schemas.
    fn paper_setting() -> (SchemaPair, OperatorTable, Vec<MatchingDependency>, Target) {
        let credit = Arc::new(
            Schema::text(
                "credit",
                &["c#", "SSN", "FN", "LN", "addr", "tel", "email", "gender", "type"],
            )
            .unwrap(),
        );
        let billing = Arc::new(
            Schema::text(
                "billing",
                &["c#", "FN", "LN", "post", "phn", "email", "gender", "item", "price"],
            )
            .unwrap(),
        );
        let pair = SchemaPair::new(credit, billing);
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈d");
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let target = Target::by_names(
            &pair,
            &["FN", "LN", "addr", "tel", "gender"],
            &["FN", "LN", "post", "phn", "gender"],
        )
        .unwrap();
        let phi1 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("LN"), r("LN")),
                SimilarityAtom::eq(l("addr"), r("post")),
                SimilarityAtom::new(l("FN"), r("FN"), dl),
            ],
            target.ident_pairs(),
        )
        .unwrap();
        let phi2 = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(l("tel"), r("phn"))],
            vec![IdentPair::new(l("addr"), r("post"))],
        )
        .unwrap();
        let phi3 = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(l("email"), r("email"))],
            vec![IdentPair::new(l("FN"), r("FN")), IdentPair::new(l("LN"), r("LN"))],
        )
        .unwrap();
        (pair, ops, vec![phi1, phi2, phi3], target)
    }

    /// Every produced key must be a key (deduces the target) and minimal
    /// (dropping any atom breaks it).
    #[test]
    fn outcome_keys_are_minimal_keys() {
        let (_pair, _ops, sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&sigma, &target, 16, &mut cost);
        assert!(!outcome.keys.is_empty());
        for key in &outcome.keys {
            assert!(deduces(&sigma, &key.to_md(&target)), "not a key: {key:?}");
            for atom in key.atoms() {
                let sub = key.without(atom);
                assert!(
                    sub.is_empty() || !deduces(&sigma, &sub.to_md(&target)),
                    "not minimal: {key:?} minus {atom:?}"
                );
            }
        }
    }

    /// Example 5.1's deduced keys appear in Γ (the paper finds rck1..rck4;
    /// with per-attribute granularity the =-variant of rck1 also counts —
    /// see DESIGN.md §3).
    #[test]
    fn example_5_1_keys_found() {
        let (pair, ops, sigma, target) = paper_setting();
        let dl = ops.get("≈d").unwrap();
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let mut cost = CostModel::diversity_only();
        let outcome = find_rcks(&sigma, &target, 16, &mut cost);
        assert!(outcome.complete, "small Σ must be exhausted");

        let rck2 = RelativeKey::new(vec![
            SimilarityAtom::eq(l("LN"), r("LN")),
            SimilarityAtom::eq(l("tel"), r("phn")),
            SimilarityAtom::new(l("FN"), r("FN"), dl),
        ]);
        let rck3 = RelativeKey::new(vec![
            SimilarityAtom::eq(l("email"), r("email")),
            SimilarityAtom::eq(l("addr"), r("post")),
        ]);
        let rck4 = RelativeKey::new(vec![
            SimilarityAtom::eq(l("email"), r("email")),
            SimilarityAtom::eq(l("tel"), r("phn")),
        ]);
        for (name, want) in [("rck2", &rck2), ("rck3", &rck3), ("rck4", &rck4)] {
            assert!(
                outcome.keys.contains(want),
                "{name} missing from {:?}",
                outcome.keys.iter().map(|k| k.display(&pair, &ops).to_string()).collect::<Vec<_>>()
            );
        }
        // rck1 appears either with ≈d or as its =-strengthened variant.
        let rck1 = RelativeKey::new(vec![
            SimilarityAtom::eq(l("LN"), r("LN")),
            SimilarityAtom::eq(l("addr"), r("post")),
            SimilarityAtom::new(l("FN"), r("FN"), dl),
        ]);
        let rck1_eq = RelativeKey::new(vec![
            SimilarityAtom::eq(l("LN"), r("LN")),
            SimilarityAtom::eq(l("addr"), r("post")),
            SimilarityAtom::eq(l("FN"), r("FN")),
        ]);
        assert!(outcome.keys.contains(&rck1) || outcome.keys.contains(&rck1_eq));
    }

    /// Requesting fewer keys stops early and flags incompleteness.
    #[test]
    fn m_caps_the_enumeration() {
        let (_pair, _ops, sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&sigma, &target, 2, &mut cost);
        assert_eq!(outcome.keys.len(), 2);
        assert!(!outcome.complete);
        assert_eq!(outcome.top(1).len(), 1);
        assert_eq!(outcome.top(99).len(), 2);
    }

    /// m = 0 returns nothing.
    #[test]
    fn zero_keys() {
        let (_pair, _ops, sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&sigma, &target, 0, &mut cost);
        assert!(outcome.keys.is_empty());
    }

    /// With an empty Σ the only key is the trivial one, and Γ is complete.
    #[test]
    fn empty_sigma_gives_trivial_key() {
        let (_pair, _ops, _sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&[], &target, 10, &mut cost);
        assert_eq!(outcome.keys.len(), 1);
        assert!(outcome.complete);
        assert_eq!(outcome.keys[0], target.trivial_key());
    }

    /// The keys in Γ form an antichain under ⪯ (no key covers another) —
    /// our post-minimize guard guarantees set semantics.
    #[test]
    fn gamma_is_an_antichain() {
        let (_pair, _ops, sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&sigma, &target, 32, &mut cost);
        for (i, a) in outcome.keys.iter().enumerate() {
            for (j, b) in outcome.keys.iter().enumerate() {
                if i != j {
                    assert!(!a.covers(b), "key {i} covers key {j}");
                }
            }
        }
    }

    /// Proposition 5.1: when complete, for every γ ∈ Γ and φ ∈ Σ, some key
    /// in Γ covers apply(γ, φ).
    #[test]
    fn completeness_condition_holds() {
        let (_pair, _ops, sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&sigma, &target, usize::MAX, &mut cost);
        assert!(outcome.complete);
        for key in &outcome.keys {
            for phi in &sigma {
                let applied = key.apply(phi);
                assert!(
                    outcome.keys.iter().any(|k| k.covers(&applied)),
                    "apply({key:?}, {phi:?}) not covered"
                );
            }
        }
    }

    /// pairing() collects target pairs plus every pair in Σ, no duplicates.
    #[test]
    fn pairing_universe() {
        let (pair, _ops, sigma, target) = paper_setting();
        let pairs = pairing(&sigma, &target);
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        assert!(pairs.contains(&(l("email"), r("email"))));
        assert!(pairs.contains(&(l("tel"), r("phn"))));
        assert!(pairs.contains(&(l("gender"), r("gender"))));
        let unique: HashSet<_> = pairs.iter().collect();
        assert_eq!(unique.len(), pairs.len());
    }

    /// Diversity: with w1 = 1, selecting a key bumps its pairs' costs, so
    /// later keys prefer fresh attributes. We check the counters moved.
    #[test]
    fn counters_track_selected_keys() {
        let (pair, _ops, sigma, target) = paper_setting();
        let mut cost = CostModel::uniform();
        let outcome = find_rcks(&sigma, &target, 8, &mut cost);
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let total: u32 = pairing(&sigma, &target).iter().map(|&(a, b)| cost.counter(a, b)).sum();
        let expected: usize = outcome.keys.iter().map(RelativeKey::len).sum();
        assert_eq!(total as usize, expected);
        // The email pair participates in at least one selected key.
        assert!(cost.counter(l("email"), r("email")) >= 1);
    }
}
