//! A textual syntax for matching dependencies.
//!
//! The paper writes MDs as
//!
//! ```text
//! credit[LN] = billing[LN] ∧ credit[FN] ≈d billing[FN] → credit[Yc] ⇌ billing[Yb]
//! ```
//!
//! This module parses an ASCII-friendly rendering of that syntax:
//!
//! ```text
//! credit[LN] = billing[LN] /\ credit[FN] ~d billing[FN]
//!     -> credit[FN,LN] <=> billing[FN,LN]
//! ```
//!
//! * conjuncts are separated by `/\` (or the Unicode `∧`);
//! * operators are `=` or identifiers starting with `~` (or `≈`), interned
//!   into the [`OperatorTable`] on first use;
//! * the RHS lists attributes positionally: `R1[A,B] <=> R2[C,D]` identifies
//!   `(A,C)` and `(B,D)`.
//!
//! [`parse_md_set`] reads one MD per non-empty line, skipping `//` comments.

use crate::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use crate::error::{CoreError, Result};
use crate::operators::OperatorTable;
use crate::schema::{AttrId, SchemaPair, Side};

/// Parses a single MD against the schema pair, interning any new similarity
/// operators.
pub fn parse_md(
    input: &str,
    pair: &SchemaPair,
    ops: &mut OperatorTable,
) -> Result<MatchingDependency> {
    Parser { input, pos: 0, pair, ops }.md()
}

/// Parses a newline-separated set of MDs; blank lines and lines starting
/// with `//` are skipped.
pub fn parse_md_set(
    input: &str,
    pair: &SchemaPair,
    ops: &mut OperatorTable,
) -> Result<Vec<MatchingDependency>> {
    input
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with("//"))
        .map(|line| parse_md(line, pair, ops))
        .collect()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    pair: &'a SchemaPair,
    ops: &'a mut OperatorTable,
}

impl Parser<'_> {
    fn md(&mut self) -> Result<MatchingDependency> {
        let mut lhs = vec![self.atom()?];
        loop {
            self.skip_ws();
            if self.eat("/\\") || self.eat("∧") {
                lhs.push(self.atom()?);
            } else {
                break;
            }
        }
        self.skip_ws();
        if !(self.eat("->") || self.eat("→")) {
            return Err(self.err("expected '->'"));
        }
        let (left_side, left_attrs) = self.attr_list()?;
        self.skip_ws();
        if !(self.eat("<=>") || self.eat("⇌")) {
            return Err(self.err("expected '<=>'"));
        }
        let (right_side, right_attrs) = self.attr_list()?;
        self.skip_ws();
        if self.pos != self.input.len() {
            return Err(self.err("trailing input"));
        }
        let (left_side, right_side) = self.coerce_sides(left_side, right_side);
        if left_side != Side::Left || right_side != Side::Right {
            return Err(self.err("RHS must be 'R1[..] <=> R2[..]'"));
        }
        if left_attrs.len() != right_attrs.len() {
            return Err(CoreError::LengthMismatch {
                left: left_attrs.len(),
                right: right_attrs.len(),
            });
        }
        let rhs =
            left_attrs.into_iter().zip(right_attrs).map(|(l, r)| IdentPair::new(l, r)).collect();
        MatchingDependency::new(self.pair, lhs, rhs)
    }

    /// `rel[attr] OP rel[attr]`.
    fn atom(&mut self) -> Result<SimilarityAtom> {
        let (s1, a1) = self.attr_ref()?;
        self.skip_ws();
        let op_name = self.operator()?;
        let (s2, a2) = self.attr_ref()?;
        let (s1, s2) = self.coerce_sides(s1, s2);
        if s1 != Side::Left || s2 != Side::Right {
            return Err(self.err("atoms must compare R1[..] with R2[..]"));
        }
        let op = self.ops.intern(&op_name);
        Ok(SimilarityAtom::new(a1, a2, op))
    }

    /// For reflexive pairs `(R, R)` both mentions of `R` resolve to the left
    /// side; interpret the second reference positionally as the right side.
    fn coerce_sides(&self, s1: Side, s2: Side) -> (Side, Side) {
        if s1 == Side::Left
            && s2 == Side::Left
            && self.pair.left().name() == self.pair.right().name()
        {
            (Side::Left, Side::Right)
        } else {
            (s1, s2)
        }
    }

    /// `rel[attr]` — a single attribute reference.
    fn attr_ref(&mut self) -> Result<(Side, AttrId)> {
        let (side, attrs) = self.attr_list()?;
        if attrs.len() != 1 {
            return Err(self.err("expected a single attribute"));
        }
        Ok((side, attrs[0]))
    }

    /// `rel[attr, attr, …]`.
    fn attr_list(&mut self) -> Result<(Side, Vec<AttrId>)> {
        self.skip_ws();
        let rel = self.ident()?;
        let side = self.pair.side_of(&rel)?;
        let schema = self.pair.schema_of(side).clone();
        self.skip_ws();
        if !self.eat("[") {
            return Err(self.err("expected '['"));
        }
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            let name = self.ident()?;
            attrs.push(schema.attr(&name)?);
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            if self.eat("]") {
                break;
            }
            return Err(self.err("expected ',' or ']'"));
        }
        Ok((side, attrs))
    }

    /// `=` or `~ident` / `≈ident`.
    fn operator(&mut self) -> Result<String> {
        self.skip_ws();
        if self.eat("=") {
            return Ok("=".to_owned());
        }
        if self.eat("~") || self.eat("≈") {
            let suffix = self.ident().unwrap_or_default();
            // Canonical operator names use the Unicode ≈ prefix.
            return Ok(format!("≈{suffix}"));
        }
        Err(self.err("expected an operator ('=' or '~name')"))
    }

    /// Identifiers: letters, digits, `_`, `#`, `.`, `-`.
    fn ident(&mut self) -> Result<String> {
        let rest = &self.input[self.pos..];
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || matches!(c, '_' | '#' | '.' | '-')))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            return Err(self.err("expected an identifier"));
        }
        self.pos += end;
        Ok(rest[..end].to_owned())
    }

    fn skip_ws(&mut self) {
        let rest = &self.input[self.pos..];
        let skipped =
            rest.char_indices().find(|(_, c)| !c.is_whitespace()).map_or(rest.len(), |(i, _)| i);
        self.pos += skipped;
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.input[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn err(&self, message: &str) -> CoreError {
        CoreError::Parse { offset: self.pos, message: message.to_owned() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::OperatorId;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn pair() -> SchemaPair {
        let credit =
            Arc::new(Schema::text("credit", &["c#", "FN", "LN", "addr", "tel", "email"]).unwrap());
        let billing =
            Arc::new(Schema::text("billing", &["c#", "FN", "LN", "post", "phn", "email"]).unwrap());
        SchemaPair::new(credit, billing)
    }

    #[test]
    fn parses_paper_phi2() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let md =
            parse_md("credit[tel] = billing[phn] -> credit[addr] <=> billing[post]", &p, &mut ops)
                .unwrap();
        assert_eq!(md.lhs().len(), 1);
        assert!(md.lhs()[0].op.is_eq());
        assert_eq!(md.rhs().len(), 1);
        // Round-trips through the display form.
        let rendered = md.display(&p, &ops).to_string();
        let md2 = parse_md(&rendered, &p, &mut ops).unwrap();
        assert_eq!(md, md2);
    }

    #[test]
    fn parses_conjunction_and_similarity() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let md = parse_md(
            "credit[LN] = billing[LN] /\\ credit[FN] ~d billing[FN] \
             -> credit[FN,LN] <=> billing[FN,LN]",
            &p,
            &mut ops,
        )
        .unwrap();
        assert_eq!(md.lhs().len(), 2);
        let dl = ops.get("≈d").unwrap();
        assert!(md.lhs().iter().any(|a| a.op == dl));
        assert_eq!(md.rhs().len(), 2);
    }

    #[test]
    fn parses_unicode_forms() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let md = parse_md(
            "credit[LN] = billing[LN] ∧ credit[FN] ≈d billing[FN] → credit[FN] ⇌ billing[FN]",
            &p,
            &mut ops,
        )
        .unwrap();
        assert_eq!(md.lhs().len(), 2);
    }

    #[test]
    fn hash_in_attribute_names() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let md = parse_md("credit[c#] = billing[c#] -> credit[FN] <=> billing[FN]", &p, &mut ops)
            .unwrap();
        assert_eq!(md.lhs()[0].left, 0);
    }

    #[test]
    fn rejects_malformed_input() {
        let p = pair();
        let mut ops = OperatorTable::new();
        for bad in [
            "",
            "credit[tel] billing[phn] -> credit[addr] <=> billing[post]",
            "credit[tel] = billing[phn]",
            "credit[tel] = billing[phn] -> credit[addr] <=> billing[post] junk",
            "credit[tel] = billing[phn] -> billing[post] <=> credit[addr]",
            "credit[nope] = billing[phn] -> credit[addr] <=> billing[post]",
            "orders[tel] = billing[phn] -> credit[addr] <=> billing[post]",
            "credit[tel] = billing[phn] -> credit[addr,tel] <=> billing[post]",
        ] {
            assert!(parse_md(bad, &p, &mut ops).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn reports_error_offsets() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let err = parse_md("credit[tel] ? billing[phn] -> x <=> y", &p, &mut ops).unwrap_err();
        match err {
            CoreError::Parse { offset, .. } => assert_eq!(offset, 12),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parses_md_set_with_comments() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let set = parse_md_set(
            "// the paper's ϕ2 and ϕ3\n\
             credit[tel] = billing[phn] -> credit[addr] <=> billing[post]\n\
             \n\
             credit[email] = billing[email] -> credit[FN,LN] <=> billing[FN,LN]\n",
            &p,
            &mut ops,
        )
        .unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn reflexive_pairs_parse_positionally() {
        let r = Arc::new(Schema::text("R", &["A", "B"]).unwrap());
        let p = SchemaPair::reflexive(r);
        let mut ops = OperatorTable::new();
        let md = parse_md("R[A] = R[A] -> R[B] <=> R[B]", &p, &mut ops).unwrap();
        assert_eq!(md.lhs(), &[SimilarityAtom::eq(0, 0)]);
        assert_eq!(md.rhs(), &[IdentPair::new(1, 1)]);
    }

    #[test]
    fn equality_operator_is_interned_as_eq() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let md = parse_md(
            "credit[email] = billing[email] -> credit[email] <=> billing[email]",
            &p,
            &mut ops,
        )
        .unwrap();
        assert_eq!(md.lhs()[0].op, OperatorId::EQ);
    }
}
