//! Symbolic similarity operators.
//!
//! The reasoning of §3–§5 is *generic*: it relies only on the axioms that
//! every operator `≈ ∈ Θ` is reflexive, symmetric and subsumes equality.
//! The core therefore manipulates operators purely as interned symbols; the
//! binding to executable predicates (edit distance, Jaro, …) happens in the
//! `matchrules-simdist` registry at matching time.

use crate::error::{CoreError, Result};
use std::collections::HashMap;
use std::fmt;

/// An interned similarity operator. `OperatorId::EQ` is always the equality
/// relation `=`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OperatorId(pub u16);

impl OperatorId {
    /// The distinguished equality operator `=`.
    pub const EQ: OperatorId = OperatorId(0);

    /// Whether this is the equality operator.
    pub fn is_eq(self) -> bool {
        self == Self::EQ
    }
}

impl fmt::Display for OperatorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// The fixed set Θ of similarity operators in use, as an interning table.
///
/// Equality is pre-registered under the name `"="` with id
/// [`OperatorId::EQ`]. All other operators are interned on first use.
#[derive(Debug, Clone)]
pub struct OperatorTable {
    names: Vec<String>,
    by_name: HashMap<String, OperatorId>,
}

impl Default for OperatorTable {
    fn default() -> Self {
        Self::new()
    }
}

impl OperatorTable {
    /// Creates a table containing only `=`.
    pub fn new() -> Self {
        let mut table =
            OperatorTable { names: Vec::with_capacity(4), by_name: HashMap::with_capacity(4) };
        let eq = table.intern("=");
        debug_assert_eq!(eq, OperatorId::EQ);
        table
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> OperatorId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = OperatorId(u16::try_from(self.names.len()).expect("too many operators"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Resolves a name to an id without interning.
    pub fn get(&self, name: &str) -> Result<OperatorId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownOperator { name: name.to_owned() })
    }

    /// The name of an interned operator.
    pub fn name(&self, id: OperatorId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of interned operators (including `=`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: `=` is pre-registered.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All operator ids in interning order.
    pub fn ids(&self) -> impl Iterator<Item = OperatorId> + '_ {
        (0..self.names.len()).map(|i| OperatorId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_preregistered() {
        let table = OperatorTable::new();
        assert_eq!(table.get("=").unwrap(), OperatorId::EQ);
        assert!(OperatorId::EQ.is_eq());
        assert_eq!(table.name(OperatorId::EQ), "=");
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut table = OperatorTable::new();
        let a = table.intern("≈dl");
        let b = table.intern("≈dl");
        assert_eq!(a, b);
        assert_eq!(table.len(), 2);
        assert!(!a.is_eq());
    }

    #[test]
    fn unknown_operator_errors() {
        let table = OperatorTable::new();
        assert!(matches!(table.get("≈xx"), Err(CoreError::UnknownOperator { .. })));
    }

    #[test]
    fn ids_iterate_in_order() {
        let mut table = OperatorTable::new();
        table.intern("≈a");
        table.intern("≈b");
        let ids: Vec<_> = table.ids().collect();
        assert_eq!(ids, vec![OperatorId(0), OperatorId(1), OperatorId(2)]);
    }
}
