//! Relation schemas, attributes and comparable lists (§2.1 of the paper).
//!
//! MDs are defined over a pair of relation schemas `(R1, R2)` — possibly the
//! same schema twice (deduplication within a single relation uses `(R, R)`).
//! Attribute pairs may only be compared when their domains agree; the paper
//! calls two equal-length, pairwise-comparable attribute lists *comparable
//! lists*.

use crate::error::{CoreError, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The domain of an attribute. The paper assumes data standardization has
/// already put comparable attributes into a common domain; we model domains
/// nominally and require equality for comparability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Domain {
    /// Free-form text (names, addresses, e-mail, …).
    #[default]
    Text,
    /// Integer-valued data (counts, card numbers as digits).
    Integer,
    /// Decimal-valued data (prices).
    Decimal,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Text => write!(f, "text"),
            Domain::Integer => write!(f, "integer"),
            Domain::Decimal => write!(f, "decimal"),
        }
    }
}

/// The semantic class of an attribute's values — *schema metadata*, not a
/// domain: two attributes of different kinds may still be comparable.
///
/// Kinds drive everything that used to be hardcoded on attribute names:
/// sort/block-key encodings (names get Soundex, phones/zips digit
/// extraction), and the format-aware error ladder of the synthetic-data
/// generator. User schemas default to [`AttrKind::FreeText`] and may opt
/// into richer behavior attribute by attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AttrKind {
    /// A given (first/middle) name — Soundex-encoded in keys, abbreviated
    /// to an initial by the noise model.
    GivenName,
    /// A surname — Soundex-encoded in keys.
    Surname,
    /// A street line ("10 Oak Street").
    Street,
    /// A city name.
    City,
    /// A county name.
    County,
    /// A state / region code.
    State,
    /// A postal code — digit-extracted in keys.
    Zip,
    /// A phone number — digit-extracted in keys.
    Phone,
    /// An e-mail address.
    Email,
    /// A gender marker.
    Gender,
    /// An opaque identifier (card number, SSN, SKU).
    Id,
    /// A calendar date.
    Date,
    /// A monetary amount.
    Money,
    /// Anything else.
    #[default]
    FreeText,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttrKind::GivenName => "given-name",
            AttrKind::Surname => "surname",
            AttrKind::Street => "street",
            AttrKind::City => "city",
            AttrKind::County => "county",
            AttrKind::State => "state",
            AttrKind::Zip => "zip",
            AttrKind::Phone => "phone",
            AttrKind::Email => "email",
            AttrKind::Gender => "gender",
            AttrKind::Id => "id",
            AttrKind::Date => "date",
            AttrKind::Money => "money",
            AttrKind::FreeText => "free-text",
        };
        write!(f, "{name}")
    }
}

/// A named, typed attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    domain: Domain,
    kind: AttrKind,
}

impl Attribute {
    /// Creates a text attribute — the common case in record matching.
    pub fn text(name: &str) -> Self {
        Attribute { name: name.to_owned(), domain: Domain::Text, kind: AttrKind::FreeText }
    }

    /// Creates an attribute with an explicit domain.
    pub fn new(name: &str, domain: Domain) -> Self {
        Attribute { name: name.to_owned(), domain, kind: AttrKind::FreeText }
    }

    /// Creates a text attribute with a semantic kind.
    pub fn kinded(name: &str, kind: AttrKind) -> Self {
        Attribute { name: name.to_owned(), domain: Domain::Text, kind }
    }

    /// Sets the attribute's semantic kind.
    #[must_use]
    pub fn with_kind(mut self, kind: AttrKind) -> Self {
        self.kind = kind;
        self
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's domain.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The attribute's semantic kind.
    pub fn kind(&self) -> AttrKind {
        self.kind
    }
}

/// Index of an attribute within its schema.
pub type AttrId = usize;

/// A relation schema: a name plus an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attributes: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema, rejecting empty attribute lists and duplicate names.
    pub fn new(name: &str, attributes: Vec<Attribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(CoreError::EmptySchema { schema: name.to_owned() });
        }
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (i, attr) in attributes.iter().enumerate() {
            if by_name.insert(attr.name.clone(), i).is_some() {
                return Err(CoreError::DuplicateAttribute {
                    schema: name.to_owned(),
                    attribute: attr.name.clone(),
                });
            }
        }
        Ok(Schema { name: name.to_owned(), attributes, by_name })
    }

    /// Convenience constructor for all-text schemas:
    /// `Schema::text("credit", &["c#", "SSN", …])`.
    pub fn text(name: &str, attribute_names: &[&str]) -> Result<Self> {
        Schema::new(name, attribute_names.iter().map(|n| Attribute::text(n)).collect())
    }

    /// Convenience constructor for all-text schemas with semantic kinds:
    /// `Schema::kinded("crm", &[("surname", AttrKind::Surname), …])`.
    pub fn kinded(name: &str, attributes: &[(&str, AttrKind)]) -> Result<Self> {
        Schema::new(name, attributes.iter().map(|&(n, k)| Attribute::kinded(n, k)).collect())
    }

    /// Returns a copy with the kind of one attribute replaced.
    pub fn with_attr_kind(&self, attr: &str, kind: AttrKind) -> Result<Self> {
        let id = self.attr(attr)?;
        let mut attributes = self.attributes.clone();
        attributes[id].kind = kind;
        Ok(Schema { name: self.name.clone(), attributes, by_name: self.by_name.clone() })
    }

    /// The schema's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (the schema's arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks an attribute up by name.
    pub fn attr(&self, name: &str) -> Result<AttrId> {
        self.by_name.get(name).copied().ok_or_else(|| CoreError::UnknownAttribute {
            schema: self.name.clone(),
            attribute: name.to_owned(),
        })
    }

    /// Looks several attributes up by name, preserving order.
    pub fn attrs(&self, names: &[&str]) -> Result<Vec<AttrId>> {
        names.iter().map(|n| self.attr(n)).collect()
    }

    /// The attribute at `id`, if in range.
    pub fn attribute(&self, id: AttrId) -> Result<&Attribute> {
        self.attributes
            .get(id)
            .ok_or_else(|| CoreError::AttributeOutOfRange { schema: self.name.clone(), index: id })
    }

    /// The name of attribute `id`; panics if out of range (internal use with
    /// already-validated ids).
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attributes[id].name()
    }

    /// The semantic kind of attribute `id`; panics if out of range
    /// (internal use with already-validated ids).
    pub fn attr_kind(&self, id: AttrId) -> AttrKind {
        self.attributes[id].kind()
    }
}

/// Which side of the schema pair an attribute reference lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Side {
    /// The first relation, `R1`.
    Left,
    /// The second relation, `R2`.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// A fully-qualified attribute reference `R[A]` within a schema pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Which relation of the pair.
    pub side: Side,
    /// Attribute index within that relation's schema.
    pub attr: AttrId,
}

impl AttrRef {
    /// `R1[attr]`.
    pub fn left(attr: AttrId) -> Self {
        AttrRef { side: Side::Left, attr }
    }

    /// `R2[attr]`.
    pub fn right(attr: AttrId) -> Self {
        AttrRef { side: Side::Right, attr }
    }
}

/// The pair of schemas `(R1, R2)` that MDs and RCKs are defined over.
///
/// Both sides may be the same schema (single-relation deduplication); they
/// are stored as shared pointers so a pair is cheap to clone.
#[derive(Debug, Clone)]
pub struct SchemaPair {
    left: Arc<Schema>,
    right: Arc<Schema>,
}

impl SchemaPair {
    /// Builds a pair over two (possibly identical) schemas.
    pub fn new(left: Arc<Schema>, right: Arc<Schema>) -> Self {
        SchemaPair { left, right }
    }

    /// Builds the reflexive pair `(R, R)`.
    pub fn reflexive(schema: Arc<Schema>) -> Self {
        SchemaPair { left: schema.clone(), right: schema }
    }

    /// The schema of side `R1`.
    pub fn left(&self) -> &Arc<Schema> {
        &self.left
    }

    /// The schema of side `R2`.
    pub fn right(&self) -> &Arc<Schema> {
        &self.right
    }

    /// The schema a reference points into.
    pub fn schema_of(&self, side: Side) -> &Arc<Schema> {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// Resolves a relation name to its side. When both sides share a name
    /// (reflexive pairs), `R1`/`R2` suffixes disambiguate; the bare name
    /// resolves to the left side.
    pub fn side_of(&self, relation: &str) -> Result<Side> {
        if relation == self.left.name() {
            Ok(Side::Left)
        } else if relation == self.right.name() {
            Ok(Side::Right)
        } else {
            Err(CoreError::UnknownRelation { name: relation.to_owned() })
        }
    }

    /// Validates that `(left, right)` attributes are comparable: both in
    /// range and of equal domain.
    pub fn check_comparable(&self, left: AttrId, right: AttrId) -> Result<()> {
        let la = self.left.attribute(left)?;
        let ra = self.right.attribute(right)?;
        if la.domain() != ra.domain() {
            return Err(CoreError::DomainMismatch {
                left: format!("{}[{}]", self.left.name(), la.name()),
                right: format!("{}[{}]", self.right.name(), ra.name()),
            });
        }
        Ok(())
    }

    /// Validates a pair of comparable lists: equal length and pairwise
    /// comparable (§2.1).
    pub fn check_comparable_lists(&self, left: &[AttrId], right: &[AttrId]) -> Result<()> {
        if left.len() != right.len() {
            return Err(CoreError::LengthMismatch { left: left.len(), right: right.len() });
        }
        for (&l, &r) in left.iter().zip(right) {
            self.check_comparable(l, r)?;
        }
        Ok(())
    }

    /// Renders `R[A]` for diagnostics.
    pub fn display_ref(&self, r: AttrRef) -> String {
        let schema = self.schema_of(r.side);
        format!("{}[{}]", schema.name(), schema.attr_name(r.attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn credit() -> Arc<Schema> {
        Arc::new(
            Schema::text(
                "credit",
                &["c#", "SSN", "FN", "LN", "addr", "tel", "email", "gender", "type"],
            )
            .unwrap(),
        )
    }

    fn billing() -> Arc<Schema> {
        Arc::new(
            Schema::text(
                "billing",
                &["c#", "FN", "LN", "post", "phn", "email", "gender", "item", "price"],
            )
            .unwrap(),
        )
    }

    #[test]
    fn schema_lookup_roundtrips() {
        let s = credit();
        assert_eq!(s.arity(), 9);
        let fn_id = s.attr("FN").unwrap();
        assert_eq!(s.attr_name(fn_id), "FN");
        assert!(s.attr("nope").is_err());
        assert!(s.attribute(99).is_err());
    }

    #[test]
    fn duplicate_attributes_rejected() {
        let err = Schema::text("r", &["a", "a"]).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateAttribute { .. }));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(matches!(Schema::text("r", &[]), Err(CoreError::EmptySchema { .. })));
    }

    #[test]
    fn pair_resolves_sides() {
        let pair = SchemaPair::new(credit(), billing());
        assert_eq!(pair.side_of("credit").unwrap(), Side::Left);
        assert_eq!(pair.side_of("billing").unwrap(), Side::Right);
        assert!(pair.side_of("orders").is_err());
    }

    #[test]
    fn reflexive_pair_resolves_to_left() {
        let pair = SchemaPair::reflexive(credit());
        assert_eq!(pair.side_of("credit").unwrap(), Side::Left);
    }

    #[test]
    fn comparability_checks_domains() {
        let left = Arc::new(
            Schema::new("l", vec![Attribute::text("name"), Attribute::new("n", Domain::Integer)])
                .unwrap(),
        );
        let right = Arc::new(
            Schema::new("r", vec![Attribute::text("name"), Attribute::new("m", Domain::Decimal)])
                .unwrap(),
        );
        let pair = SchemaPair::new(left, right);
        assert!(pair.check_comparable(0, 0).is_ok());
        assert!(matches!(pair.check_comparable(1, 1), Err(CoreError::DomainMismatch { .. })));
        assert!(matches!(
            pair.check_comparable_lists(&[0, 1], &[0]),
            Err(CoreError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn display_ref_formats() {
        let pair = SchemaPair::new(credit(), billing());
        let tel = pair.left().attr("tel").unwrap();
        assert_eq!(pair.display_ref(AttrRef::left(tel)), "credit[tel]");
    }

    #[test]
    fn side_flip() {
        assert_eq!(Side::Left.flip(), Side::Right);
        assert_eq!(Side::Right.flip(), Side::Left);
    }

    #[test]
    fn kinds_default_to_free_text() {
        let s = credit();
        assert!((0..s.arity()).all(|i| s.attr_kind(i) == AttrKind::FreeText));
        assert_eq!(Attribute::text("x").kind(), AttrKind::FreeText);
    }

    #[test]
    fn kinded_constructors_carry_kinds() {
        let s =
            Schema::kinded("crm", &[("surname", AttrKind::Surname), ("phone", AttrKind::Phone)])
                .unwrap();
        assert_eq!(s.attr_kind(s.attr("surname").unwrap()), AttrKind::Surname);
        assert_eq!(s.attr_kind(s.attr("phone").unwrap()), AttrKind::Phone);
        let a = Attribute::text("zip").with_kind(AttrKind::Zip);
        assert_eq!(a.kind(), AttrKind::Zip);
        assert_eq!(Attribute::kinded("e", AttrKind::Email).kind(), AttrKind::Email);
    }

    #[test]
    fn with_attr_kind_rebinds_one_attribute() {
        let s = credit();
        let s2 = s.with_attr_kind("tel", AttrKind::Phone).unwrap();
        assert_eq!(s2.attr_kind(s2.attr("tel").unwrap()), AttrKind::Phone);
        assert_eq!(s2.attr_kind(s2.attr("FN").unwrap()), AttrKind::FreeText);
        assert!(s.with_attr_kind("nope", AttrKind::Phone).is_err());
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(AttrKind::GivenName.to_string(), "given-name");
        assert_eq!(AttrKind::FreeText.to_string(), "free-text");
        assert_eq!(AttrKind::Zip.to_string(), "zip");
    }
}
