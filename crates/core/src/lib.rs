//! # matchrules-core
//!
//! Matching dependencies (MDs), relative candidate keys (RCKs) and their
//! reasoning — the core of a from-scratch reproduction of
//!
//! > Wenfei Fan, Xibei Jia, Jianzhong Li, Shuai Ma.
//! > *Reasoning about Record Matching Rules.* VLDB 2009.
//!
//! ## What this crate provides
//!
//! * **MDs** ([`dependency`]): rules `⋀ R1[X1[j]] ≈j R2[X2[j]] → R1[Z1] ⇌
//!   R2[Z2]` — *if these attributes of two records are pairwise similar,
//!   identify those attributes*. Unlike FDs, MDs have a **dynamic** semantics
//!   over pairs of unreliable relations and use arbitrary similarity
//!   operators obeying three generic axioms (reflexivity, symmetry,
//!   subsumption of equality).
//! * **RCKs** ([`relative_key`]): minimal keys relative to attribute lists
//!   `(Y1, Y2)` — what to compare and how, to decide whether two records
//!   refer to the same real-world entity.
//! * **Deduction** ([`deduction`], [`closure`]): the paper's `Σ |=m ϕ`
//!   relation, decided by the **MDClosure** algorithm in `O(n² + h³)` time
//!   (here with the Beeri–Bernstein rule index the paper suggests for its
//!   `O(n + h³)` refinement).
//! * **findRCKs** ([`rck`], [`cost`]): deduce `m` quality RCKs under the
//!   diversity/statistics cost model of §5.
//! * **Axioms** ([`axioms`]): the executable inference steps of Lemmas
//!   3.1–3.4, cross-checked against the algorithmic deduction.
//! * **Parser** ([`parser`]): a textual MD syntax.
//! * **Negation** ([`negation`]): the §8 "cannot match" extension.
//! * **Paper settings** ([`paper`]): the running example (Example 1.1) and
//!   the §6 evaluation schemas, ready-built.
//!
//! ## Quickstart
//!
//! ```
//! use matchrules_core::paper;
//! use matchrules_core::rck::find_rcks;
//! use matchrules_core::cost::CostModel;
//!
//! // The paper's Example 1.1: credit/billing with Σc = {ϕ1, ϕ2, ϕ3}.
//! let setting = paper::example_1_1();
//! let mut cost = CostModel::uniform();
//! let outcome = find_rcks(&setting.sigma, &setting.target, 10, &mut cost);
//! assert!(outcome.complete, "small Σ is fully enumerated");
//! // Among them: ([email, tel], [email, phn] || [=, =]) — the deduced key
//! // that matches tuples whose names and addresses are full of errors.
//! for key in &outcome.keys {
//!     println!("{}", key.display(&setting.pair, &setting.ops));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axioms;
pub mod closure;
pub mod cost;
pub mod deduction;
pub mod dependency;
pub mod error;
pub mod fds;
pub mod negation;
pub mod operators;
pub mod paper;
pub mod parser;
pub mod rck;
pub mod relative_key;
pub mod schema;

pub use closure::Closure;
pub use cost::CostModel;
pub use deduction::deduces;
pub use dependency::{IdentPair, MatchingDependency, SimilarityAtom};
pub use error::{CoreError, Result};
pub use operators::{OperatorId, OperatorTable};
pub use rck::{find_rcks, RckOutcome};
pub use relative_key::{RelativeKey, Target};
pub use schema::{AttrId, AttrKind, AttrRef, Attribute, Domain, Schema, SchemaPair, Side};
