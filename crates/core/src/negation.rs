//! Negative matching rules — the paper's first §8 extension.
//!
//! §8 proposes extending MDs "to support *negation*, to specify when records
//! **cannot** be matched". A [`NegativeRule`] is a conjunction of similarity
//! atoms whose satisfaction *vetoes* a match: e.g. two card holders with
//! equal SSNs but different genders are distinct people no matter what the
//! positive rules say. Matchers consult negative rules as blockers before
//! accepting a positive match.
//!
//! Negative rules do not take part in deduction (they have no dynamic
//! semantics — nothing is identified); they are a runtime filter, which is
//! how the extension is meant to be consumed by matching tools.

use crate::dependency::SimilarityAtom;
use crate::error::{CoreError, Result};
use crate::operators::OperatorTable;
use crate::schema::{AttrId, SchemaPair};

/// A guard atom of a negative rule: either a similarity requirement or its
/// negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Guard {
    /// The attributes must match under the operator.
    Match(SimilarityAtom),
    /// The attributes must *not* match under the operator.
    Differ(SimilarityAtom),
}

impl Guard {
    /// The underlying atom.
    pub fn atom(&self) -> &SimilarityAtom {
        match self {
            Guard::Match(a) | Guard::Differ(a) => a,
        }
    }
}

/// A rule `⋀ guards ⇒ no-match`: when every guard holds for a tuple pair,
/// the pair cannot refer to the same entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NegativeRule {
    guards: Vec<Guard>,
    label: String,
}

impl NegativeRule {
    /// Builds a rule, validating the guards against the schema pair.
    pub fn new(pair: &SchemaPair, label: &str, guards: Vec<Guard>) -> Result<Self> {
        if guards.is_empty() {
            return Err(CoreError::EmptyDependency);
        }
        for g in &guards {
            pair.check_comparable(g.atom().left, g.atom().right)?;
        }
        Ok(NegativeRule { guards, label: label.to_owned() })
    }

    /// Convenience: "same `key`, different `field`" — the archetypal
    /// negative rule (equal SSN but differing gender ⇒ distinct people).
    pub fn same_but_different(
        pair: &SchemaPair,
        label: &str,
        same: (AttrId, AttrId),
        different: (AttrId, AttrId),
    ) -> Result<Self> {
        NegativeRule::new(
            pair,
            label,
            vec![
                Guard::Match(SimilarityAtom::eq(same.0, same.1)),
                Guard::Differ(SimilarityAtom::eq(different.0, different.1)),
            ],
        )
    }

    /// The rule's guards.
    pub fn guards(&self) -> &[Guard] {
        &self.guards
    }

    /// Human-readable label for diagnostics.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Evaluates the rule on a tuple pair through a caller-supplied
    /// predicate oracle (`true` = the atom's operator accepts the value
    /// pair). Returns `true` when the rule **vetoes** the match.
    pub fn vetoes<F>(&self, mut atom_matches: F) -> bool
    where
        F: FnMut(&SimilarityAtom) -> bool,
    {
        self.guards.iter().all(|g| match g {
            Guard::Match(a) => atom_matches(a),
            Guard::Differ(a) => !atom_matches(a),
        })
    }

    /// Pretty-prints the rule against naming context.
    pub fn render(&self, pair: &SchemaPair, ops: &OperatorTable) -> String {
        let mut parts = Vec::with_capacity(self.guards.len());
        for g in &self.guards {
            let a = g.atom();
            let neg = matches!(g, Guard::Differ(_));
            parts.push(format!(
                "{}{}[{}] {} {}[{}]",
                if neg { "NOT " } else { "" },
                pair.left().name(),
                pair.left().attr_name(a.left),
                ops.name(a.op),
                pair.right().name(),
                pair.right().attr_name(a.right),
            ));
        }
        format!("{} => NO-MATCH ({})", parts.join(" /\\ "), self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn pair() -> SchemaPair {
        let c = Arc::new(Schema::text("credit", &["SSN", "gender", "FN"]).unwrap());
        let b = Arc::new(Schema::text("billing", &["SSN", "gender", "FN"]).unwrap());
        SchemaPair::new(c, b)
    }

    #[test]
    fn same_but_different_veto() {
        let p = pair();
        let rule = NegativeRule::same_but_different(&p, "ssn-gender", (0, 0), (1, 1)).unwrap();
        // SSN equal, gender differs → veto.
        assert!(rule.vetoes(|a| a.left == 0));
        // SSN equal, gender equal → no veto.
        assert!(!rule.vetoes(|_| true));
        // SSN differs → no veto.
        assert!(!rule.vetoes(|_| false));
    }

    #[test]
    fn empty_rules_rejected() {
        let p = pair();
        assert!(matches!(NegativeRule::new(&p, "x", vec![]), Err(CoreError::EmptyDependency)));
    }

    #[test]
    fn invalid_attrs_rejected() {
        let p = pair();
        assert!(NegativeRule::same_but_different(&p, "x", (9, 0), (1, 1)).is_err());
    }

    #[test]
    fn render_is_readable() {
        let p = pair();
        let ops = OperatorTable::new();
        let rule = NegativeRule::same_but_different(&p, "ssn-gender", (0, 0), (1, 1)).unwrap();
        let text = rule.render(&p, &ops);
        assert!(text.contains("credit[SSN] = billing[SSN]"));
        assert!(text.contains("NOT credit[gender]"));
        assert!(text.contains("NO-MATCH"));
        assert_eq!(rule.label(), "ssn-gender");
        assert_eq!(rule.guards().len(), 2);
    }
}
