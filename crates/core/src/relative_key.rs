//! Relative keys and relative candidate keys (RCKs) — §2.2 and §5.
//!
//! A key `ψ = (X1, X2 ‖ C)` relative to comparable lists `(Y1, Y2)` is an MD
//! whose RHS is fixed to `(Y1, Y2)`: to identify `t1[Y1]` and `t2[Y2]` it
//! suffices to check that the `X` attributes pairwise match w.r.t. the
//! comparison vector `C`. A *relative candidate key* additionally requires
//! that no other key needs fewer attributes (a sub-list of this one) — the
//! `⪯` ordering below.

use crate::dependency::{IdentPair, MatchingDependency, SimilarityAtom};
use crate::error::{CoreError, Result};
use crate::operators::OperatorTable;
use crate::schema::{AttrId, SchemaPair};
use std::fmt;

/// The pair of comparable lists `(Y1, Y2)` that keys are relative to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    y1: Vec<AttrId>,
    y2: Vec<AttrId>,
}

impl Target {
    /// Validates `(Y1, Y2)` as comparable lists over the schema pair.
    pub fn new(pair: &SchemaPair, y1: Vec<AttrId>, y2: Vec<AttrId>) -> Result<Self> {
        if y1.is_empty() {
            return Err(CoreError::InvalidTarget { message: "empty target lists".to_owned() });
        }
        pair.check_comparable_lists(&y1, &y2)?;
        Ok(Target { y1, y2 })
    }

    /// Resolves named attribute lists, e.g.
    /// `Target::by_names(&pair, &["FN", "LN"], &["FN", "LN"])`.
    pub fn by_names(pair: &SchemaPair, y1: &[&str], y2: &[&str]) -> Result<Self> {
        let y1 = pair.left().attrs(y1)?;
        let y2 = pair.right().attrs(y2)?;
        Target::new(pair, y1, y2)
    }

    /// The left list `Y1`.
    pub fn y1(&self) -> &[AttrId] {
        &self.y1
    }

    /// The right list `Y2`.
    pub fn y2(&self) -> &[AttrId] {
        &self.y2
    }

    /// Length of the lists.
    pub fn len(&self) -> usize {
        self.y1.len()
    }

    /// Targets are validated non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The identification pairs `(Y1[i], Y2[i])`.
    pub fn ident_pairs(&self) -> Vec<IdentPair> {
        self.y1.iter().zip(&self.y2).map(|(&l, &r)| IdentPair::new(l, r)).collect()
    }

    /// The key `(Y1, Y2 ‖ [=, …, =])` — the trivial key every target admits,
    /// and the starting point of `findRCKs` (Fig. 7, line 3).
    pub fn trivial_key(&self) -> RelativeKey {
        RelativeKey::new(
            self.y1.iter().zip(&self.y2).map(|(&l, &r)| SimilarityAtom::eq(l, r)).collect(),
        )
    }
}

/// A key `(X1, X2 ‖ C)` relative to some target, stored as a canonical
/// (sorted, deduplicated) set of similarity atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelativeKey {
    atoms: Vec<SimilarityAtom>,
}

impl RelativeKey {
    /// Builds a key from atoms, canonicalizing them.
    pub fn new(mut atoms: Vec<SimilarityAtom>) -> Self {
        atoms.sort_unstable();
        atoms.dedup();
        RelativeKey { atoms }
    }

    /// The atoms `(X1[i], X2[i], C[i])`.
    pub fn atoms(&self) -> &[SimilarityAtom] {
        &self.atoms
    }

    /// The key's length `k = |X1|`.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether the key has no atoms (never a valid key; produced only as an
    /// intermediate by [`RelativeKey::without`]).
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The `⪯` ordering used by `findRCKs`' completeness check: `self ⪯
    /// other` when every atom of `self` occurs in `other` (same attribute
    /// pair *and* operator). Reflexive; `self ≺ other` additionally requires
    /// strictly fewer atoms (the RCK minimality condition of §2.2).
    pub fn covers(&self, other: &RelativeKey) -> bool {
        // Both atom lists are sorted: a linear merge-subset test.
        let mut it = other.atoms.iter();
        'outer: for atom in &self.atoms {
            for cand in it.by_ref() {
                if cand == atom {
                    continue 'outer;
                }
                if cand > atom {
                    return false;
                }
            }
            return false;
        }
        true
    }

    /// Strict version of [`covers`](Self::covers): `self ≺ other`.
    pub fn strictly_covers(&self, other: &RelativeKey) -> bool {
        self.len() < other.len() && self.covers(other)
    }

    /// The key without one atom (used by `minimize`, Fig. 7).
    pub fn without(&self, atom: &SimilarityAtom) -> RelativeKey {
        RelativeKey { atoms: self.atoms.iter().copied().filter(|a| a != atom).collect() }
    }

    /// `apply(γ, φ)` of §5: removes from the key every atom whose attribute
    /// pair is identified by `RHS(φ)` and adds the atoms of `LHS(φ)` — the
    /// relative key obtained by "applying" MD φ to γ.
    pub fn apply(&self, md: &MatchingDependency) -> RelativeKey {
        let mut atoms: Vec<SimilarityAtom> =
            self.atoms.iter().copied().filter(|a| !md.rhs().contains(&a.pair())).collect();
        atoms.extend_from_slice(md.lhs());
        RelativeKey::new(atoms)
    }

    /// The MD form `⋀ atoms → R1[Y1] ⇌ R2[Y2]` of the key.
    pub fn to_md(&self, target: &Target) -> MatchingDependency {
        MatchingDependency::new_unchecked(self.atoms.clone(), target.ident_pairs())
    }

    /// Pretty-printer in the paper's `(X1, X2 ‖ C)` notation.
    pub fn display<'a>(&'a self, pair: &'a SchemaPair, ops: &'a OperatorTable) -> KeyDisplay<'a> {
        KeyDisplay { key: self, pair, ops }
    }
}

/// Renders a relative key as `([LN, addr], [LN, post] || [=, =])`.
pub struct KeyDisplay<'a> {
    key: &'a RelativeKey,
    pair: &'a SchemaPair,
    ops: &'a OperatorTable,
}

impl fmt::Display for KeyDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let join = |f: &mut fmt::Formatter<'_>,
                    render: &dyn Fn(&SimilarityAtom) -> String|
         -> fmt::Result {
            for (i, atom) in self.key.atoms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", render(atom))?;
            }
            Ok(())
        };
        write!(f, "([")?;
        join(f, &|a| self.pair.left().attr_name(a.left).to_owned())?;
        write!(f, "], [")?;
        join(f, &|a| self.pair.right().attr_name(a.right).to_owned())?;
        write!(f, "] || [")?;
        join(f, &|a| self.ops.name(a.op).to_owned())?;
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::OperatorId;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn pair() -> SchemaPair {
        let credit =
            Arc::new(Schema::text("credit", &["FN", "LN", "addr", "tel", "email"]).unwrap());
        let billing =
            Arc::new(Schema::text("billing", &["FN", "LN", "post", "phn", "email"]).unwrap());
        SchemaPair::new(credit, billing)
    }

    #[test]
    fn target_validation() {
        let p = pair();
        assert!(Target::by_names(&p, &["FN", "LN"], &["FN", "LN"]).is_ok());
        assert!(Target::by_names(&p, &["FN"], &["FN", "LN"]).is_err());
        assert!(Target::by_names(&p, &[], &[]).is_err());
        assert!(Target::by_names(&p, &["nope"], &["FN"]).is_err());
    }

    #[test]
    fn trivial_key_is_all_equalities() {
        let p = pair();
        let t = Target::by_names(&p, &["FN", "LN"], &["FN", "LN"]).unwrap();
        let k = t.trivial_key();
        assert_eq!(k.len(), 2);
        assert!(k.atoms().iter().all(|a| a.op.is_eq()));
        assert!(!k.is_empty());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn covers_is_subset_with_operators() {
        let small = RelativeKey::new(vec![SimilarityAtom::eq(0, 0)]);
        let big = RelativeKey::new(vec![SimilarityAtom::eq(0, 0), SimilarityAtom::eq(1, 1)]);
        assert!(small.covers(&big));
        assert!(!big.covers(&small));
        assert!(small.covers(&small), "⪯ is reflexive");
        assert!(small.strictly_covers(&big));
        assert!(!small.strictly_covers(&small));

        // Same pair, different operator: not covered.
        let sim = RelativeKey::new(vec![SimilarityAtom::new(0, 0, OperatorId(1))]);
        assert!(!sim.covers(&big));
    }

    #[test]
    fn without_removes_one_atom() {
        let k = RelativeKey::new(vec![SimilarityAtom::eq(0, 0), SimilarityAtom::eq(1, 1)]);
        let k2 = k.without(&SimilarityAtom::eq(0, 0));
        assert_eq!(k2.len(), 1);
        assert_eq!(k2.atoms()[0], SimilarityAtom::eq(1, 1));
        assert!(k.without(&SimilarityAtom::eq(9, 9)).len() == 2);
    }

    #[test]
    fn apply_replaces_rhs_pairs_with_lhs_atoms() {
        let p = pair();
        let addr = p.left().attr("addr").unwrap();
        let post = p.right().attr("post").unwrap();
        let tel = p.left().attr("tel").unwrap();
        let phn = p.right().attr("phn").unwrap();
        // γ = ([LN, addr], ‖ =,=); φ2: tel = phn → addr ⇌ post.
        let ln_l = p.left().attr("LN").unwrap();
        let ln_r = p.right().attr("LN").unwrap();
        let gamma =
            RelativeKey::new(vec![SimilarityAtom::eq(ln_l, ln_r), SimilarityAtom::eq(addr, post)]);
        let phi2 = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(tel, phn)],
            vec![IdentPair::new(addr, post)],
        )
        .unwrap();
        let applied = gamma.apply(&phi2);
        // addr/post replaced by tel/phn.
        assert_eq!(applied.len(), 2);
        assert!(applied.atoms().contains(&SimilarityAtom::eq(ln_l, ln_r)));
        assert!(applied.atoms().contains(&SimilarityAtom::eq(tel, phn)));
        assert!(!applied.atoms().contains(&SimilarityAtom::eq(addr, post)));
    }

    #[test]
    fn apply_removes_by_pair_regardless_of_operator() {
        let p = pair();
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈dl");
        let fn_l = p.left().attr("FN").unwrap();
        let fn_r = p.right().attr("FN").unwrap();
        let email_l = p.left().attr("email").unwrap();
        let email_r = p.right().attr("email").unwrap();
        let gamma = RelativeKey::new(vec![SimilarityAtom::new(fn_l, fn_r, dl)]);
        let phi = MatchingDependency::new(
            &p,
            vec![SimilarityAtom::eq(email_l, email_r)],
            vec![IdentPair::new(fn_l, fn_r)],
        )
        .unwrap();
        let applied = gamma.apply(&phi);
        assert_eq!(applied.atoms(), &[SimilarityAtom::eq(email_l, email_r)]);
    }

    #[test]
    fn to_md_has_target_rhs() {
        let p = pair();
        let t = Target::by_names(&p, &["FN", "LN"], &["FN", "LN"]).unwrap();
        let k = RelativeKey::new(vec![SimilarityAtom::eq(4, 4)]); // email = email
        let md = k.to_md(&t);
        assert_eq!(md.rhs().len(), 2);
        assert_eq!(md.lhs(), k.atoms());
    }

    #[test]
    fn display_paper_notation() {
        let p = pair();
        let ops = OperatorTable::new();
        let t = Target::by_names(&p, &["LN", "addr"], &["LN", "post"]).unwrap();
        let k = t.trivial_key();
        let s = k.display(&p, &ops).to_string();
        assert_eq!(s, "([LN, addr], [LN, post] || [=, =])");
    }
}
