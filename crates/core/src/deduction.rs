//! The deduction relation `Σ |=m ϕ` (§3) as a public API over
//! [`Closure`].
//!
//! The paper's notion of deduction replaces classical implication: ϕ is
//! deduced from Σ when, for every instance `D` and every *stable* instance
//! `D'` for Σ, `(D, D') |= Σ` entails `(D, D') |= ϕ`. Theorem 4.1 reduces
//! this to the MDClosure computation: ϕ is deduced iff every RHS pair of ϕ
//! is an equality fact in the closure of Σ and LHS(ϕ).

use crate::closure::Closure;
use crate::dependency::MatchingDependency;
use crate::operators::OperatorId;
use crate::schema::AttrRef;

/// Decides `Σ |=m ϕ`.
///
/// ```
/// use matchrules_core::schema::{Schema, SchemaPair};
/// use matchrules_core::dependency::{MatchingDependency, SimilarityAtom, IdentPair};
/// use matchrules_core::deduction::deduces;
/// use std::sync::Arc;
///
/// // Example 3.1 of the paper: ψ1: A=A → B⇌B, ψ2: B=B → C⇌C deduce
/// // ψ3: A=A → C⇌C (even though the FD analogue needs both f1 and f2).
/// let r = Arc::new(Schema::text("R", &["A", "B", "C"]).unwrap());
/// let pair = SchemaPair::reflexive(r);
/// let psi1 = MatchingDependency::new(&pair,
///     vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(1, 1)]).unwrap();
/// let psi2 = MatchingDependency::new(&pair,
///     vec![SimilarityAtom::eq(1, 1)], vec![IdentPair::new(2, 2)]).unwrap();
/// let psi3 = MatchingDependency::new(&pair,
///     vec![SimilarityAtom::eq(0, 0)], vec![IdentPair::new(2, 2)]).unwrap();
/// assert!(deduces(&[psi1, psi2], &psi3));
/// ```
pub fn deduces(sigma: &[MatchingDependency], phi: &MatchingDependency) -> bool {
    let closure = closure_for(sigma, phi);
    phi.rhs().iter().all(|p| closure.holds(p.left, p.right, OperatorId::EQ))
}

/// The deduction path of `Σ |=m ϕ`: the indices into Σ of the MDs
/// MDClosure fires (in firing order) while deducing ϕ, or `None` when Σ
/// does not deduce ϕ.
///
/// The path is the algorithm's full firing trace, not a minimal proof: an
/// MD whose RHS identifies `k` pairs is normalized into `k` rules and can
/// appear up to `k` times (deduplicate for presentation). Match
/// explanations use this to answer *why* a relative candidate key is a
/// key at all — which given rules, applied in which order, identify the
/// target.
///
/// ```
/// use matchrules_core::deduction::deduction_path;
/// use matchrules_core::paper;
///
/// // Example 4.1: rck4 (email = email ∧ tel = phn) is deduced by firing
/// // ϕ2 and ϕ3 before ϕ1.
/// let setting = paper::example_1_1();
/// let rck4 = paper::example_2_4_rcks(&setting)[3].to_md(&setting.target);
/// let path = deduction_path(&setting.sigma, &rck4).expect("rck4 is deduced");
/// assert!(path.contains(&0) && path.contains(&1) && path.contains(&2));
/// ```
pub fn deduction_path(
    sigma: &[MatchingDependency],
    phi: &MatchingDependency,
) -> Option<Vec<usize>> {
    let closure = closure_for(sigma, phi);
    if phi.rhs().iter().all(|p| closure.holds(p.left, p.right, OperatorId::EQ)) {
        Some(closure.fired().to_vec())
    } else {
        None
    }
}

/// Computes the closure of Σ and LHS(ϕ), with ϕ's RHS attributes forced into
/// the universe so they can be queried (used by traces and diagnostics).
pub fn closure_for(sigma: &[MatchingDependency], phi: &MatchingDependency) -> Closure {
    let extra: Vec<AttrRef> =
        phi.rhs().iter().flat_map(|p| [AttrRef::left(p.left), AttrRef::right(p.right)]).collect();
    Closure::compute(sigma, phi.lhs(), &extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::{IdentPair, SimilarityAtom};
    use crate::operators::OperatorTable;
    use crate::schema::{Schema, SchemaPair};
    use std::sync::Arc;

    /// Builds Example 2.1's Σc = {ϕ1, ϕ2, ϕ3} and the (Yc, Yb) attribute
    /// lists of Example 1.1.
    fn paper_setting() -> (SchemaPair, OperatorTable, Vec<MatchingDependency>) {
        let credit = Arc::new(
            Schema::text(
                "credit",
                &["c#", "SSN", "FN", "LN", "addr", "tel", "email", "gender", "type"],
            )
            .unwrap(),
        );
        let billing = Arc::new(
            Schema::text(
                "billing",
                &["c#", "FN", "LN", "post", "phn", "email", "gender", "item", "price"],
            )
            .unwrap(),
        );
        let pair = SchemaPair::new(credit, billing);
        let mut ops = OperatorTable::new();
        let dl = ops.intern("≈d");

        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let yc = ["FN", "LN", "addr", "tel", "gender"];
        let yb = ["FN", "LN", "post", "phn", "gender"];
        let y_pairs: Vec<IdentPair> =
            yc.iter().zip(&yb).map(|(&a, &b)| IdentPair::new(l(a), r(b))).collect();

        // ϕ1: LN = LN ∧ addr = post ∧ FN ≈d FN → Yc ⇌ Yb
        let phi1 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("LN"), r("LN")),
                SimilarityAtom::eq(l("addr"), r("post")),
                SimilarityAtom::new(l("FN"), r("FN"), dl),
            ],
            y_pairs.clone(),
        )
        .unwrap();
        // ϕ2: tel = phn → addr ⇌ post
        let phi2 = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(l("tel"), r("phn"))],
            vec![IdentPair::new(l("addr"), r("post"))],
        )
        .unwrap();
        // ϕ3: email = email → FN,LN ⇌ FN,LN
        let phi3 = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(l("email"), r("email"))],
            vec![IdentPair::new(l("FN"), r("FN")), IdentPair::new(l("LN"), r("LN"))],
        )
        .unwrap();
        (pair, ops, vec![phi1, phi2, phi3])
    }

    fn y_target(pair: &SchemaPair) -> Vec<IdentPair> {
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        ["FN", "LN", "addr", "tel", "gender"]
            .iter()
            .zip(&["FN", "LN", "post", "phn", "gender"])
            .map(|(&a, &b)| IdentPair::new(l(a), r(b)))
            .collect()
    }

    /// Example 3.5 / 4.1: Σc |=m rck4 (email = email ∧ tel = phn → Yc ⇌ Yb).
    #[test]
    fn example_4_1_rck4_deduced() {
        let (pair, _ops, sigma) = paper_setting();
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let rck4 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("email"), r("email")),
                SimilarityAtom::eq(l("tel"), r("phn")),
            ],
            y_target(&pair),
        )
        .unwrap();
        assert!(deduces(&sigma, &rck4));

        // The firing trace applies ϕ2, ϕ3 first (order between them free),
        // then ϕ1 — matching the table of Example 4.1. ϕ3 normalizes to two
        // rules and ϕ1 to five, so count fired source MDs.
        let closure = closure_for(&sigma, &rck4);
        let fired = closure.fired();
        let pos = |i: usize| fired.iter().position(|&x| x == i).unwrap();
        assert!(pos(1) < pos(0), "ϕ2 fires before ϕ1");
        assert!(pos(2) < pos(0), "ϕ3 fires before ϕ1");
    }

    /// Example 3.5's other deduced keys: rck1, rck2, rck3.
    #[test]
    fn example_3_5_all_rcks_deduced() {
        let (pair, ops, sigma) = paper_setting();
        let dl = ops.get("≈d").unwrap();
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let rhs = y_target(&pair);
        let rck1 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("LN"), r("LN")),
                SimilarityAtom::eq(l("addr"), r("post")),
                SimilarityAtom::new(l("FN"), r("FN"), dl),
            ],
            rhs.clone(),
        )
        .unwrap();
        let rck2 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("LN"), r("LN")),
                SimilarityAtom::eq(l("tel"), r("phn")),
                SimilarityAtom::new(l("FN"), r("FN"), dl),
            ],
            rhs.clone(),
        )
        .unwrap();
        let rck3 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("email"), r("email")),
                SimilarityAtom::eq(l("addr"), r("post")),
            ],
            rhs.clone(),
        )
        .unwrap();
        assert!(deduces(&sigma, &rck1));
        assert!(deduces(&sigma, &rck2));
        assert!(deduces(&sigma, &rck3));
    }

    /// Dropping an essential atom breaks the deduction: email alone cannot
    /// identify (Yc, Yb) — "none of these makes a key" (Example 1.1).
    #[test]
    fn email_alone_is_not_a_key() {
        let (pair, _ops, sigma) = paper_setting();
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let phi = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(l("email"), r("email"))],
            y_target(&pair),
        )
        .unwrap();
        assert!(!deduces(&sigma, &phi));
        let phi = MatchingDependency::new(
            &pair,
            vec![SimilarityAtom::eq(l("tel"), r("phn"))],
            y_target(&pair),
        )
        .unwrap();
        assert!(!deduces(&sigma, &phi));
    }

    /// Reflexive deduction: any MD deduces itself (LHS atoms with `=`
    /// seeded; a ≈-guarded MD ϕ ∈ Σ fires on its own seed).
    #[test]
    fn self_deduction() {
        let (_pair, _ops, sigma) = paper_setting();
        for phi in &sigma {
            assert!(deduces(&sigma, phi), "Σ must deduce its own members");
        }
    }

    /// Monotonicity: enlarging Σ never loses deductions.
    #[test]
    fn deduction_is_monotone() {
        let (pair, _ops, sigma) = paper_setting();
        let l = |n: &str| pair.left().attr(n).unwrap();
        let r = |n: &str| pair.right().attr(n).unwrap();
        let rck4 = MatchingDependency::new(
            &pair,
            vec![
                SimilarityAtom::eq(l("email"), r("email")),
                SimilarityAtom::eq(l("tel"), r("phn")),
            ],
            y_target(&pair),
        )
        .unwrap();
        assert!(deduces(&sigma, &rck4));
        let smaller = &sigma[..2];
        // Without ϕ3, the names cannot be identified.
        assert!(!deduces(smaller, &rck4));
    }
}
