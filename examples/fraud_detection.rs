//! Payment-fraud screening — the paper's §1 motivating scenario at scale.
//!
//! A bank cross-checks billing records against card-holder master data: a
//! billing tuple whose `c#` exists in `credit` but whose holder attributes
//! do NOT match any identity key is suspicious. This example generates a
//! noisy workload, derives RCKs from the 7 §6 MDs, screens every billing
//! record, and reports precision/recall of the screening.
//!
//! Run with: `cargo run --release --example fraud_detection`

use matchrules::core::paper;
use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::matcher::key::KeyMatcher;
use matchrules::matcher::pipeline::{standard_sort_keys, top_rcks};
use matchrules::matcher::sorted_neighborhood::{sorted_neighborhood, SnConfig};
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const HOLDERS: usize = 2_000;
    let setting = paper::extended();
    let data = generate_dirty(&setting, HOLDERS, &NoiseConfig { seed: 0xF4A0D, ..Default::default() });
    let ops = RuntimeOps::resolve(&setting.ops, &paper_registry())?;

    // Compile time: derive the matching keys once from the MDs.
    let rcks = top_rcks(&setting, &data, 5);
    println!("Derived {} RCKs from {} MDs:", rcks.len(), setting.sigma.len());
    for key in &rcks {
        println!("  {}", key.display(&setting.pair, &setting.ops));
    }

    // Run time: link every billing record to a card holder.
    let matcher = KeyMatcher::new(rcks.iter(), &ops);
    let cfg = SnConfig { window: 10, keys: standard_sort_keys(&setting) };
    let outcome = sorted_neighborhood(&data.credit, &data.billing, &matcher, &cfg);

    // A billing record is *cleared* when it links to the holder whose card
    // it charges; otherwise it goes to fraud review.
    let linked: HashSet<usize> = outcome.pairs.iter().map(|&(_, b)| b).collect();
    let flagged = data.billing.len() - linked.len();
    println!(
        "\nScreened {} billing records against {} card holders:",
        data.billing.len(),
        data.credit.len()
    );
    println!("  {} cleared, {} sent to review", linked.len(), flagged);

    let q = matchrules::matcher::metrics::evaluate_pairs(&outcome.pairs, &data.truth);
    println!(
        "  linkage precision {:.3}, recall {:.3}, F1 {:.3}",
        q.precision(),
        q.recall(),
        q.f1()
    );
    println!(
        "  ({} window comparisons for {} x {} possible pairs)",
        outcome.comparisons,
        data.credit.len(),
        data.billing.len()
    );
    Ok(())
}
