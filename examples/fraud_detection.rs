//! Payment-fraud screening — the paper's §1 motivating scenario at scale,
//! run through the engine API.
//!
//! A bank cross-checks billing records against card-holder master data: a
//! billing tuple whose holder attributes do NOT match any identity key is
//! suspicious. This example generates a noisy workload, compiles the
//! `Extended` preset into a plan (top-5 RCKs), screens every billing
//! record with the engine, and reports precision/recall of the screening.
//!
//! Run with: `cargo run --release --example fraud_detection`

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::{ExecConfig, Preset, Threads};
use std::collections::HashSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const HOLDERS: usize = 2_000;
    // Shapes only: the preset's schema pair and target, no compiled plan.
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        HOLDERS,
        &NoiseConfig { seed: 0xF4A0D, ..Default::default() },
    );

    // Compile time: derive the matching keys once from the MDs, with cost
    // statistics calibrated on the instances. Screening runs on all
    // hardware threads (the default — spelled out here for the record).
    let engine = Preset::Extended
        .builder()
        .top_k(5)
        .statistics_from(&data.credit, &data.billing)
        .exec(ExecConfig { threads: Threads::Auto })
        .build()?;
    let plan = engine.plan();
    println!("Derived {} RCKs from {} MDs:", plan.rcks().len(), plan.sigma().len());
    for key in plan.rcks() {
        println!("  {}", key.display(plan.pair(), plan.ops()));
    }

    // Run time: link every billing record to a card holder.
    let report = engine.match_pairs(&data.credit, &data.billing)?;

    // A billing record is *cleared* when it links to a holder; otherwise it
    // goes to fraud review.
    let linked: HashSet<usize> = report.pairs().iter().map(|m| m.right).collect();
    let flagged = data.billing.len() - linked.len();
    println!(
        "\nScreened {} billing records against {} card holders:",
        data.billing.len(),
        data.credit.len()
    );
    println!("  {} cleared, {} sent to review", linked.len(), flagged);

    let q = report.score(&data.truth);
    println!(
        "  linkage precision {:.3}, recall {:.3}, F1 {:.3}",
        q.precision(),
        q.recall(),
        q.f1()
    );
    println!(
        "  ({} window comparisons for {} x {} possible pairs, {:.1}% skipped)",
        report.comparisons(),
        data.credit.len(),
        data.billing.len(),
        report.reduction_ratio() * 100.0,
    );
    let stages: Vec<String> =
        report.stages().iter().map(|s| format!("{} {:?}", s.name, s.elapsed)).collect();
    println!("  runtime: {} thread(s); stages: {}", report.threads(), stages.join(", "));
    Ok(())
}
