//! Serving point queries with a `MatchIndex`: build once, query many,
//! maintain incrementally.
//!
//! The batch modes answer "which pairs match across these two
//! relations?"; the index mode answers "which tuples match *this*
//! record?" without a batch run — the shape of a lookup service sitting
//! in front of a customer database. Run with:
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use matchrules::core::schema::{AttrKind, Schema};
use matchrules::data::relation::{Relation, Tuple};
use matchrules::data::value::Value;
use matchrules::engine::EngineBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CRM-ish schema pair: none of the paper's attribute names.
    let crm = Schema::kinded(
        "crm",
        &[
            ("first", AttrKind::GivenName),
            ("last", AttrKind::Surname),
            ("mobile", AttrKind::Phone),
            ("mail", AttrKind::Email),
        ],
    )?;
    let orders = Schema::kinded(
        "orders",
        &[
            ("fname", AttrKind::GivenName),
            ("lname", AttrKind::Surname),
            ("contact", AttrKind::Phone),
            ("email", AttrKind::Email),
        ],
    )?;

    // Compile MDs -> RCKs -> plan once; the index is the third execution
    // mode of the same compiled plan.
    let engine = EngineBuilder::new()
        .schemas(crm, orders)
        .md_text(
            "crm[mail] = orders[email] -> crm[first,last] <=> orders[fname,lname]\n\
             crm[last] = orders[lname] /\\ crm[first] ~d orders[fname] /\\ \
             crm[mobile] = orders[contact] -> \
             crm[first,last,mobile] <=> orders[fname,lname,contact]\n",
        )
        .target(&["first", "last", "mobile"], &["fname", "lname", "contact"])
        .build()?;
    println!("{}", engine.plan().describe());

    // The order book we serve lookups against.
    let mut orders_rel = Relation::new(engine.plan().pair().right().clone());
    orders_rel.push_strs(1, &["Marx", "Clifford", "908-1111111", "mc@gm.com"]);
    orders_rel.push_strs(2, &["Anna", "Jones", "201-5550000", "aj@example.com"]);
    orders_rel.push_strs(3, &["David", "Smith", "973-5551234", "ds@example.com"]);

    // Build once...
    let mut index = engine.index(&orders_rel)?;
    let stats = index.stats();
    println!(
        "index over {} orders: {} exact atom indices, {} q-gram atom indices\n",
        stats.live, stats.exact_anchors, stats.qgram_anchors
    );

    // ...query many. Which orders belong to this CRM record?
    let probe = Tuple::new(
        1001,
        vec![
            Value::str("Mark"), // typo'd against the order book
            Value::str("Clifford"),
            Value::str("908-1111111"),
            Value::str("mc@gm.com"),
        ],
    );
    let outcome = index.query(&probe);
    println!(
        "query(Mark Clifford): {} hit(s) from {} candidate(s) examined",
        outcome.hits.len(),
        outcome.candidates
    );
    for hit in &outcome.hits {
        println!("  order #{} via RCK {}", hit.id, hit.key);
    }
    assert_eq!(outcome.hits.len(), 1);

    // Incremental maintenance: a new order is queryable immediately…
    index.insert(Tuple::new(
        4,
        vec![Value::str("Mark"), Value::str("Clifford"), Value::str("908-1111111"), Value::Null],
    ))?;
    let hits = index.query(&probe).hits;
    println!("\nafter insert of order #4: {} hit(s)", hits.len());
    assert!(hits.iter().any(|h| h.id == 4));

    // …and a removed one stops matching at once (the slot is tombstoned;
    // rebuild the index to reclaim the space).
    index.remove(1)?;
    let hits = index.query(&probe).hits;
    println!("after remove of order #1: {} hit(s)", hits.len());
    assert!(hits.iter().all(|h| h.id != 1));

    println!("\nserving core ready: build once, query many, maintain incrementally.");
    Ok(())
}
