//! The sharded server end to end: spawn `MatchServer` behind the TCP
//! front on an ephemeral port, then drive it purely over the wire with
//! `MatchClient` — upsert, query (with fired-RCK provenance), explain,
//! hot-swap the rules with zero read downtime, query again, stats.
//!
//! `match_service.rs` shows the in-process facade; this is the same
//! semantics as a network service: shard-parallel writes, lock-free
//! epoch reads, and every answer stamped with the rule version that
//! produced it. Run with:
//!
//! ```sh
//! cargo run --release --example server
//! ```

use matchrules::core::schema::{AttrKind, Schema};
use matchrules::engine::EngineBuilder;
use matchrules::server::{MatchClient, MatchServer, ServerConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A contact book deduplicated against itself: email identifies the
    // name, name + phone identify the person.
    let contacts = Schema::kinded(
        "contacts",
        &[("name", AttrKind::Surname), ("phone", AttrKind::Phone), ("email", AttrKind::Email)],
    )?;
    let engine = EngineBuilder::new()
        .dedup_schema(contacts)
        .md_text(
            "contacts[email] = contacts[email] -> \
             contacts[name,phone] <=> contacts[name,phone]",
        )
        .target(&["name", "phone"], &["name", "phone"])
        .build()?;

    // Four shards; records hash onto them by id, probes fan out across
    // all of them and merge back into arrival order.
    let server = Arc::new(MatchServer::with_config(
        engine,
        ServerConfig { shards: 4, ..Default::default() },
    ));
    let handle = matchrules::server::net::serve(server.clone(), "127.0.0.1:0")?;
    println!("serving on {} with {} shards\n", handle.addr(), server.shards());

    // The client learns both schemas from a stats round-trip, so it can
    // send (field, value) pairs instead of positional tuples.
    let mut client = MatchClient::connect(handle.addr())?;
    for (id, name, phone, email) in [
        (1u64, "Clifford", "908-1111111", "mc@gm.com"),
        (2, "Jones", "201-5550000", "aj@example.com"),
        (3, "Smith", "973-5551234", "ds@example.com"),
    ] {
        client.upsert(id, &[("name", name), ("phone", phone), ("email", email)])?;
    }

    // Query over the wire: hits carry the id and the RCK that fired.
    let answer = client.query(&[("name", "M. Clifford"), ("email", "mc@gm.com")])?;
    println!("query (v{}): {} hit(s)", answer.version, answer.hits.len());
    for hit in &answer.hits {
        println!("  matched record #{} via key {}", hit.id, hit.key);
    }

    // Ask the server why.
    let (matched, why) = client.explain(&[("name", "M. Clifford"), ("email", "mc@gm.com")], 1)?;
    assert!(matched);
    println!("\n{why}");

    // Hot-swap to phone-keyed rules. Readers never block: the rebuild
    // happens off to the side and flips in atomically at v2.
    let v2 = client.swap_rules(
        "contacts[phone] = contacts[phone] -> \
         contacts[name,phone] <=> contacts[name,phone]",
    )?;
    println!("rules swapped -> v{v2}");
    let stale = client.query(&[("email", "mc@gm.com")])?;
    println!(
        "email probe at v{}: {} hit(s) — the email rule is gone",
        stale.version,
        stale.hits.len()
    );
    let fresh = client.query(&[("phone", "201-5550000")])?;
    println!("phone probe at v{}: {} hit(s)", fresh.version, fresh.hits.len());

    // Server-side counters, per shard.
    let stats = client.stats()?;
    println!(
        "\nstats: v{}, epoch {}, {:?} records/shard, {} queries, {} upserts, cache {}/{}",
        stats.version,
        stats.epoch,
        stats.shard_records,
        stats.queries,
        stats.upserts,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
    );

    handle.shutdown();
    println!("server drained and stopped");
    Ok(())
}
