//! Ranked matching: calibrated confidence on top of the boolean rules.
//!
//! MDs and RCKs decide *whether* a pair matches (the sound candidate
//! generator); the plan's `ScoreModel` — Fellegi–Sunter weights fitted
//! by EM on a sample of the data at compile time — says *how strongly*,
//! as a posterior match probability in `[0, 1]`. `query_ranked` returns
//! exactly the boolean hit set, scored and sorted; `dedup_resolved`
//! replaces transitive closure with a one-to-one assignment over the
//! scored pairs. Run with:
//!
//! ```sh
//! cargo run --release --example ranked
//! ```

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::Preset;
use matchrules::service::{MatchService, Record, RecordId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The §6 synthetic catalog: credit records probe a billing store.
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        300,
        &NoiseConfig { seed: 0xBEEF, ..Default::default() },
    );

    // `statistics_from` keeps a bounded sample of both relations, so
    // compile() fits the score model next to the cost model — swap-safe
    // and deterministic.
    let engine =
        Preset::Extended.builder().top_k(5).statistics_from(&data.credit, &data.billing).build()?;
    println!(
        "score model: {} agreement features, fitted = {}\n",
        engine.plan().score_model().atoms().len(),
        engine.plan().score_model().is_fitted(),
    );

    // Serve the billing side, then rank a few credit probes.
    let mut service = MatchService::new(engine.clone());
    for t in data.billing.tuples() {
        let record = Record::from_values(service.store_schema().clone(), t.values().to_vec())?;
        service.upsert(RecordId(t.id()), &record)?;
    }

    let mut shown = 0;
    for t in data.credit.tuples() {
        let probe = Record::from_values(service.probe_schema().clone(), t.values().to_vec())?;
        let ranked = service.query_ranked(&probe, 3, 0.0)?;
        if ranked.hits.len() < 2 {
            continue;
        }
        println!("probe #{} -> {} hits (best 3, {}):", t.id(), ranked.hits.len(), ranked.version);
        for hit in &ranked.hits {
            println!("  {}  score {:.4}  via RCK {}", hit.id, hit.score, hit.key);
        }
        shown += 1;
        if shown == 3 {
            break;
        }
    }

    // One-to-one dedup: same boolean pairs, but each record ends up in
    // at most one link — the highest-scoring consistent assignment
    // instead of a transitive-closure cluster.
    let billing_schema = shape.pair.right().as_ref().clone();
    let dedup_engine = matchrules::engine::EngineBuilder::new()
        .dedup_schema(billing_schema)
        .md_text(
            "billing[phn] = billing[phn] /\\ billing[LN] ~d billing[LN] -> \
             billing[FN,LN,phn] <=> billing[FN,LN,phn]\n\
             billing[email] = billing[email] /\\ billing[zip] = billing[zip] -> \
             billing[FN,LN,phn] <=> billing[FN,LN,phn]\n",
        )
        .target(&["FN", "LN", "phn"], &["FN", "LN", "phn"])
        .build()?;
    let resolved = dedup_engine.dedup_resolved(&data.billing, 0.5)?;
    println!(
        "\ndedup: {} rule-matched pairs resolved to {} one-to-one links (min score 0.5)",
        resolved.report.pairs().len(),
        resolved.links.len(),
    );
    for link in resolved.links.iter().take(5) {
        println!("  #{} <-> #{}  score {:.4}", link.left_id, link.right_id, link.score);
    }
    Ok(())
}
