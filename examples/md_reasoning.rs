//! A tour of MD reasoning: dynamic semantics, deduction vs implication,
//! the MDClosure trace of Example 4.1, and enforcement to a stable
//! instance (Figures 2 and 3 of the paper) — driven through the engine's
//! compiled plan instead of raw paper internals.
//!
//! Run with: `cargo run --release --example md_reasoning`

use matchrules::core::deduction::{closure_for, deduces};
use matchrules::core::operators::OperatorTable;
use matchrules::core::parser::parse_md_set;
use matchrules::core::schema::{Schema, SchemaPair};
use matchrules::data::enforce::{is_stable, satisfies};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::data::fig1;
use matchrules::data::relation::{InstancePair, Relation};
use matchrules::engine::Preset;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    example_3_1_deduction_vs_implication()?;
    example_4_1_closure_trace()?;
    figure_2_enforcement()?;
    Ok(())
}

/// Example 3.1/3.3: Σ0 = {ψ1, ψ2} deduces ψ3 even though classical
/// implication fails, and the chase of Figure 3 exhibits the stable
/// instance D2.
fn example_3_1_deduction_vs_implication() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Example 3.1: deduction, not implication ==");
    let r = Arc::new(Schema::text("R", &["A", "B", "C"])?);
    let pair = SchemaPair::reflexive(r);
    let mut table = OperatorTable::new();
    let sigma = parse_md_set(
        "R[A] = R[A] -> R[B] <=> R[B]\nR[B] = R[B] -> R[C] <=> R[C]\n",
        &pair,
        &mut table,
    )?;
    let psi3 = parse_md_set("R[A] = R[A] -> R[C] <=> R[C]\n", &pair, &mut table)?.remove(0);
    println!("  Sigma0 |=m psi3?  {}", deduces(&sigma, &psi3));

    // The chase of Figure 3: D0 -> (enforce ψ1, ψ2) -> stable D2.
    let ops = RuntimeOps::resolve(&table, &paper_registry())?;
    let mut i1 = Relation::new(pair.left().clone());
    i1.push_strs(1, &["a", "b1", "c1"]);
    let mut i2 = Relation::new(pair.right().clone());
    i2.push_strs(2, &["a", "b2", "c2"]);
    let d0 = InstancePair::new(pair, i1, i2);
    let outcome = matchrules::data::enforce::enforce(&d0, &sigma, &ops);
    println!(
        "  chase: {} merges in {} rounds; result stable: {}",
        outcome.merges,
        outcome.rounds,
        is_stable(&outcome.result, &sigma, &ops)
    );
    println!("  (D0, D2) |= psi3: {}", satisfies(&d0, &outcome.result, &psi3, &ops));
    println!("  s1 in D2: {:?}", outcome.result.left().tuples()[0].values());
    println!("  s2 in D2: {:?}\n", outcome.result.right().tuples()[0].values());
    Ok(())
}

/// Example 4.1: the MDClosure run deducing rck4 from Σc, with its trace —
/// everything read off the compiled plan.
fn example_4_1_closure_trace() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Example 4.1: MDClosure deduces rck4 ==");
    let plan = Preset::Example11.builder().top_k(10).compile()?;
    // rck4 = ([email, tel], [email, phn] || [=, =]) — the shortest plan key.
    let rck4 = plan.rcks().iter().min_by_key(|k| k.len()).expect("plan has keys");
    let phi = rck4.to_md(plan.target());
    println!("  candidate: {}", phi.display(plan.pair(), plan.ops()));
    let closure = closure_for(plan.sigma(), &phi);
    println!("  fired MDs (by Σc index, normal-form steps): {:?}", closure.fired());
    println!("  deduced facts:");
    for fact in closure.facts() {
        println!(
            "    {} {} {}",
            plan.pair().display_ref(fact.a),
            plan.ops().name(fact.op),
            plan.pair().display_ref(fact.b),
        );
    }
    println!("  Sigma_c |=m rck4?  {}\n", deduces(plan.sigma(), &phi));
    Ok(())
}

/// Figure 2: enforcing the plan's MDs on the Fig. 1 instance identifies
/// t1[addr] with t4[post] (ϕ2 fires on the shared phone) —
/// `MatchEngine::enforce` is the chase.
fn figure_2_enforcement() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 2: enforcing Sigma_c on Fig. 1 ==");
    let engine = Preset::Example11.builder().build()?;
    let plan = engine.plan();
    let instance = fig1::instance_for_pair(plan.pair());
    let phi2 = &plan.sigma()[1];
    println!("  key rule: {}", phi2.display(plan.pair(), plan.ops()));
    // ϕ2's RHS pair is exactly the (addr, post) identification.
    let ident = phi2.rhs()[0];
    let (addr, post) = (ident.left, ident.right);
    let before = instance.right().by_id(fig1::ids::T4).unwrap().get(post).clone();
    let outcome = engine.enforce(&instance);
    let after = outcome.result.right().by_id(fig1::ids::T4).unwrap().get(post).clone();
    let t1_addr = outcome.result.left().by_id(fig1::ids::T1).unwrap().get(addr).clone();
    println!("  t4[post] before: {before}");
    println!("  t4[post] after:  {after}");
    println!("  t1[addr] after:  {t1_addr}");
    println!("  identified: {}", after == t1_addr);
    Ok(())
}
