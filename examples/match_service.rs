//! The serving layer end to end: a stateful `MatchService` with record
//! upsert, versioned rule hot-swap and match explanations.
//!
//! The index-mode example (`serving.rs`) shows the raw `MatchIndex`;
//! this one shows the facade a caller actually wants: field-name
//! records, stable external ids, rule iteration without losing the
//! store, and "why did these two match?" answers. Run with:
//!
//! ```sh
//! cargo run --release --example match_service
//! ```

use matchrules::core::schema::{AttrKind, Schema};
use matchrules::engine::EngineBuilder;
use matchrules::service::{MatchService, RecordId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CRM-ish schema pair: none of the paper's attribute names.
    let crm = Schema::kinded(
        "crm",
        &[
            ("first", AttrKind::GivenName),
            ("last", AttrKind::Surname),
            ("mobile", AttrKind::Phone),
            ("mail", AttrKind::Email),
        ],
    )?;
    let orders = Schema::kinded(
        "orders",
        &[
            ("fname", AttrKind::GivenName),
            ("lname", AttrKind::Surname),
            ("contact", AttrKind::Phone),
            ("email", AttrKind::Email),
        ],
    )?;

    // Version 1 of the rules: email identifies the name; name + phone
    // identify the holder.
    let engine = EngineBuilder::new()
        .schemas(crm, orders)
        .md_text(
            "crm[mail] = orders[email] -> crm[first,last] <=> orders[fname,lname]\n\
             crm[last] = orders[lname] /\\ crm[first] ~d orders[fname] /\\ \
             crm[mobile] = orders[contact] -> \
             crm[first,last,mobile] <=> orders[fname,lname,contact]\n",
        )
        .target(&["first", "last", "mobile"], &["fname", "lname", "contact"])
        .build()?;
    let mut service = MatchService::new(engine);
    println!("service at {} — plan:\n{}", service.version(), service.plan());

    // Upsert the order book under stable external ids.
    for (id, fname, lname, contact, email) in [
        (1u64, "Marx", "Clifford", "908-1111111", "mc@gm.com"),
        (2, "Anna", "Jones", "201-5550000", "aj@example.com"),
        (3, "David", "Smith", "973-5551234", "ds@example.com"),
    ] {
        let record = service
            .record_builder()
            .field("fname", fname)
            .field("lname", lname)
            .field("contact", contact)
            .field("email", email)
            .build()?;
        service.upsert(RecordId(id), &record)?;
    }
    println!("store: {} records\n", service.len());

    // A CRM probe with a typo'd first name still matches order #1.
    let probe = service
        .probe_builder()
        .field("first", "Mark")
        .field("last", "Clifford")
        .field("mobile", "908-1111111")
        .field("mail", "mc@gm.com")
        .build()?;
    let response = service.query(&probe)?;
    println!(
        "query ({}): {} hit(s), {} candidate(s) verified",
        response.version,
        response.hits.len(),
        response.candidates
    );
    for hit in &response.hits {
        println!("  matched record {} via key {}", hit.id, hit.key);
    }

    // Why? Per-atom trace plus the MD deduction path behind the key.
    let why = service.explain(&probe, RecordId(1))?;
    println!("\n{why}");

    // Field typos are typed errors with a suggestion.
    let err = service.probe_builder().field("lat", "Clifford").build().unwrap_err();
    println!("typo'd field: {err}\n");

    // Rule iteration: tighten to "email AND phone must both agree".
    // The store survives; the version bumps; answers change.
    let v2 = service.swap_rules(
        "crm[mail] = orders[email] /\\ crm[mobile] = orders[contact] -> \
         crm[first,last,mobile] <=> orders[fname,lname,contact]",
    )?;
    println!("rules swapped -> {v2}; plan now:\n{}", service.plan());
    let response = service.query(&probe)?;
    println!("same probe at {}: {} hit(s)", response.version, response.hits.len());

    // Remove the matched order: it disappears from answers at once.
    service.remove(RecordId(1))?;
    assert!(service.query(&probe)?.hits.is_empty());
    println!("after remove: {} hit(s)", service.query(&probe)?.hits.len());
    Ok(())
}
