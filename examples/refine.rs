//! Refining rules against labeled data: dirty data → labels → candidate
//! pool → θ-tuned selection → zero-downtime swap.
//!
//! A service starts from a deliberately weak rule set (one exact key,
//! one over-strict fuzzy key), a labeled sample is generated from the
//! §6.2 noise ladder's ground truth, and the refinement loop mines
//! candidates, sweeps every fuzzy atom over a θ grid, evaluates each
//! candidate through the indexed engine, and greedily selects the
//! F1-maximizing subset — which then hot-swaps into the running service.
//! Run with:
//!
//! ```sh
//! cargo run --release --example refine
//! ```

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::{EngineBuilder, Preset};
use matchrules::refine::{CandidateOrigin, LabelStore, Refiner};
use matchrules::service::{MatchService, Record, RecordId};

/// One exact key plus one over-strict fuzzy key (`≈jw` is registered at
/// θ = 0.90) — plenty of headroom for refinement to claw back recall
/// with looser θ-sweep variants.
const WEAK_RULES: &str = "\
    credit[email] = billing[email] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n\
    credit[LN] ~jw billing[LN] /\\ credit[FN] ~jw billing[FN] -> \
    credit[FN,MN,LN,street,city,county,state,zip,tel,email,gender] <=> \
    billing[FN,MN,LN,street,city,county,state,zip,phn,email,gender]\n";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Dirty credit/billing data with known ground truth (§6.2 ladder).
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        80,
        &NoiseConfig { seed: 0x5EED_0F1E, ..NoiseConfig::default() },
    );

    // A service running the weak rules over the billing store.
    let engine = EngineBuilder::new()
        .schema_pair(shape.pair)
        .md_text(WEAK_RULES)
        .target_ids(shape.target)
        .statistics_from(&data.credit, &data.billing)
        .build()?;
    let mut service = MatchService::new(engine);
    for t in data.billing.tuples() {
        let record = Record::from_values(service.store_schema().clone(), t.values().to_vec())?;
        service.upsert(RecordId(t.id()), &record)?;
    }
    println!("serving v{} with {} rules\n", service.version().number(), 2);

    // The ground truth doubles as a labeled-data factory: every true
    // pair positive, two deterministic negatives per positive.
    let labels = LabelStore::from_truth(&data.credit, &data.billing, &data.truth, 2)?;
    println!(
        "labeled sample: {} pairs ({} positive, {} negative)",
        labels.len(),
        labels.positives(),
        labels.negatives()
    );

    // Mine candidates from the labels, θ-sweep every fuzzy atom,
    // evaluate through the indexed engine, select greedily on F1.
    let refiner = Refiner::new(service.plan(), service.registry());
    let refinement = refiner.refine(&labels)?;
    let report = &refinement.report;

    println!(
        "\npool: {} candidates ({} selection)",
        report.pool_size,
        if report.exhaustive { "exhaustive" } else { "greedy" }
    );
    println!(
        "before: P={:.3} R={:.3} F1={:.3}",
        report.before.precision(),
        report.before.recall(),
        report.before.f1()
    );
    println!(
        "after:  P={:.3} R={:.3} F1={:.3}",
        report.after.precision(),
        report.after.recall(),
        report.after.f1()
    );

    println!("\nselected rules:");
    for rule in &report.selected {
        let origin = match &rule.origin {
            CandidateOrigin::Seed => "seed".to_owned(),
            CandidateOrigin::Handwritten => "hand-written".to_owned(),
            CandidateOrigin::Discovered { support, confidence } => {
                format!("mined (support {support}, confidence {confidence:.2})")
            }
            CandidateOrigin::ThetaSweep { theta, .. } => format!("θ-sweep @ {theta:.2}"),
        };
        println!("  [{origin}] gain {:+.3}  {}", rule.marginal_gain, rule.rendered);
    }
    if !report.chosen_thetas.is_empty() {
        println!("\nchosen thresholds:");
        for (atom, theta) in &report.chosen_thetas {
            println!("  {atom}  (θ = {theta:.2})");
        }
    }

    // Hot-swap the selected rules into the running service: same store,
    // bumped version, extended operator world.
    let version = service.swap_rules_refined(&refinement)?;
    println!("\nswapped to v{} with {} rules", version.number(), refinement.rules.len());

    // The refined rules serve immediately.
    let probe = Record::from_values(
        service.probe_schema().clone(),
        data.credit.tuples()[0].values().to_vec(),
    )?;
    let answer = service.query(&probe)?;
    println!(
        "probe #0 matches {} stored records at v{}",
        answer.hits.len(),
        answer.version.number()
    );
    Ok(())
}
