//! Quickstart: declare MDs, deduce RCKs, and match the paper's Fig. 1 data.
//!
//! Run with: `cargo run --release --example quickstart`

use matchrules::core::cost::CostModel;
use matchrules::core::parser::parse_md_set;
use matchrules::core::rck::find_rcks;
use matchrules::core::relative_key::Target;
use matchrules::core::schema::{Schema, SchemaPair};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::data::fig1;
use matchrules::matcher::key::KeyMatcher;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schemas: two unreliable sources describing card holders.
    let credit = Arc::new(Schema::text(
        "credit",
        &["c#", "SSN", "FN", "LN", "addr", "tel", "email", "gender", "type"],
    )?);
    let billing = Arc::new(Schema::text(
        "billing",
        &["c#", "FN", "LN", "post", "phn", "email", "gender", "item", "price"],
    )?);
    let pair = SchemaPair::new(credit, billing);

    // 2. Matching dependencies — domain knowledge as rules (Example 2.1).
    let mut ops = matchrules::core::operators::OperatorTable::new();
    let sigma = parse_md_set(
        "credit[LN] = billing[LN] /\\ credit[addr] = billing[post] /\\ \
         credit[FN] ~d billing[FN] -> \
         credit[FN,LN,addr,tel,gender] <=> billing[FN,LN,post,phn,gender]\n\
         credit[tel] = billing[phn] -> credit[addr] <=> billing[post]\n\
         credit[email] = billing[email] -> credit[FN,LN] <=> billing[FN,LN]\n",
        &pair,
        &mut ops,
    )?;
    println!("Given MDs:");
    for md in &sigma {
        println!("  {}", md.display(&pair, &ops));
    }

    // 3. Deduce relative candidate keys for identifying card holders.
    let target = Target::by_names(
        &pair,
        &["FN", "LN", "addr", "tel", "gender"],
        &["FN", "LN", "post", "phn", "gender"],
    )?;
    let mut cost = CostModel::uniform();
    let outcome = find_rcks(&sigma, &target, 10, &mut cost);
    println!("\nDeduced RCKs (complete: {}):", outcome.complete);
    for key in &outcome.keys {
        println!("  {}", key.display(&pair, &ops));
    }

    // 4. Match the Fig. 1 instance with the union of the deduced keys.
    let setting = matchrules::core::paper::example_1_1();
    let instance = fig1::instance(&setting);
    let runtime = RuntimeOps::resolve(&ops, &paper_registry())?;
    let matcher = KeyMatcher::new(outcome.keys.iter(), &runtime);
    println!("\nMatches on the Fig. 1 instance:");
    for ct in instance.left().tuples() {
        for bt in instance.right().tuples() {
            if matcher.matches(ct, bt) {
                println!(
                    "  credit t{} <-> billing t{}  ({} {})",
                    ct.id(),
                    bt.id(),
                    ct.get(2),
                    ct.get(3),
                );
            }
        }
    }
    Ok(())
}
