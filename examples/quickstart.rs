//! Quickstart: compile the paper's Example 1.1 preset into a match plan,
//! inspect the deduced RCKs, and run the engine on the Fig. 1 instance.
//!
//! Run with: `cargo run --release --example quickstart`

use matchrules::data::fig1;
use matchrules::engine::Preset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile once: schemas + MDs + target -> closure -> RCKs -> plan.
    let engine = Preset::Example11.builder().top_k(10).build()?;
    let plan = engine.plan();

    println!("Given MDs:");
    for md in plan.sigma() {
        println!("  {}", md.display(plan.pair(), plan.ops()));
    }
    println!("\nCompiled plan:\n{}", plan.describe());

    // 2. Run anywhere: the Fig. 1 instance of the plan's schema pair.
    let instance = fig1::instance_for_pair(plan.pair());
    let report = engine.match_all(instance.left(), instance.right())?;
    println!("Matches on the Fig. 1 instance ({report}):");
    for m in report.pairs() {
        let ct = &instance.left().tuples()[m.left];
        println!(
            "  credit t{} <-> billing t{}  (via key #{}: {})",
            m.left_id,
            m.right_id,
            m.key + 1,
            plan.rcks()[m.key].display(plan.pair(), plan.ops()),
        );
        let _ = ct;
    }
    Ok(())
}
