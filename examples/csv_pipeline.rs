//! Loading external data: CSV in, matches out.
//!
//! Demonstrates the adoption path for a downstream user with their own
//! files — parse CSV into relations, declare MDs in the textual syntax,
//! deduce keys, match, and export the linked pairs back to CSV.
//!
//! Run with: `cargo run --release --example csv_pipeline`

use matchrules::core::cost::CostModel;
use matchrules::core::operators::OperatorTable;
use matchrules::core::parser::parse_md_set;
use matchrules::core::rck::find_rcks;
use matchrules::core::relative_key::Target;
use matchrules::core::schema::{Schema, SchemaPair};
use matchrules::data::csv::{read_relation, write_relation};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::matcher::key::KeyMatcher;
use std::sync::Arc;

const CRM_CSV: &str = "\
name,surname,street,zip,phone,email
Mark,Clifford,\"10 Oak Street\",07974,908-1111111,mc@gm.com
David,Smith,\"620 Elm Street\",07976,908-2222222,dsmith@hm.com
Laura,Chen,\"4 Maple Avenue\",10001,212-5551111,lchen@web.com
";

const ORDERS_CSV: &str = "\
recipient,family,address,postcode,contact,mail
Marx,Clifford,\"10 Oak Street\",07974,908,mc@gm.com
M.,Clivord,NJ,null,908-1111111,mc@gm.com
Dave,Smith,\"620 Elm St\",07976,908-2222222,
Laura,Chen,\"4 Mpale Avenue\",10001,,lchen@web.com
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schemas for the two files — note the different attribute names.
    let crm = Arc::new(Schema::text(
        "crm",
        &["name", "surname", "street", "zip", "phone", "email"],
    )?);
    let orders = Arc::new(Schema::text(
        "orders",
        &["recipient", "family", "address", "postcode", "contact", "mail"],
    )?);
    let pair = SchemaPair::new(crm.clone(), orders.clone());

    // 2. Load the CSV documents.
    let crm_rel = read_relation(crm, CRM_CSV)?;
    let orders_rel = read_relation(orders, ORDERS_CSV)?;
    println!("loaded {} CRM rows, {} order rows", crm_rel.len(), orders_rel.len());

    // 3. Declare the matching knowledge and deduce keys.
    let mut ops = OperatorTable::new();
    let sigma = parse_md_set(
        "crm[surname] = orders[family] /\\ crm[street] ~d orders[address] /\\ \
         crm[name] ~d orders[recipient] -> \
           crm[name,surname,street,zip,phone] <=> orders[recipient,family,address,postcode,contact]\n\
         crm[phone] = orders[contact] -> crm[street,zip] <=> orders[address,postcode]\n\
         crm[email] = orders[mail] -> crm[name,surname] <=> orders[recipient,family]\n",
        &pair,
        &mut ops,
    )?;
    let target = Target::by_names(
        &pair,
        &["name", "surname", "street", "zip", "phone"],
        &["recipient", "family", "address", "postcode", "contact"],
    )?;
    let mut cost = CostModel::uniform();
    let keys = find_rcks(&sigma, &target, 8, &mut cost);
    println!("deduced {} keys (complete: {})", keys.keys.len(), keys.complete);

    // 4. Match and print the linked pairs as CSV.
    let runtime = RuntimeOps::resolve(&ops, &paper_registry())?;
    let matcher = KeyMatcher::new(keys.keys.iter(), &runtime);
    println!("\ncrm_row,order_row,crm_name,order_recipient");
    for (ci, ct) in crm_rel.tuples().iter().enumerate() {
        for (oi, ot) in orders_rel.tuples().iter().enumerate() {
            if matcher.matches(ct, ot) {
                println!("{ci},{oi},{} {},{} {}", ct.get(0), ct.get(1), ot.get(0), ot.get(1));
            }
        }
    }

    // 5. Relations round-trip back to CSV for downstream tools.
    let exported = write_relation(&crm_rel);
    assert!(exported.starts_with("name,surname"));
    println!("\n(exported CRM CSV: {} bytes)", exported.len());
    Ok(())
}
