//! Loading external data: CSV in, matches out — on a schema the paper has
//! never seen.
//!
//! Demonstrates the adoption path for a downstream user with their own
//! files: declare schemas with [`AttrKind`] metadata, parse CSV into
//! relations, declare MDs in the textual syntax, compile the engine once,
//! match, and export the linked pairs back to CSV.
//!
//! Run with: `cargo run --release --example csv_pipeline`

use matchrules::core::schema::{AttrKind, Schema};
use matchrules::data::csv::{read_relation, write_relation};
use matchrules::engine::EngineBuilder;

const CRM_CSV: &str = "\
name,surname,street,zip,phone,email
Mark,Clifford,\"10 Oak Street\",07974,908-1111111,mc@gm.com
David,Smith,\"620 Elm Street\",07976,908-2222222,dsmith@hm.com
Laura,Chen,\"4 Maple Avenue\",10001,212-5551111,lchen@web.com
";

const ORDERS_CSV: &str = "\
recipient,family,address,postcode,contact,mail
Marx,Clifford,\"10 Oak Street\",07974,908,mc@gm.com
M.,Clivord,NJ,null,908-1111111,mc@gm.com
Dave,Smith,\"620 Elm St\",07976,908-2222222,
Laura,Chen,\"4 Mpale Avenue\",10001,,lchen@web.com
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schemas for the two files — note the different attribute names,
    //    with per-attribute kinds replacing any name conventions.
    let crm = Schema::kinded(
        "crm",
        &[
            ("name", AttrKind::GivenName),
            ("surname", AttrKind::Surname),
            ("street", AttrKind::Street),
            ("zip", AttrKind::Zip),
            ("phone", AttrKind::Phone),
            ("email", AttrKind::Email),
        ],
    )?;
    let orders = Schema::kinded(
        "orders",
        &[
            ("recipient", AttrKind::GivenName),
            ("family", AttrKind::Surname),
            ("address", AttrKind::Street),
            ("postcode", AttrKind::Zip),
            ("contact", AttrKind::Phone),
            ("mail", AttrKind::Email),
        ],
    )?;

    // 2. Compile the matching knowledge once.
    let engine = EngineBuilder::new()
        .schemas(crm, orders)
        .md_text(
            "crm[surname] = orders[family] /\\ crm[street] ~d orders[address] /\\ \
             crm[name] ~d orders[recipient] -> \
               crm[name,surname,street,zip,phone] <=> orders[recipient,family,address,postcode,contact]\n\
             crm[phone] = orders[contact] -> crm[street,zip] <=> orders[address,postcode]\n\
             crm[email] = orders[mail] -> crm[name,surname] <=> orders[recipient,family]\n",
        )
        .target(
            &["name", "surname", "street", "zip", "phone"],
            &["recipient", "family", "address", "postcode", "contact"],
        )
        .top_k(8)
        .build()?;
    println!("{}", engine.plan().describe());

    // 3. Load the CSV documents against the compiled schemas.
    let crm_rel = read_relation(engine.plan().pair().left().clone(), CRM_CSV)?;
    let orders_rel = read_relation(engine.plan().pair().right().clone(), ORDERS_CSV)?;
    println!("loaded {} CRM rows, {} order rows", crm_rel.len(), orders_rel.len());

    // 4. Match and print the linked pairs as CSV.
    let report = engine.match_all(&crm_rel, &orders_rel)?;
    println!("\ncrm_row,order_row,crm_name,order_recipient");
    for m in report.pairs() {
        let ct = &crm_rel.tuples()[m.left];
        let ot = &orders_rel.tuples()[m.right];
        println!("{},{},{} {},{} {}", m.left, m.right, ct.get(0), ct.get(1), ot.get(0), ot.get(1));
    }

    // 5. Relations round-trip back to CSV for downstream tools.
    let exported = write_relation(&crm_rel);
    assert!(exported.starts_with("name,surname"));
    println!("\n(exported CRM CSV: {} bytes)", exported.len());
    Ok(())
}
