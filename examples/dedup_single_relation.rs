//! Deduplication within a single relation using the reflexive schema pair
//! `(R, R)` — the merge/purge setting of [20], with MDs doing the rule
//! work. Shows Example 2.3/3.1's `(R, R)` formulation on real tuples.
//!
//! Run with: `cargo run --release --example dedup_single_relation`

use matchrules::core::cost::CostModel;
use matchrules::core::operators::OperatorTable;
use matchrules::core::parser::parse_md_set;
use matchrules::core::rck::find_rcks;
use matchrules::core::relative_key::Target;
use matchrules::core::schema::{Schema, SchemaPair};
use matchrules::data::eval::{paper_registry, RuntimeOps};
use matchrules::data::relation::Relation;
use matchrules::data::unionfind::UnionFind;
use matchrules::matcher::key::KeyMatcher;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let contacts = Arc::new(Schema::text(
        "contacts",
        &["name", "surname", "street", "zip", "phone", "email"],
    )?);
    let pair = SchemaPair::reflexive(contacts.clone());

    // Dedup rules: same phone fixes the address; same email fixes the name;
    // surname + street + similar name is a match for the whole record.
    let mut ops = OperatorTable::new();
    let sigma = parse_md_set(
        "contacts[phone] = contacts[phone] -> \
           contacts[street,zip] <=> contacts[street,zip]\n\
         contacts[email] = contacts[email] -> \
           contacts[name,surname] <=> contacts[name,surname]\n\
         contacts[surname] = contacts[surname] /\\ contacts[street] ~d contacts[street] /\\ \
         contacts[name] ~d contacts[name] -> \
           contacts[name,surname,street,zip,phone] <=> contacts[name,surname,street,zip,phone]\n",
        &pair,
        &mut ops,
    )?;

    let target = Target::by_names(
        &pair,
        &["name", "surname", "street", "zip", "phone"],
        &["name", "surname", "street", "zip", "phone"],
    )?;
    let mut cost = CostModel::uniform();
    let keys = find_rcks(&sigma, &target, 8, &mut cost);
    println!("Deduced dedup keys:");
    for key in &keys.keys {
        println!("  {}", key.display(&pair, &ops));
    }

    // A messy address book.
    let mut book = Relation::new(contacts);
    book.push_strs(0, &["Anna", "Kovacs", "12 Birch Lane", "07974", "908-5551234", "ak@mail.com"]);
    book.push_strs(1, &["Ana", "Kovacs", "12 Birch Lne", "07974", "", "anna.k@web.com"]);
    book.push_strs(2, &["A.", "Kovacs", "", "", "908-5551234", "ak@mail.com"]);
    book.push_strs(3, &["Bela", "Nagy", "7 Cedar Court", "07976", "908-5559876", "bn@mail.com"]);
    book.push_strs(4, &["Bella", "Nagy", "7 Cedar Crt", "07976", "", "bn@mail.com"]);
    book.push_strs(5, &["Carl", "Weiss", "3 Elm Street", "10001", "212-5550000", "cw@mail.com"]);

    // Pairwise matching (i < j) + union-find clustering.
    let runtime = RuntimeOps::resolve(&ops, &paper_registry())?;
    let matcher = KeyMatcher::new(keys.keys.iter(), &runtime);
    let mut clusters = UnionFind::new(book.len());
    for i in 0..book.len() {
        for j in (i + 1)..book.len() {
            if matcher.matches(&book.tuples()[i], &book.tuples()[j]) {
                clusters.union(i, j);
            }
        }
    }

    println!("\nClusters:");
    for group in clusters.groups() {
        let names: Vec<String> = group
            .iter()
            .map(|&i| {
                let t = &book.tuples()[i];
                format!("#{} {} {}", t.id(), t.get(0), t.get(1))
            })
            .collect();
        println!("  {}", names.join("  |  "));
    }
    println!(
        "\n{} records -> {} entities",
        book.len(),
        clusters.class_count()
    );
    Ok(())
}
