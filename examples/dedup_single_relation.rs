//! Deduplication within a single relation using the reflexive schema pair
//! `(R, R)` — the merge/purge setting of \[20\], with MDs doing the rule
//! work and the engine's `dedup` method clustering the matches.
//!
//! Run with: `cargo run --release --example dedup_single_relation`

use matchrules::core::schema::{AttrKind, Schema};
use matchrules::data::relation::Relation;
use matchrules::engine::EngineBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let contacts = Schema::kinded(
        "contacts",
        &[
            ("name", AttrKind::GivenName),
            ("surname", AttrKind::Surname),
            ("street", AttrKind::Street),
            ("zip", AttrKind::Zip),
            ("phone", AttrKind::Phone),
            ("email", AttrKind::Email),
        ],
    )?;

    // Dedup rules: same phone fixes the address; same email fixes the name;
    // surname + street + similar name is a match for the whole record.
    let engine = EngineBuilder::new()
        .dedup_schema(contacts)
        .md_text(
            "contacts[phone] = contacts[phone] -> \
               contacts[street,zip] <=> contacts[street,zip]\n\
             contacts[email] = contacts[email] -> \
               contacts[name,surname] <=> contacts[name,surname]\n\
             contacts[surname] = contacts[surname] /\\ contacts[street] ~d contacts[street] /\\ \
             contacts[name] ~d contacts[name] -> \
               contacts[name,surname,street,zip,phone] <=> contacts[name,surname,street,zip,phone]\n",
        )
        .target(
            &["name", "surname", "street", "zip", "phone"],
            &["name", "surname", "street", "zip", "phone"],
        )
        .top_k(8)
        .build()?;
    println!("Deduced dedup keys:");
    for key in engine.plan().rcks() {
        println!("  {}", key.display(engine.plan().pair(), engine.plan().ops()));
    }

    // A messy address book.
    let mut book = Relation::new(engine.plan().pair().left().clone());
    book.push_strs(0, &["Anna", "Kovacs", "12 Birch Lane", "07974", "908-5551234", "ak@mail.com"]);
    book.push_strs(1, &["Ana", "Kovacs", "12 Birch Lne", "07974", "", "anna.k@web.com"]);
    book.push_strs(2, &["A.", "Kovacs", "", "", "908-5551234", "ak@mail.com"]);
    book.push_strs(3, &["Bela", "Nagy", "7 Cedar Court", "07976", "908-5559876", "bn@mail.com"]);
    book.push_strs(4, &["Bella", "Nagy", "7 Cedar Crt", "07976", "", "bn@mail.com"]);
    book.push_strs(5, &["Carl", "Weiss", "3 Elm Street", "10001", "212-5550000", "cw@mail.com"]);

    // Windowed pairwise matching + transitive closure, in one call.
    let outcome = engine.dedup(&book)?;
    println!("\nClusters ({}):", outcome.report);
    for group in &outcome.clusters {
        let names: Vec<String> = group
            .iter()
            .map(|&i| {
                let t = &book.tuples()[i];
                format!("#{} {} {}", t.id(), t.get(0), t.get(1))
            })
            .collect();
        println!("  {}", names.join("  |  "));
    }
    println!("\n{} records -> {} entities", book.len(), outcome.entity_count());
    Ok(())
}
