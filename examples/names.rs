//! Person-name matching on fully indexable fuzzy operators.
//!
//! Name rules are where naive indexing falls over: a first-name typo
//! defeats equality, a re-spelled surname defeats sorting, and a city
//! with its words shuffled defeats both. This example compiles a rule
//! set whose every atom is fuzzy — jaro-winkler on first names, soundex
//! on surnames, token-set similarity on cities — and shows that the
//! `MatchIndex` still serves it with **zero scan-fallback keys**: each
//! operator declares its own retrieval strategy (`IndexableAtom`), so
//! jaro-winkler probes char-bag prefix buckets, soundex probes derived
//! phonetic codes, and the token atom probes word posting lists. Run
//! with:
//!
//! ```sh
//! cargo run --release --example names
//! ```

use matchrules::core::schema::{AttrKind, Schema};
use matchrules::data::relation::Relation;
use matchrules::engine::EngineBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let roster = Schema::kinded(
        "roster",
        &[
            ("first", AttrKind::GivenName),
            ("last", AttrKind::Surname),
            ("city", AttrKind::City),
            ("phone", AttrKind::Phone),
        ],
    )?;
    let signup = Schema::kinded(
        "signup",
        &[
            ("first", AttrKind::GivenName),
            ("last", AttrKind::Surname),
            ("city", AttrKind::City),
            ("phone", AttrKind::Phone),
        ],
    )?;

    // Two rules: the fully fuzzy name rule, and a phone + surname
    // tie-breaker. `~jw` is jaro-winkler (≥ 0.9), `~sx` compares
    // soundex codes, `~tok` is token-set Jaccard (≥ 0.5).
    let engine = EngineBuilder::new()
        .schemas(roster, signup)
        .md_text(
            "roster[first] ~jw signup[first] /\\ roster[last] ~sx signup[last] /\\ \
             roster[city] ~tok signup[city] -> \
             roster[first,last,city] <=> signup[first,last,city]\n\
             roster[phone] = signup[phone] /\\ roster[last] ~sx signup[last] -> \
             roster[first,last,city] <=> signup[first,last,city]\n",
        )
        .target(&["first", "last", "city"], &["first", "last", "city"])
        .build()?;
    // The plan report names each key's anchors; none may read "none".
    println!("{}", engine.plan().describe());
    assert!(engine.plan().fully_indexable(), "every atom must be index-ready");

    // The signup book we serve lookups against: typos, phonetic
    // re-spellings and shuffled city words throughout.
    let mut signups = Relation::new(engine.plan().pair().right().clone());
    signups.push_strs(1, &["Robret", "Smith", "New York", "212-5550101"]); // transposed
    signups.push_strs(2, &["Catherine", "Smyth", "York New", "212-5550101"]); // re-spelled
    signups.push_strs(3, &["Robert", "Schmidt", "Boston", "617-5550199"]);
    signups.push_strs(4, &["Roberta", "Smith", "New York", "212-5559999"]);

    let index = engine.index(&signups)?;
    let stats = index.stats();
    println!(
        "index over {} signups: {} derived-key + {} token + {} char-bag + {} exact anchors, \
         {} scan keys\n",
        stats.live,
        stats.derived_anchors,
        stats.token_anchors,
        stats.bag_anchors,
        stats.exact_anchors,
        stats.scan_keys
    );
    assert_eq!(stats.scan_keys, 0, "no key may fall back to scanning");

    // A clean roster record finds its typo'd signup — through the
    // fuzzy anchors, not a scan.
    let mut roster_rel = Relation::new(engine.plan().pair().left().clone());
    roster_rel.push_strs(1001, &["Robert", "Smith", "New York", "212-5550101"]);
    roster_rel.push_strs(1002, &["Katherine", "Smith", "New York", "212-5550101"]);
    for probe in roster_rel.tuples() {
        let outcome = index.query(probe);
        println!(
            "query(#{}): {} hit(s) from {} candidate(s) examined \
             ({} duplicate retrievals folded)",
            probe.id(),
            outcome.hits.len(),
            outcome.candidates,
            outcome.stats.dedup_saved
        );
        for hit in &outcome.hits {
            println!("  signup #{} via RCK {}", hit.id, hit.key);
        }
    }

    // "Robert Smith, New York" must reach signup #1 ("Robret Smith,
    // New York") via the fuzzy name rule despite the transposition.
    let hits = index.query(roster_rel.tuples().first().expect("roster has rows")).hits;
    assert!(hits.iter().any(|h| h.id == 1), "typo'd signup must be found");

    println!("\nname rules served index-first: no atom priced as a scan.");
    Ok(())
}
