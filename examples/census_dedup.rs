//! Census-style statistical matching: Fellegi–Sunter with EM, comparing
//! the EM-picked equality comparison vector against the plan's RCK-derived
//! one (§6.2 Exp-2), with candidates from the engine's windowing.
//!
//! Run with: `cargo run --release --example census_dedup`

use matchrules::data::dirty::{generate_dirty, NoiseConfig};
use matchrules::engine::preset::standard_sort_keys;
use matchrules::engine::Preset;
use matchrules::matcher::fellegi_sunter::{
    equality_comparison_vector, rck_comparison_vector, FsConfig, FsMatcher,
};
use matchrules::matcher::metrics::evaluate_pairs;
use matchrules::matcher::windowing::multi_pass_window;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const RECORDS: usize = 3_000;
    // Shapes only: the preset's schema pair and target, no compiled plan.
    let shape = Preset::Extended.paper_setting();
    let data = generate_dirty(
        &shape.pair,
        &shape.target,
        RECORDS,
        &NoiseConfig { seed: 0xCE45, ..Default::default() },
    );
    let engine =
        Preset::Extended.builder().top_k(5).statistics_from(&data.credit, &data.billing).build()?;
    let plan = engine.plan();
    let ops = engine.runtime();

    // Candidate pairs from windowing (window 10, shared keys for fairness).
    let candidates =
        multi_pass_window(&data.credit, &data.billing, &standard_sort_keys(plan.pair()), 10);
    println!(
        "{} candidate pairs from windowing ({} x {} total)",
        candidates.len(),
        data.credit.len(),
        data.billing.len()
    );
    let cfg = FsConfig::default();

    // Baseline: equality comparison vector over the identity lists.
    let fs = FsMatcher::fit(
        equality_comparison_vector(plan.target()),
        &data.credit,
        &data.billing,
        &candidates,
        ops,
        &cfg,
    )
    .expect("EM fit on windowed candidates");
    let fs_pairs = fs.classify(&data.credit, &data.billing, &candidates, ops);
    let fs_q = evaluate_pairs(&fs_pairs, &data.truth);
    println!("\nFS   (equality vector, {} fields):", fs.fields().len());
    println!(
        "  precision {:.3}  recall {:.3}  F1 {:.3}",
        fs_q.precision(),
        fs_q.recall(),
        fs_q.f1()
    );
    let powers = fs.model().field_powers();
    let best = fs.model().top_fields(3);
    println!(
        "  EM's most discriminative fields: {}",
        best.iter()
            .map(|&i| {
                let atom = fs.fields()[i];
                format!("{} ({:.1} bits)", plan.pair().left().attr_name(atom.left), powers[i])
            })
            .collect::<Vec<_>>()
            .join(", ")
    );

    // RCK comparison vector: the union of the plan's top-5 deduced keys.
    let fs_rck = FsMatcher::fit(
        rck_comparison_vector(plan.rcks()),
        &data.credit,
        &data.billing,
        &candidates,
        ops,
        &cfg,
    )
    .expect("EM fit on windowed candidates");
    let rck_pairs = fs_rck.classify(&data.credit, &data.billing, &candidates, ops);
    let rck_q = evaluate_pairs(&rck_pairs, &data.truth);
    println!("\nFSrck (union of top-5 RCKs, {} fields):", fs_rck.fields().len());
    println!(
        "  precision {:.3}  recall {:.3}  F1 {:.3}",
        rck_q.precision(),
        rck_q.recall(),
        rck_q.f1()
    );

    println!(
        "\nRCK comparison vectors carry similarity operators (e.g. ~d on names),\n\
         so typo-damaged true matches still agree — the Fig. 9 quality gap."
    );
    Ok(())
}
