//! The engine API end to end on a **non-paper** schema pair (a
//! product-catalog linkage scenario), plus the guarantee that the paper
//! presets produce identical RCKs through the old (`find_rcks` on
//! `PaperSetting`) and new (`EngineBuilder` → `MatchPlan`) paths.

use matchrules::core::cost::CostModel;
use matchrules::core::paper;
use matchrules::core::rck::find_rcks;
use matchrules::core::schema::{AttrKind, Schema, Side};
use matchrules::data::relation::Relation;
use matchrules::engine::{EngineBuilder, EngineError, MatchEngine, Preset};

/// Two product catalogs with entirely different attribute names: identity
/// of a product is (title, brand, upc).
fn catalog_engine() -> MatchEngine {
    let shop = Schema::kinded(
        "shop",
        &[
            ("sku", AttrKind::Id),
            ("title", AttrKind::FreeText),
            ("brand", AttrKind::Surname), // brand names behave like surnames: Soundex-friendly
            ("upc", AttrKind::Id),
            ("vendor_phone", AttrKind::Phone),
            ("price", AttrKind::Money),
        ],
    )
    .unwrap();
    let feed = Schema::kinded(
        "feed",
        &[
            ("code", AttrKind::Id),
            ("product_name", AttrKind::FreeText),
            ("maker", AttrKind::Surname),
            ("barcode", AttrKind::Id),
            ("support_line", AttrKind::Phone),
            ("cost", AttrKind::Money),
        ],
    )
    .unwrap();
    EngineBuilder::new()
        .schemas(shop, feed)
        .md_text(
            // Same barcode -> same product name and maker.
            "shop[upc] = feed[barcode] -> shop[title,brand] <=> feed[product_name,maker]\n\
             // Same maker + similar title -> same product entirely.\n\
             shop[brand] = feed[maker] /\\ shop[title] ~d feed[product_name] -> \
             shop[title,brand,upc] <=> feed[product_name,maker,barcode]\n",
        )
        .target(&["title", "brand", "upc"], &["product_name", "maker", "barcode"])
        .top_k(8)
        .build()
        .unwrap()
}

fn shop_rows(engine: &MatchEngine) -> Relation {
    let mut r = Relation::new(engine.plan().pair().left().clone());
    r.push_strs(
        1,
        &["S1", "Trail Runner 5 Shoe", "Peregrine", "0036000291452", "908-5550000", "129.99"],
    );
    r.push_strs(
        2,
        &["S2", "Espresso Maker Deluxe", "Brewtech", "0036000117202", "908-5550001", "349.00"],
    );
    r.push_strs(
        3,
        &["S3", "Camping Lantern XL", "Glowfield", "0036000664454", "908-5550002", "39.90"],
    );
    r
}

fn feed_rows(engine: &MatchEngine) -> Relation {
    let mut r = Relation::new(engine.plan().pair().right().clone());
    // Same product as S1: typo'd name, same barcode.
    r.push_strs(10, &["F10", "Trail Runer 5 Shoe", "Peregrine", "0036000291452", "", "119.00"]);
    // Same product as S2: same maker, similar name, *different* barcode
    // (rebranded packaging) — only the brand+title~d key can catch it.
    r.push_strs(11, &["F11", "Espresso Maker Delux", "Brewtech", "0036000117219", "", "310.00"]);
    // An unrelated product by the same maker as S3.
    r.push_strs(12, &["F12", "Pocket Stove Mini", "Glowfield", "0036000777778", "", "24.50"]);
    r
}

#[test]
fn product_catalog_end_to_end() {
    let engine = catalog_engine();
    let plan = engine.plan();

    // The one-atom barcode key must be deduced: upc= identifies name+maker
    // (MD 1) and itself, covering the whole target.
    assert!(
        plan.rcks().iter().any(|k| k.len() == 1),
        "expected the single-atom barcode RCK, got:\n{}",
        plan.describe()
    );
    assert!(plan.is_complete(), "two MDs admit a complete enumeration");

    let shop = shop_rows(&engine);
    let feed = feed_rows(&engine);
    let report = engine.match_all(&shop, &feed).unwrap();
    let pairs = report.index_pairs();
    assert!(pairs.contains(&(0, 0)), "S1-F10 via the barcode key");
    assert!(pairs.contains(&(1, 1)), "S2-F11 via the maker+title~d key");
    assert!(!pairs.contains(&(2, 2)), "S3-F12 are different products");
    assert_eq!(report.len(), 2, "exactly the two true links: {pairs:?}");

    // Provenance: each matched pair names the plan key that matched it.
    for m in report.pairs() {
        assert!(m.key < plan.rcks().len());
    }
}

#[test]
fn windowed_matching_agrees_with_exhaustive_here() {
    let engine = catalog_engine();
    let shop = shop_rows(&engine);
    let feed = feed_rows(&engine);
    let exhaustive = engine.match_all(&shop, &feed).unwrap();
    let windowed = engine.match_pairs(&shop, &feed).unwrap();
    // Six tuples fit inside one window: candidate reduction loses nothing.
    assert_eq!(exhaustive.index_pairs(), windowed.index_pairs());
    assert!(windowed.candidates() <= exhaustive.candidates());
}

#[test]
fn blocking_and_windowing_produce_candidates() {
    let engine = catalog_engine();
    let shop = shop_rows(&engine);
    let feed = feed_rows(&engine);
    let blocks = engine.block(&shop, &feed).unwrap();
    assert!(blocks.contains(&(0, 0)), "shared barcode blocks together");
    let windows = engine.window(&shop, &feed).unwrap();
    assert!(windows.contains(&(0, 0)));
}

#[test]
fn engine_rejects_foreign_relations() {
    let engine = catalog_engine();
    let other = Schema::text("other", &["a", "b"]).unwrap();
    let rel = Relation::new(std::sync::Arc::new(other));
    let err = engine.match_all(&rel, &rel).unwrap_err();
    assert!(matches!(err, EngineError::SchemaMismatch { .. }), "{err}");
    assert!(err.to_string().contains("other"));
}

#[test]
fn builder_reports_missing_configuration() {
    assert!(matches!(EngineBuilder::new().compile().unwrap_err(), EngineError::MissingSchemas));
    let schema = Schema::text("r", &["a"]).unwrap();
    assert!(matches!(
        EngineBuilder::new().dedup_schema(schema).compile().unwrap_err(),
        EngineError::MissingTarget
    ));
}

#[test]
fn builder_rejects_unbound_operators_at_compile_time() {
    let schema = Schema::text("r", &["a", "b"]).unwrap();
    let err = EngineBuilder::new()
        .dedup_schema(schema)
        .md_text("r[a] ~never_registered r[a] -> r[b] <=> r[b]\n")
        .target(&["b"], &["b"])
        .compile()
        .unwrap_err();
    assert!(err.to_string().contains("never_registered"), "{err}");
}

#[test]
fn attr_kind_overrides_apply_at_compile() {
    let schema = Schema::text("contacts", &["nm", "ph"]).unwrap();
    let plan = EngineBuilder::new()
        .dedup_schema(schema)
        .attr_kind(Side::Left, "ph", AttrKind::Phone)
        .attr_kind(Side::Left, "nm", AttrKind::Surname)
        .md_text("contacts[ph] = contacts[ph] -> contacts[nm] <=> contacts[nm]\n")
        .target(&["nm", "ph"], &["nm", "ph"])
        .compile()
        .unwrap();
    let left = plan.pair().left();
    assert_eq!(left.attr_kind(left.attr("ph").unwrap()), AttrKind::Phone);
    assert_eq!(left.attr_kind(left.attr("nm").unwrap()), AttrKind::Surname);
    // Reflexive pairs stay consistent on both sides.
    let right = plan.pair().right();
    assert_eq!(right.attr_kind(right.attr("ph").unwrap()), AttrKind::Phone);
}

/// Both paper presets yield RCK-for-RCK identical results through the old
/// path (`find_rcks` over the `PaperSetting`) and the new engine path.
#[test]
fn presets_match_the_legacy_path_exactly() {
    for (preset, setting) in
        [(Preset::Example11, paper::example_1_1()), (Preset::Extended, paper::extended())]
    {
        for k in [1usize, 3, 5, 10] {
            let mut cost = CostModel::uniform();
            let legacy = find_rcks(&setting.sigma, &setting.target, k, &mut cost);
            let plan = preset.builder().top_k(k).compile().unwrap();
            assert_eq!(
                legacy.keys,
                plan.rcks(),
                "preset {preset:?} diverges from the legacy path at k={k}"
            );
            assert_eq!(legacy.complete, plan.is_complete());
        }
    }
}

/// The engine reproduces Example 1.1 end to end: t1 matches t3–t6 on the
/// Fig. 1 instance, t2 matches nothing.
#[test]
fn example_1_1_through_the_engine() {
    let engine = Preset::Example11.builder().top_k(10).build().unwrap();
    let instance = matchrules::data::fig1::instance_for_pair(engine.plan().pair());
    let report = engine.match_all(instance.left(), instance.right()).unwrap();
    let matched_left: Vec<u64> = report.pairs().iter().map(|m| m.left_id).collect();
    assert_eq!(report.len(), 4, "t1 matches every billing tuple");
    assert!(matched_left.iter().all(|&id| id == 1), "t2 must match nothing");
}

/// Review regression: a same-named, same-arity relation with *reordered*
/// attributes must be rejected, not silently mis-matched column-wise.
#[test]
fn engine_rejects_reordered_schema() {
    let engine = catalog_engine();
    let reordered = Schema::kinded(
        "shop",
        &[
            ("title", AttrKind::FreeText), // swapped with sku
            ("sku", AttrKind::Id),
            ("brand", AttrKind::Surname),
            ("upc", AttrKind::Id),
            ("vendor_phone", AttrKind::Phone),
            ("price", AttrKind::Money),
        ],
    )
    .unwrap();
    let rel = Relation::new(std::sync::Arc::new(reordered));
    let feed = feed_rows(&engine);
    let err = engine.match_all(&rel, &feed).unwrap_err();
    assert!(matches!(err, EngineError::SchemaMismatch { .. }), "{err}");
}

/// Review regression: statistics measured on relations of the wrong schema
/// must fail compilation instead of panicking or silently mis-ranking.
#[test]
fn statistics_from_validates_schemas() {
    let tiny = Schema::text("tiny", &["a"]).unwrap();
    let rel = Relation::new(std::sync::Arc::new(tiny));
    let shop = Schema::text("shop", &["sku", "title"]).unwrap();
    let feed = Schema::text("feed", &["code", "product_name"]).unwrap();
    let err = EngineBuilder::new()
        .schemas(shop, feed)
        .md_text("shop[sku] = feed[code] -> shop[title] <=> feed[product_name]\n")
        .target(&["title"], &["product_name"])
        .statistics_from(&rel, &rel)
        .compile()
        .unwrap_err();
    assert!(matches!(err, EngineError::SchemaMismatch { .. }), "{err}");
}

/// Review regression: a degenerate window is rejected at compile, not at
/// the first match call.
#[test]
fn window_below_two_rejected_at_compile() {
    let s = Schema::text("w", &["x"]).unwrap();
    let err = EngineBuilder::new()
        .dedup_schema(s)
        .md_text("w[x] = w[x] -> w[x] <=> w[x]\n")
        .target(&["x"], &["x"])
        .window(1)
        .compile()
        .unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("window"));
}

/// `top_k(0)` used to compile into a silently degenerate plan (no RCKs,
/// no sort/block keys, every match a miss); now it is a compile error.
#[test]
fn top_k_zero_rejected_at_compile() {
    let err = Preset::Extended.builder().top_k(0).compile().unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("top_k"), "{err}");
}

/// The runtime pool is plumbed end to end: reports carry the configured
/// thread count and a per-stage timing breakdown, and every thread count
/// produces byte-identical matches.
#[test]
fn exec_config_is_deterministic_and_reported() {
    use matchrules::engine::ExecConfig;
    let engine = catalog_engine();
    let shop = shop_rows(&engine);
    let feed = feed_rows(&engine);
    let serial = engine.with_exec(ExecConfig::serial());
    let baseline = serial.match_pairs(&shop, &feed).unwrap();
    assert_eq!(baseline.threads(), 1);
    let stage_names: Vec<&str> = baseline.stages().iter().map(|s| s.name).collect();
    assert_eq!(stage_names, vec!["window", "prep", "match"]);
    for threads in [2, 4, 8] {
        let parallel = engine.with_exec(ExecConfig::fixed(threads));
        assert_eq!(parallel.threads(), threads);
        let report = parallel.match_pairs(&shop, &feed).unwrap();
        assert_eq!(report.pairs(), baseline.pairs(), "threads = {threads}");
        assert_eq!(report.threads(), threads);
        // The filter counters are sums over the same atom evaluations,
        // so they are thread-count-independent too.
        assert_eq!(report.filter_stats(), baseline.filter_stats(), "threads = {threads}");
    }
}

/// The compiled hot path reports where edit-distance evaluations were
/// decided: filters plus DP runs account for every evaluation, and on an
/// exhaustive run the counters are non-trivial (the catalog MDs compare
/// titles under `~d`).
#[test]
fn filter_counters_account_for_edit_evaluations() {
    let engine = catalog_engine();
    let shop = shop_rows(&engine);
    let feed = feed_rows(&engine);
    let report = engine.match_all(&shop, &feed).unwrap();
    let stats = report.filter_stats();
    assert!(stats.evaluations() > 0, "edit atoms were evaluated: {stats:?}");
    assert_eq!(
        stats.evaluations(),
        stats.equal_fast + stats.rejected() + stats.dp_runs,
        "{stats:?}"
    );
}

/// A zero thread count is a configuration mistake, not a request for
/// serial execution — rejected like `top_k(0)` and `window(1)`.
#[test]
fn threads_zero_rejected_at_compile() {
    let err = Preset::Example11.builder().threads(0).compile().unwrap_err();
    assert!(matches!(err, EngineError::InvalidConfig { .. }), "{err}");
    assert!(err.to_string().contains("threads"), "{err}");
}

/// Builder-level thread configuration lands in the compiled plan.
#[test]
fn builder_threads_reach_the_plan() {
    use matchrules::engine::{ExecConfig, Threads};
    let engine = Preset::Example11.builder().threads(3).build().unwrap();
    assert_eq!(engine.plan().exec(), ExecConfig { threads: Threads::Fixed(3) });
    assert_eq!(engine.threads(), 3);
    assert!(engine.plan().describe().contains("threads 3"));
}

/// Satellite regression: empty relations produce finite reports — no NaN
/// in reduction ratios or quality scores, whatever the denominators.
#[test]
fn empty_relations_yield_finite_reports() {
    let engine = catalog_engine();
    let empty_shop = Relation::new(engine.plan().pair().left().clone());
    let empty_feed = Relation::new(engine.plan().pair().right().clone());
    for report in [
        engine.match_pairs(&empty_shop, &empty_feed).unwrap(),
        engine.match_all(&empty_shop, &empty_feed).unwrap(),
        engine.match_pairs(&shop_rows(&engine), &empty_feed).unwrap(),
    ] {
        assert!(report.is_empty());
        assert!(report.reduction_ratio().is_finite(), "{}", report.reduction_ratio());
        // Display renders the ratio — must not print NaN.
        assert!(!report.to_string().contains("NaN"), "{report}");
    }
}
